/// \file
/// Headline claim (§I / §V): "the architectures obtained through
/// CHRYSALIS exhibit an average performance improvement of 56.4%".
///
/// The bench aggregates lat*sp improvements of the full CHRYSALIS search
/// over reference designs across both evaluation campaigns:
///   - existing-AuT (Table IV apps) vs the iNAS original configuration;
///   - future-AuT (Table V nets x 2 archs) vs the strongest
///     inference-only ablation (wo/EA), which represents prior
///     accelerator-DSE practice.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/math_utils.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "core/chrysalis.hpp"
#include "dnn/model_zoo.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Headline",
                        "Average performance (lat*sp) improvement of "
                        "CHRYSALIS over non-co-designed references.");

    const bench::Budget budget = bench::Budget::from_env();
    const search::Objective objective{search::ObjectiveKind::kLatSp, 0.0,
                                      0.0};
    std::vector<double> improvements;
    TextTable table({"Scenario", "Reference lat*sp", "CHRYSALIS lat*sp",
                     "Improvement"});

    // Campaign 1: existing AuT vs the iNAS original configuration.
    std::uint64_t seed = 56400;
    for (const auto& name : dnn::table4_workloads()) {
        const dnn::Model model = dnn::make_model(name);
        core::ChrysalisInputs inputs{
            model, search::DesignSpace::existing_aut(), objective,
            bench::make_options(budget, ++seed)};
        const core::Chrysalis tool(std::move(inputs));
        const auto best = tool.generate();
        const auto reference =
            tool.evaluate_candidate(bench::inas_reference_candidate());
        if (best.feasible && reference.feasible) {
            const double gain =
                relative_improvement(reference.lat_sp, best.lat_sp);
            improvements.push_back(gain);
            table.add_row({name + " (msp430)",
                           format_fixed(reference.lat_sp, 2),
                           format_fixed(best.lat_sp, 2),
                           format_percent(gain)});
        }
    }

    // Campaign 2: future AuT vs the fixed (non-co-designed) default
    // configuration — the state-of-the-art practice of pairing a stock
    // accelerator config with an ad-hoc energy subsystem.
    for (const auto& net : dnn::table5_workloads()) {
        const dnn::Model model = dnn::make_model(net);
        for (auto arch : {hw::AcceleratorArch::kTpu,
                          hw::AcceleratorArch::kEyeriss}) {
            search::DesignSpace full = search::DesignSpace::future_aut();
            full.search_arch = false;
            full.defaults.arch = arch;

            core::ChrysalisInputs inputs{model, full, objective,
                                         bench::make_options(budget,
                                                             ++seed)};
            const core::Chrysalis tool(std::move(inputs));
            const auto best = tool.generate();
            const auto reference =
                tool.evaluate_candidate(full.defaults);
            if (best.feasible && reference.feasible) {
                const double gain = relative_improvement(
                    reference.lat_sp, best.lat_sp);
                improvements.push_back(gain);
                table.add_row({net + "/" + hw::to_string(arch),
                               format_fixed(reference.lat_sp, 2),
                               format_fixed(best.lat_sp, 2),
                               format_percent(gain)});
            }
        }
    }

    table.print(std::cout);
    if (!improvements.empty()) {
        const auto stats = summarize(improvements);
        bench::headline("mean_improvement", stats.mean);
        bench::headline("min_improvement", stats.min);
        bench::headline("max_improvement", stats.max);
        bench::headline("scenarios",
                        static_cast<double>(improvements.size()));
        std::cout << "\nAverage improvement across "
                  << improvements.size() << " scenarios: "
                  << format_percent(stats.mean)
                  << " (min " << format_percent(stats.min) << ", max "
                  << format_percent(stats.max)
                  << ").\nPaper headline: 56.4% average improvement.\n";
    }
    return 0;
}

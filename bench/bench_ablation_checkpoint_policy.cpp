/// \file
/// Ablation: checkpoint policy. Compares eager per-tile-boundary
/// checkpointing (HAWAII-style [35]) against on-demand just-in-time
/// saves (QUICKRECALL-style [31]) on the step simulator, across harvest
/// levels and energy-exception rates.
///
/// Expected shape: under stable, abundant power the on-demand policy
/// spends (almost) nothing on checkpoints; as power weakens (frequent
/// brown-outs) the two converge, since most saves become forced.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"
#include "sim/intermittent_simulator.hpp"

namespace {

using namespace chrysalis;

struct PolicyResult {
    bool completed = false;
    double latency_s = 0.0;
    double e_ckpt_j = 0.0;
    std::int64_t cycles = 0;
};

PolicyResult
run_policy(const dataflow::ModelCost& cost, double panel_cm2,
           double exception_rate, sim::CheckpointPolicy policy)
{
    energy::Capacitor::Config cap_config;
    cap_config.capacitance_f = 100e-6;
    cap_config.initial_voltage_v = 2.2;  // at U_off: charge first
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            panel_cm2, std::make_shared<energy::ConstantSolarEnvironment>(
                           0.5e-3, "policy")),
        energy::Capacitor(cap_config),
        energy::PowerManagementIc{energy::PowerManagementIc::Config{}});
    sim::SimConfig config;
    config.step_s = 0.02;
    config.exception_rate = exception_rate;
    config.checkpoint_policy = policy;
    config.seed = 5;
    const sim::SimResult result =
        sim::simulate_inference(cost, controller, config);
    PolicyResult out;
    out.completed = result.completed;
    out.latency_s = result.latency_s;
    out.e_ckpt_j = result.e_ckpt_j;
    out.cycles = result.energy_cycles;
    return out;
}

}  // namespace

int
main()
{
    bench::print_banner("Ablation: checkpoint policy",
                        "Eager per-tile checkpoints (HAWAII) vs "
                        "on-demand JIT saves (QUICKRECALL), step "
                        "simulator, KWS on MSP430, C = 100 uF.");

    const hw::Msp430Lea mcu;
    const auto model = dnn::make_kws_mlp();
    sim::EnergyEnv env;
    env.p_eh_w = 8.0 * 0.5e-3;
    env.capacitor.capacitance_f = 100e-6;
    const auto mapping = search::search_mappings(
        model, mcu, {env}, search::MappingSearchOptions{});

    TextTable table({"Panel (cm^2)", "r_exc", "Policy", "Ckpt E",
                     "Latency", "Cycles"});
    const double panels[] = {30.0, 8.0, 2.0};
    const double rates[] = {0.0, 0.2};
    for (double panel : panels) {
        for (double rate : rates) {
            for (auto policy :
                 {sim::CheckpointPolicy::kEagerBoundary,
                  sim::CheckpointPolicy::kOnDemand}) {
                const PolicyResult result =
                    run_policy(mapping.cost, panel, rate, policy);
                const char* label =
                    policy == sim::CheckpointPolicy::kEagerBoundary
                        ? "eager"
                        : "on-demand";
                if (!result.completed) {
                    table.add_row({format_fixed(panel, 0),
                                   format_fixed(rate, 1), label, "-",
                                   "did not complete", "-"});
                    continue;
                }
                table.add_row({format_fixed(panel, 0),
                               format_fixed(rate, 1), label,
                               format_si(result.e_ckpt_j, "J", 1),
                               format_si(result.latency_s, "s"),
                               std::to_string(result.cycles)});
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: on-demand checkpoint energy is near "
                 "zero at 30 cm^2 (no brown-outs) and approaches the "
                 "eager policy's as the panel shrinks; exceptions raise "
                 "both.\n";
    return 0;
}

/// \file
/// Figure 9: optimizing capacitor size for the existing AuT at a fixed
/// 8 cm^2 solar panel, for the four Table-IV applications.
///
/// Expected shape: small capacitors force frequent checkpoints (high
/// Ckpt. Energy); large capacitors leak visibly (Cap. Leakage); the
/// preferable size minimizes latency.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"
#include "sim/analytic_evaluator.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Figure 9",
                        "Energy breakdown vs capacitor size "
                        "(solar panel = 8 cm^2, darker environment: the "
                        "harvest is below the active load, so tiles must "
                        "bridge from storage).");

    const hw::Msp430Lea mcu;
    constexpr double kKeh = 0.5e-3;
    constexpr double kPanel = 8.0;
    const double caps_f[] = {1e-6, 4.7e-6, 22e-6, 100e-6, 470e-6,
                             2.2e-3, 10e-3};

    for (const auto& name : dnn::table4_workloads()) {
        const dnn::Model model = dnn::make_model(name);
        std::cout << "\n--- " << name << " ---\n";
        TextTable table({"C", "N_tile", "Ckpt E", "Cap leakage E",
                         "Total load E", "Latency"});

        double best_latency = 1e300;
        std::size_t best_index = 0;
        std::vector<std::vector<std::string>> rows;
        for (double cap : caps_f) {
            sim::EnergyEnv env;
            env.p_eh_w = kPanel * kKeh;
            env.capacitor.capacitance_f = cap;

            search::MappingSearchOptions options;
            options.max_candidates_per_dim = 6;
            const auto mapping =
                search_mappings(model, mcu, {env}, options);
            const auto eval = analytic_evaluate(mapping.cost, env);
            if (!eval.feasible) {
                rows.push_back({format_si(cap, "F", 0),
                                std::to_string(mapping.cost.n_tile), "-",
                                "-", "-",
                                "infeasible (" + eval.failure.message() +
                                    ")"});
                continue;
            }
            if (eval.latency_s < best_latency) {
                best_latency = eval.latency_s;
                best_index = rows.size();
            }
            rows.push_back({format_si(cap, "F", 0),
                            std::to_string(mapping.cost.n_tile),
                            format_si(mapping.cost.e_ckpt_j, "J", 1),
                            format_si(eval.e_leak_j, "J", 1),
                            format_si(eval.e_all_j, "J", 1),
                            format_si(eval.latency_s, "s")});
        }
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (i == best_index && rows[i].back() != "infeasible")
                rows[i][0] += " *";
            table.add_row(rows[i]);
        }
        table.print(std::cout);
        std::cout << "(* preferable capacitor by latency)\n";
    }

    std::cout << "\nShape check: checkpoint energy decreases and leakage "
                 "energy increases monotonically with C; the preferable "
                 "size sits between the two regimes, matching the "
                 "paper's conclusion that capacitor search matters.\n";
    return 0;
}

/// \file
/// Table II: the usage model and parameter notation of CHRYSALIS, printed
/// with the concrete default values this reproduction uses so the mapping
/// from paper symbol to code entity is explicit.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "energy/capacitor.hpp"
#include "energy/power_management.hpp"
#include "hw/msp430_lea.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Table II",
                        "Usage model and parameter notations for AuT "
                        "modeling in CHRYSALIS (with this repo's "
                        "defaults).");

    const energy::Capacitor::Config cap{};
    const energy::PowerManagementIc::Config pmic{};
    const hw::Msp430Lea mcu;
    const auto params = mcu.cost_params();

    TextTable table({"Category", "Param", "Introduction",
                     "Default in this repo"});
    table.add_row({"Input/Environment", "k_eh",
                   "Environmental light coefficient",
                   "2.0 mW/cm^2 (brighter) / 0.5 mW/cm^2 (darker)"});
    table.add_row({"Input/Technology", "k_cap",
                   "Leakage current coefficient (Eq. 2)",
                   format_fixed(cap.k_cap, 3) + " 1/s"});
    table.add_row({"Input/Technology", "U_on / U_off",
                   "Threshold voltages for the system state",
                   format_fixed(pmic.v_on, 1) + " V / " +
                       format_fixed(pmic.v_off, 1) + " V"});
    table.add_row({"Input/Technology", "e_r / e_w",
                   "Energy cost of r/w each byte from NVM",
                   format_si(params.e_nvm_read_byte_j, "J/B") + " / " +
                       format_si(params.e_nvm_write_byte_j, "J/B")});
    table.add_row({"Input/Technology", "p_mem",
                   "Static power of each byte of memory",
                   format_si(params.p_mem_w_per_byte, "W/B")});
    table.add_row({"Input", "pi",
                   "Objective demand function",
                   "lat | sp | lat*sp (search::Objective)"});
    table.add_row({"Input", "Workload",
                   "Domain-specific DNN task and dataset",
                   "dnn::make_model(name)"});
    table.add_row({"Variable", "r_exc",
                   "Energy exception rate of the inference",
                   format_fixed(params.exception_rate, 2)});
    table.add_row({"Variable", "E_df / T_df",
                   "Whole energy and latency of inference with 1 PE",
                   "dataflow::LayerCost"});
    table.add_row({"Variable", "N_data",
                   "Inference data size",
                   "LayerCost::nvm_read/write_bytes"});
    table.add_row({"Variable", "N_ckpt",
                   "Checkpoint data size",
                   "LayerCost::ckpt_bytes"});
    table.add_row({"Output/EH HW", "C", "Capacitor size",
                   "HwCandidate::capacitance_f (1 uF..10 mF)"});
    table.add_row({"Output/EH HW", "A_eh", "The size of solar panel",
                   "HwCandidate::solar_cm2 (1..30 cm^2)"});
    table.add_row({"Output/Infer HW", "N_tile",
                   "Tile number of the layer",
                   "LayerMapping::tile_count()"});
    table.add_row({"Output/Infer HW", "N_mem", "VM memory size per PE",
                   "HwCandidate::cache_bytes (128 B..2 KiB)"});
    table.add_row({"Output/Infer HW", "N_PE", "PE number",
                   "HwCandidate::n_pe (1..168)"});
    table.add_row({"Output", "Dataflow",
                   "Preferable dataflow of DNN task",
                   "LayerMapping::dataflow (WS/OS/IS/RS)"});
    table.print(std::cout);
    return 0;
}

/// \file
/// Figure 8: optimizing solar-panel size for the existing AuT at a fixed
/// 100 uF capacitor, for the four Table-IV applications. Per panel size
/// the bench reports the energy breakdown and the system efficiency
/// E_infer / E_eh.
///
/// Expected shape: small panels force many tiles -> excessive checkpoint
/// energy; beyond a certain size the total energy stabilizes but system
/// efficiency drops (extra harvest is wasted); the preferable panel
/// minimizes lat*sp.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"
#include "sim/analytic_evaluator.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Figure 8",
                        "Energy breakdown vs solar panel size "
                        "(C = 100 uF, brighter environment).");

    const hw::Msp430Lea mcu;
    constexpr double kKeh = 2e-3;
    constexpr double kCap = 100e-6;
    const double panels_cm2[] = {1, 2, 4, 8, 15, 22, 30};

    for (const auto& name : dnn::table4_workloads()) {
        const dnn::Model model = dnn::make_model(name);
        std::cout << "\n--- " << name << " ---\n";
        TextTable table({"SP (cm^2)", "N_tile", "Ckpt E", "Infer E",
                         "Data E", "Static E", "Total E", "Latency",
                         "System Eff.", "lat*sp"});

        double best_latsp = 1e300;
        double best_panel = 0.0;
        std::vector<std::vector<std::string>> rows;
        for (double panel : panels_cm2) {
            sim::EnergyEnv env;
            env.p_eh_w = panel * kKeh;
            env.capacitor.capacitance_f = kCap;

            search::MappingSearchOptions options;
            options.max_candidates_per_dim = 6;
            const auto mapping =
                search_mappings(model, mcu, {env}, options);
            const auto eval = analytic_evaluate(mapping.cost, env);
            if (!eval.feasible) {
                rows.push_back({format_fixed(panel, 0),
                                std::to_string(mapping.cost.n_tile),
                                "-", "-", "-", "-", "-", "infeasible",
                                "-", "-"});
                continue;
            }
            const double latsp = eval.latency_s * panel;
            if (latsp < best_latsp) {
                best_latsp = latsp;
                best_panel = panel;
            }
            rows.push_back(
                {format_fixed(panel, 0),
                 std::to_string(mapping.cost.n_tile),
                 format_si(mapping.cost.e_ckpt_j, "J", 1),
                 format_si(mapping.cost.e_compute_j +
                               mapping.cost.e_vm_j, "J", 1),
                 format_si(mapping.cost.e_nvm_j, "J", 1),
                 format_si(mapping.cost.e_static_j, "J", 1),
                 format_si(mapping.cost.total_energy_j(), "J", 1),
                 format_si(eval.latency_s, "s"),
                 format_percent(eval.system_efficiency),
                 format_fixed(latsp, 2)});
        }
        for (auto& row : rows) {
            if (row[0] == format_fixed(best_panel, 0))
                row[0] += " *";
            TextTable* t = &table;
            t->add_row(row);
        }
        table.print(std::cout);
        std::cout << "(* preferable panel by lat*sp)\n";
    }

    std::cout << "\nShape check: checkpoint energy shrinks as the panel "
                 "grows (fewer, larger tiles); system efficiency peaks "
                 "near the preferable size and decays beyond it.\n";
    return 0;
}

/// \file
/// Table IV: the design space for the existing-AuT (MSP430) setup and the
/// four applications' parameter/FLOP statistics, printed achieved-vs-paper
/// so the workload fidelity is auditable.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Table IV",
                        "Design space for fast construction and "
                        "exploration of efficient AuT design "
                        "(existing MSP430 setup).");

    const auto space = search::DesignSpace::existing_aut();
    TextTable knobs({"Parameter Name", "Type", "Potential Values"});
    knobs.set_title("Design Spaces");
    knobs.add_row({"Solar Panel Size", "float",
                   format_fixed(space.solar_min_cm2, 0) + " cm^2 to " +
                       format_fixed(space.solar_max_cm2, 0) + " cm^2"});
    knobs.add_row({"Capacitor Size", "float (log)",
                   format_si(space.cap_min_f, "F", 0) + " to " +
                       format_si(space.cap_max_f, "F", 0)});
    knobs.add_row({"Tiling Size", "list(int)",
                   "factors of each output dimension (K, Y, N)"});
    knobs.print(std::cout);

    struct PaperRow {
        const char* name;
        const char* input;
        int layers;
        double params_k;
        double kflops;
    };
    // Paper values from Table IV.
    static constexpr PaperRow kPaper[] = {
        {"simple_conv", "(3,32,32)", 1, 1.2, 13.8},
        {"cifar10", "(3,32,32)", 7, 77.5, 9052.1},
        {"har", "(9,128,1)", 5, 9.4, 205.2},
        {"kws", "(250,1,1)", 5, 49.5, 49.5},
    };

    TextTable apps({"Application", "Input", "Layers", "Params(k)",
                    "paper Params(k)", "kMACs", "kFLOPs",
                    "paper kFLOPs"});
    apps.set_title("\nApplications (achieved vs paper)");
    for (const auto& row : kPaper) {
        const dnn::Model model = dnn::make_model(row.name);
        apps.add_row({
            model.name(),
            row.input,
            std::to_string(model.layer_count()),
            format_fixed(static_cast<double>(model.total_params()) / 1e3,
                         1),
            format_fixed(row.params_k, 1),
            format_fixed(static_cast<double>(model.total_macs()) / 1e3,
                         1),
            format_fixed(static_cast<double>(model.total_flops()) / 1e3,
                         1),
            format_fixed(row.kflops, 1),
        });
    }
    apps.print(std::cout);
    std::cout << "\nNote: the paper mixes FLOPs=MACs and FLOPs=2*MACs "
                 "conventions across rows; both columns are printed.\n";
    return 0;
}

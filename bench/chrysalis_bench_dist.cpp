/// \file
/// Distributed-campaign scaling and fault-tolerance bench.
///
/// Runs one deterministic campaign three ways and holds the outputs to
/// the subsystem's core promise — the merged CSV and journal are
/// byte-identical to a single-process run at any worker count:
///
///  1. Local reference: sequential `run_campaign` (threads=1,
///     deterministic journal). Its CSV/journal bytes are the oracle.
///  2. Scaling: the same campaign through `run_distributed_campaign`
///     against 1, 2 and 4 in-process `serve::Server` workers;
///     per-worker-count throughput and the byte-identity gate land in
///     the report.
///  3. --chaos: a hostile fleet — one worker that is *dead* before the
///     campaign starts (its port was released by a stopped server),
///     one behind a `serve::ChaosProxy` with a seed-deterministic
///     `fault::NetFaultInjector` (refused connects, torn writes,
///     resets), and one healthy worker that is killed mid-run. The
///     gates: the campaign still completes, at least one case was
///     reassigned, and the bytes still match the oracle.
///
/// Every distributed pass also exercises the fleet-telemetry path:
/// each in-process worker carries its own TraceSession/MetricsRegistry
/// (exactly what a real daemon exposes via `trace_export` /
/// `metrics_snapshot`), the coordinator pulls and merges them at
/// campaign end, and the merged Chrome trace / metrics rollup land
/// next to the report (BENCH_dist_fleet_trace.json and friends). The
/// per-stage remote-time split parsed from traced replies
/// (queue/decode/eval/encode) goes into the report headlines.
///
/// Usage:
///   chrysalis_bench_dist [--model zoo-name] [--cases n]
///                        [--population n] [--generations n] [--seed n]
///                        [--streams n] [--chaos] [--chaos-seed n]
///                        [--fleet-trace-out f] [--fleet-metrics-out f]
///
/// The run report is BENCH_dist_scaling.json.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.hpp"
#include "common/logging.hpp"
#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "core/campaign_spec.hpp"
#include "dist/coordinator.hpp"
#include "dnn/model_zoo.hpp"
#include "fault/fault_injector.hpp"
#include "fault/net_fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/chaos_proxy.hpp"
#include "serve/server.hpp"

namespace {

using namespace chrysalis;

struct DistBenchOptions {
    std::string model = "kws";
    int cases = 24;
    int population = 4;
    int generations = 2;
    std::uint64_t seed = 1;
    int streams = 1;
    bool chaos = false;
    std::uint64_t chaos_seed = 0;  ///< 0 = derive from --seed
    /// Merged fleet artifacts of the widest scaling pass; the chaos
    /// pass writes its own next to them ("..._chaos_..." spelling).
    std::string fleet_trace_out = "BENCH_dist_fleet_trace.json";
    std::string fleet_metrics_out = "BENCH_dist_fleet_metrics.json";
};

void
usage(const char* argv0)
{
    std::printf("usage: %s [--model zoo-name] [--cases n]\n"
                "          [--population n] [--generations n] [--seed n]\n"
                "          [--streams n] [--chaos] [--chaos-seed n]\n"
                "          [--fleet-trace-out f] [--fleet-metrics-out f]\n",
                argv0);
}

bool
parse_args(int argc, char** argv, DistBenchOptions& options)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
                has_inline = true;
            }
        }
        const auto next = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--model") {
            options.model = next();
        } else if (arg == "--cases") {
            options.cases = std::stoi(next());
        } else if (arg == "--population") {
            options.population = std::stoi(next());
        } else if (arg == "--generations") {
            options.generations = std::stoi(next());
        } else if (arg == "--seed") {
            options.seed = std::stoull(next());
        } else if (arg == "--streams") {
            options.streams = std::stoi(next());
        } else if (arg == "--chaos") {
            options.chaos = true;
        } else if (arg == "--chaos-seed") {
            options.chaos_seed = std::stoull(next());
        } else if (arg == "--fleet-trace-out") {
            options.fleet_trace_out = next();
        } else if (arg == "--fleet-metrics-out") {
            options.fleet_metrics_out = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    if (options.cases < 1 || options.population < 2 ||
        options.generations < 1 || options.streams < 1)
        fatal("--cases/--generations/--streams must be >= 1, "
              "--population >= 2");
    return true;
}

std::string
campaign_csv(const core::CampaignResult& result)
{
    std::ostringstream out;
    result.write_csv(out, core::CsvColumns::kDeterministic);
    return out.str();
}

std::string
read_file(const std::string& path)
{
    std::ifstream input(path, std::ios::binary);
    if (!input)
        fatal("cannot read '", path, "'");
    std::ostringstream out;
    out << input.rdbuf();
    return out.str();
}

/// Proxy-side chaos the coordinator's lanes must out-stubborn. Rates
/// are deliberately milder than the serve load bench: a run_case
/// request is long-lived, and every transient counts against a small
/// per-lane budget.
fault::NetFaultSpec
proxy_chaos_spec(std::uint64_t seed)
{
    fault::NetFaultSpec spec;
    spec.seed = seed;
    spec.connect_refusal_probability = 0.05;
    spec.torn_write_probability = 0.10;
    spec.torn_write_chunk_bytes = 9;
    spec.torn_write_stall_s = 0.0005;
    spec.read_delay_probability = 0.10;
    spec.read_delay_s = 0.001;
    spec.reset_probability = 0.01;
    return spec;
}

/// Telemetry every in-process worker carries, as a real daemon would:
/// its own registry + trace session wired into ServerOptions, so the
/// coordinator's `trace_export`/`metrics_snapshot` pulls see distinct
/// per-worker buffers even though all servers share this process.
struct WorkerTelemetryKit {
    std::unique_ptr<obs::MetricsRegistry> registry =
        std::make_unique<obs::MetricsRegistry>();
    std::unique_ptr<obs::TraceSession> trace =
        std::make_unique<obs::TraceSession>();
};

/// Report headlines for the remote per-stage time split parsed from
/// traced replies (seconds per completed case, averaged).
void
stage_headlines(const std::string& prefix,
                const dist::StageTotals& totals)
{
    const double samples =
        totals.samples > 0 ? static_cast<double>(totals.samples) : 1.0;
    bench::headline(prefix + "stage_samples",
                    static_cast<double>(totals.samples));
    bench::headline(prefix + "stage_queue_wait_avg_s",
                    totals.queue_wait_s / samples);
    bench::headline(prefix + "stage_decode_avg_s",
                    totals.decode_s / samples);
    bench::headline(prefix + "stage_eval_avg_s",
                    totals.eval_s / samples);
    bench::headline(prefix + "stage_encode_avg_s",
                    totals.encode_s / samples);
}

}  // namespace

int
main(int argc, char** argv)
{
    DistBenchOptions options;
    if (!parse_args(argc, argv, options))
        return 2;

    bench::begin_report(
        "dist_scaling",
        "distributed campaign scaling and byte-identity gate", true,
        "dist_scaling");
    bench::print_banner(
        "dist_scaling",
        "distributed campaign scaling and byte-identity gate");

    core::CampaignSpec spec;
    spec.model = options.model;
    spec.cases = options.cases;
    spec.population = options.population;
    spec.generations = options.generations;
    spec.seed = options.seed;
    spec.validate();

    const std::string ref_journal = "bench_dist_ref.jsonl";
    const std::string dist_journal = "bench_dist_run.jsonl";

    // Oracle: sequential local run. threads=1 keeps the journal in
    // case order, which is exactly the canonical order the coordinator
    // rewrites to.
    std::string reference_csv;
    std::string reference_journal_bytes;
    double reference_wall_s = 0.0;
    {
        const dnn::Model model = dnn::make_model(spec.model);
        const std::vector<core::CampaignCase> cases =
            core::build_campaign_cases(spec, model);
        std::unique_ptr<fault::FaultInjector> faults;
        const search::ExplorerOptions base =
            core::build_explorer_options(spec, faults);
        core::CampaignOptions campaign_options;
        campaign_options.threads = 1;
        campaign_options.max_attempts = spec.max_attempts;
        campaign_options.journal_path = ref_journal;
        campaign_options.deterministic_journal = true;
        std::remove(ref_journal.c_str());
        obs::SpanTimer timer("bench/dist_reference");
        const core::CampaignResult reference =
            core::run_campaign(cases, base, campaign_options);
        reference_wall_s = timer.elapsed_s();
        reference_csv = campaign_csv(reference);
        reference_journal_bytes = read_file(ref_journal);
        std::remove(ref_journal.c_str());
    }
    std::printf("reference: %d cases in %.3f s (sequential)\n",
                options.cases, reference_wall_s);
    bench::headline("cases", static_cast<double>(options.cases));
    bench::headline("reference_wall_s", reference_wall_s);

    // Scaling pass: the same campaign against 1, 2 and 4 local workers.
    static const int kWorkerCounts[] = {1, 2, 4};
    bool all_identical = true;
    double wall_1w = 0.0;
    double wall_4w = 0.0;
    const int widest_count =
        kWorkerCounts[sizeof kWorkerCounts / sizeof kWorkerCounts[0] -
                      1];
    dist::StageTotals widest_totals;
    std::uint64_t fleet_spans = 0;
    std::uint64_t fleet_clamped = 0;
    std::size_t fleet_collected = 0;
    for (const int worker_count : kWorkerCounts) {
        std::vector<std::unique_ptr<serve::Server>> servers;
        std::vector<WorkerTelemetryKit> kits(
            static_cast<std::size_t>(worker_count));
        dist::DistCampaignOptions dist_options;
        for (int w = 0; w < worker_count; ++w) {
            serve::ServerOptions server_options;
            server_options.host = "127.0.0.1";
            server_options.threads = options.streams;
            server_options.worker_id =
                "bench-w" + std::to_string(w);
            server_options.metrics_source =
                kits[static_cast<std::size_t>(w)].registry.get();
            server_options.trace_source =
                kits[static_cast<std::size_t>(w)].trace.get();
            auto server =
                std::make_unique<serve::Server>(server_options);
            server->start();
            dist_options.workers.push_back(
                {"127.0.0.1", server->port()});
            servers.push_back(std::move(server));
        }
        dist_options.streams_per_worker = options.streams;
        dist_options.journal_path = dist_journal;
        if (worker_count == widest_count) {
            // The widest pass exercises the full merge and leaves the
            // artifacts behind for inspection/CI validation.
            dist_options.fleet_trace_path = options.fleet_trace_out;
            dist_options.fleet_metrics_path =
                options.fleet_metrics_out;
        }
        std::remove(dist_journal.c_str());

        obs::SpanTimer timer("bench/dist_scaling");
        const dist::DistCampaignResult result =
            dist::run_distributed_campaign(spec, dist_options);
        const double wall_s = timer.elapsed_s();
        for (auto& server : servers)
            server->stop();
        if (worker_count == widest_count) {
            widest_totals = result.stage_totals;
            fleet_spans = result.fleet_spans;
            fleet_clamped = result.fleet_clamped_spans;
            fleet_collected = result.fleet_workers_collected;
        }

        const bool csv_identical =
            campaign_csv(result.campaign) == reference_csv;
        const bool journal_identical =
            read_file(dist_journal) == reference_journal_bytes;
        std::remove(dist_journal.c_str());
        all_identical =
            all_identical && csv_identical && journal_identical;
        const double throughput =
            wall_s > 0.0 ? static_cast<double>(options.cases) / wall_s
                         : 0.0;
        if (worker_count == 1)
            wall_1w = wall_s;
        if (worker_count == 4)
            wall_4w = wall_s;

        std::printf("%dw: %.3f s (%.2f cases/s), dispatched %llu, "
                    "csv %s, journal %s\n",
                    worker_count, wall_s, throughput,
                    static_cast<unsigned long long>(result.dispatched),
                    csv_identical ? "identical" : "MISMATCH",
                    journal_identical ? "identical" : "MISMATCH");
        const std::string suffix = std::to_string(worker_count) + "w";
        bench::headline("wall_s_" + suffix, wall_s);
        bench::headline("throughput_" + suffix, throughput);
        bench::headline("csv_identical_" + suffix,
                        csv_identical ? 1.0 : 0.0);
        bench::headline("journal_identical_" + suffix,
                        journal_identical ? 1.0 : 0.0);
    }
    const double speedup =
        wall_4w > 0.0 ? wall_1w / wall_4w : 0.0;
    std::printf("speedup 1w -> 4w: %.2fx\n", speedup);
    bench::headline("speedup_4w", speedup);
    std::printf("fleet (4w): %zu workers pulled, %llu spans merged "
                "(%llu clamped) -> %s\n",
                fleet_collected,
                static_cast<unsigned long long>(fleet_spans),
                static_cast<unsigned long long>(fleet_clamped),
                options.fleet_trace_out.c_str());
    bench::headline("fleet_workers_collected",
                    static_cast<double>(fleet_collected));
    bench::headline("fleet_spans", static_cast<double>(fleet_spans));
    bench::headline("fleet_clamped_spans",
                    static_cast<double>(fleet_clamped));
    stage_headlines("", widest_totals);

    // Chaos pass: dead worker + chaos-proxied worker + a healthy worker
    // killed mid-run. The fleet must still produce the oracle's bytes,
    // with at least one reassignment along the way.
    bool chaos_ok = true;
    std::uint64_t chaos_reassigned = 0;
    if (options.chaos) {
        const std::uint64_t chaos_seed = options.chaos_seed != 0
                                             ? options.chaos_seed
                                             : options.seed + 7791;
        fault::NetFaultInjector proxy_chaos(proxy_chaos_spec(chaos_seed));
        std::printf("chaos (proxy): %s\n",
                    proxy_chaos.describe().c_str());

        // A worker that is dead on arrival: start a server only to
        // learn a just-released port, then aim a lane at it.
        int dead_port = 0;
        {
            serve::ServerOptions dead_options;
            dead_options.host = "127.0.0.1";
            dead_options.threads = 1;
            serve::Server dead(dead_options);
            dead.start();
            dead_port = dead.port();
            dead.stop();
        }

        serve::ServerOptions server_options;
        server_options.host = "127.0.0.1";
        server_options.threads = options.streams;
        WorkerTelemetryKit victim_kit;
        server_options.worker_id = "chaos-victim";
        server_options.metrics_source = victim_kit.registry.get();
        server_options.trace_source = victim_kit.trace.get();
        serve::Server victim(server_options);  // killed mid-run
        victim.start();
        WorkerTelemetryKit survivor_kit;
        server_options.worker_id = "chaos-survivor";
        server_options.metrics_source = survivor_kit.registry.get();
        server_options.trace_source = survivor_kit.trace.get();
        serve::Server survivor(server_options);
        survivor.start();
        serve::ChaosProxyOptions proxy_options;
        proxy_options.host = "127.0.0.1";
        proxy_options.upstream_host = "127.0.0.1";
        proxy_options.upstream_port = survivor.port();
        proxy_options.chaos = &proxy_chaos;
        serve::ChaosProxy proxy(proxy_options);
        proxy.start();

        dist::DistCampaignOptions dist_options;
        dist_options.workers = {{"127.0.0.1", victim.port()},
                                {"127.0.0.1", proxy.port()},
                                {"127.0.0.1", dead_port}};
        dist_options.streams_per_worker = options.streams;
        // A little more patience per lane: the proxy path eats
        // transients by design and must not die with the victim.
        dist_options.max_worker_failures = 4;
        dist_options.journal_path = dist_journal;
        // The chaos fleet writes its own merged artifacts: the gate is
        // that the merge survives a dead worker and a killed worker —
        // best-effort telemetry, never a campaign failure.
        dist_options.fleet_trace_path =
            "BENCH_dist_chaos_fleet_trace.json";
        dist_options.fleet_metrics_path =
            "BENCH_dist_chaos_fleet_metrics.json";
        std::remove(dist_journal.c_str());

        std::thread killer([&victim] {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(1.0));
            victim.stop();
        });
        obs::SpanTimer timer("bench/dist_chaos");
        const dist::DistCampaignResult result =
            dist::run_distributed_campaign(spec, dist_options);
        const double wall_s = timer.elapsed_s();
        killer.join();
        proxy.stop();
        survivor.stop();

        const bool csv_identical =
            campaign_csv(result.campaign) == reference_csv;
        const bool journal_identical =
            read_file(dist_journal) == reference_journal_bytes;
        std::remove(dist_journal.c_str());
        chaos_reassigned = result.reassigned;
        std::size_t dead_workers = 0;
        for (const dist::WorkerReport& report : result.workers) {
            if (report.dead)
                ++dead_workers;
        }
        chaos_ok = csv_identical && journal_identical &&
                   chaos_reassigned >= 1;

        std::printf("chaos: %.3f s, reassigned %llu, dead workers %zu, "
                    "csv %s, journal %s\n",
                    wall_s,
                    static_cast<unsigned long long>(chaos_reassigned),
                    dead_workers,
                    csv_identical ? "identical" : "MISMATCH",
                    journal_identical ? "identical" : "MISMATCH");
        bench::headline("chaos_wall_s", wall_s);
        bench::headline("chaos_reassigned",
                        static_cast<double>(chaos_reassigned));
        bench::headline("chaos_workers_dead",
                        static_cast<double>(dead_workers));
        bench::headline("chaos_csv_identical",
                        csv_identical ? 1.0 : 0.0);
        bench::headline("chaos_journal_identical",
                        journal_identical ? 1.0 : 0.0);
        bench::headline("chaos_fleet_workers_collected",
                        static_cast<double>(
                            result.fleet_workers_collected));
        bench::headline("chaos_fleet_spans",
                        static_cast<double>(result.fleet_spans));
        bench::headline("chaos_fleet_clamped_spans",
                        static_cast<double>(result.fleet_clamped_spans));
        stage_headlines("chaos_", result.stage_totals);
    }
    bench::headline("chaos_enabled", options.chaos ? 1.0 : 0.0);

    const bool pass = all_identical && chaos_ok;
    std::printf("%s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}

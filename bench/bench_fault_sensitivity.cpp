/// \file
/// Fault sensitivity study: how gracefully does a CHRYSALIS-generated
/// AuT degrade under deployment-time faults, and how much of the loss can
/// a fault-aware re-search recover? For each fault regime (harvester
/// dropout storms, capacitor/PMIC ageing, NVM checkpoint corruption and
/// their combination) the clean optimum is replayed on the fault-injected
/// step simulator, then the search is re-run with the same fault spec
/// folded into its environments. Fault injection is seed-deterministic,
/// so every row reproduces exactly.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"
#include "fault/fault_injector.hpp"

namespace {

using namespace chrysalis;

struct Regime {
    const char* label;
    fault::FaultSpec spec;
};

std::vector<Regime>
regimes()
{
    std::vector<Regime> list;
    list.push_back({"clean", fault::FaultSpec{}});

    // Sub-second windows so storms land within a single inference
    // (latencies here are hundreds of milliseconds).
    fault::FaultSpec storm;
    storm.seed = 17;
    storm.dropout_window_s = 1.0;
    storm.dropout_probability = 0.5;
    storm.dropout_duration_s = 0.4;
    list.push_back({"dropout storm", storm});

    fault::FaultSpec aged;
    aged.mission_age_years = 8.0;
    aged.cap_fade_per_year = 0.02;
    aged.leakage_growth_per_year = 0.10;
    aged.v_on_drift_sigma_v = 0.05;
    aged.v_off_drift_sigma_v = 0.05;
    list.push_back({"8y ageing", aged});

    fault::FaultSpec corrupt;
    corrupt.seed = 23;
    corrupt.ckpt_corruption_rate = 0.2;
    list.push_back({"ckpt corruption 20%", corrupt});

    fault::FaultSpec combined = storm;
    combined.mission_age_years = aged.mission_age_years;
    combined.cap_fade_per_year = aged.cap_fade_per_year;
    combined.leakage_growth_per_year = aged.leakage_growth_per_year;
    combined.ckpt_corruption_rate = corrupt.ckpt_corruption_rate;
    list.push_back({"storm + age + corrupt", combined});
    return list;
}

core::Chrysalis
make_tool(const dnn::Model& model, const bench::Budget& budget,
          const fault::FaultInjector* faults)
{
    search::ExplorerOptions options = bench::make_options(budget, 4242);
    options.faults = faults;
    return core::Chrysalis(core::ChrysalisInputs{
        model, search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        options});
}

}  // namespace

int
main()
{
    bench::print_banner(
        "Fault sensitivity",
        "Degradation of the clean optimum under injected faults vs. a "
        "fault-aware re-search (KWS workload, lat*sp objective).");

    const bench::Budget budget = bench::Budget::from_env();
    const dnn::Model model = dnn::make_kws_mlp();

    const core::Chrysalis clean_tool = make_tool(model, budget, nullptr);
    const core::AuTSolution clean = clean_tool.generate();
    if (!clean.feasible) {
        std::cout << "clean search infeasible; aborting: "
                  << clean.failure.message() << "\n";
        return 1;
    }
    // Replay in the *darker* environment, where the design duty-cycles:
    // brown-outs give corruption a restore stream to attack, and charge
    // phases give dropouts something to stretch.
    const double k_eh = clean_tool.inputs().options.k_eh_envs.back();

    TextTable table({"Regime", "sim lat (replayed)", "lat drift",
                     "re-search lat*sp", "SP (cm^2)", "C"});
    double clean_replay_latency = 0.0;
    for (const auto& regime : regimes()) {
        const fault::FaultInjector faults(regime.spec);
        const bool active = regime.spec.any_active();

        // Replay the *clean* optimum on the fault-injected simulator.
        sim::SimConfig sim_config;
        sim_config.faults = active ? &faults : nullptr;
        const core::ValidationResult replay =
            clean_tool.validate(clean, k_eh, sim_config);
        if (!active)
            clean_replay_latency = replay.mean_sim_latency_s;
        if (replay.sim.completed && clean_replay_latency > 0.0) {
            if (active)
                bench::headline(std::string("lat_drift/") + regime.label,
                                (replay.mean_sim_latency_s -
                                 clean_replay_latency) /
                                    clean_replay_latency);
            else
                bench::headline("clean_sim_latency_s",
                                replay.mean_sim_latency_s);
        }
        const std::string drift =
            clean_replay_latency > 0.0
                ? format_percent((replay.mean_sim_latency_s -
                                  clean_replay_latency) /
                                 clean_replay_latency)
                : "-";

        // Fault-aware re-search: the same spec derates the search's own
        // environments, so the optimizer can trade panel/capacitor sizing
        // against the expected fault burden.
        const core::Chrysalis faulted_tool =
            make_tool(model, budget, active ? &faults : nullptr);
        const core::AuTSolution resized = faulted_tool.generate();

        if (!replay.sim.completed) {
            table.add_row({regime.label,
                           "failed: " +
                               std::string(fault::to_string(
                                   replay.sim.failure.code)),
                           "-",
                           resized.feasible
                               ? format_fixed(resized.lat_sp, 2)
                               : "infeasible",
                           "-", "-"});
            continue;
        }
        table.add_row(
            {regime.label, format_si(replay.mean_sim_latency_s, "s", 2),
             drift,
             resized.feasible
                 ? format_fixed(resized.lat_sp, 2)
                 : "infeasible: " +
                       std::string(fault::to_string(resized.failure.code)),
             resized.feasible ? format_fixed(resized.hardware.solar_cm2, 1)
                              : "-",
             resized.feasible
                 ? format_si(resized.hardware.capacitance_f, "F", 0)
                 : "-"});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: replayed latency of the clean design "
                 "grows with fault severity (dropouts stretch charging, "
                 "ageing leaks away storage), while the fault-aware "
                 "re-search sizes the harvester and capacitor for the "
                 "degraded environment. Checkpoint corruption alone "
                 "often shows no drift: it only bites designs that "
                 "brown out mid-inference, and the optimizer sizes the "
                 "capacitor to avoid exactly that.\n";
    return 0;
}

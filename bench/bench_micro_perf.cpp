/// \file
/// Micro-benchmarks (google-benchmark) for the framework's hot paths:
/// per-layer cost analysis, whole-model analysis, the analytic evaluator,
/// the SW-level mapping search, simulator stepping, and a full GA
/// generation. These quantify the analytic-vs-step-simulation ablation
/// called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include "common/bench_util.hpp"
#include "core/chrysalis.hpp"
#include "dnn/model_zoo.hpp"
#include "hw/accelerator.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"
#include "sim/analytic_evaluator.hpp"
#include "sim/intermittent_simulator.hpp"

namespace {

using namespace chrysalis;

void
BM_AnalyzeLayer(benchmark::State& state)
{
    const auto layer = dnn::make_conv2d("c", 64, 128, 28, 28, 3, 1, 1);
    const hw::Msp430Lea mcu;
    const auto params = mcu.cost_params();
    dataflow::LayerMapping mapping;
    mapping.tiles_k = 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dataflow::analyze_layer(layer, mapping, params));
    }
}
BENCHMARK(BM_AnalyzeLayer);

void
BM_AnalyzeModelVgg16(benchmark::State& state)
{
    const auto model = dnn::make_vgg16();
    hw::ReconfigurableAccelerator::Config config;
    const hw::ReconfigurableAccelerator accel(config);
    const auto params = accel.cost_params();
    for (auto _ : state) {
        benchmark::DoNotOptimize(dataflow::analyze_model_untiled(
            model, dataflow::Dataflow::kRowStationary, params));
    }
}
BENCHMARK(BM_AnalyzeModelVgg16);

void
BM_AnalyticEvaluate(benchmark::State& state)
{
    const auto model = dnn::make_cifar10_cnn();
    const hw::Msp430Lea mcu;
    const auto cost = dataflow::analyze_model_untiled(
        model, dataflow::Dataflow::kWeightStationary, mcu.cost_params());
    sim::EnergyEnv env;
    env.p_eh_w = 16e-3;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::analytic_evaluate(cost, env));
}
BENCHMARK(BM_AnalyticEvaluate);

void
BM_StepSimulatorKws(benchmark::State& state)
{
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;
    std::vector<dataflow::LayerMapping> mappings(model.layer_count());
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        mappings[i].tiles_k = 4;
        mappings[i].clamp_to(model.layer(i));
    }
    const auto cost =
        dataflow::analyze_model(model, mappings, mcu.cost_params());
    sim::SimConfig config;
    config.step_s = 0.01;
    for (auto _ : state) {
        energy::Capacitor::Config cap;
        cap.capacitance_f = 470e-6;
        cap.initial_voltage_v = 3.5;
        energy::EnergyController controller(
            std::make_unique<energy::SolarPanel>(
                8.0, std::make_shared<energy::ConstantSolarEnvironment>(
                         2e-3, "bm")),
            energy::Capacitor(cap),
            energy::PowerManagementIc{
                energy::PowerManagementIc::Config{}});
        benchmark::DoNotOptimize(
            sim::simulate_inference(cost, controller, config));
    }
}
BENCHMARK(BM_StepSimulatorKws);

void
BM_MappingSearchCifar(benchmark::State& state)
{
    const auto model = dnn::make_cifar10_cnn();
    const hw::Msp430Lea mcu;
    sim::EnergyEnv env;
    env.p_eh_w = 16e-3;
    search::MappingSearchOptions options;
    options.max_candidates_per_dim =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            search::search_mappings(model, mcu, {env}, options));
    }
}
BENCHMARK(BM_MappingSearchCifar)->Arg(4)->Arg(6)->Arg(8);

void
BM_ExplorerGeneration(benchmark::State& state)
{
    // One full outer-GA evaluation batch on the quickstart scenario.
    core::ChrysalisInputs inputs{
        dnn::make_simple_conv(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        search::ExplorerOptions{},
    };
    inputs.options.outer.population = 8;
    inputs.options.outer.generations = 2;
    inputs.options.inner.max_candidates_per_dim = 4;
    const core::Chrysalis tool(std::move(inputs));
    for (auto _ : state)
        benchmark::DoNotOptimize(tool.generate());
}
BENCHMARK(BM_ExplorerGeneration);

void
BM_EnergyControllerStep(benchmark::State& state)
{
    energy::Capacitor::Config cap;
    cap.capacitance_f = 470e-6;
    cap.initial_voltage_v = 3.0;
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            8.0, std::make_shared<energy::ConstantSolarEnvironment>(
                     2e-3, "bm")),
        energy::Capacitor(cap),
        energy::PowerManagementIc{energy::PowerManagementIc::Config{}});
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(controller.step(t, 0.01, 3e-3));
        t += 0.01;
    }
}
BENCHMARK(BM_EnergyControllerStep);

}  // namespace

int
main(int argc, char** argv)
{
    // attach_metrics=false: these loops measure the no-sink fast path of
    // the instrumented hot code; attaching the registry would fold the
    // publish cost into every timing.
    chrysalis::bench::begin_report(
        "MicroPerf", "google-benchmark micro-benchmarks of the hot paths",
        /*attach_metrics=*/false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/// \file
/// Figure 6: searching the existing MSP430-based AuT design space for the
/// four Table-IV applications. For each application the bench prints the
/// (solar-panel size, latency) Pareto front over the explored designs and
/// the lat*sp improvement of the best point versus the iNAS-style
/// original configuration (P_in = 6 mW, C = 1 mF).
///
/// Paper anchor: "Taking CIFAR as an example ... the final result of this
/// search shows a 50.8% improvement over the original system."

#include <iostream>

#include "common/bench_util.hpp"
#include "common/math_utils.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Figure 6",
                        "Pareto search over the existing MSP430 AuT "
                        "design space; improvement vs the iNAS original "
                        "configuration (lat*sp objective).");

    const bench::Budget budget = bench::Budget::from_env();
    const search::Objective objective{search::ObjectiveKind::kLatSp, 0.0,
                                      0.0};

    std::vector<double> improvements;
    for (const auto& name : dnn::table4_workloads()) {
        const dnn::Model model = dnn::make_model(name);
        core::ChrysalisInputs inputs{
            model, search::DesignSpace::existing_aut(), objective,
            bench::make_options(budget, 600 + name.size())};
        const core::Chrysalis tool(std::move(inputs));
        const core::AuTSolution best = tool.generate();
        const core::AuTSolution reference =
            tool.evaluate_candidate(bench::inas_reference_candidate());

        std::cout << "\n--- " << name << " ---\n";
        // The figure's tradeoff curve proper: a dedicated NSGA-II
        // multi-objective search over (panel size, latency).
        const search::BiLevelExplorer explorer(
            model, search::DesignSpace::existing_aut(),
            search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
            bench::make_options(budget, 600 + name.size()));
        const auto nsga_front = explorer.explore_pareto();
        TextTable front({"SP (cm^2)", "Latency (s)", "lat*sp (cm^2*s)",
                         "C", "N_tile"});
        front.set_title("Pareto front (NSGA-II):");
        for (const auto& design : nsga_front) {
            front.add_row(
                {format_fixed(design.candidate.solar_cm2, 1),
                 format_fixed(design.mean_latency_s, 3),
                 format_fixed(design.candidate.solar_cm2 *
                                  design.mean_latency_s,
                              2),
                 format_si(design.candidate.capacitance_f, "F", 0),
                 std::to_string(design.mapping.cost.n_tile)});
        }
        front.print(std::cout);
        std::cout << "(single-objective search additionally evaluated "
                  << best.evaluations << " points; its by-product front "
                  << "has " << best.pareto.size() << " designs)\n";

        std::cout << "best design: " << best.hardware.describe()
                  << "\n  lat*sp = " << format_fixed(best.lat_sp, 2)
                  << " cm^2*s";
        if (reference.feasible) {
            const double gain =
                relative_improvement(reference.lat_sp, best.lat_sp);
            improvements.push_back(gain);
            std::cout << "  (iNAS original: "
                      << format_fixed(reference.lat_sp, 2)
                      << " cm^2*s -> improvement "
                      << format_percent(gain) << ")";
        } else {
            std::cout << "  (iNAS original configuration infeasible "
                         "here)";
        }
        std::cout << "\n";
    }

    if (!improvements.empty()) {
        bench::headline("mean_improvement",
                        summarize(improvements).mean);
        bench::headline("workloads",
                        static_cast<double>(improvements.size()));
        std::cout << "\nAverage lat*sp improvement over the iNAS original"
                     " configuration: "
                  << format_percent(summarize(improvements).mean)
                  << " (paper reports 50.8% for CIFAR-10).\n";
    }
    return 0;
}

/// \file
/// Table I: capability matrix of existing AuT design methodologies versus
/// CHRYSALIS. Qualitative, reproduced from the paper's survey with each
/// row's capabilities derived from what the corresponding class of system
/// can configure in this framework.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/table.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner(
        "Table I",
        "Investigation into the existing AuT platforms: which design "
        "dimensions each methodology covers.");

    TextTable table({"AuT Design Methodology", "Energy Subsys.",
                     "Inference Subsys.", "Scalability",
                     "Sustainability"});
    table.add_row({"WISPCam, Botoks (EH-IoT)", "yes", "no", "no", "no"});
    table.add_row({"SONIC, RAD", "no", "yes", "no", "no"});
    table.add_row({"HAWAII, Stateful", "no", "yes", "no", "no"});
    table.add_row({"Protean", "yes", "no", "no", "yes"});
    table.add_row({"CHRYSALIS (this repo)", "yes", "yes", "yes", "yes"});
    table.print(std::cout);

    std::cout << "\nIn this reproduction the rows map to feature flags of "
                 "the framework:\n"
                 "  - Energy subsystem design  -> DesignSpace::search_solar"
                 " / search_capacitor\n"
                 "  - Inference subsystem design -> search_pe / "
                 "search_cache / search_arch\n"
                 "  - Scalability  -> ReconfigurableAccelerator (1..168 "
                 "PEs, 128B..2KiB caches)\n"
                 "  - Sustainability -> EnergyController + intermittent "
                 "simulator (Eq. 3 energy cycles)\n";
    return 0;
}

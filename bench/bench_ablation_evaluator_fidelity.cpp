/// \file
/// Ablation: analytic evaluator vs step-based simulator. The bi-level
/// search evaluates thousands of candidates with the closed-form model
/// and validates winners with the step simulator; this bench quantifies
/// both sides of that tradeoff — per-configuration latency error and the
/// evaluation-speed ratio.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/math_utils.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"
#include "energy/energy_controller.hpp"
#include "hw/msp430_lea.hpp"
#include "obs/trace.hpp"
#include "search/mapping_search.hpp"
#include "sim/analytic_evaluator.hpp"
#include "sim/intermittent_simulator.hpp"

namespace {

using namespace chrysalis;

}  // namespace

int
main()
{
    bench::print_banner("Ablation: evaluator fidelity",
                        "Closed-form analytic estimate vs step-based "
                        "simulation across (workload, panel, capacitor) "
                        "configurations.");

    const hw::Msp430Lea mcu;
    constexpr double kKeh = 2e-3;
    struct Case {
        const char* model;
        double panel_cm2;
        double cap_f;
    };
    static constexpr Case kCases[] = {
        {"simple_conv", 2.0, 47e-6},  {"simple_conv", 8.0, 470e-6},
        {"kws", 3.0, 100e-6},         {"kws", 15.0, 1e-3},
        {"har", 5.0, 220e-6},         {"har", 10.0, 47e-6},
        {"fc", 4.0, 100e-6},          {"cnn_s", 8.0, 470e-6},
        {"cifar10", 8.0, 470e-6},     {"cifar10", 20.0, 100e-6},
    };

    TextTable table({"Workload", "SP", "C", "Analytic lat", "Sim lat",
                     "Error", "Speed ratio"});
    std::vector<double> errors;
    double total_ratio = 0.0;
    int ratio_count = 0;

    for (const auto& test_case : kCases) {
        const dnn::Model model = dnn::make_model(test_case.model);
        sim::EnergyEnv env;
        env.p_eh_w = test_case.panel_cm2 * kKeh;
        env.capacitor.capacitance_f = test_case.cap_f;
        search::MappingSearchOptions options;
        const auto mapping =
            search_mappings(model, mcu, {env}, options);

        // Analytic timing: average over many repetitions.
        constexpr int kAnalyticReps = 2000;
        sim::AnalyticResult analytic;
        double analytic_time = 0.0;
        {
            const obs::SpanTimer timer("bench/analytic_eval");
            for (int i = 0; i < kAnalyticReps; ++i)
                analytic = sim::analytic_evaluate(mapping.cost, env);
            analytic_time = timer.elapsed_s() / kAnalyticReps;
        }

        if (!analytic.feasible) {
            table.add_row({test_case.model,
                           format_fixed(test_case.panel_cm2, 0),
                           format_si(test_case.cap_f, "F", 0),
                           "infeasible", "-", "-", "-"});
            continue;
        }

        // Step simulation (duty-cycled, mean of 4 runs).
        energy::Capacitor::Config cap_config = env.capacitor;
        cap_config.initial_voltage_v = env.pmic.v_off;
        energy::EnergyController controller(
            std::make_unique<energy::SolarPanel>(
                test_case.panel_cm2,
                std::make_shared<energy::ConstantSolarEnvironment>(
                    kKeh, "fidelity")),
            energy::Capacitor(cap_config),
            energy::PowerManagementIc(env.pmic));
        sim::SimConfig sim_config;
        sim_config.step_s = 0.02;
        sim_config.drain_between_runs = true;
        const obs::SpanTimer sim_timer("bench/step_sim");
        const auto runs = sim::simulate_repeated(mapping.cost, controller,
                                                 sim_config, 4);
        const double sim_time = sim_timer.elapsed_s() / 4.0;

        double sum = 0.0;
        int completed = 0;
        for (const auto& run : runs) {
            if (run.completed) {
                sum += run.latency_s;
                ++completed;
            }
        }
        if (completed == 0) {
            table.add_row({test_case.model,
                           format_fixed(test_case.panel_cm2, 0),
                           format_si(test_case.cap_f, "F", 0),
                           format_si(analytic.latency_s, "s"),
                           "did not complete", "-", "-"});
            continue;
        }
        const double sim_latency = sum / completed;
        const double error =
            std::abs(sim_latency - analytic.latency_s) /
            analytic.latency_s;
        errors.push_back(error);
        const double ratio = sim_time / analytic_time;
        total_ratio += ratio;
        ++ratio_count;
        table.add_row({test_case.model,
                       format_fixed(test_case.panel_cm2, 0),
                       format_si(test_case.cap_f, "F", 0),
                       format_si(analytic.latency_s, "s"),
                       format_si(sim_latency, "s"),
                       format_percent(error),
                       format_fixed(ratio, 0) + "x"});
    }
    table.print(std::cout);

    if (!errors.empty()) {
        std::cout << "\nMean latency error: "
                  << format_percent(summarize(errors).mean) << " (max "
                  << format_percent(summarize(errors).max) << ")\n";
    }
    if (ratio_count > 0) {
        std::cout << "Mean evaluation-speed advantage of the analytic "
                     "form: "
                  << format_fixed(total_ratio / ratio_count, 0)
                  << "x\n";
    }
    std::cout << "This is why the search loop uses the analytic model "
                 "and reserves step simulation for validation.\n";
    return 0;
}

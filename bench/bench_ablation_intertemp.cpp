/// \file
/// Ablation: the InterTempMap directive. Compares three intermittent
/// tiling policies on the MSP430 platform across harvest levels:
///   - untiled: one tile per layer (classic run-to-completion);
///   - max-tiled: the finest enumerated tiling (ultra-conservative
///     HAWAII-style per-chunk checkpointing);
///   - searched: the SW-level search's choice (the paper's approach).
///
/// Expected shape: untiled fails Eq. 8 under weak harvest (a whole layer
/// cannot fit one energy cycle); max tiling always runs but pays heavy
/// checkpoint overhead; the searched tiling adapts N_tile to the
/// environment (§III-B3) and dominates both.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dataflow/tiling.hpp"
#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"
#include "sim/analytic_evaluator.hpp"

namespace {

using namespace chrysalis;

/// Evaluates a fixed tiling policy (chunk counts chosen per layer by
/// \p pick) against the environment.
template <typename PickFn>
std::pair<dataflow::ModelCost, sim::AnalyticResult>
evaluate_policy(const dnn::Model& model, const hw::Msp430Lea& mcu,
                const sim::EnergyEnv& env, PickFn&& pick)
{
    std::vector<dataflow::LayerMapping> mappings;
    mappings.reserve(model.layer_count());
    for (std::size_t i = 0; i < model.layer_count(); ++i)
        mappings.push_back(pick(model.layer(i)));
    const auto cost =
        dataflow::analyze_model(model, mappings, mcu.cost_params());
    return {cost, sim::analytic_evaluate(cost, env)};
}

}  // namespace

int
main()
{
    bench::print_banner("Ablation: InterTempMap tiling",
                        "Untiled vs max-tiled vs searched intermittent "
                        "tiling across harvest levels (MSP430, C = "
                        "100 uF).");

    const hw::Msp430Lea mcu;
    const double panels_cm2[] = {1.0, 3.0, 8.0, 20.0};
    const char* workloads[] = {"cifar10", "har"};

    TextTable table({"Workload", "SP (cm^2)", "Policy", "N_tile",
                     "Ckpt E", "Latency"});
    int searched_wins = 0, comparisons = 0;
    for (const char* name : workloads) {
        const dnn::Model model = dnn::make_model(name);
        for (double panel : panels_cm2) {
            sim::EnergyEnv env;
            env.p_eh_w = panel * 0.5e-3;  // darker environment
            env.capacitor.capacitance_f = 100e-6;

            // Untiled.
            auto [untiled_cost, untiled] = evaluate_policy(
                model, mcu, env, [](const dnn::Layer&) {
                    return dataflow::LayerMapping{};
                });
            // Max tiling from the enumeration bounds.
            auto [max_cost, maxed] = evaluate_policy(
                model, mcu, env, [](const dnn::Layer& layer) {
                    dataflow::LayerMapping mapping;
                    mapping.tiles_k = layer.dims.k;
                    mapping.tiles_y = layer.dims.y;
                    mapping.clamp_to(layer);
                    return mapping;
                });
            // Searched.
            search::MappingSearchOptions options;
            const auto searched =
                search_mappings(model, mcu, {env}, options);
            const auto searched_eval =
                sim::analytic_evaluate(searched.cost, env);

            const auto row = [&](const char* policy,
                                 const dataflow::ModelCost& cost,
                                 const sim::AnalyticResult& eval) {
                table.add_row(
                    {name, format_fixed(panel, 0), policy,
                     std::to_string(cost.n_tile),
                     format_si(cost.e_ckpt_j, "J", 1),
                     eval.feasible ? format_si(eval.latency_s, "s")
                                   : ("infeasible: " +
                                      eval.failure.message())});
            };
            row("untiled", untiled_cost, untiled);
            row("max-tiled", max_cost, maxed);
            row("searched", searched.cost, searched_eval);

            if (searched_eval.feasible) {
                ++comparisons;
                const bool beats_untiled =
                    !untiled.feasible ||
                    searched_eval.latency_s <=
                        untiled.latency_s * (1.0 + 1e-9);
                const bool beats_max =
                    !maxed.feasible ||
                    searched_eval.latency_s <=
                        maxed.latency_s * (1.0 + 1e-9);
                searched_wins += (beats_untiled && beats_max) ? 1 : 0;
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nSearched tiling dominates both fixed policies in "
              << searched_wins << "/" << comparisons
              << " feasible configurations.\n"
              << "Expected shape: untiled infeasible at small panels "
                 "(Eq. 8); max tiling always feasible but checkpoint-"
                 "heavy; searched N_tile shrinks as harvest grows "
                 "(SIII-B3).\n";
    return 0;
}

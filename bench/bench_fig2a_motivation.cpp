/// \file
/// Figure 2(a): comparison between the current intermittent inference
/// platform (MSP430FR5994+LEA running a MNIST CNN, HAWAII-style) and a
/// popular AI accelerator (Eyeriss V1 running AlexNet), both under
/// continuous (non-intermittent) power.
///
/// Paper row:      MSP430: 1447 ms, 1.608 MOPs, 7.5 mW
///                 Eyeriss: 115.3 ms, 2663 MOPs, 278 mW
/// Expected shape: the accelerator is ~3 orders of magnitude faster per
/// op but needs ~40x the power — infeasible for mW-class harvesting.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dataflow/cost_model.hpp"
#include "dnn/model_zoo.hpp"
#include "hw/accelerator.hpp"
#include "hw/msp430_lea.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Figure 2(a)",
                        "Motivation: intermittent MCU platform vs. "
                        "high-performance accelerator, non-intermittent "
                        "condition.");

    struct Row {
        std::string hw_name;
        std::string model_name;
        std::string input;
        double time_s;
        double mops;
        double power_w;
        double energy_j;
        double paper_time_s;
        double paper_power_w;
    };
    std::vector<Row> rows;

    {
        const hw::Msp430Lea mcu;
        const auto model = dnn::make_mnist_cnn();
        const auto cost = dataflow::analyze_model_untiled(
            model, dataflow::Dataflow::kWeightStationary,
            mcu.cost_params());
        rows.push_back({"MSP430FR5994+LEA", "MNIST-CNN", "1x28x28",
                        cost.time_s, static_cast<double>(model.total_flops()) / 1e6,
                        cost.total_energy_j() / cost.time_s,
                        cost.total_energy_j(), 1.447, 7.5e-3});
    }
    {
        hw::ReconfigurableAccelerator::Config config;
        config.arch = hw::AcceleratorArch::kEyeriss;
        config.n_pe = 168;
        config.cache_bytes_per_pe = 512;
        const hw::ReconfigurableAccelerator accel(config);
        const auto model = dnn::make_alexnet();
        const auto cost = dataflow::analyze_model_untiled(
            model, dataflow::Dataflow::kRowStationary,
            accel.cost_params());
        rows.push_back({"Eyeriss V1 (168 PE)", "AlexNet", "3x224x224",
                        cost.time_s, static_cast<double>(model.total_flops()) / 1e6,
                        cost.total_energy_j() / cost.time_s,
                        cost.total_energy_j(), 0.1153, 278e-3});
    }

    TextTable table({"Inference HW", "Test Model", "Input",
                     "Time (ms)", "paper (ms)", "MOPs", "Power (mW)",
                     "paper (mW)", "Energy (mJ)"});
    for (const auto& row : rows) {
        table.add_row({row.hw_name, row.model_name, row.input,
                       format_fixed(row.time_s * 1e3, 1),
                       format_fixed(row.paper_time_s * 1e3, 1),
                       format_fixed(row.mops, 1),
                       format_fixed(row.power_w * 1e3, 1),
                       format_fixed(row.paper_power_w * 1e3, 1),
                       format_fixed(row.energy_j * 1e3, 2)});
    }
    table.print(std::cout);

    const double speed_ratio =
        (rows[1].mops / rows[1].time_s) / (rows[0].mops / rows[0].time_s);
    const double power_ratio = rows[1].power_w / rows[0].power_w;
    std::cout << "\nShape check: accelerator throughput advantage = "
              << format_fixed(speed_ratio, 0) << "x, power cost = "
              << format_fixed(power_ratio, 0)
              << "x (paper: ~1500x and ~37x).\n"
              << "A mW-class harvester can sustain the MCU but not the "
                 "accelerator - the EA/IA co-design gap.\n";
    return 0;
}

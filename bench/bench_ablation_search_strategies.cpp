/// \file
/// Ablation: HW-level search strategy. Compares the bi-level explorer's
/// genetic optimizer against random and grid search at the same
/// evaluation budget, and the dedicated NSGA-II Pareto mode against the
/// single-objective run's by-product front (hypervolume indicator).
/// This quantifies the "bi-level GA vs flat search" design choice called
/// out in DESIGN.md.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"
#include "obs/trace.hpp"

namespace {

using namespace chrysalis;

}  // namespace

int
main()
{
    bench::print_banner("Ablation: search strategies",
                        "GA vs random vs grid at equal budget; NSGA-II "
                        "front vs single-objective by-product front.");

    const bench::Budget budget = bench::Budget::from_env();
    const search::Objective objective{search::ObjectiveKind::kLatSp, 0.0,
                                      0.0};
    const char* workloads[] = {"simple_conv", "har", "kws", "cifar10"};

    TextTable table({"Workload", "Strategy", "Best lat*sp", "Evals",
                     "Memo hits", "Time (s)"});
    for (const char* name : workloads) {
        const dnn::Model model = dnn::make_model(name);
        for (auto strategy : {search::OptimizerStrategy::kGenetic,
                              search::OptimizerStrategy::kRandom,
                              search::OptimizerStrategy::kGrid}) {
            search::ExplorerOptions options =
                bench::make_options(budget, 4242);
            options.strategy = strategy;
            const search::BiLevelExplorer explorer(
                model, search::DesignSpace::existing_aut(), objective,
                options);
            const obs::SpanTimer timer("bench/strategy");
            const auto result = explorer.explore();
            const double elapsed = timer.elapsed_s();
            table.add_row(
                {name, to_string(strategy),
                 result.best.feasible
                     ? format_fixed(result.best.score, 3)
                     : std::string("infeasible"),
                 std::to_string(result.evaluations),
                 std::to_string(result.cache.hits),
                 format_fixed(elapsed, 2)});
        }
    }
    table.print(std::cout);

    // NSGA-II vs by-product front, measured by hypervolume w.r.t. a
    // fixed reference box (sp <= 30, lat <= worst seen * 1.1).
    std::cout << "\nPareto-front quality (hypervolume, higher better):\n";
    TextTable pareto_table({"Workload", "GA by-product HV",
                            "NSGA-II HV", "GA pts", "NSGA pts"});
    for (const char* name : workloads) {
        const dnn::Model model = dnn::make_model(name);
        search::ExplorerOptions options = bench::make_options(budget,
                                                              999);
        const search::BiLevelExplorer explorer(
            model, search::DesignSpace::existing_aut(), objective,
            options);
        const auto scalar = explorer.explore();
        const auto nsga_front = explorer.explore_pareto();
        if (scalar.pareto.empty() || nsga_front.empty()) {
            pareto_table.add_row({name, "-", "-", "0", "0"});
            continue;
        }
        double worst_lat = 0.0;
        for (const auto& point : scalar.pareto)
            worst_lat = std::max(worst_lat, point.y);
        for (const auto& design : nsga_front)
            worst_lat = std::max(worst_lat, design.mean_latency_s);
        const double ref_y = worst_lat * 1.1;
        const double hv_scalar =
            hypervolume(scalar.pareto, 30.0, ref_y);
        std::vector<search::ParetoPoint> nsga_points;
        for (std::size_t i = 0; i < nsga_front.size(); ++i) {
            nsga_points.push_back({nsga_front[i].candidate.solar_cm2,
                                   nsga_front[i].mean_latency_s, i});
        }
        const double hv_nsga = hypervolume(
            search::pareto_front(std::move(nsga_points)), 30.0, ref_y);
        if (hv_scalar > 0.0)
            bench::headline(std::string("hv_ratio_nsga_vs_ga/") + name,
                            hv_nsga / hv_scalar);
        pareto_table.add_row(
            {name, format_fixed(hv_scalar, 1), format_fixed(hv_nsga, 1),
             std::to_string(scalar.pareto.size()),
             std::to_string(nsga_front.size())});
    }
    pareto_table.print(std::cout);
    std::cout << "\nExpected shape: GA matches or beats random/grid on "
                 "best score; NSGA-II yields an equal-or-better-covered "
                 "front than the single-objective by-product.\n";
    return 0;
}

/// \file
/// Figure 10: design results for the four Table-V networks and the two
/// accelerator architectures under the three objective functions,
/// comparing CHRYSALIS against the six ablated baselines of Table VI
/// (wo/Cap, wo/SP, wo/EA, wo/PE, wo/Cache, wo/IA).
///
/// Expected shape:
///   - CHRYSALIS is never worse than any ablation on any cell;
///   - wo/EA is worse than (or equal to) both wo/Cap and wo/SP;
///   - with the SP constraint the latency drops well below the
///     unconstrained-IA tens-of-seconds regime (paper: >20 s -> <5 s);
///   - under the latency constraint the full search shrinks the panel
///     versus wo/IA (paper: average SP -36.2%).

#include <iostream>
#include <map>

#include "common/bench_util.hpp"
#include "common/math_utils.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"

namespace {

using namespace chrysalis;

struct CellResult {
    bool feasible = false;        ///< runs at all (Eq. 8, leakage)
    bool constraint_ok = false;   ///< also satisfies the objective's bound
    double latency_s = 0.0;
    double sp_cm2 = 0.0;
    double lat_sp = 0.0;
    double score = 0.0;
};

}  // namespace

int
main()
{
    bench::print_banner("Figure 10",
                        "4 networks x {TPU, Eyeriss} x 3 objectives: "
                        "CHRYSALIS vs the Table-VI ablation baselines.");

    const bench::Budget budget = bench::Budget::from_env();
    const search::Objective objectives[] = {
        {search::ObjectiveKind::kLatency, /*sp_limit=*/20.0, 0.0},
        {search::ObjectiveKind::kSolarPanel, 0.0, /*lat_limit=*/10.0},
        {search::ObjectiveKind::kLatSp, 0.0, 0.0},
    };
    const hw::AcceleratorArch archs[] = {hw::AcceleratorArch::kTpu,
                                         hw::AcceleratorArch::kEyeriss};

    int chrysalis_wins = 0, cells = 0;
    int wo_ea_dominated = 0, wo_ea_cells = 0;
    std::vector<double> sp_shrink;  // CHRYSALIS vs the IA approach (wo/EA)
    std::vector<double> lat_shrink;  // same, under the lat objective

    std::uint64_t seed = 10000;
    for (const auto& net : dnn::table5_workloads()) {
        const dnn::Model model = dnn::make_model(net);
        for (auto arch : archs) {
            std::cout << "\n--- " << net << " on " << to_string(arch)
                      << " ---\n";
            TextTable table({"Method", "lat obj: Lat (s)",
                             "sp obj: SP (cm^2)",
                             "lat*sp obj: lat*sp"});

            std::map<std::string, CellResult> cell[3];
            for (int o = 0; o < 3; ++o) {
                // All methods in a cell share the seed so differences
                // come from the search space, not GA luck. The ablations
                // run first; CHRYSALIS (last in all_baselines()) is
                // portfolio-seeded with their solutions — all of which
                // live inside its superset space, so the full search can
                // only refine them.
                ++seed;
                std::vector<search::HwCandidate> portfolio;
                for (auto baseline : search::all_baselines()) {
                    search::DesignSpace space =
                        apply_baseline(search::DesignSpace::future_aut(),
                                       baseline);
                    // Each panel fixes the architecture (the paper plots
                    // TPU and Eyeriss separately).
                    space.search_arch = false;
                    space.defaults.arch = arch;
                    const bool is_full =
                        baseline == search::BaselineKind::kFull;
                    const core::AuTSolution solution = bench::run_search(
                        model, space, objectives[o], budget, seed,
                        is_full ? portfolio
                                : std::vector<search::HwCandidate>{});
                    if (!is_full && solution.feasible)
                        portfolio.push_back(solution.hardware);
                    CellResult result;
                    result.feasible = solution.feasible;
                    result.constraint_ok =
                        solution.feasible &&
                        objectives[o].satisfies_constraint(
                            solution.mean_latency_s,
                            solution.hardware.solar_cm2);
                    result.latency_s = solution.mean_latency_s;
                    result.sp_cm2 = solution.hardware.solar_cm2;
                    result.lat_sp = solution.lat_sp;
                    result.score = solution.score;
                    cell[o][to_string(baseline)] = result;
                }
            }

            for (auto baseline : search::all_baselines()) {
                const std::string method = to_string(baseline);
                const auto fmt = [&](int o, double value) {
                    if (!cell[o][method].feasible)
                        return std::string("infeasible");
                    std::string text = format_fixed(value, 2);
                    if (!cell[o][method].constraint_ok)
                        text += " !";  // violates the objective's bound
                    return text;
                };
                table.add_row({method,
                               fmt(0, cell[0][method].latency_s),
                               fmt(1, cell[1][method].sp_cm2),
                               fmt(2, cell[2][method].lat_sp)});
            }
            table.print(std::cout);

            // Shape accounting. Ties within 2% count as best-or-tied:
            // the GA budget here is orders of magnitude below the
            // paper's 10^(4+2n) evaluations.
            for (int o = 0; o < 3; ++o) {
                const auto& full = cell[o]["CHRYSALIS"];
                if (!full.feasible)
                    continue;
                bool wins = true;
                for (auto baseline : search::all_baselines()) {
                    if (baseline == search::BaselineKind::kFull)
                        continue;
                    const auto& other = cell[o][to_string(baseline)];
                    if (other.feasible &&
                        full.score > other.score * 1.02) {
                        wins = false;
                    }
                }
                ++cells;
                chrysalis_wins += wins ? 1 : 0;

                const auto& wo_ea = cell[o]["wo/EA"];
                const auto& wo_cap = cell[o]["wo/Cap"];
                const auto& wo_sp = cell[o]["wo/SP"];
                if (wo_ea.feasible && wo_cap.feasible && wo_sp.feasible) {
                    ++wo_ea_cells;
                    if (wo_ea.score >= wo_cap.score * 0.98 &&
                        wo_ea.score >= wo_sp.score * 0.98) {
                        ++wo_ea_dominated;
                    }
                }
            }
            // Paper: "By imposing SP constraints, the latency reduces
            // from over 20 s to below 5 s (TPU, IA approach)": compare
            // CHRYSALIS under the lat objective to the IA-only approach
            // (wo/EA) in the same cell.
            if (cell[0]["CHRYSALIS"].constraint_ok &&
                cell[0]["wo/EA"].feasible) {
                lat_shrink.push_back(relative_improvement(
                    cell[0]["wo/EA"].latency_s,
                    cell[0]["CHRYSALIS"].latency_s));
            }
            // Paper: "the average size of SP decreases by 36.2% under
            // latency constraints (IA)": CHRYSALIS's searched panel vs
            // the IA approach's fixed default panel, over cells where
            // both actually satisfy the latency constraint (VGG16 cannot
            // meet 10 s at any panel size in this model and is excluded).
            if (cell[1]["CHRYSALIS"].constraint_ok &&
                cell[1]["wo/EA"].constraint_ok) {
                sp_shrink.push_back(relative_improvement(
                    cell[1]["wo/EA"].sp_cm2,
                    cell[1]["CHRYSALIS"].sp_cm2));
            }
        }
    }

    if (cells > 0)
        bench::headline("chrysalis_win_rate",
                        static_cast<double>(chrysalis_wins) / cells);
    if (wo_ea_cells > 0)
        bench::headline("wo_ea_dominated_rate",
                        static_cast<double>(wo_ea_dominated) /
                            wo_ea_cells);
    if (!lat_shrink.empty())
        bench::headline("mean_lat_shrink", summarize(lat_shrink).mean);
    if (!sp_shrink.empty())
        bench::headline("mean_sp_shrink", summarize(sp_shrink).mean);

    std::cout << "\n=== Shape checks ===\n";
    std::cout << "CHRYSALIS best-or-tied (2% tolerance) in "
              << chrysalis_wins << "/" << cells
              << " cells (paper: consistently best).\n";
    std::cout << "wo/EA no better than wo/Cap and wo/SP in "
              << wo_ea_dominated << "/" << wo_ea_cells << " cells.\n";
    if (!lat_shrink.empty()) {
        std::cout << "Average latency reduction vs the IA approach "
                     "(wo/EA) under the SP constraint: "
                  << format_percent(summarize(lat_shrink).mean)
                  << " (paper: >20 s -> <5 s, i.e. ~75%).\n";
    }
    if (!sp_shrink.empty()) {
        std::cout << "Average SP reduction vs the IA approach under the "
                     "latency constraint: "
                  << format_percent(summarize(sp_shrink).mean)
                  << " (paper: 36.2%).\n";
    }
    return 0;
}

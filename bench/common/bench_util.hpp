/// \file
/// Shared helpers for the paper-reproduction benchmark binaries: budget
/// control, consistent headers, and the standard search/evaluation recipes
/// used across figures.

#ifndef CHRYSALIS_BENCH_BENCH_UTIL_HPP
#define CHRYSALIS_BENCH_BENCH_UTIL_HPP

#include <string>

#include "core/chrysalis.hpp"
#include "search/bilevel_explorer.hpp"

namespace chrysalis::bench {

/// Search budget for benchmark runs. Controlled by the environment
/// variable CHRYSALIS_BENCH_BUDGET: "quick" (CI-sized, default), or
/// "full" (paper-sized; minutes per figure).
struct Budget {
    int population = 24;
    int generations = 16;
    std::size_t mapping_candidates = 5;
    /// Evaluation threads per search (0 = all hardware threads).
    /// Results are bit-identical at any value; only wall time changes.
    int threads = 0;
    /// Evaluation-memo capacity (0 disables). Results are identical
    /// with or without the memo; hits skip repeat inner searches.
    std::size_t cache_capacity = 4096;

    /// Reads CHRYSALIS_BENCH_BUDGET ("quick"/"full"),
    /// CHRYSALIS_BENCH_THREADS (integer) and CHRYSALIS_BENCH_CACHE
    /// (capacity in designs) from the environment.
    static Budget from_env();
};

/// Prints the standard benchmark banner (figure id + description).
void print_banner(const std::string& experiment,
                  const std::string& description);

/// Builds ExplorerOptions from a budget with the paper's two-environment
/// setup (brighter + darker).
search::ExplorerOptions make_options(const Budget& budget,
                                     std::uint64_t seed);

/// Runs one full CHRYSALIS exploration for (model, space, objective).
/// \p warm_starts optionally seed the GA (portfolio seeding with
/// solutions found in subspaces).
core::AuTSolution run_search(
    const dnn::Model& model, const search::DesignSpace& space,
    const search::Objective& objective, const Budget& budget,
    std::uint64_t seed,
    const std::vector<search::HwCandidate>& warm_starts = {});

/// The paper's fixed iNAS-style reference point for the existing-AuT
/// platform (P_in = 6 mW at the brighter preset, C = 1 mF).
search::HwCandidate inas_reference_candidate();

}  // namespace chrysalis::bench

#endif  // CHRYSALIS_BENCH_BENCH_UTIL_HPP

/// \file
/// Shared helpers for the paper-reproduction benchmark binaries: budget
/// control, consistent headers, and the standard search/evaluation recipes
/// used across figures.

#ifndef CHRYSALIS_BENCH_COMMON_BENCH_UTIL_HPP
#define CHRYSALIS_BENCH_COMMON_BENCH_UTIL_HPP

#include <string>

#include "core/chrysalis.hpp"
#include "search/bilevel_explorer.hpp"

namespace chrysalis::bench {

/// Search budget for benchmark runs. Controlled by the environment
/// variable CHRYSALIS_BENCH_BUDGET: "quick" (CI-sized, default), or
/// "full" (paper-sized; minutes per figure).
struct Budget {
    int population = 24;
    int generations = 16;
    std::size_t mapping_candidates = 5;
    /// Evaluation threads per search (0 = all hardware threads).
    /// Results are bit-identical at any value; only wall time changes.
    int threads = 0;
    /// Evaluation-memo capacity (0 disables). Results are identical
    /// with or without the memo; hits skip repeat inner searches.
    std::size_t cache_capacity = 4096;

    /// Reads CHRYSALIS_BENCH_BUDGET ("quick"/"full"),
    /// CHRYSALIS_BENCH_THREADS (integer) and CHRYSALIS_BENCH_CACHE
    /// (capacity in designs) from the environment.
    static Budget from_env();
};

/// Starts the benchmark's machine-readable run report. Called by
/// print_banner, so every figure binary gets one for free: at process
/// exit a `BENCH_<name>.json` file (working directory; <name> is the
/// executable name minus the `bench_` prefix) is written with the
/// experiment id, the headline() numbers and a metrics snapshot.
///
/// Knobs (environment):
///   CHRYSALIS_BENCH_REPORT=0           disable the report entirely
///   CHRYSALIS_BENCH_METRICS_OUT=FILE   override the report path
///   CHRYSALIS_BENCH_TRACE_OUT=FILE     also write a Chrome trace
///
/// \p attach_metrics=false starts the report without attaching the
/// global metrics registry — used by micro-benchmarks that measure the
/// no-sink fast path and must not observe publish costs.
///
/// \p slug overrides the executable-derived report name (the <name> in
/// BENCH_<name>.json) for binaries whose name does not match their
/// report, e.g. chrysalis_bench_load writing BENCH_serve_load.json.
void begin_report(const std::string& experiment,
                  const std::string& description,
                  bool attach_metrics = true,
                  const std::string& slug = "");

/// Records one headline number (e.g. the paper-claim ratio a figure
/// reproduces) into the run report. No-op before begin_report.
void headline(const std::string& key, double value);

/// Prints the standard benchmark banner (figure id + description) and
/// starts the run report (see begin_report).
void print_banner(const std::string& experiment,
                  const std::string& description);

/// Builds ExplorerOptions from a budget with the paper's two-environment
/// setup (brighter + darker).
search::ExplorerOptions make_options(const Budget& budget,
                                     std::uint64_t seed);

/// Runs one full CHRYSALIS exploration for (model, space, objective).
/// \p warm_starts optionally seed the GA (portfolio seeding with
/// solutions found in subspaces).
core::AuTSolution run_search(
    const dnn::Model& model, const search::DesignSpace& space,
    const search::Objective& objective, const Budget& budget,
    std::uint64_t seed,
    const std::vector<search::HwCandidate>& warm_starts = {});

/// The paper's fixed iNAS-style reference point for the existing-AuT
/// platform (P_in = 6 mW at the brighter preset, C = 1 mF).
search::HwCandidate inas_reference_candidate();

}  // namespace chrysalis::bench

#endif  // CHRYSALIS_BENCH_COMMON_BENCH_UTIL_HPP

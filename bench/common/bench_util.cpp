#include "common/bench_util.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/string_utils.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chrysalis::bench {

namespace {

/// State behind begin_report/headline; written out by an atexit hook so
/// every exit path of a figure binary produces its report.
struct BenchReport {
    Mutex mutex;
    bool active CHRYSALIS_GUARDED_BY(mutex) = false;
    std::string experiment CHRYSALIS_GUARDED_BY(mutex);
    std::string description CHRYSALIS_GUARDED_BY(mutex);
    std::string metrics_path CHRYSALIS_GUARDED_BY(mutex);
    /// empty = no trace requested
    std::string trace_path CHRYSALIS_GUARDED_BY(mutex);
    // The registry and trace session are internally synchronized and
    // published to the obs globals, so they are deliberately not
    // guarded by the report mutex.
    obs::MetricsRegistry registry;
    obs::TraceSession trace;
    std::vector<std::pair<std::string, double>> headlines
        CHRYSALIS_GUARDED_BY(mutex);
};

BenchReport&
report_state()
{
    static BenchReport report;
    return report;
}

/// Executable name minus a leading "bench_": the <name> in
/// BENCH_<name>.json. Falls back to "report" off glibc.
std::string
report_slug()
{
#if defined(__GLIBC__)
    std::string name = program_invocation_short_name;
    if (name.rfind("bench_", 0) == 0)
        name.erase(0, std::strlen("bench_"));
    if (!name.empty())
        return name;
#endif
    return "report";
}

/// Minimal JSON string escaping (quote, backslash, control chars).
std::string
json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buffer;
        } else {
            out += c;
        }
    }
    return out;
}

void
write_report()
{
    BenchReport& report = report_state();
    MutexLock lock(report.mutex);
    if (!report.active)
        return;
    // Quiescence: by atexit time all benchmark work has joined.
    obs::attach_metrics(nullptr);
    obs::attach_trace(nullptr);

    std::FILE* file = std::fopen(report.metrics_path.c_str(), "w");
    if (file == nullptr) {
        std::fprintf(stderr, "[bench] cannot write report '%s': %s\n",
                     report.metrics_path.c_str(), errno_text(errno));
        return;
    }
    std::fprintf(file, "{\"schema\":\"chrysalis-bench-v1\"");
    std::fprintf(file, ",\"experiment\":\"%s\"",
                 json_escape(report.experiment).c_str());
    std::fprintf(file, ",\"description\":\"%s\"",
                 json_escape(report.description).c_str());
    std::fprintf(file, ",\"headline\":{");
    std::sort(report.headlines.begin(), report.headlines.end());
    for (std::size_t i = 0; i < report.headlines.size(); ++i) {
        std::fprintf(file, "%s\"%s\":%s", i > 0 ? "," : "",
                     json_escape(report.headlines[i].first).c_str(),
                     format_double_17g(report.headlines[i].second).c_str());
    }
    std::fprintf(file, "},\"metrics\":%s}\n",
                 report.registry.to_json().c_str());
    std::fclose(file);

    if (!report.trace_path.empty())
        report.trace.write_chrome_trace_file(report.trace_path);
}

}  // namespace

void
begin_report(const std::string& experiment, const std::string& description,
             bool attach_metrics, const std::string& slug)
{
    const char* toggle = std::getenv("CHRYSALIS_BENCH_REPORT");
    if (toggle != nullptr && std::strcmp(toggle, "0") == 0)
        return;
    BenchReport& report = report_state();
    MutexLock lock(report.mutex);
    if (report.active)
        return;  // first banner wins; later sections share the report
    report.active = true;
    report.experiment = experiment;
    report.description = description;
    const char* metrics_out = std::getenv("CHRYSALIS_BENCH_METRICS_OUT");
    report.metrics_path =
        metrics_out != nullptr && *metrics_out != '\0'
            ? metrics_out
            : "BENCH_" + (slug.empty() ? report_slug() : slug) + ".json";
    if (const char* trace_out = std::getenv("CHRYSALIS_BENCH_TRACE_OUT")) {
        if (*trace_out != '\0') {
            report.trace_path = trace_out;
            obs::attach_trace(&report.trace);
        }
    }
    if (attach_metrics)
        obs::attach_metrics(&report.registry);
    std::atexit(write_report);
}

void
headline(const std::string& key, double value)
{
    BenchReport& report = report_state();
    MutexLock lock(report.mutex);
    if (!report.active)
        return;
    report.headlines.emplace_back(key, value);
}

Budget
Budget::from_env()
{
    Budget budget;
    const char* raw = std::getenv("CHRYSALIS_BENCH_BUDGET");
    const std::string mode = raw != nullptr ? to_lower(raw) : "quick";
    if (mode == "full") {
        budget.population = 48;
        budget.generations = 40;
        budget.mapping_candidates = 8;
    } else if (mode != "quick") {
        std::fprintf(stderr,
                     "[bench] unknown CHRYSALIS_BENCH_BUDGET '%s', using "
                     "'quick'\n",
                     mode.c_str());
    }
    if (const char* threads_raw = std::getenv("CHRYSALIS_BENCH_THREADS")) {
        const int threads = std::atoi(threads_raw);
        if (threads >= 0)
            budget.threads = threads;
        else
            std::fprintf(stderr,
                         "[bench] ignoring negative "
                         "CHRYSALIS_BENCH_THREADS '%s'\n",
                         threads_raw);
    }
    if (const char* cache_raw = std::getenv("CHRYSALIS_BENCH_CACHE")) {
        const long capacity = std::atol(cache_raw);
        if (capacity >= 0)
            budget.cache_capacity = static_cast<std::size_t>(capacity);
    }
    return budget;
}

void
print_banner(const std::string& experiment, const std::string& description)
{
    begin_report(experiment, description);
    std::printf("\n================================================"
                "================\n");
    std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
    std::printf("================================================"
                "================\n");
}

search::ExplorerOptions
make_options(const Budget& budget, std::uint64_t seed)
{
    search::ExplorerOptions options;
    options.outer.population = budget.population;
    options.outer.generations = budget.generations;
    options.outer.seed = seed;
    options.outer.threads = budget.threads;
    options.inner.max_candidates_per_dim = budget.mapping_candidates;
    options.cache_capacity = budget.cache_capacity;
    return options;
}

core::AuTSolution
run_search(const dnn::Model& model, const search::DesignSpace& space,
           const search::Objective& objective, const Budget& budget,
           std::uint64_t seed,
           const std::vector<search::HwCandidate>& warm_starts)
{
    core::ChrysalisInputs inputs{model, space, objective,
                                 make_options(budget, seed)};
    const core::Chrysalis tool(std::move(inputs));
    return tool.generate(warm_starts);
}

search::HwCandidate
inas_reference_candidate()
{
    // P_in = 6 mW at the brighter 2 mW/cm^2 preset -> 3 cm^2 panel;
    // "if the design approach of iNAS are to be adopted ... C >= 1 mF".
    search::HwCandidate candidate;
    candidate.family = search::HardwareFamily::kMsp430;
    candidate.solar_cm2 = 3.0;
    candidate.capacitance_f = 1e-3;
    return candidate;
}

}  // namespace chrysalis::bench

#include "common/bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/string_utils.hpp"

namespace chrysalis::bench {

Budget
Budget::from_env()
{
    Budget budget;
    const char* raw = std::getenv("CHRYSALIS_BENCH_BUDGET");
    const std::string mode = raw != nullptr ? to_lower(raw) : "quick";
    if (mode == "full") {
        budget.population = 48;
        budget.generations = 40;
        budget.mapping_candidates = 8;
    } else if (mode != "quick") {
        std::fprintf(stderr,
                     "[bench] unknown CHRYSALIS_BENCH_BUDGET '%s', using "
                     "'quick'\n",
                     mode.c_str());
    }
    if (const char* threads_raw = std::getenv("CHRYSALIS_BENCH_THREADS")) {
        const int threads = std::atoi(threads_raw);
        if (threads >= 0)
            budget.threads = threads;
        else
            std::fprintf(stderr,
                         "[bench] ignoring negative "
                         "CHRYSALIS_BENCH_THREADS '%s'\n",
                         threads_raw);
    }
    if (const char* cache_raw = std::getenv("CHRYSALIS_BENCH_CACHE")) {
        const long capacity = std::atol(cache_raw);
        if (capacity >= 0)
            budget.cache_capacity = static_cast<std::size_t>(capacity);
    }
    return budget;
}

void
print_banner(const std::string& experiment, const std::string& description)
{
    std::printf("\n================================================"
                "================\n");
    std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
    std::printf("================================================"
                "================\n");
}

search::ExplorerOptions
make_options(const Budget& budget, std::uint64_t seed)
{
    search::ExplorerOptions options;
    options.outer.population = budget.population;
    options.outer.generations = budget.generations;
    options.outer.seed = seed;
    options.outer.threads = budget.threads;
    options.inner.max_candidates_per_dim = budget.mapping_candidates;
    options.cache_capacity = budget.cache_capacity;
    return options;
}

core::AuTSolution
run_search(const dnn::Model& model, const search::DesignSpace& space,
           const search::Objective& objective, const Budget& budget,
           std::uint64_t seed,
           const std::vector<search::HwCandidate>& warm_starts)
{
    core::ChrysalisInputs inputs{model, space, objective,
                                 make_options(budget, seed)};
    const core::Chrysalis tool(std::move(inputs));
    return tool.generate(warm_starts);
}

search::HwCandidate
inas_reference_candidate()
{
    // P_in = 6 mW at the brighter 2 mW/cm^2 preset -> 3 cm^2 panel;
    // "if the design approach of iNAS are to be adopted ... C >= 1 mF".
    search::HwCandidate candidate;
    candidate.family = search::HardwareFamily::kMsp430;
    candidate.solar_cm2 = 3.0;
    candidate.capacitance_f = 1e-3;
    return candidate;
}

}  // namespace chrysalis::bench

/// \file
/// Figure 7: validating the improved AuT system over iNAS "on the real
/// platform". The paper builds a PCB and measures a single convolution
/// layer with an oscilloscope; here the platform measurement is
/// substituted by the step-based intermittent simulator with
/// measurement-noise injection (see DESIGN.md substitution table) — the
/// claim being validated is *trend agreement* between the analytic model
/// and the platform, plus two speedups against the fixed iNAS design
/// point (P_in = 6 mW, C >= 1 mF):
///   - 79.7% faster with the same solar panel size;
///   - 82.3% faster with a bigger (15 cm^2) panel.

#include <cmath>
#include <iostream>

#include "common/bench_util.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"
#include "energy/energy_controller.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"
#include "sim/analytic_evaluator.hpp"
#include "sim/intermittent_simulator.hpp"

namespace {

using namespace chrysalis;

constexpr double kKeh = 2e-3;  // brighter preset: 3 cm^2 -> 6 mW

/// Evaluates the single-conv workload at (panel, capacitor); returns the
/// analytic latency and a "platform-measured" latency = step simulation
/// mean with 4% gaussian measurement noise.
struct Point {
    bool feasible = false;
    double model_latency_s = 0.0;
    double measured_latency_s = 0.0;
    std::int64_t n_tile = 0;
};

Point
evaluate_point(double panel_cm2, double cap_f, Rng& noise)
{
    const dnn::Model model = dnn::make_simple_conv();
    const hw::Msp430Lea mcu;
    sim::EnergyEnv env;
    env.p_eh_w = panel_cm2 * kKeh;
    env.capacitor.capacitance_f = cap_f;

    search::MappingSearchOptions options;
    options.max_candidates_per_dim = 6;
    const auto mapping = search_mappings(model, mcu, {env}, options);
    const auto analytic = analytic_evaluate(mapping.cost, env);

    Point point;
    point.n_tile = mapping.cost.n_tile;
    if (!analytic.feasible)
        return point;
    point.feasible = true;
    point.model_latency_s = analytic.latency_s;

    energy::Capacitor::Config cap_config = env.capacitor;
    cap_config.initial_voltage_v = env.pmic.v_off;
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            panel_cm2, std::make_shared<energy::ConstantSolarEnvironment>(
                           kKeh, "platform")),
        energy::Capacitor(cap_config),
        energy::PowerManagementIc(env.pmic));
    sim::SimConfig sim_config;
    sim_config.step_s = 0.01;
    // Duty-cycled measurements: each inference starts at U_off and pays
    // the cold-start charge, as the oscilloscope traces in the paper do.
    sim_config.drain_between_runs = true;
    const auto runs =
        sim::simulate_repeated(mapping.cost, controller, sim_config, 8);
    double sum = 0.0;
    int completed = 0;
    for (const auto& run : runs) {
        if (run.completed) {
            sum += run.latency_s;
            ++completed;
        }
    }
    if (completed == 0) {
        point.feasible = false;
        return point;
    }
    // Oscilloscope-style measurement noise.
    point.measured_latency_s =
        (sum / completed) * (1.0 + noise.gaussian(0.0, 0.04));
    return point;
}

}  // namespace

int
main()
{
    bench::print_banner("Figure 7",
                        "Platform validation (simulated platform; see "
                        "DESIGN.md): single conv layer, latency vs "
                        "capacitor size, model vs measurement.");

    Rng noise(2024);
    const double caps_f[] = {47e-6, 100e-6, 220e-6, 470e-6, 1e-3, 2.2e-3,
                             4.7e-3};

    TextTable table({"C", "Model latency", "Measured latency",
                     "N_tile", "Rel. diff"});
    table.set_title("3 cm^2 panel (P_in = 6 mW):");
    std::vector<double> diffs;
    std::vector<Point> points;
    for (double cap : caps_f) {
        const Point point = evaluate_point(3.0, cap, noise);
        points.push_back(point);
        if (!point.feasible) {
            table.add_row({format_si(cap, "F", 0), "infeasible", "-", "-",
                           "-"});
            continue;
        }
        const double diff =
            std::fabs(point.measured_latency_s - point.model_latency_s) /
            point.model_latency_s;
        diffs.push_back(diff);
        table.add_row({format_si(cap, "F", 0),
                       format_si(point.model_latency_s, "s"),
                       format_si(point.measured_latency_s, "s"),
                       std::to_string(point.n_tile),
                       format_percent(diff)});
    }
    table.print(std::cout);
    if (!diffs.empty()) {
        std::cout << "mean model-vs-platform deviation: "
                  << format_percent(summarize(diffs).mean)
                  << " -> the model tracks the platform trend.\n";
    }

    // Speedups against the iNAS design point (C = 1 mF at 3 cm^2).
    Rng quiet(7);
    const Point inas = evaluate_point(3.0, 1e-3, quiet);
    double best_same = 1e300;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].feasible)
            best_same = std::min(best_same, points[i].measured_latency_s);
    }
    const Point big_panel = evaluate_point(15.0, 100e-6, quiet);

    std::cout << "\nSpeedup vs iNAS point (C=1 mF, same 3 cm^2 panel): ";
    if (inas.feasible && best_same < 1e300) {
        std::cout << format_percent(relative_improvement(
                         inas.measured_latency_s, best_same))
                  << " faster (paper: 79.7%).\n";
    } else {
        std::cout << "n/a\n";
    }
    // Oscilloscope view: the "periodic energy cycles" trace the paper
    // confirms with a voltmeter/oscilloscope, rendered in ASCII for one
    // duty cycle at (3 cm^2, 220 uF) in a dimmer 0.5 mW/cm^2 setting
    // (load exceeds harvest, so the voltage visibly cycles).
    {
        const dnn::Model model = dnn::make_simple_conv();
        const hw::Msp430Lea mcu;
        sim::EnergyEnv env;
        env.p_eh_w = 3.0 * 0.5e-3;
        env.capacitor.capacitance_f = 220e-6;
        search::MappingSearchOptions options;
        const auto mapping = search_mappings(model, mcu, {env}, options);
        energy::Capacitor::Config cap_config = env.capacitor;
        cap_config.initial_voltage_v = env.pmic.v_off;
        energy::EnergyController controller(
            std::make_unique<energy::SolarPanel>(
                3.0, std::make_shared<energy::ConstantSolarEnvironment>(
                         0.5e-3, "scope")),
            energy::Capacitor(cap_config),
            energy::PowerManagementIc(env.pmic));
        std::vector<std::pair<double, double>> samples;
        sim::SimConfig scope_config;
        scope_config.step_s = 0.005;
        scope_config.probe = [&](double t, double v, bool) {
            samples.emplace_back(t, v);
        };
        const auto run = sim::simulate_inference(mapping.cost, controller,
                                                 scope_config);
        if (run.completed && samples.size() > 4) {
            constexpr int kCols = 64;
            constexpr int kRows = 8;
            const double t0 = samples.front().first;
            const double t1 = samples.back().first;
            std::vector<std::string> canvas(
                kRows, std::string(kCols, ' '));
            for (const auto& [t, v] : samples) {
                const int col = std::min(
                    kCols - 1,
                    static_cast<int>((t - t0) / (t1 - t0) * kCols));
                const double frac = (v - 2.0) / (3.7 - 2.0);
                const int row = std::min(
                    kRows - 1,
                    std::max(0, static_cast<int>((1.0 - frac) * kRows)));
                canvas[static_cast<std::size_t>(row)]
                      [static_cast<std::size_t>(col)] = '*';
            }
            std::cout << "\nCapacitor voltage during one inference "
                         "(oscilloscope view, "
                      << format_si(t1 - t0, "s") << " span, 2.0-3.7 V):\n";
            for (const auto& line : canvas)
                std::cout << "  |" << line << "|\n";
            std::cout << "  (charge to U_on=3.5 V, run down toward "
                         "U_off=2.2 V, recharge - periodic energy "
                         "cycles)\n";
        }
    }

    std::cout << "Speedup with a bigger 15 cm^2 panel: ";
    if (inas.feasible && big_panel.feasible) {
        std::cout << format_percent(relative_improvement(
                         inas.measured_latency_s,
                         big_panel.measured_latency_s))
                  << " faster (paper: 82.3%).\n";
    } else {
        std::cout << "n/a\n";
    }
    return 0;
}

/// \file
/// Table V: the design space for the future-AuT setup (reconfigurable
/// accelerators) and the four networks' statistics, achieved-vs-paper.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Table V",
                        "Design space for AuT design with reconfigurable "
                        "accelerators (future setup).");

    const auto space = search::DesignSpace::future_aut();
    TextTable knobs({"Parameter Name", "Type", "Potential Values"});
    knobs.set_title("Design Spaces");
    knobs.add_row({"Solar Panel Size", "float",
                   format_fixed(space.solar_min_cm2, 0) + " cm^2 to " +
                       format_fixed(space.solar_max_cm2, 0) + " cm^2"});
    knobs.add_row({"Capacitor Size", "float (log)",
                   format_si(space.cap_min_f, "F", 0) + " to " +
                       format_si(space.cap_max_f, "F", 0)});
    knobs.add_row({"Architecture", "union", "TPU, Eyeriss"});
    knobs.add_row({"PE Number", "int",
                   std::to_string(space.pe_min) + " to " +
                       std::to_string(space.pe_max)});
    knobs.add_row({"PE cache size", "int",
                   std::to_string(space.cache_min_bytes) + " B to " +
                       std::to_string(space.cache_max_bytes) + " B"});
    knobs.print(std::cout);

    struct PaperRow {
        const char* name;
        const char* input;
        int layers;
        double params_m;
        double gflops;
    };
    static constexpr PaperRow kPaper[] = {
        {"bert", "(1,768)", 5, 56.6, 1.28},
        {"alexnet", "(3,224,224)", 7, 58.7, 1.13},
        {"vgg16", "(3,224,224)", 13, 138.3, 15.47},
        {"resnet18", "(3,224,224)", 20, 11.7, 1.81},
    };

    TextTable apps({"Application", "Input", "Weight layers", "Params(M)",
                    "paper Params(M)", "GMACs", "GFLOPs",
                    "paper GFLOPs"});
    apps.set_title("\nApplications (achieved vs paper)");
    for (const auto& row : kPaper) {
        const dnn::Model model = dnn::make_model(row.name);
        apps.add_row({
            model.name(),
            row.input,
            std::to_string(model.weight_layer_count()),
            format_fixed(static_cast<double>(model.total_params()) / 1e6,
                         1),
            format_fixed(row.params_m, 1),
            format_fixed(static_cast<double>(model.total_macs()) / 1e9,
                         2),
            format_fixed(static_cast<double>(model.total_flops()) / 1e9,
                         2),
            format_fixed(row.gflops, 2),
        });
    }
    apps.print(std::cout);
    std::cout << "\nNote: VGG16/ResNet18/AlexNet paper GFLOPs equal GMACs "
                 "(multiply-add counting); BERT matches the 2*MACs "
                 "convention.\n";
    return 0;
}

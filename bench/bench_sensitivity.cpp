/// \file
/// Sensitivity analysis: how robust are CHRYSALIS's design choices to the
/// technology constants of Table II? The capacitor leakage coefficient
/// k_cap and the PMIC discharge efficiency are perturbed and the search
/// re-run; the
/// bench reports how much the chosen design point and its achieved
/// lat*sp move. Small design drift under large constant perturbations
/// indicates the methodology's conclusions do not hinge on exact
/// calibration values.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/math_utils.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"

namespace {

using namespace chrysalis;

struct Outcome {
    bool feasible = false;
    double sp_cm2 = 0.0;
    double cap_f = 0.0;
    double lat_sp = 0.0;
};

Outcome
run(const dnn::Model& model, const bench::Budget& budget,
    double k_cap_scale, double discharge_eff)
{
    search::ExplorerOptions options = bench::make_options(budget, 777);
    options.capacitor_base.k_cap = 0.01 * k_cap_scale;
    options.pmic.discharge_efficiency = discharge_eff;
    options.inner.seed = 1;
    core::ChrysalisInputs inputs{
        model, search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        options};
    const core::Chrysalis tool(std::move(inputs));
    const core::AuTSolution solution = tool.generate();
    Outcome outcome;
    outcome.feasible = solution.feasible;
    outcome.sp_cm2 = solution.hardware.solar_cm2;
    outcome.cap_f = solution.hardware.capacitance_f;
    outcome.lat_sp = solution.lat_sp;
    return outcome;
}

}  // namespace

int
main()
{
    bench::print_banner("Sensitivity analysis",
                        "Design drift under +/-50% perturbations of "
                        "technology constants (HAR workload, lat*sp "
                        "objective).");

    const bench::Budget budget = bench::Budget::from_env();
    const dnn::Model model = dnn::make_har_cnn();

    const Outcome nominal = run(model, budget, 1.0, 0.85);
    if (!nominal.feasible) {
        std::cout << "nominal search infeasible; aborting\n";
        return 1;
    }

    struct Variant {
        const char* label;
        double k_cap_scale;
        double discharge_eff;
    };
    static constexpr Variant kVariants[] = {
        {"nominal", 1.0, 0.85},
        {"k_cap x0.5", 0.5, 0.85},
        {"k_cap x1.5", 1.5, 0.85},
        {"eta_dis 0.70", 1.0, 0.70},
        {"eta_dis 0.95", 1.0, 0.95},
    };

    TextTable table({"Variant", "SP (cm^2)", "C", "lat*sp",
                     "lat*sp drift"});
    for (const auto& variant : kVariants) {
        const Outcome outcome = run(model, budget, variant.k_cap_scale,
                                    variant.discharge_eff);
        if (!outcome.feasible) {
            table.add_row({variant.label, "-", "-", "-", "infeasible"});
            continue;
        }
        table.add_row({variant.label, format_fixed(outcome.sp_cm2, 1),
                       format_si(outcome.cap_f, "F", 0),
                       format_fixed(outcome.lat_sp, 2),
                       format_percent((outcome.lat_sp - nominal.lat_sp) /
                                      nominal.lat_sp)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: achieved lat*sp shifts with the "
                 "perturbed constant (worse efficiency/leakage -> higher "
                 "cost), while the *chosen* design point moves smoothly "
                 "— the methodology's conclusions are not an artifact of "
                 "one calibration value.\n";
    return 0;
}

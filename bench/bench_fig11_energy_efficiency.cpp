/// \file
/// Figure 11: energy efficiency (E_infer / E_eh) of the best
/// configurations found by each search method across the Table-V
/// network/architecture scenarios (lat*sp objective).
///
/// Expected shape: CHRYSALIS maintains consistently high efficiency;
/// methods that ignore the energy subsystem (wo/EA) mismatch the SP/Cap
/// sizing to the inference subsystem and lose efficiency in several
/// scenarios.

#include <iostream>
#include <map>

#include "common/bench_util.hpp"
#include "common/math_utils.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "core/chrysalis.hpp"
#include "dnn/model_zoo.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Figure 11",
                        "Energy efficiency E_infer/E_eh of the designs "
                        "chosen by each method (lat*sp objective).");

    const bench::Budget budget = bench::Budget::from_env();
    const search::Objective objective{search::ObjectiveKind::kLatSp, 0.0,
                                      0.0};
    const hw::AcceleratorArch archs[] = {hw::AcceleratorArch::kTpu,
                                         hw::AcceleratorArch::kEyeriss};

    std::map<std::string, std::vector<double>> efficiency_by_method;
    std::uint64_t seed = 42000;

    TextTable table({"Scenario", "Method", "SP (cm^2)", "C",
                     "Latency (s)", "Energy eff."});
    for (const auto& net : dnn::table5_workloads()) {
        const dnn::Model model = dnn::make_model(net);
        for (auto arch : archs) {
            const std::string scenario =
                net + "/" + hw::to_string(arch);
            for (auto baseline : search::all_baselines()) {
                search::DesignSpace space = apply_baseline(
                    search::DesignSpace::future_aut(), baseline);
                space.search_arch = false;
                space.defaults.arch = arch;

                core::ChrysalisInputs inputs{
                    model, space, objective,
                    bench::make_options(budget, ++seed)};
                const core::Chrysalis tool(std::move(inputs));
                const core::AuTSolution solution = tool.generate();
                if (!solution.feasible) {
                    table.add_row({scenario, to_string(baseline), "-",
                                   "-", "-", "infeasible"});
                    continue;
                }
                // Efficiency in the brighter environment (matches the
                // paper's reporting convention).
                const double k_eh = 2e-3;
                sim::EnergyEnv env;
                env.p_eh_w = solution.hardware.solar_cm2 * k_eh;
                env.capacitor.capacitance_f =
                    solution.hardware.capacitance_f;
                const auto eval =
                    sim::analytic_evaluate(solution.cost, env);
                const double efficiency =
                    eval.feasible ? eval.system_efficiency : 0.0;
                efficiency_by_method[to_string(baseline)].push_back(
                    efficiency);
                table.add_row(
                    {scenario, to_string(baseline),
                     format_fixed(solution.hardware.solar_cm2, 1),
                     format_si(solution.hardware.capacitance_f, "F", 0),
                     format_fixed(solution.mean_latency_s, 2),
                     format_percent(efficiency)});
            }
        }
    }
    table.print(std::cout);

    std::cout << "\n=== Mean energy efficiency by method ===\n";
    TextTable summary({"Method", "Mean eff.", "Min eff.", "Scenarios"});
    for (auto baseline : search::all_baselines()) {
        const auto& samples = efficiency_by_method[to_string(baseline)];
        if (samples.empty())
            continue;
        const auto stats = summarize(samples);
        summary.add_row({to_string(baseline),
                         format_percent(stats.mean),
                         format_percent(stats.min),
                         std::to_string(samples.size())});
    }
    summary.print(std::cout);
    std::cout << "\nShape check: CHRYSALIS maintains a consistently high "
                 "efficiency floor across scenarios. As the paper notes, "
                 "it is not always the single highest ('some results may "
                 "have slightly lower energy efficiency') because the "
                 "lat*sp objective trades a little efficiency for the "
                 "product metric; the energy-blind baselines' mismatch "
                 "shows up in Fig. 10's latency/panel columns.\n";
    return 0;
}

/// \file
/// Figure 2(b): HAWAII-style intermittent inference on the MSP430
/// platform across capacitor sizes, for the three applications CNN_b,
/// CNN_s and FC.
///
/// Expected shape: small capacitors force many intermittent tiles
/// (checkpoint storms) and depress throughput; very large capacitors leak
/// more than the harvester supplies and the system becomes *unavailable*
/// ("Unavailability due to leakage current" in the paper's annotation).

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"
#include "sim/analytic_evaluator.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Figure 2(b)",
                        "HAWAII-style throughput vs capacitor size for "
                        "CNN_b / CNN_s / FC (2 cm^2 panel, darker "
                        "0.5 mW/cm^2 environment).");

    const hw::Msp430Lea mcu;
    constexpr double kPanelCm2 = 2.0;
    constexpr double kKeh = 0.5e-3;
    const double caps_f[] = {10e-6, 47e-6, 100e-6, 470e-6,
                             1e-3, 4.7e-3, 10e-3};
    const char* apps[] = {"cnn_b", "cnn_s", "fc"};

    TextTable table({"App", "C", "N_tile", "Ckpt frac", "Latency",
                     "Inferences/hour", "Status"});
    for (const char* app : apps) {
        const dnn::Model model = dnn::make_model(app);
        for (double cap : caps_f) {
            sim::EnergyEnv env;
            env.p_eh_w = kPanelCm2 * kKeh;
            env.capacitor.capacitance_f = cap;

            search::MappingSearchOptions options;
            options.max_candidates_per_dim = 6;
            const auto mapping =
                search_mappings(model, mcu, {env}, options);
            const auto eval = analytic_evaluate(mapping.cost, env);

            std::string status = "ok";
            std::string latency = "-";
            std::string throughput = "-";
            std::string ckpt_frac = "-";
            if (!eval.feasible) {
                status = eval.failure.code ==
                                 fault::FailureCode::kLeakageDominates
                             ? "UNAVAILABLE (leakage)"
                             : "infeasible";
            } else {
                latency = format_si(eval.latency_s, "s");
                throughput = format_fixed(3600.0 / eval.latency_s, 1);
                ckpt_frac = format_percent(
                    mapping.cost.e_ckpt_j /
                    mapping.cost.total_energy_j());
            }
            table.add_row({model.name(), format_si(cap, "F", 0),
                           std::to_string(mapping.cost.n_tile),
                           ckpt_frac, latency, throughput, status});
        }
    }
    table.print(std::cout);
    std::cout << "\nShape check: throughput peaks at mid-range capacitors;"
                 " the 10 mF point leaks ~1.2 mW at U_on against a 1 mW "
                 "harvest and is unavailable, matching the paper's "
                 "annotation.\n";
    return 0;
}

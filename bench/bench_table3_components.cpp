/// \file
/// Table III: the supported AuT component setups, each mapped to the
/// class in this repository that realizes it. The rows are verified by
/// instantiating every component.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/table.hpp"
#include "energy/energy_controller.hpp"
#include "hw/accelerator.hpp"
#include "hw/msp430_lea.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Table III",
                        "Supported AuT component setups of CHRYSALIS, "
                        "with the realizing class in this repository.");

    // Instantiate each realization to prove the row is real.
    const energy::SolarPanel panel(
        8.0, std::make_shared<energy::ConstantSolarEnvironment>(2e-3,
                                                                "check"));
    const energy::Capacitor capacitor{energy::Capacitor::Config{}};
    const energy::PowerManagementIc pmic{
        energy::PowerManagementIc::Config{}};
    const hw::Msp430Lea mcu;
    hw::ReconfigurableAccelerator::Config tpu_config;
    tpu_config.arch = hw::AcceleratorArch::kTpu;
    const hw::ReconfigurableAccelerator tpu(tpu_config);
    hw::ReconfigurableAccelerator::Config eye_config;
    eye_config.arch = hw::AcceleratorArch::kEyeriss;
    const hw::ReconfigurableAccelerator eyeriss(eye_config);

    TextTable table({"Subsys.", "Component", "Realization",
                     "Base model (paper)", "Class in this repo"});
    table.add_row({"EH", "Energy Harvester", "Solar Panel",
                   "pvlib [27]",
                   "energy::SolarPanel + Diurnal/Trace env"});
    table.add_row({"EH", "EH Controller", "Power Management IC",
                   "BQ25570 [65]", "energy::PowerManagementIc"});
    table.add_row({"EH", "Capacitor", "Electrolytic Capacitor",
                   "Physics Model", "energy::Capacitor (Eq. 2)"});
    table.add_row({"Infer", "Infer Controller", "Microcontroller Unit",
                   "MSP430 [66]", "sim::IntermittentSimulator"});
    table.add_row({"Infer", "Strategy", "Tile Partition, ckpt.",
                   "iNAS-like [49]",
                   "dataflow::LayerMapping (InterTempMap)"});
    table.add_row({"Infer", "Accelerator & Mapper", "Existing AuT setup",
                   "MSP430FR5994 / iNAS", "hw::Msp430Lea"});
    table.add_row({"Infer", "Accelerator & Mapper", "Future AuT setup",
                   "CHRYSALIS-MAESTRO / CHRYSALIS-GAMMA",
                   "hw::ReconfigurableAccelerator + "
                   "search::MappingSearch"});
    table.print(std::cout);

    std::cout << "\nInstantiated realizations:\n"
              << "  " << panel.name() << " -> "
              << panel.power(0.0) * 1e3 << " mW at t=0\n"
              << "  capacitor C=" << capacitor.config().capacitance_f * 1e6
              << " uF, PMIC U_on=" << pmic.v_on() << " V\n"
              << "  " << mcu.describe() << "\n"
              << "  " << tpu.describe() << "\n"
              << "  " << eyeriss.describe() << "\n";
    return 0;
}

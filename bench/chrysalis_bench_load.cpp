/// \file
/// Closed-loop load generator for the `chrysalis-serve-v1` daemon.
///
/// Drives a deterministic mixed workload (design-point evaluations,
/// mapping searches, step simulations and stats probes, drawn from
/// small parameter pools so the server's response cache sees realistic
/// repeat traffic) from N concurrent client connections, then reports
/// p50/p95/p99 request latency, throughput, cache-hit rate and the two
/// hard acceptance gates: zero dropped connections and byte-identical
/// replies versus a single-threaded reference server.
///
/// Usage:
///   chrysalis_bench_load [--host addr] [--port n] [--requests n]
///                        [--clients n] [--threads n] [--seed n]
///                        [--no-verify]
///
/// Without --port the bench starts its own in-process server
/// (`--threads` workers, default 4) on an ephemeral loopback port.
/// With --port it targets an externally started chrysalis_served (CI's
/// smoke job does this). The run report is BENCH_serve_load.json.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/string_utils.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace chrysalis;

struct LoadOptions {
    std::string host = "127.0.0.1";
    int port = 0;        ///< 0 = start an in-process server
    int requests = 500;
    int clients = 8;
    int threads = 4;     ///< in-process server eval workers
    std::uint64_t seed = 1;
    bool verify = true;  ///< replay against a 1-thread reference
};

void
usage(const char* argv0)
{
    std::printf("usage: %s [--host addr] [--port n] [--requests n]\n"
                "          [--clients n] [--threads n] [--seed n]\n"
                "          [--no-verify]\n",
                argv0);
}

bool
parse_args(int argc, char** argv, LoadOptions& options)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
                has_inline = true;
            }
        }
        const auto next = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--host") {
            options.host = next();
        } else if (arg == "--port") {
            options.port = std::stoi(next());
        } else if (arg == "--requests") {
            options.requests = std::stoi(next());
        } else if (arg == "--clients") {
            options.clients = std::stoi(next());
        } else if (arg == "--threads") {
            options.threads = std::stoi(next());
        } else if (arg == "--seed") {
            options.seed = std::stoull(next());
        } else if (arg == "--no-verify") {
            options.verify = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    if (options.requests < 1 || options.clients < 1 ||
        options.threads < 1)
        fatal("--requests, --clients and --threads must be >= 1");
    return true;
}

/// Builds the deterministic request payloads. Request i carries id i+1,
/// and parameters come from small pools so many requests repeat — the
/// repeat fraction is what exercises the shared response cache.
std::vector<std::string>
build_payloads(const LoadOptions& options)
{
    static const char* const kModels[] = {"kws", "har", "simple_conv"};
    static const char* const kObjectives[] = {"latsp", "lat", "sp"};
    static const double kSolar[] = {4.0, 6.0, 8.0, 10.0, 12.0};
    static const double kCap[] = {50e-6, 100e-6, 200e-6};

    Rng rng(options.seed);
    serve::Client builder;  // unconnected: used only for build_request
    std::vector<std::string> payloads;
    payloads.reserve(static_cast<std::size_t>(options.requests));
    for (int i = 0; i < options.requests; ++i) {
        // 60% design points, 25% mapping searches, 10% step sims, 5%
        // stats probes.
        const std::int64_t dice = rng.uniform_int(0, 19);
        FlatJsonFields params;
        std::string type;
        if (dice < 12) {
            type = "eval_design_point";
        } else if (dice < 17) {
            type = "eval_mapping";
        } else if (dice < 19) {
            type = "sim_step";
            params["runs"] = "1";
            params["step_s"] = "0.05";
        } else {
            type = "server_stats";
        }
        if (type != "server_stats") {
            params["model"] =
                kModels[rng.uniform_int(0, 2)];
            params["objective"] =
                kObjectives[rng.uniform_int(0, 2)];
            params["solar_cm2"] =
                format_double_17g(kSolar[rng.uniform_int(0, 4)]);
            params["capacitance_f"] =
                format_double_17g(kCap[rng.uniform_int(0, 2)]);
        }
        builder.set_next_id(static_cast<std::uint64_t>(i) + 1);
        payloads.push_back(builder.build_request(type, params));
    }
    return payloads;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int
main(int argc, char** argv)
{
    LoadOptions options;
    if (!parse_args(argc, argv, options))
        return 2;

    bench::begin_report(
        "serve_load",
        "closed-loop load test of the chrysalis-serve-v1 daemon", true,
        "serve_load");
    bench::print_banner(
        "serve_load",
        "closed-loop load test of the chrysalis-serve-v1 daemon");

    // Target server: external (--port) or in-process.
    std::unique_ptr<serve::Server> own_server;
    int port = options.port;
    if (port == 0) {
        serve::ServerOptions server_options;
        server_options.host = options.host;
        server_options.threads = options.threads;
        own_server = std::make_unique<serve::Server>(server_options);
        own_server->start();
        port = own_server->port();
        std::printf("in-process server on %s:%d (%d threads)\n",
                    options.host.c_str(), port, options.threads);
    } else {
        std::printf("targeting external server %s:%d\n",
                    options.host.c_str(), port);
    }

    const std::vector<std::string> payloads = build_payloads(options);
    const std::size_t total = payloads.size();
    std::vector<std::string> replies(total);
    std::vector<double> latencies(total, 0.0);
    std::atomic<std::size_t> cursor{0};
    std::atomic<int> transport_failures{0};

    // Closed loop: each client thread owns one connection and pulls the
    // next unsent request until the shared cursor runs out.
    runtime::ThreadPool clients(options.clients);
    obs::SpanTimer wall("bench/serve_load");
    clients.parallel_for(
        static_cast<std::size_t>(options.clients), [&](std::size_t) {
            serve::Client client;
            if (!client.connect(options.host, port, 120.0)) {
                transport_failures.fetch_add(1);
                return;
            }
            while (true) {
                const std::size_t i = cursor.fetch_add(1);
                if (i >= total)
                    return;
                obs::SpanTimer timer("bench/request");
                std::string reply;
                if (!client.send_frame(payloads[i]) ||
                    !client.recv_frame(reply)) {
                    transport_failures.fetch_add(1);
                    return;
                }
                latencies[i] = timer.elapsed_s();
                replies[i] = std::move(reply);
            }
        });
    const double wall_s = wall.elapsed_s();

    std::size_t completed = 0;
    std::size_t error_replies = 0;
    for (const std::string& reply : replies) {
        if (reply.empty())
            continue;
        ++completed;
        if (reply.find("\"ok\":0") != std::string::npos)
            ++error_replies;
    }

    // Cache-hit rate straight from the server.
    double cache_hit_rate = 0.0;
    std::uint64_t cache_hits = 0;
    {
        serve::Client probe;
        serve::Response stats;
        if (probe.connect(options.host, port, 120.0) &&
            probe.call("server_stats", {}, stats) && stats.ok) {
            json_get_double(stats.fields, "cache_hit_rate",
                            cache_hit_rate);
            json_get_uint64(stats.fields, "cache_hits", cache_hits);
        }
    }

    std::vector<double> sorted;
    sorted.reserve(completed);
    for (std::size_t i = 0; i < total; ++i) {
        if (!replies[i].empty())
            sorted.push_back(latencies[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    const double p50 = percentile(sorted, 0.50);
    const double p95 = percentile(sorted, 0.95);
    const double p99 = percentile(sorted, 0.99);
    const double throughput =
        wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;

    std::printf("%zu/%zu requests completed in %.3f s "
                "(%.1f req/s, %zu error replies)\n",
                completed, total, wall_s, throughput, error_replies);
    std::printf("latency p50 %.6f s  p95 %.6f s  p99 %.6f s\n", p50, p95,
                p99);
    std::printf("cache hit rate %.3f (%llu hits)\n", cache_hit_rate,
                static_cast<unsigned long long>(cache_hits));

    // Determinism gate: replay every eval request serially against a
    // fresh single-threaded server; identical request bytes must yield
    // identical reply bytes. server_stats replies report live state and
    // are exempt by design.
    std::size_t mismatches = 0;
    if (options.verify) {
        serve::ServerOptions reference_options;
        reference_options.host = "127.0.0.1";
        reference_options.threads = 1;
        serve::Server reference(reference_options);
        reference.start();
        serve::Client client;
        if (!client.connect("127.0.0.1", reference.port(), 120.0))
            fatal("cannot connect to the reference server");
        for (std::size_t i = 0; i < total; ++i) {
            if (replies[i].empty() ||
                payloads[i].find("\"type\":\"server_stats\"") !=
                    std::string::npos)
                continue;
            std::string reply;
            if (!client.send_frame(payloads[i]) ||
                !client.recv_frame(reply))
                fatal("reference server dropped a request");
            if (reply != replies[i]) {
                if (++mismatches <= 3)
                    std::fprintf(stderr,
                                 "MISMATCH on id %zu:\n  loaded:    "
                                 "%s\n  reference: %s\n",
                                 i + 1, replies[i].c_str(),
                                 reply.c_str());
            }
        }
        reference.stop();
        std::printf("determinism check: %zu mismatches\n", mismatches);
    }

    if (own_server != nullptr)
        own_server->stop();

    bench::headline("requests_completed", static_cast<double>(completed));
    bench::headline("throughput_rps", throughput);
    bench::headline("latency_p50_s", p50);
    bench::headline("latency_p95_s", p95);
    bench::headline("latency_p99_s", p99);
    bench::headline("cache_hit_rate", cache_hit_rate);
    bench::headline("error_replies", static_cast<double>(error_replies));
    bench::headline("dropped_connections",
                    static_cast<double>(transport_failures.load()));
    bench::headline("determinism_mismatches",
                    static_cast<double>(mismatches));

    const bool pass = completed == total &&
                      transport_failures.load() == 0 && mismatches == 0;
    std::printf("%s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}

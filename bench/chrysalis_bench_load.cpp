/// \file
/// Closed-loop load generator for the `chrysalis-serve-v1` daemon.
///
/// Drives a deterministic mixed workload (design-point evaluations,
/// mapping searches, step simulations and stats probes, drawn from
/// small parameter pools so the server's response cache sees realistic
/// repeat traffic) from N concurrent client connections, then reports
/// p50/p95/p99 request latency, throughput, cache-hit rate and the two
/// hard acceptance gates: zero dropped connections and byte-identical
/// replies versus a single-threaded reference server.
///
/// Usage:
///   chrysalis_bench_load [--host addr] [--port n] [--requests n]
///                        [--clients n] [--threads n] [--seed n]
///                        [--no-verify] [--chaos] [--chaos-seed n]
///
/// Without --port the bench starts its own in-process server
/// (`--threads` workers, default 4) on an ephemeral loopback port.
/// With --port it targets an externally started chrysalis_served (CI's
/// smoke job does this). The run report is BENCH_serve_load.json.
///
/// --chaos turns the run into a network chaos gate: the in-process
/// server gets a seed-deterministic `fault::NetFaultInjector` (torn
/// writes, delayed reads, mid-frame resets, accept stalls), a
/// `serve::ChaosProxy` with a second injector (plus connection
/// refusals) sits between the clients and the daemon, and the clients
/// switch to the resilient `Client::request()` path. The gates become:
/// 100% of requests must *eventually* succeed through retries, and
/// every reply must still be byte-identical to the chaos-free
/// single-threaded reference replay. The retry/timeout/chaos counters
/// land in the report.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/string_utils.hpp"
#include "fault/net_fault_injector.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/chaos_proxy.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace chrysalis;

struct LoadOptions {
    std::string host = "127.0.0.1";
    int port = 0;        ///< 0 = start an in-process server
    int requests = 500;
    int clients = 8;
    int threads = 4;     ///< in-process server eval workers
    std::uint64_t seed = 1;
    bool verify = true;  ///< replay against a 1-thread reference
    bool chaos = false;  ///< deterministic network-fault gate
    std::uint64_t chaos_seed = 0;  ///< 0 = derive from --seed
};

void
usage(const char* argv0)
{
    std::printf("usage: %s [--host addr] [--port n] [--requests n]\n"
                "          [--clients n] [--threads n] [--seed n]\n"
                "          [--no-verify] [--chaos] [--chaos-seed n]\n",
                argv0);
}

bool
parse_args(int argc, char** argv, LoadOptions& options)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
                has_inline = true;
            }
        }
        const auto next = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--host") {
            options.host = next();
        } else if (arg == "--port") {
            options.port = std::stoi(next());
        } else if (arg == "--requests") {
            options.requests = std::stoi(next());
        } else if (arg == "--clients") {
            options.clients = std::stoi(next());
        } else if (arg == "--threads") {
            options.threads = std::stoi(next());
        } else if (arg == "--seed") {
            options.seed = std::stoull(next());
        } else if (arg == "--no-verify") {
            options.verify = false;
        } else if (arg == "--chaos") {
            options.chaos = true;
        } else if (arg == "--chaos-seed") {
            options.chaos_seed = std::stoull(next());
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    if (options.requests < 1 || options.clients < 1 ||
        options.threads < 1)
        fatal("--requests, --clients and --threads must be >= 1");
    return true;
}

/// One deterministic request: the parsed form (the resilient client
/// rebuilds its payload from these) plus the exact wire payload request
/// i would carry — id i+1, so both paths emit identical bytes.
struct WorkItem {
    std::string type;
    FlatJsonFields params;
    std::string payload;
};

/// Builds the deterministic workload. Request i carries id i+1, and
/// parameters come from small pools so many requests repeat — the
/// repeat fraction is what exercises the shared response cache. Under
/// --chaos the stats probes are replaced by design points: only
/// memoized (retry-safe) types may ride a lossy network, and the 100%
/// completion gate needs every request to be retryable.
std::vector<WorkItem>
build_workload(const LoadOptions& options)
{
    static const char* const kModels[] = {"kws", "har", "simple_conv"};
    static const char* const kObjectives[] = {"latsp", "lat", "sp"};
    static const double kSolar[] = {4.0, 6.0, 8.0, 10.0, 12.0};
    static const double kCap[] = {50e-6, 100e-6, 200e-6};

    Rng rng(options.seed);
    serve::Client builder;  // unconnected: used only for build_request
    std::vector<WorkItem> items;
    items.reserve(static_cast<std::size_t>(options.requests));
    for (int i = 0; i < options.requests; ++i) {
        // 60% design points, 25% mapping searches, 10% step sims, 5%
        // stats probes.
        const std::int64_t dice = rng.uniform_int(0, 19);
        WorkItem item;
        if (dice < 12) {
            item.type = "eval_design_point";
        } else if (dice < 17) {
            item.type = "eval_mapping";
        } else if (dice < 19) {
            item.type = "sim_step";
            item.params["runs"] = "1";
            item.params["step_s"] = "0.05";
        } else {
            item.type = options.chaos ? "eval_design_point"
                                      : "server_stats";
        }
        if (item.type != "server_stats") {
            item.params["model"] =
                kModels[rng.uniform_int(0, 2)];
            item.params["objective"] =
                kObjectives[rng.uniform_int(0, 2)];
            item.params["solar_cm2"] =
                format_double_17g(kSolar[rng.uniform_int(0, 4)]);
            item.params["capacitance_f"] =
                format_double_17g(kCap[rng.uniform_int(0, 2)]);
        }
        builder.set_next_id(static_cast<std::uint64_t>(i) + 1);
        item.payload = builder.build_request(item.type, item.params);
        items.push_back(std::move(item));
    }
    return items;
}

/// Server-side chaos: torn/stalled reply writes, deferred reads,
/// occasional mid-frame resets and accept stalls.
fault::NetFaultSpec
server_chaos_spec(std::uint64_t seed)
{
    fault::NetFaultSpec spec;
    spec.seed = seed;
    spec.torn_write_probability = 0.15;
    spec.torn_write_chunk_bytes = 9;
    spec.torn_write_stall_s = 0.0005;
    spec.read_delay_probability = 0.10;
    spec.read_delay_s = 0.002;
    spec.reset_probability = 0.01;
    spec.accept_stall_probability = 0.05;
    spec.accept_stall_s = 0.005;
    return spec;
}

/// Client-facing chaos at the proxy: everything above plus refused
/// connections, at higher rates — this is the side the resilient
/// client must out-stubborn.
fault::NetFaultSpec
proxy_chaos_spec(std::uint64_t seed)
{
    fault::NetFaultSpec spec;
    spec.seed = seed;
    spec.connect_refusal_probability = 0.10;
    spec.torn_write_probability = 0.20;
    spec.torn_write_chunk_bytes = 7;
    spec.torn_write_stall_s = 0.0005;
    spec.read_delay_probability = 0.10;
    spec.read_delay_s = 0.002;
    spec.reset_probability = 0.02;
    spec.accept_stall_probability = 0.05;
    spec.accept_stall_s = 0.005;
    return spec;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int
main(int argc, char** argv)
{
    LoadOptions options;
    if (!parse_args(argc, argv, options))
        return 2;

    bench::begin_report(
        "serve_load",
        "closed-loop load test of the chrysalis-serve-v1 daemon", true,
        "serve_load");
    bench::print_banner(
        "serve_load",
        "closed-loop load test of the chrysalis-serve-v1 daemon");

    if (options.chaos && options.port != 0)
        fatal("--chaos requires the in-process server (omit --port): "
              "the injectors hook the server and a local proxy");
    const std::uint64_t chaos_seed =
        options.chaos_seed != 0 ? options.chaos_seed
                                : options.seed + 7791;

    // Chaos injectors outlive the server and proxy that borrow them.
    std::unique_ptr<fault::NetFaultInjector> server_chaos;
    std::unique_ptr<fault::NetFaultInjector> proxy_chaos;
    if (options.chaos) {
        server_chaos = std::make_unique<fault::NetFaultInjector>(
            server_chaos_spec(chaos_seed));
        proxy_chaos = std::make_unique<fault::NetFaultInjector>(
            proxy_chaos_spec(chaos_seed + 1));
        std::printf("chaos (server): %s\n",
                    server_chaos->describe().c_str());
        std::printf("chaos (proxy):  %s\n",
                    proxy_chaos->describe().c_str());
    }

    // Target server: external (--port) or in-process.
    std::unique_ptr<serve::Server> own_server;
    int port = options.port;
    if (port == 0) {
        serve::ServerOptions server_options;
        server_options.host = options.host;
        server_options.threads = options.threads;
        server_options.chaos = server_chaos.get();
        own_server = std::make_unique<serve::Server>(server_options);
        own_server->start();
        port = own_server->port();
        std::printf("in-process server on %s:%d (%d threads)\n",
                    options.host.c_str(), port, options.threads);
    } else {
        std::printf("targeting external server %s:%d\n",
                    options.host.c_str(), port);
    }

    // Under chaos the clients dial the proxy, not the daemon.
    std::unique_ptr<serve::ChaosProxy> proxy;
    int target_port = port;
    if (options.chaos) {
        serve::ChaosProxyOptions proxy_options;
        proxy_options.host = options.host;
        proxy_options.upstream_host = options.host;
        proxy_options.upstream_port = port;
        proxy_options.chaos = proxy_chaos.get();
        proxy = std::make_unique<serve::ChaosProxy>(proxy_options);
        proxy->start();
        target_port = proxy->port();
        std::printf("chaos proxy on %s:%d -> %d\n", options.host.c_str(),
                    target_port, port);
    }

    const std::vector<WorkItem> workload = build_workload(options);
    const std::size_t total = workload.size();
    std::vector<std::string> replies(total);
    std::vector<double> latencies(total, 0.0);
    std::atomic<std::size_t> cursor{0};
    std::atomic<int> transport_failures{0};
    serve::RetryStats retry_totals;
    Mutex retry_totals_mutex;

    // Closed loop: each client thread owns one connection and pulls the
    // next unsent request until the shared cursor runs out. Under chaos
    // the resilient request() path does the surviving: reconnects,
    // retries (all chaos-mode types are memoized, hence retry-safe),
    // deterministic backoff.
    runtime::ThreadPool clients(options.clients);
    obs::SpanTimer wall("bench/serve_load");
    clients.parallel_for(
        static_cast<std::size_t>(options.clients),
        [&](std::size_t client_index) {
            serve::ClientOptions client_options;
            client_options.connect_timeout_s = 5.0;
            client_options.request_timeout_s = 20.0;
            client_options.max_attempts = options.chaos ? 16 : 1;
            client_options.backoff_base_s = 0.002;
            client_options.backoff_max_s = 0.1;
            // The breaker stays out of the gate run: under a lossy
            // schedule it would fast-fail requests the gate requires
            // to eventually succeed. Its behavior is unit-tested.
            client_options.circuit_breaker_threshold = 0;
            client_options.retry_seed = chaos_seed + 100 + client_index;
            serve::Client client(client_options);
            if (!client.connect(options.host, target_port) &&
                !options.chaos) {
                transport_failures.fetch_add(1);
                return;
            }
            while (true) {
                const std::size_t i = cursor.fetch_add(1);
                if (i >= total)
                    break;
                obs::SpanTimer timer("bench/request");
                if (options.chaos) {
                    client.set_next_id(static_cast<std::uint64_t>(i) + 1);
                    serve::Response response;
                    const serve::CallStatus status = client.request(
                        workload[i].type, workload[i].params, response);
                    if (status != serve::CallStatus::kOk) {
                        std::fprintf(stderr,
                                     "request id %zu lost: %s\n", i + 1,
                                     serve::to_string(status));
                        transport_failures.fetch_add(1);
                        continue;
                    }
                    latencies[i] = timer.elapsed_s();
                    replies[i] = response.raw;
                    continue;
                }
                std::string reply;
                if (!client.send_frame(workload[i].payload) ||
                    !client.recv_frame(reply)) {
                    transport_failures.fetch_add(1);
                    return;
                }
                latencies[i] = timer.elapsed_s();
                replies[i] = std::move(reply);
            }
            MutexLock lock(retry_totals_mutex);
            const serve::RetryStats& stats = client.retry_stats();
            retry_totals.attempts += stats.attempts;
            retry_totals.retries += stats.retries;
            retry_totals.reconnects += stats.reconnects;
            retry_totals.timeouts += stats.timeouts;
            retry_totals.transport_errors += stats.transport_errors;
            retry_totals.protocol_errors += stats.protocol_errors;
        });
    const double wall_s = wall.elapsed_s();

    std::size_t completed = 0;
    std::size_t error_replies = 0;
    for (const std::string& reply : replies) {
        if (reply.empty())
            continue;
        ++completed;
        if (reply.find("\"ok\":0") != std::string::npos)
            ++error_replies;
    }

    // Cache-hit rate straight from the server.
    double cache_hit_rate = 0.0;
    std::uint64_t cache_hits = 0;
    {
        serve::Client probe;
        serve::Response stats;
        if (probe.connect(options.host, port, 120.0) &&
            probe.call("server_stats", {}, stats) && stats.ok) {
            json_get_double(stats.fields, "cache_hit_rate",
                            cache_hit_rate);
            json_get_uint64(stats.fields, "cache_hits", cache_hits);
        }
    }

    std::vector<double> sorted;
    sorted.reserve(completed);
    for (std::size_t i = 0; i < total; ++i) {
        if (!replies[i].empty())
            sorted.push_back(latencies[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    const double p50 = percentile(sorted, 0.50);
    const double p95 = percentile(sorted, 0.95);
    const double p99 = percentile(sorted, 0.99);
    const double throughput =
        wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;

    std::printf("%zu/%zu requests completed in %.3f s "
                "(%.1f req/s, %zu error replies)\n",
                completed, total, wall_s, throughput, error_replies);
    std::printf("latency p50 %.6f s  p95 %.6f s  p99 %.6f s\n", p50, p95,
                p99);
    std::printf("cache hit rate %.3f (%llu hits)\n", cache_hit_rate,
                static_cast<unsigned long long>(cache_hits));

    // Determinism gate: replay every eval request serially against a
    // fresh single-threaded server; identical request bytes must yield
    // identical reply bytes. server_stats replies report live state and
    // are exempt by design.
    std::size_t mismatches = 0;
    if (options.verify) {
        serve::ServerOptions reference_options;
        reference_options.host = "127.0.0.1";
        reference_options.threads = 1;
        serve::Server reference(reference_options);
        reference.start();
        serve::Client client;
        if (!client.connect("127.0.0.1", reference.port(), 120.0))
            fatal("cannot connect to the reference server");
        for (std::size_t i = 0; i < total; ++i) {
            if (replies[i].empty() ||
                workload[i].type == "server_stats")
                continue;
            std::string reply;
            if (!client.send_frame(workload[i].payload) ||
                !client.recv_frame(reply))
                fatal("reference server dropped a request");
            if (reply != replies[i]) {
                if (++mismatches <= 3)
                    std::fprintf(stderr,
                                 "MISMATCH on id %zu:\n  loaded:    "
                                 "%s\n  reference: %s\n",
                                 i + 1, replies[i].c_str(),
                                 reply.c_str());
            }
        }
        reference.stop();
        std::printf("determinism check: %zu mismatches\n", mismatches);
    }

    if (proxy != nullptr)
        proxy->stop();
    if (own_server != nullptr)
        own_server->stop();

    bench::headline("requests_completed", static_cast<double>(completed));
    bench::headline("throughput_rps", throughput);
    bench::headline("latency_p50_s", p50);
    bench::headline("latency_p95_s", p95);
    bench::headline("latency_p99_s", p99);
    bench::headline("cache_hit_rate", cache_hit_rate);
    bench::headline("error_replies", static_cast<double>(error_replies));
    bench::headline("dropped_connections",
                    static_cast<double>(transport_failures.load()));
    bench::headline("determinism_mismatches",
                    static_cast<double>(mismatches));
    bench::headline("chaos_enabled", options.chaos ? 1.0 : 0.0);
    if (options.chaos) {
        bench::headline("client_attempts",
                        static_cast<double>(retry_totals.attempts));
        bench::headline("client_retries",
                        static_cast<double>(retry_totals.retries));
        bench::headline("client_reconnects",
                        static_cast<double>(retry_totals.reconnects));
        bench::headline("client_timeouts",
                        static_cast<double>(retry_totals.timeouts));
        bench::headline(
            "client_transport_errors",
            static_cast<double>(retry_totals.transport_errors));
        const fault::NetFaultInjector::ActivationCounts server_hits =
            server_chaos->activation_counts();
        const fault::NetFaultInjector::ActivationCounts proxy_hits =
            proxy_chaos->activation_counts();
        bench::headline("chaos_torn_writes",
                        static_cast<double>(server_hits.torn_writes +
                                            proxy_hits.torn_writes));
        bench::headline("chaos_resets",
                        static_cast<double>(server_hits.resets +
                                            proxy_hits.resets));
        bench::headline("chaos_read_delays",
                        static_cast<double>(server_hits.read_delays +
                                            proxy_hits.read_delays));
        bench::headline(
            "chaos_connect_refusals",
            static_cast<double>(server_hits.connect_refusals +
                                proxy_hits.connect_refusals));
        bench::headline("chaos_accept_stalls",
                        static_cast<double>(server_hits.accept_stalls +
                                            proxy_hits.accept_stalls));
        bench::headline("chaos_activations_total",
                        static_cast<double>(server_hits.total() +
                                            proxy_hits.total()));
        std::printf("chaos: %llu retries, %llu reconnects, %llu "
                    "timeouts over %llu activations\n",
                    static_cast<unsigned long long>(
                        retry_totals.retries),
                    static_cast<unsigned long long>(
                        retry_totals.reconnects),
                    static_cast<unsigned long long>(
                        retry_totals.timeouts),
                    static_cast<unsigned long long>(
                        server_hits.total() + proxy_hits.total()));
    }

    // The gates are identical with and without chaos: every request
    // completed (under chaos: *eventually*, through retries), no
    // request-level failures, and byte-identical replies versus the
    // chaos-free single-threaded reference.
    const bool pass = completed == total &&
                      transport_failures.load() == 0 && mismatches == 0;
    std::printf("%s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}

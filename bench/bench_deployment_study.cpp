/// \file
/// Deployment study (beyond the paper's single-inference evaluation):
/// drives the CHRYSALIS-designed HAR node through a week of Markov
/// weather with periodic inference requests, and contrasts it against
/// the iNAS-style original configuration under identical weather. This
/// turns the paper's latency improvements into the quantity a deployer
/// cares about: inferences actually served per day.

#include <iostream>

#include "common/bench_util.hpp"
#include "common/string_utils.hpp"
#include "common/table.hpp"
#include "core/deployment.hpp"
#include "dnn/model_zoo.hpp"

int
main()
{
    using namespace chrysalis;
    bench::print_banner("Deployment study",
                        "One week of Markov weather, one HAR inference "
                        "request every 30 min: CHRYSALIS design vs the "
                        "iNAS original configuration.");

    const bench::Budget budget = bench::Budget::from_env();
    core::ChrysalisInputs inputs{
        dnn::make_har_cnn(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        bench::make_options(budget, 808)};
    const core::Chrysalis tool(std::move(inputs));
    const core::AuTSolution designed = tool.generate();
    const core::AuTSolution reference =
        tool.evaluate_candidate(bench::inas_reference_candidate());
    if (!designed.feasible || !reference.feasible) {
        std::cout << "search failed to produce comparable designs\n";
        return 1;
    }

    energy::MarkovWeatherEnvironment::Config weather_config;
    weather_config.diurnal.cloud_depth = 0.2;
    const energy::MarkovWeatherEnvironment weather(weather_config);

    core::DeploymentConfig study;
    study.days = 7;
    study.request_interval_s = 1800.0;
    study.deadline_s = 60.0;
    study.sim.step_s = 0.1;

    const auto designed_report = core::simulate_deployment(
        designed, weather, energy::PowerManagementIc::Config{}, study);
    const auto reference_report = core::simulate_deployment(
        reference, weather, energy::PowerManagementIc::Config{}, study);

    TextTable table({"Design", "SP (cm^2)", "C", "Completed",
                     "On time", "Harvested"});
    const auto add = [&](const char* label,
                         const core::AuTSolution& solution,
                         const core::DeploymentReport& report) {
        table.add_row({label,
                       format_fixed(solution.hardware.solar_cm2, 1),
                       format_si(solution.hardware.capacitance_f, "F", 0),
                       format_percent(report.completion_rate),
                       format_percent(report.deadline_rate),
                       format_si(report.total_harvested_j, "J")});
    };
    add("CHRYSALIS", designed, designed_report);
    add("iNAS original", reference, reference_report);
    table.print(std::cout);

    std::cout << "\nPer-day service (CHRYSALIS design):\n"
              << designed_report.summary();
    std::cout << "\nShape check: the co-designed node serves at least as "
                 "large a fraction of requests within the deadline as "
                 "the iNAS configuration under identical weather.\n";
    return designed_report.deadline_rate + 1e-9 >=
                   reference_report.deadline_rate
               ? 0
               : 1;
}

/// \file
/// Rate-limited progress heartbeat for long-running batch work.
///
/// `run_campaign` can take minutes to hours; the ProgressReporter emits
/// periodic one-line status records — cases done/total, percentage, an
/// ETA extrapolated from throughput so far, and the retry/crash/resume
/// counts — through the logging sink at `kInform` level. With the
/// default `kWarn` threshold the heartbeat is silent; set
/// `CHRYSALIS_LOG_LEVEL=info` (or call `set_log_level`) to see it.
/// Thread-safe: campaign workers report completions concurrently.

#ifndef CHRYSALIS_OBS_PROGRESS_HPP
#define CHRYSALIS_OBS_PROGRESS_HPP

#include <chrono>
#include <cstddef>
#include <string>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace chrysalis::obs {

/// Heartbeat over a fixed amount of work items.
class ProgressReporter
{
  public:
    struct Options {
        /// Minimum seconds between heartbeat lines (0 = every event).
        /// Constructor-initialized (not a default member initializer) so
        /// the `Options()` default argument below is usable inside the
        /// still-incomplete enclosing class.
        double min_interval_s;
        Options() : min_interval_s(5.0) {}
    };

    ProgressReporter(std::string task, std::size_t total,
                     Options options = Options());

    /// Marks \p delta items finished; may emit a heartbeat line.
    void advance(std::size_t delta = 1) CHRYSALIS_EXCLUDES(mutex_);

    /// Counts an evaluation retry / a case that exhausted its retries /
    /// an item restored from a resume journal. Reflected in the
    /// heartbeat and final summary lines.
    void note_retry(std::size_t delta = 1) CHRYSALIS_EXCLUDES(mutex_);
    void note_crash() CHRYSALIS_EXCLUDES(mutex_);
    void note_restored() CHRYSALIS_EXCLUDES(mutex_);

    /// Free-form context appended to every subsequent heartbeat line
    /// (the dist coordinator's per-worker lane summary). Empty clears.
    void set_detail(std::string detail) CHRYSALIS_EXCLUDES(mutex_);

    /// Emits the final summary line (always, regardless of the rate
    /// limit). Idempotent.
    void finish() CHRYSALIS_EXCLUDES(mutex_);

    /// Number of heartbeat/summary lines emitted so far.
    std::size_t reports_emitted() const CHRYSALIS_EXCLUDES(mutex_);

  private:
    /// Formats the current status from the guarded counters.
    std::string format_line_locked(bool final) const
        CHRYSALIS_REQUIRES(mutex_);
    /// Stamps the rate limiter and logs one line.
    void emit_locked(bool final) CHRYSALIS_REQUIRES(mutex_);

    const std::string task_;
    const std::size_t total_;
    const Options options_;
    const std::chrono::steady_clock::time_point start_;

    mutable Mutex mutex_;
    std::size_t done_ CHRYSALIS_GUARDED_BY(mutex_) = 0;
    std::size_t retries_ CHRYSALIS_GUARDED_BY(mutex_) = 0;
    std::size_t crashes_ CHRYSALIS_GUARDED_BY(mutex_) = 0;
    std::size_t restored_ CHRYSALIS_GUARDED_BY(mutex_) = 0;
    std::size_t reports_ CHRYSALIS_GUARDED_BY(mutex_) = 0;
    std::string detail_ CHRYSALIS_GUARDED_BY(mutex_);
    bool finished_ CHRYSALIS_GUARDED_BY(mutex_) = false;
    std::chrono::steady_clock::time_point last_emit_
        CHRYSALIS_GUARDED_BY(mutex_);
};

}  // namespace chrysalis::obs

#endif  // CHRYSALIS_OBS_PROGRESS_HPP

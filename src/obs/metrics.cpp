#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hpp"
#include "common/string_utils.hpp"

#if defined(__linux__)
#include <time.h>
#endif

namespace chrysalis::obs {

namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};

const char*
kind_name(bool counter, bool gauge)
{
    return counter ? "counter" : gauge ? "gauge" : "histogram";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        fatal("Histogram: bucket bounds must be sorted ascending");
    buckets_.reserve(bounds_.size() + 1);
    for (std::size_t i = 0; i < bounds_.size() + 1; ++i)
        buckets_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
}

void
Histogram::record(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket]->fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);

    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value,
                                       std::memory_order_relaxed)) {
    }
    double current = min_.load(std::memory_order_relaxed);
    while (value < current &&
           !min_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
    current = max_.load(std::memory_order_relaxed);
    while (value > current &&
           !max_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t>
Histogram::bucket_counts() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(buckets_.size());
    for (const auto& bucket : buckets_)
        counts.push_back(bucket->load(std::memory_order_relaxed));
    return counts;
}

double
Histogram::min() const
{
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::vector<double>
decade_bounds()
{
    std::vector<double> bounds;
    for (int exponent = -6; exponent <= 12; ++exponent)
        bounds.push_back(std::pow(10.0, exponent));
    return bounds;
}

std::vector<double>
latency_bounds()
{
    std::vector<double> bounds;
    for (int exponent = -5; exponent <= 1; ++exponent) {
        for (const double mantissa : {1.0, 2.0, 5.0})
            bounds.push_back(mantissa * std::pow(10.0, exponent));
    }
    bounds.push_back(100.0);
    return bounds;
}

MetricsRegistry::Entry&
MetricsRegistry::entry_for(std::string_view name, Kind kind,
                           Stability stability)
{
    MutexLock lock(mutex_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) {
        if (it->second.kind != kind) {
            fatal("MetricsRegistry: metric '", name,
                  "' already registered as a ",
                  kind_name(it->second.kind == Kind::kCounter,
                            it->second.kind == Kind::kGauge),
                  ", now requested as a ",
                  kind_name(kind == Kind::kCounter, kind == Kind::kGauge),
                  " — instrumentation sites must agree on a metric's kind");
        }
        if (it->second.stability != stability) {
            fatal("MetricsRegistry: metric '", name,
                  "' re-registered with a different stability — a metric "
                  "is either reproducible across thread counts or not");
        }
        return it->second;
    }
    Entry entry;
    entry.kind = kind;
    entry.stability = stability;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        break;  // constructed by histogram(), which has the bounds
    }
    return entries_.emplace(std::string(name), std::move(entry))
        .first->second;
}

Counter&
MetricsRegistry::counter(std::string_view name, Stability stability)
{
    return *entry_for(name, Kind::kCounter, stability).counter;
}

Gauge&
MetricsRegistry::gauge(std::string_view name, Stability stability)
{
    return *entry_for(name, Kind::kGauge, stability).gauge;
}

Histogram&
MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                           Stability stability)
{
    Entry& entry = entry_for(name, Kind::kHistogram, stability);
    // First registration constructs with this caller's bounds; later
    // callers' bounds are ignored (the name identifies the metric).
    MutexLock lock(mutex_);
    if (!entry.histogram)
        entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    return *entry.histogram;
}

std::vector<MetricSample>
MetricsRegistry::samples() const
{
    // Snapshot under the registration lock: values keep ticking while we
    // read (each read is an independent relaxed load — the report is a
    // consistent *per-metric* snapshot, which is all a post-run report
    // needs), but the map itself must not be mutated mid-iteration.
    MutexLock lock(mutex_);
    std::vector<MetricSample> samples;
    samples.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
        MetricSample sample;
        sample.name = name;
        sample.stability = entry.stability;
        switch (entry.kind) {
          case Kind::kCounter:
            sample.kind = MetricKind::kCounter;
            sample.count = entry.counter->value();
            break;
          case Kind::kGauge:
            sample.kind = MetricKind::kGauge;
            sample.value = entry.gauge->value();
            break;
          case Kind::kHistogram:
            if (!entry.histogram)
                continue;  // registered but never constructed
            sample.kind = MetricKind::kHistogram;
            sample.count = entry.histogram->count();
            sample.sum = entry.histogram->sum();
            sample.min = entry.histogram->min();
            sample.max = entry.histogram->max();
            sample.bounds = entry.histogram->bounds();
            sample.counts = entry.histogram->bucket_counts();
            break;
        }
        samples.push_back(std::move(sample));
    }
    return samples;
}

std::string
samples_to_json(std::vector<MetricSample> samples, ReportMode mode)
{
    std::sort(samples.begin(), samples.end(),
              [](const MetricSample& a, const MetricSample& b) {
                  return a.name < b.name;
              });

    const auto write_group = [&](std::ostringstream& os,
                                 Stability stability, bool with_sums) {
        os << "{\"counters\":{";
        bool first = true;
        for (const auto& sample : samples) {
            if (sample.kind != MetricKind::kCounter ||
                sample.stability != stability)
                continue;
            os << (first ? "" : ",") << '"' << sample.name
               << "\":" << sample.count;
            first = false;
        }
        os << "},\"gauges\":{";
        first = true;
        for (const auto& sample : samples) {
            if (sample.kind != MetricKind::kGauge ||
                sample.stability != stability)
                continue;
            os << (first ? "" : ",") << '"' << sample.name
               << "\":" << format_double_17g(sample.value);
            first = false;
        }
        os << "},\"histograms\":{";
        first = true;
        for (const auto& sample : samples) {
            if (sample.kind != MetricKind::kHistogram ||
                sample.stability != stability)
                continue;
            os << (first ? "" : ",") << '"' << sample.name
               << "\":{\"count\":" << sample.count;
            if (with_sums)
                os << ",\"sum\":" << format_double_17g(sample.sum);
            os << ",\"min\":" << format_double_17g(sample.min)
               << ",\"max\":" << format_double_17g(sample.max)
               << ",\"bounds\":[";
            for (std::size_t i = 0; i < sample.bounds.size(); ++i)
                os << (i == 0 ? "" : ",")
                   << format_double_17g(sample.bounds[i]);
            os << "],\"counts\":[";
            for (std::size_t i = 0; i < sample.counts.size(); ++i)
                os << (i == 0 ? "" : ",") << sample.counts[i];
            os << "]}";
            first = false;
        }
        os << "}}";
    };

    std::ostringstream os;
    os << "{\"schema\":\"chrysalis-metrics-v1\",\"stable\":";
    // Stable metrics never include order-dependent sums, so the stable
    // section is byte-identical at any thread count even in full mode.
    write_group(os, Stability::kStable, /*with_sums=*/false);
    if (mode == ReportMode::kFull) {
        os << ",\"volatile\":";
        write_group(os, Stability::kVolatile, /*with_sums=*/true);
    }
    os << "}\n";
    return os.str();
}

double
histogram_quantile(const std::vector<double>& bounds,
                   const std::vector<std::uint64_t>& counts,
                   double quantile)
{
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts)
        total += c;
    if (total == 0 || bounds.empty())
        return 0.0;
    const double clamped = std::min(std::max(quantile, 0.0), 1.0);
    // Rank of the quantile observation, 1-based: ceil(q * total).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(clamped * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cumulative += counts[i];
        if (cumulative >= rank) {
            // The overflow bucket has no upper edge; clamp to the last
            // finite one — the histogram cannot resolve beyond it.
            return i < bounds.size() ? bounds[i] : bounds.back();
        }
    }
    return bounds.back();
}

std::string
MetricsRegistry::to_json(ReportMode mode) const
{
    return samples_to_json(samples(), mode);
}

void
MetricsRegistry::write_json_file(const std::string& path,
                                 ReportMode mode) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("MetricsRegistry: cannot open '", path, "' for writing");
    out << to_json(mode);
    out.flush();
    if (!out)
        fatal("MetricsRegistry: failed writing metrics report to '", path,
              "'");
}

MetricsRegistry*
metrics()
{
    return g_metrics.load(std::memory_order_acquire);
}

void
attach_metrics(MetricsRegistry* registry)
{
    g_metrics.store(registry, std::memory_order_release);
}

double
thread_cpu_seconds()
{
#if defined(__linux__)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return 0.0;
}

}  // namespace chrysalis::obs

#include "obs/progress.hpp"

#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace chrysalis::obs {

namespace {

/// Compact duration: "42s", "3.5m", "2.1h".
std::string
format_duration(double seconds)
{
    std::ostringstream os;
    os.precision(3);
    if (seconds < 60.0)
        os << std::round(seconds) << 's';
    else if (seconds < 3600.0)
        os << std::round(seconds / 6.0) / 10.0 << 'm';
    else
        os << std::round(seconds / 360.0) / 10.0 << 'h';
    return os.str();
}

}  // namespace

ProgressReporter::ProgressReporter(std::string task, std::size_t total,
                                   Options options)
    : task_(std::move(task)), total_(total), options_(options),
      start_(std::chrono::steady_clock::now()), last_emit_(start_)
{
    if (!(options_.min_interval_s >= 0.0))
        fatal("ProgressReporter: min_interval_s must be >= 0, got ",
              options_.min_interval_s);
}

void
ProgressReporter::advance(std::size_t delta)
{
    MutexLock lock(mutex_);
    done_ += delta;
    const auto now = std::chrono::steady_clock::now();
    const double since_last =
        std::chrono::duration<double>(now - last_emit_).count();
    // The last item's line is finish()'s job, so a campaign never logs
    // the same 100% state twice.
    if (done_ < total_ && since_last >= options_.min_interval_s)
        emit_locked(false);
}

void
ProgressReporter::note_retry(std::size_t delta)
{
    MutexLock lock(mutex_);
    retries_ += delta;
}

void
ProgressReporter::note_crash()
{
    MutexLock lock(mutex_);
    ++crashes_;
}

void
ProgressReporter::note_restored()
{
    MutexLock lock(mutex_);
    ++restored_;
}

void
ProgressReporter::set_detail(std::string detail)
{
    MutexLock lock(mutex_);
    detail_ = std::move(detail);
}

void
ProgressReporter::finish()
{
    MutexLock lock(mutex_);
    if (finished_)
        return;
    finished_ = true;
    emit_locked(true);
}

std::size_t
ProgressReporter::reports_emitted() const
{
    MutexLock lock(mutex_);
    return reports_;
}

std::string
ProgressReporter::format_line_locked(bool final) const
{
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    std::ostringstream os;
    os << task_ << ": " << done_ << '/' << total_;
    if (total_ > 0) {
        os << " ("
           << std::llround(100.0 * static_cast<double>(done_) /
                           static_cast<double>(total_))
           << "%)";
    }
    if (final) {
        os << " done in " << format_duration(elapsed);
    } else {
        // ETA from throughput so far; journal-restored items finish in
        // microseconds, so exclude them from the rate estimate.
        const std::size_t worked = done_ > restored_ ? done_ - restored_ : 0;
        if (worked > 0 && done_ < total_) {
            const double rate = static_cast<double>(worked) / elapsed;
            const double eta =
                static_cast<double>(total_ - done_) / rate;
            os << " eta " << format_duration(eta);
        }
    }
    if (retries_ > 0)
        os << " retries=" << retries_;
    if (crashes_ > 0)
        os << " crashed=" << crashes_;
    if (restored_ > 0)
        os << " restored=" << restored_;
    if (!detail_.empty())
        os << ' ' << detail_;
    return os.str();
}

void
ProgressReporter::emit_locked(bool final)
{
    last_emit_ = std::chrono::steady_clock::now();
    ++reports_;
    inform(format_line_locked(final));
}

}  // namespace chrysalis::obs

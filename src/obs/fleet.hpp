/// \file
/// Fleet telemetry merge: combines per-worker trace events and metric
/// samples — pulled over `chrysalis-serve-v1` by the dist layer — into
/// one clock-aligned Chrome trace and one key-namespaced metrics
/// rollup.
///
/// The correctness crux is clock alignment. Every process timestamps
/// spans against its own `monotonic_seconds()` epoch ("the first call
/// in that process"), so raw timestamps from two workers are not
/// comparable at all. The dist layer estimates each worker's offset
/// from a health-probe RTT midpoint (`clock_offset_from_probe`), the
/// collector shifts each worker's events by its offset onto the
/// coordinator's timeline, re-bases the merged set so the earliest
/// span starts at 0, and clamps any residual negative duration to
/// zero (offsets are estimates with ±RTT/2 error; a merged trace must
/// never show time running backwards). Workers appear as separate
/// Chrome-trace processes, named by their worker_id.
///
/// This module is pure data transformation — no sockets, no protocol.
/// Pulling lives in src/dist/fleet_telemetry.hpp (dist may depend on
/// obs; never the reverse).

#ifndef CHRYSALIS_OBS_FLEET_HPP
#define CHRYSALIS_OBS_FLEET_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chrysalis::obs {

/// Everything pulled (or locally gathered) from one fleet member.
struct WorkerTelemetry {
    std::string worker_id;
    /// Seconds to ADD to this worker's event timestamps to land on the
    /// collector's reference timeline. For a pulled worker this is
    /// `session-epoch -> worker-monotonic` skew (exact, reported by
    /// trace_export as mono_skew_s) plus the probe-estimated
    /// `worker-monotonic -> local-monotonic` offset; for the
    /// coordinator's own session it is just the exact skew.
    double clock_offset_s = 0.0;
    std::vector<TraceEvent> events;    ///< session-epoch timestamps
    std::vector<MetricSample> metrics;
    std::uint64_t dropped_events = 0;  ///< worker-side cap casualties
};

/// Offset estimate from one request/reply round trip: the reply's
/// remote `monotonic_seconds()` reading is assumed taken at the RTT
/// midpoint, so `local_monotonic ≈ remote_monotonic + offset`. Error
/// is bounded by ±RTT/2 (asymmetric paths); FleetCollector clamps the
/// residue.
double clock_offset_from_probe(double local_send_s, double local_recv_s,
                               double remote_mono_now_s);

/// Merges worker telemetry into one aligned trace + metrics rollup.
/// Not thread-safe; build on one thread after the campaign quiesces.
class FleetCollector
{
  public:
    /// One event after alignment, with its owning worker index.
    struct AlignedEvent {
        std::size_t worker = 0;  ///< index into workers()
        TraceEvent event;        ///< start_us re-based, duration >= 0
    };

    void add_worker(WorkerTelemetry telemetry);

    const std::vector<WorkerTelemetry>& workers() const
    {
        return workers_;
    }

    /// Every event shifted by its worker's clock_offset_s, re-based so
    /// the earliest start is 0, negative durations clamped to 0 (count
    /// reported via \p clamped when non-null). Sorted by (worker, tid,
    /// start, depth) for a stable order.
    std::vector<AlignedEvent> aligned(std::uint64_t* clamped = nullptr)
        const;

    /// Total events across workers.
    std::uint64_t event_count() const;

    /// Writes the merged Chrome trace: one process per worker (pid =
    /// worker index, process_name metadata = worker_id) plus the
    /// aligned "X" events. Deterministic for fixed inputs.
    void write_chrome_trace(std::ostream& out) const;

    /// write_chrome_trace to \p path; fatal() when unwritable.
    void write_chrome_trace_file(const std::string& path) const;

    /// The fleet metrics rollup as a `chrysalis-metrics-v1` document:
    /// every worker sample re-keyed `fleet/<worker_id>/<name>` plus
    /// cross-worker aggregates under `fleet/total/<name>` (counters
    /// and histograms with matching bounds sum; gauges sum; histograms
    /// with mismatched bounds are skipped from totals) and a
    /// `fleet/workers` counter.
    std::string metrics_rollup_json(ReportMode mode = ReportMode::kFull)
        const;

    /// metrics_rollup_json to \p path; fatal() when unwritable.
    void write_metrics_rollup_file(
        const std::string& path,
        ReportMode mode = ReportMode::kFull) const;

  private:
    std::vector<WorkerTelemetry> workers_;
};

/// Flat-text codecs for shipping events/samples through flat-JSON
/// reply fields (one encoded record per field value). Doubles go
/// through format_double_17g so records round-trip bit-identically.
std::string encode_trace_event(const TraceEvent& event);
/// Returns false (leaving \p out untouched) on malformed input.
bool decode_trace_event(const std::string& text, TraceEvent& out);
std::string encode_metric_sample(const MetricSample& sample);
/// Returns false (leaving \p out untouched) on malformed input.
bool decode_metric_sample(const std::string& text, MetricSample& out);

}  // namespace chrysalis::obs

#endif  // CHRYSALIS_OBS_FLEET_HPP

/// \file
/// Scoped tracing spans with Chrome trace-event export.
///
/// `OBS_SPAN("ga/generation")` opens a span that records hierarchical
/// wall time onto a per-thread buffer of the attached `TraceSession`;
/// `TraceSession::write_chrome_trace()` merges every thread's buffer
/// (thread-safe) into a `chrome://tracing` / Perfetto-loadable JSON
/// file. With no session attached a span is two relaxed atomic loads —
/// no clock read, no allocation — so leaving the macros in hot-ish
/// paths (one span per GA generation, per inner mapping search, per
/// campaign case) costs nothing in production runs.
///
/// Concurrency contract: spans may open and close on any thread while a
/// session is attached. Attaching, detaching, flushing and destroying a
/// session must happen while no instrumented code is running
/// concurrently (attach before spawning work, flush after joining) —
/// the same quiescence rule as `obs::attach_metrics`.

#ifndef CHRYSALIS_OBS_TRACE_HPP
#define CHRYSALIS_OBS_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace chrysalis::obs {

/// One completed span ("X" complete event in the Chrome trace format).
struct TraceEvent {
    std::string name;
    std::uint32_t tid = 0;    ///< session-local thread id (registration
                              ///< order, not an OS tid)
    std::uint32_t depth = 0;  ///< nesting depth on its thread (0 = root)
    // Chrome's trace-event JSON schema mandates microsecond timestamps;
    // keeping these fields in the emitted unit avoids a lossy convert
    // at every span record.
    // NOLINTNEXTLINE(chrysalis-unit-suffix): Chrome trace spec uses us
    double start_us = 0.0;    ///< relative to the session epoch
    // NOLINTNEXTLINE(chrysalis-unit-suffix): Chrome trace spec uses us
    double duration_us = 0.0;
};

/// Collects spans from all threads; owns the per-thread buffers.
class TraceSession
{
  public:
    TraceSession();
    ~TraceSession();  ///< detaches itself if still the current session
    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    /// All recorded events, merged across threads and sorted by
    /// (tid, start, depth) for a stable order. Quiescence required.
    std::vector<TraceEvent> merged() const;

    /// Writes the merged events as Chrome trace-event JSON
    /// (`{"traceEvents":[...]}`), loadable in chrome://tracing and
    /// https://ui.perfetto.dev. Quiescence required.
    void write_chrome_trace(std::ostream& out) const;

    /// write_chrome_trace to \p path; fatal() when unwritable.
    void write_chrome_trace_file(const std::string& path) const;

    /// Unique id of this session (monotonic across the process); lets
    /// thread-local caches detect a stale session after detach.
    std::uint64_t id() const { return id_; }

  private:
    friend class ScopedSpan;
    friend class SpanTimer;

    struct ThreadBuffer {
        Mutex mutex;  ///< append vs merge; uncontended in steady state
        std::uint32_t tid = 0;  ///< written once at registration
        std::vector<TraceEvent> events CHRYSALIS_GUARDED_BY(mutex);
    };

    /// Buffer of the calling thread, registering one on first use.
    ThreadBuffer& buffer_for_this_thread();

    void record(std::string_view name,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                std::uint32_t depth);

    std::uint64_t id_ = 0;
    std::chrono::steady_clock::time_point epoch_;
    mutable Mutex mutex_;  ///< guards buffers_ registration/merge
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_
        CHRYSALIS_GUARDED_BY(mutex_);
};

/// Process-global session; nullptr (the default) disables all spans.
/// Non-owning; see the quiescence contract in the file comment.
TraceSession* trace();
void attach_trace(TraceSession* session);

/// RAII attach/detach for tools and tests.
class ScopedTrace
{
  public:
    explicit ScopedTrace(TraceSession& session) { attach_trace(&session); }
    ~ScopedTrace() { attach_trace(nullptr); }
    ScopedTrace(const ScopedTrace&) = delete;
    ScopedTrace& operator=(const ScopedTrace&) = delete;
};

/// A span over its C++ scope. Inert (no clock read) when no session is
/// attached at construction; prefer the OBS_SPAN macro at call sites.
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string_view name);
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    TraceSession* session_ = nullptr;  ///< nullptr = inert
    std::uint64_t session_id_ = 0;
    std::string_view name_;
    std::uint32_t depth_ = 0;
    std::chrono::steady_clock::time_point start_;
};

/// Like ScopedSpan, but always times its scope (one steady_clock read at
/// each end) and exposes the elapsed wall time, so code that *reports*
/// durations (campaign wall_time_s, explorer wall_time_s) shares one
/// timing implementation with the trace instead of hand-rolling
/// steady_clock arithmetic. Records a trace event only when a session
/// is attached.
class SpanTimer
{
  public:
    explicit SpanTimer(std::string name);
    ~SpanTimer();  ///< records the span if a session is attached
    SpanTimer(const SpanTimer&) = delete;
    SpanTimer& operator=(const SpanTimer&) = delete;

    /// Wall time since construction [s].
    double elapsed_s() const;

  private:
    std::string name_;
    std::uint32_t depth_ = 0;
    bool tracing_ = false;
    std::chrono::steady_clock::time_point start_;
};

/// Monotonic wall-clock seconds since an arbitrary process-local epoch
/// (first call). The deadline/timeout primitive for code outside
/// src/obs/ — raw clock reads are confined to this subsystem, so
/// serving-path deadline arithmetic (client request deadlines, server
/// idle sweeps, chaos schedules) goes through this helper. Never goes
/// backwards; not comparable across processes.
double monotonic_seconds();

}  // namespace chrysalis::obs

#define CHRYSALIS_OBS_CONCAT_INNER(a, b) a##b
#define CHRYSALIS_OBS_CONCAT(a, b) CHRYSALIS_OBS_CONCAT_INNER(a, b)

/// Opens a scoped span named \p name over the rest of the enclosing
/// block. Free when no TraceSession is attached.
#define OBS_SPAN(name)                                  \
    ::chrysalis::obs::ScopedSpan CHRYSALIS_OBS_CONCAT(  \
        chrysalis_obs_span_, __LINE__)                  \
    {                                                   \
        (name)                                          \
    }

#endif  // CHRYSALIS_OBS_TRACE_HPP

/// \file
/// Scoped tracing spans with Chrome trace-event export.
///
/// `OBS_SPAN("ga/generation")` opens a span that records hierarchical
/// wall time onto a per-thread buffer of the attached `TraceSession`;
/// `TraceSession::write_chrome_trace()` merges every thread's buffer
/// (thread-safe) into a `chrome://tracing` / Perfetto-loadable JSON
/// file. With no session attached a span is two relaxed atomic loads —
/// no clock read, no allocation — so leaving the macros in hot-ish
/// paths (one span per GA generation, per inner mapping search, per
/// campaign case) costs nothing in production runs.
///
/// Concurrency contract: spans may open and close on any thread while a
/// session is attached. Attaching, detaching, flushing and destroying a
/// session must happen while no instrumented code is running
/// concurrently (attach before spawning work, flush after joining) —
/// the same quiescence rule as `obs::attach_metrics`.

#ifndef CHRYSALIS_OBS_TRACE_HPP
#define CHRYSALIS_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace chrysalis::obs {

/// One completed span ("X" complete event in the Chrome trace format).
struct TraceEvent {
    std::string name;
    std::uint32_t tid = 0;    ///< session-local thread id (registration
                              ///< order, not an OS tid)
    std::uint32_t depth = 0;  ///< nesting depth on its thread (0 = root)
    // Chrome's trace-event JSON schema mandates microsecond timestamps;
    // keeping these fields in the emitted unit avoids a lossy convert
    // at every span record.
    // NOLINTNEXTLINE(chrysalis-unit-suffix): Chrome trace spec uses us
    double start_us = 0.0;    ///< relative to the session epoch
    // NOLINTNEXTLINE(chrysalis-unit-suffix): Chrome trace spec uses us
    double duration_us = 0.0;
    // Distributed-trace attribution (defaults = untagged local span;
    // the Chrome writer emits the extra args only when set, so
    // single-process traces are byte-identical to pre-fleet output).
    std::uint64_t trace_id = 0;    ///< distributed trace id; 0 = none
    std::int64_t case_index = -1;  ///< originating campaign case; -1 = none
    std::string worker;  ///< remote worker attribution ("" = this process)
};

/// Writes \p text with `"`/`\` escaped and control bytes blanked —
/// the escaping used for every string the Chrome-trace writers emit.
void write_escaped_trace_string(std::ostream& out, std::string_view text);

/// Writes one event as a Chrome "X" (complete) JSON object under the
/// given pid — no surrounding comma. The distributed-trace attribution
/// args (trace_id/case/worker) appear only when set, so pre-fleet
/// traces keep their byte layout. Shared by
/// TraceSession::write_chrome_trace and obs::FleetCollector.
void write_chrome_event(std::ostream& out, const TraceEvent& event,
                        std::uint64_t pid);

/// Distributed trace context carried on the wire as one flat request
/// field: `"trace":"<trace_id hex>-<parent span hex>-<01|00>"`. The
/// server parses it, installs it as the calling thread's context for
/// the request's evaluation (ScopedTraceContext) and every span
/// recorded meanwhile inherits trace_id/case_index.
struct TraceContext {
    std::uint64_t trace_id = 0;     ///< 0 = no active trace
    std::uint64_t parent_span = 0;  ///< caller's span id; 0 = root
    bool sampled = true;            ///< false = propagate but do not record
    std::int64_t case_index = -1;   ///< campaign case; not on the wire
                                    ///< field (sent as "case_index")

    bool active() const { return trace_id != 0 && sampled; }
};

/// Encodes trace_id/parent_span/sampled as the wire field value.
std::string format_trace_field(const TraceContext& context);

/// Parses a wire field value; returns false (and leaves \p out
/// untouched) on malformed input. case_index is not part of the field.
bool parse_trace_field(std::string_view text, TraceContext& out);

/// The calling thread's current trace context (inactive by default).
TraceContext current_trace_context();

/// Current span nesting depth on the calling thread — lets code that
/// synthesizes events (serve::Client's remote child spans) nest them
/// under the enclosing ScopedSpan.
std::uint32_t current_trace_depth();

/// RAII: installs \p context as the calling thread's trace context and
/// restores the previous one on destruction. Spans recorded while it
/// is live are stamped with the context's trace_id and case_index.
class ScopedTraceContext
{
  public:
    explicit ScopedTraceContext(const TraceContext& context);
    ~ScopedTraceContext();
    ScopedTraceContext(const ScopedTraceContext&) = delete;
    ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  private:
    TraceContext previous_;
};

/// Collects spans from all threads; owns the per-thread buffers.
class TraceSession
{
  public:
    TraceSession();
    ~TraceSession();  ///< detaches itself if still the current session
    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    /// All recorded events, merged across threads and sorted by
    /// (tid, start, depth) for a stable order. Quiescence required.
    std::vector<TraceEvent> merged() const;

    /// Writes the merged events as Chrome trace-event JSON
    /// (`{"traceEvents":[...]}`), loadable in chrome://tracing and
    /// https://ui.perfetto.dev. Quiescence required.
    void write_chrome_trace(std::ostream& out) const;

    /// write_chrome_trace to \p path; fatal() when unwritable.
    void write_chrome_trace_file(const std::string& path) const;

    /// Appends a fully-formed event to the calling thread's buffer
    /// (the event's tid is overwritten with that buffer's tid). For
    /// code that measures spans itself — the serve path's per-request
    /// stage timings, the client's synthetic remote child spans —
    /// rather than via ScopedSpan.
    void add_event(TraceEvent event);

    /// Seconds elapsed since this session's epoch (construction time).
    /// Event start_us/duration_us live on this timeline (in us).
    double seconds_since_epoch() const;

    /// Offset from this session's epoch to the monotonic_seconds()
    /// epoch: `session_time + skew == monotonic_seconds() time`. Exact
    /// (both epochs are fixed steady_clock points), which is what lets
    /// FleetCollector map event timestamps onto the probe-measured
    /// monotonic timeline with no extra clock reads.
    double epoch_to_monotonic_skew_s() const;

    /// Total events currently buffered across all threads.
    std::uint64_t event_count() const;

    /// Cursor-resumable export for the `trace_export` request type.
    /// Walks the per-thread buffers in thread-registration (tid) order
    /// and each buffer in append order — positions already handed out
    /// stay valid as new events append, so a puller never sees an
    /// event twice. Events appended to a thread the cursor has already
    /// passed are missed; drain after the workload quiesces. \p cursor
    /// 0 starts from the beginning; up to \p max_events are returned,
    /// \p cursor_next resumes after the last returned event and
    /// \p remaining counts events left after it at this instant (0 =
    /// drained).
    std::vector<TraceEvent> export_events(std::uint64_t cursor,
                                          std::size_t max_events,
                                          std::uint64_t& cursor_next,
                                          std::uint64_t& remaining) const;

    /// Caps each thread's buffer; events past the cap are counted in
    /// dropped() instead of stored. 0 (the default) = unbounded.
    /// Long-lived daemons set a cap so tracing cannot grow without
    /// bound between exports.
    void set_max_events_per_thread(std::size_t cap);

    /// Events discarded by the per-thread cap.
    std::uint64_t dropped() const;

    /// Unique id of this session (monotonic across the process); lets
    /// thread-local caches detect a stale session after detach.
    std::uint64_t id() const { return id_; }

  private:
    friend class ScopedSpan;
    friend class SpanTimer;

    struct ThreadBuffer {
        Mutex mutex;  ///< append vs merge; uncontended in steady state
        std::uint32_t tid = 0;  ///< written once at registration
        std::vector<TraceEvent> events CHRYSALIS_GUARDED_BY(mutex);
    };

    /// Buffer of the calling thread, registering one on first use.
    ThreadBuffer& buffer_for_this_thread();

    void record(std::string_view name,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                std::uint32_t depth);

    std::uint64_t id_ = 0;
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::size_t> max_events_per_thread_{0};
    std::atomic<std::uint64_t> dropped_{0};
    mutable Mutex mutex_;  ///< guards buffers_ registration/merge
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_
        CHRYSALIS_GUARDED_BY(mutex_);
};

/// Process-global session; nullptr (the default) disables all spans.
/// Non-owning; see the quiescence contract in the file comment.
TraceSession* trace();
void attach_trace(TraceSession* session);

/// RAII attach/detach for tools and tests.
class ScopedTrace
{
  public:
    explicit ScopedTrace(TraceSession& session) { attach_trace(&session); }
    ~ScopedTrace() { attach_trace(nullptr); }
    ScopedTrace(const ScopedTrace&) = delete;
    ScopedTrace& operator=(const ScopedTrace&) = delete;
};

/// A span over its C++ scope. Inert (no clock read) when no session is
/// attached at construction; prefer the OBS_SPAN macro at call sites.
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string_view name);
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    TraceSession* session_ = nullptr;  ///< nullptr = inert
    std::uint64_t session_id_ = 0;
    std::string_view name_;
    std::uint32_t depth_ = 0;
    std::chrono::steady_clock::time_point start_;
};

/// Like ScopedSpan, but always times its scope (one steady_clock read at
/// each end) and exposes the elapsed wall time, so code that *reports*
/// durations (campaign wall_time_s, explorer wall_time_s) shares one
/// timing implementation with the trace instead of hand-rolling
/// steady_clock arithmetic. Records a trace event only when a session
/// is attached.
class SpanTimer
{
  public:
    explicit SpanTimer(std::string name);
    ~SpanTimer();  ///< records the span if a session is attached
    SpanTimer(const SpanTimer&) = delete;
    SpanTimer& operator=(const SpanTimer&) = delete;

    /// Wall time since construction [s].
    double elapsed_s() const;

  private:
    std::string name_;
    std::uint32_t depth_ = 0;
    bool tracing_ = false;
    std::chrono::steady_clock::time_point start_;
};

/// Monotonic wall-clock seconds since an arbitrary process-local epoch
/// (first call). The deadline/timeout primitive for code outside
/// src/obs/ — raw clock reads are confined to this subsystem, so
/// serving-path deadline arithmetic (client request deadlines, server
/// idle sweeps, chaos schedules) goes through this helper. Never goes
/// backwards.
///
/// The epoch is **per-process**: values from two processes are not
/// comparable — not even approximately — because each epoch is "the
/// first call in that process". Cross-process timestamp comparison
/// (merging worker traces into one fleet timeline) must go through
/// `obs::FleetCollector`, which estimates each worker's offset from
/// health-probe RTT midpoints and clamps the residual error; see
/// obs/fleet.hpp and docs/observability.md.
double monotonic_seconds();

}  // namespace chrysalis::obs

#define CHRYSALIS_OBS_CONCAT_INNER(a, b) a##b
#define CHRYSALIS_OBS_CONCAT(a, b) CHRYSALIS_OBS_CONCAT_INNER(a, b)

/// Opens a scoped span named \p name over the rest of the enclosing
/// block. Free when no TraceSession is attached.
#define OBS_SPAN(name)                                  \
    ::chrysalis::obs::ScopedSpan CHRYSALIS_OBS_CONCAT(  \
        chrysalis_obs_span_, __LINE__)                  \
    {                                                   \
        (name)                                          \
    }

#endif  // CHRYSALIS_OBS_TRACE_HPP

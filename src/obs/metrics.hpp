/// \file
/// Lock-cheap metrics registry: named counters, gauges and fixed-bucket
/// histograms, snapshot-able to a deterministic key-sorted JSON report.
///
/// The registry is the unified answer to "where did the time go" for a
/// search campaign: every hot layer (thread pool, evaluation memo,
/// bi-level explorer, simulator, fault injector, campaign runner)
/// publishes into a process-global registry *when one is attached* and
/// does nothing otherwise. Instrumentation sites therefore cost one
/// relaxed atomic load when observability is off, which is what keeps
/// the `threads=N == threads=1` determinism suite and the tier-1 timings
/// unaffected by this subsystem.
///
/// Update paths are wait-free after the first registration of a name:
/// counters and histogram buckets are relaxed atomics, gauges are CAS
/// loops; only the name -> metric map lookup takes a (short) mutex.
/// Publishers in this repo aggregate locally and publish per *run* or
/// per *batch*, never per simulation step, so even that lock is cold.
///
/// ## Stability model
///
/// Some numbers are invariant under thread count and scheduling (cases
/// evaluated, GA generations, simulator steps) and some are not (cache
/// hit/miss splits under racy memoization, inline-batch counts, wall
/// times). Every metric is registered as either `kStable` or
/// `kVolatile`; the JSON report renders stable metrics first and
/// volatile ones under a separate "volatile" section which
/// `ReportMode::kDeterministic` omits entirely. A deterministic report
/// of a fixed-seed run is byte-identical at any thread count (histogram
/// sums, whose floating-point value depends on accumulation order, are
/// only rendered in full mode).

#ifndef CHRYSALIS_OBS_METRICS_HPP
#define CHRYSALIS_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace chrysalis::obs {

/// Whether a metric's value is invariant under thread count/scheduling
/// for a fixed-seed run. See the file comment.
enum class Stability {
    kStable,
    kVolatile,
};

/// Monotonically increasing event count. Wait-free.
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or maximum) level. Lock-free CAS.
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    /// Raises the gauge to \p value if it currently reads lower.
    void
    set_max(double value)
    {
        double current = value_.load(std::memory_order_relaxed);
        while (value > current &&
               !value_.compare_exchange_weak(current, value,
                                             std::memory_order_relaxed)) {
        }
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over doubles (latency/energy distributions).
/// `bounds` are the inclusive upper edges of the first N buckets; one
/// extra overflow bucket catches everything above the last bound. All
/// aggregates except `sum` are order-independent, which is why `sum` is
/// excluded from deterministic reports.
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void record(double value);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    const std::vector<double>& bounds() const { return bounds_; }

    /// Per-bucket counts (bounds().size() + 1 entries, last = overflow).
    std::vector<std::uint64_t> bucket_counts() const;

    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double min() const;  ///< 0 when empty
    double max() const;  ///< 0 when empty

  private:
    std::vector<double> bounds_;
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_;
    std::atomic<double> max_;
};

/// Log-decade bucket edges from 1e-6 to 1e12; the default for score and
/// wall-time histograms whose dynamic range spans many orders.
std::vector<double> decade_bounds();

/// 1-2-5 bucket edges from 10 us to 100 s; the default for request- and
/// queue-latency histograms (serving paths) where decade buckets are
/// too coarse to read a p99 from.
std::vector<double> latency_bounds();

/// Which metrics a JSON report includes.
enum class ReportMode {
    kFull,           ///< stable + volatile sections, histogram sums
    kDeterministic,  ///< stable metrics only; byte-identical at any
                     ///< thread count for a fixed-seed run
};

/// Kind discriminator for MetricSample.
enum class MetricKind {
    kCounter,
    kGauge,
    kHistogram,
};

/// Point-in-time copy of one metric — the exchange format for fleet
/// telemetry (`metrics_snapshot` replies, FleetCollector rollups).
/// Only the fields for its kind are meaningful; the rest stay at their
/// defaults.
struct MetricSample {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    Stability stability = Stability::kStable;
    std::uint64_t count = 0;  ///< counter value / histogram count
    double value = 0.0;       ///< gauge value
    double sum = 0.0;         ///< histogram sum (order-dependent)
    double min = 0.0;         ///< histogram min (0 when empty)
    double max = 0.0;         ///< histogram max (0 when empty)
    std::vector<double> bounds;         ///< histogram bucket edges
    std::vector<std::uint64_t> counts;  ///< bounds.size()+1, last=overflow
};

/// Serializes \p samples as a `chrysalis-metrics-v1` document —
/// byte-identical to MetricsRegistry::to_json() fed that registry's
/// samples(). Sorts by name internally; names must be unique.
std::string samples_to_json(std::vector<MetricSample> samples,
                            ReportMode mode = ReportMode::kFull);

/// The value at \p quantile (in [0,1]) of a fixed-bucket histogram,
/// read from bucket counts: the inclusive upper edge of the bucket
/// where the cumulative count reaches ceil(quantile * total). Returns
/// 0 when the histogram is empty; values in the overflow bucket clamp
/// to the last finite edge (the histogram cannot resolve beyond it).
double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts,
                          double quantile);

/// The registry. Metrics are created lazily on first use and live as
/// long as the registry; returned references are stable.
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Returns (creating if needed) the named metric. fatal() if the
    /// name is already registered as a different kind or stability —
    /// that is a bug at the instrumentation site, not a user error the
    /// caller can recover from.
    Counter& counter(std::string_view name,
                     Stability stability = Stability::kStable);
    Gauge& gauge(std::string_view name,
                 Stability stability = Stability::kVolatile);
    /// \p bounds is only consulted on first registration.
    Histogram& histogram(std::string_view name, std::vector<double> bounds,
                         Stability stability = Stability::kStable);

    /// Serializes every metric as key-sorted JSON (see
    /// docs/observability.md for the schema). Deterministic: iteration
    /// is name-sorted and doubles print as "%.17g".
    std::string to_json(ReportMode mode = ReportMode::kFull) const;

    /// Point-in-time copies of every metric, name-sorted. The building
    /// block for `metrics_snapshot` replies and fleet rollups;
    /// to_json(mode) == samples_to_json(samples(), mode).
    std::vector<MetricSample> samples() const;

    /// Writes to_json(mode) to \p path; fatal() when the file cannot be
    /// written (bad --metrics-out argument).
    void write_json_file(const std::string& path,
                         ReportMode mode = ReportMode::kFull) const;

  private:
    enum class Kind { kCounter, kGauge, kHistogram };

    struct Entry {
        Kind kind = Kind::kCounter;
        Stability stability = Stability::kStable;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry& entry_for(std::string_view name, Kind kind, Stability stability);

    mutable Mutex mutex_;
    /// std::map: name-sorted iteration gives the deterministic report
    /// order for free.
    std::map<std::string, Entry, std::less<>> entries_
        CHRYSALIS_GUARDED_BY(mutex_);
};

/// Process-global registry; nullptr (the default) disables every
/// instrumentation site. Non-owning: the caller keeps the registry
/// alive and must attach/detach while no instrumented code is running
/// concurrently (attach before spawning work, detach after joining).
MetricsRegistry* metrics();
void attach_metrics(MetricsRegistry* registry);

/// RAII attach/detach for tools and tests.
class ScopedMetrics
{
  public:
    explicit ScopedMetrics(MetricsRegistry& registry)
    {
        attach_metrics(&registry);
    }
    ~ScopedMetrics() { attach_metrics(nullptr); }
    ScopedMetrics(const ScopedMetrics&) = delete;
    ScopedMetrics& operator=(const ScopedMetrics&) = delete;
};

/// CPU time consumed by the calling thread [s]; 0.0 where unsupported.
/// Used for the campaign's per-case wall-vs-CPU accounting.
double thread_cpu_seconds();

}  // namespace chrysalis::obs

#endif  // CHRYSALIS_OBS_METRICS_HPP

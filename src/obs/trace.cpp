#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/logging.hpp"

namespace chrysalis::obs {

namespace {

std::atomic<TraceSession*> g_trace{nullptr};
std::atomic<std::uint64_t> g_next_session_id{1};

/// Current nesting depth of *recorded* spans on this thread.
thread_local std::uint32_t t_depth = 0;

/// Cache of this thread's buffer in the current session, keyed by the
/// session id so a detached/destroyed session can never be dereferenced
/// through a stale pointer.
struct ThreadBufferCache {
    std::uint64_t session_id = 0;
    void* buffer = nullptr;
};
thread_local ThreadBufferCache t_buffer_cache;

double
microseconds_between(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

TraceSession::TraceSession()
    : id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now())
{}

TraceSession::~TraceSession()
{
    if (trace() == this)
        attach_trace(nullptr);
}

TraceSession::ThreadBuffer&
TraceSession::buffer_for_this_thread()
{
    if (t_buffer_cache.session_id == id_ &&
        t_buffer_cache.buffer != nullptr)
        return *static_cast<ThreadBuffer*>(t_buffer_cache.buffer);
    MutexLock lock(mutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    ThreadBuffer& ref = *buffer;
    buffers_.push_back(std::move(buffer));
    t_buffer_cache = {id_, &ref};
    return ref;
}

void
TraceSession::record(std::string_view name,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end,
                     std::uint32_t depth)
{
    ThreadBuffer& buffer = buffer_for_this_thread();
    TraceEvent event;
    event.name.assign(name.data(), name.size());
    event.tid = buffer.tid;
    event.depth = depth;
    event.start_us = microseconds_between(epoch_, start);
    event.duration_us = microseconds_between(start, end);
    MutexLock lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceSession::merged() const
{
    std::vector<TraceEvent> events;
    {
        MutexLock lock(mutex_);
        for (const auto& buffer : buffers_) {
            MutexLock buffer_lock(buffer->mutex);
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.start_us != b.start_us)
                      return a.start_us < b.start_us;
                  return a.depth < b.depth;
              });
    return events;
}

void
TraceSession::write_chrome_trace(std::ostream& out) const
{
    const std::vector<TraceEvent> events = merged();
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char buffer[64];
    for (const auto& event : events) {
        out << (first ? "" : ",") << "{\"name\":\"";
        // Span names are code-controlled plus campaign labels; escape
        // the JSON-significant characters so labels cannot tear the file.
        for (const char c : event.name) {
            if (c == '"' || c == '\\')
                out << '\\' << c;
            else if (static_cast<unsigned char>(c) < 0x20)
                out << ' ';
            else
                out << c;
        }
        out << "\",\"cat\":\"chrysalis\",\"ph\":\"X\",\"pid\":0,\"tid\":"
            << event.tid;
        std::snprintf(buffer, sizeof(buffer), "%.3f", event.start_us);
        out << ",\"ts\":" << buffer;
        std::snprintf(buffer, sizeof(buffer), "%.3f", event.duration_us);
        out << ",\"dur\":" << buffer << ",\"args\":{\"depth\":"
            << event.depth << "}}";
        first = false;
    }
    out << "]}\n";
}

void
TraceSession::write_chrome_trace_file(const std::string& path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("TraceSession: cannot open '", path, "' for writing");
    write_chrome_trace(out);
    out.flush();
    if (!out)
        fatal("TraceSession: failed writing Chrome trace to '", path, "'");
}

TraceSession*
trace()
{
    return g_trace.load(std::memory_order_acquire);
}

void
attach_trace(TraceSession* session)
{
    g_trace.store(session, std::memory_order_release);
}

ScopedSpan::ScopedSpan(std::string_view name)
{
    TraceSession* session = trace();
    if (session == nullptr)
        return;  // inert: no clock read, no state
    session_ = session;
    session_id_ = session->id();
    name_ = name;
    depth_ = t_depth++;
    start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan()
{
    if (session_ == nullptr)
        return;
    const auto end = std::chrono::steady_clock::now();
    --t_depth;
    // Only record into a session that is still attached: a session that
    // detached mid-span may already be flushing (or gone).
    TraceSession* current = trace();
    if (current == session_ && current->id() == session_id_)
        session_->record(name_, start_, end, depth_);
}

SpanTimer::SpanTimer(std::string name) : name_(std::move(name))
{
    if (trace() != nullptr) {
        tracing_ = true;
        depth_ = t_depth++;
    }
    start_ = std::chrono::steady_clock::now();
}

SpanTimer::~SpanTimer()
{
    if (!tracing_)
        return;
    const auto end = std::chrono::steady_clock::now();
    --t_depth;
    TraceSession* current = trace();
    if (current != nullptr)
        current->record(name_, start_, end, depth_);
}

double
SpanTimer::elapsed_s() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
}

double
monotonic_seconds()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
}

}  // namespace chrysalis::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/logging.hpp"

namespace chrysalis::obs {

namespace {

std::atomic<TraceSession*> g_trace{nullptr};
std::atomic<std::uint64_t> g_next_session_id{1};

/// Current nesting depth of *recorded* spans on this thread.
thread_local std::uint32_t t_depth = 0;

/// The calling thread's distributed-trace context (inactive default).
thread_local TraceContext t_context;

/// The monotonic_seconds() epoch — a fixed steady_clock point, shared
/// with TraceSession::epoch_to_monotonic_skew_s() so session-relative
/// timestamps map exactly onto the monotonic timeline.
std::chrono::steady_clock::time_point
monotonic_epoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

bool
parse_hex_u64(std::string_view text, std::uint64_t& out)
{
    if (text.empty() || text.size() > 16)
        return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        int digit = 0;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    out = value;
    return true;
}

void
append_hex_u64(std::string& out, std::uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    out += buffer;
}

/// Cache of this thread's buffer in the current session, keyed by the
/// session id so a detached/destroyed session can never be dereferenced
/// through a stale pointer.
struct ThreadBufferCache {
    std::uint64_t session_id = 0;
    void* buffer = nullptr;
};
thread_local ThreadBufferCache t_buffer_cache;

double
microseconds_between(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

std::string
format_trace_field(const TraceContext& context)
{
    std::string out;
    out.reserve(16 + 1 + 16 + 1 + 2);
    append_hex_u64(out, context.trace_id);
    out += '-';
    append_hex_u64(out, context.parent_span);
    out += context.sampled ? "-01" : "-00";
    return out;
}

bool
parse_trace_field(std::string_view text, TraceContext& out)
{
    const std::size_t first = text.find('-');
    if (first == std::string_view::npos)
        return false;
    const std::size_t second = text.find('-', first + 1);
    if (second == std::string_view::npos)
        return false;
    TraceContext parsed;
    if (!parse_hex_u64(text.substr(0, first), parsed.trace_id))
        return false;
    if (!parse_hex_u64(text.substr(first + 1, second - first - 1),
                       parsed.parent_span))
        return false;
    const std::string_view flags = text.substr(second + 1);
    if (flags == "01")
        parsed.sampled = true;
    else if (flags == "00")
        parsed.sampled = false;
    else
        return false;
    out = parsed;
    return true;
}

TraceContext
current_trace_context()
{
    return t_context;
}

std::uint32_t
current_trace_depth()
{
    return t_depth;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : previous_(t_context)
{
    t_context = context;
}

ScopedTraceContext::~ScopedTraceContext()
{
    t_context = previous_;
}

TraceSession::TraceSession()
    : id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now())
{}

TraceSession::~TraceSession()
{
    if (trace() == this)
        attach_trace(nullptr);
}

TraceSession::ThreadBuffer&
TraceSession::buffer_for_this_thread()
{
    if (t_buffer_cache.session_id == id_ &&
        t_buffer_cache.buffer != nullptr)
        return *static_cast<ThreadBuffer*>(t_buffer_cache.buffer);
    MutexLock lock(mutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    ThreadBuffer& ref = *buffer;
    buffers_.push_back(std::move(buffer));
    t_buffer_cache = {id_, &ref};
    return ref;
}

void
TraceSession::record(std::string_view name,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end,
                     std::uint32_t depth)
{
    TraceEvent event;
    event.name.assign(name.data(), name.size());
    event.depth = depth;
    event.start_us = microseconds_between(epoch_, start);
    event.duration_us = microseconds_between(start, end);
    // Spans recorded under an active distributed-trace context inherit
    // its attribution, so existing OBS_SPAN sites tag for free.
    if (t_context.active()) {
        event.trace_id = t_context.trace_id;
        event.case_index = t_context.case_index;
    }
    add_event(std::move(event));
}

void
TraceSession::add_event(TraceEvent event)
{
    ThreadBuffer& buffer = buffer_for_this_thread();
    event.tid = buffer.tid;
    const std::size_t cap =
        max_events_per_thread_.load(std::memory_order_relaxed);
    MutexLock lock(buffer.mutex);
    if (cap != 0 && buffer.events.size() >= cap) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buffer.events.push_back(std::move(event));
}

double
TraceSession::seconds_since_epoch() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

double
TraceSession::epoch_to_monotonic_skew_s() const
{
    return std::chrono::duration<double>(epoch_ - monotonic_epoch())
        .count();
}

std::uint64_t
TraceSession::event_count() const
{
    std::uint64_t total = 0;
    MutexLock lock(mutex_);
    for (const auto& buffer : buffers_) {
        MutexLock buffer_lock(buffer->mutex);
        total += buffer->events.size();
    }
    return total;
}

std::vector<TraceEvent>
TraceSession::export_events(std::uint64_t cursor, std::size_t max_events,
                            std::uint64_t& cursor_next,
                            std::uint64_t& remaining) const
{
    // The cursor encodes (tid, offset-within-buffer): stable as new
    // events append, unlike an index into the merged()+sorted view.
    const std::uint64_t tid = cursor >> 32;
    const std::uint64_t offset = cursor & 0xffffffffull;
    std::vector<TraceEvent> out;
    std::uint64_t pos_tid = tid;
    std::uint64_t pos_offset = offset;
    bool full = false;
    remaining = 0;
    MutexLock lock(mutex_);
    for (std::uint64_t b = tid; b < buffers_.size(); ++b) {
        MutexLock buffer_lock(buffers_[b]->mutex);
        const std::vector<TraceEvent>& events = buffers_[b]->events;
        std::uint64_t from =
            (b == tid) ? std::min<std::uint64_t>(offset, events.size())
                       : 0;
        if (!full) {
            while (from < events.size() && out.size() < max_events) {
                out.push_back(events[from]);
                ++from;
            }
            pos_tid = b;
            pos_offset = from;
            full = out.size() >= max_events;
        }
        remaining += events.size() - from;
    }
    cursor_next = (pos_tid << 32) | (pos_offset & 0xffffffffull);
    return out;
}

void
TraceSession::set_max_events_per_thread(std::size_t cap)
{
    max_events_per_thread_.store(cap, std::memory_order_relaxed);
}

std::uint64_t
TraceSession::dropped() const
{
    return dropped_.load(std::memory_order_relaxed);
}

std::vector<TraceEvent>
TraceSession::merged() const
{
    std::vector<TraceEvent> events;
    {
        MutexLock lock(mutex_);
        for (const auto& buffer : buffers_) {
            MutexLock buffer_lock(buffer->mutex);
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.start_us != b.start_us)
                      return a.start_us < b.start_us;
                  return a.depth < b.depth;
              });
    return events;
}

void
write_escaped_trace_string(std::ostream& out, std::string_view text)
{
    // Span names are code-controlled plus campaign labels; escape the
    // JSON-significant characters so labels cannot tear the file.
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            out << ' ';
        else
            out << c;
    }
}

void
write_chrome_event(std::ostream& out, const TraceEvent& event,
                   std::uint64_t pid)
{
    char buffer[64];
    out << "{\"name\":\"";
    write_escaped_trace_string(out, event.name);
    out << "\",\"cat\":\"chrysalis\",\"ph\":\"X\",\"pid\":" << pid
        << ",\"tid\":" << event.tid;
    std::snprintf(buffer, sizeof(buffer), "%.3f", event.start_us);
    out << ",\"ts\":" << buffer;
    std::snprintf(buffer, sizeof(buffer), "%.3f", event.duration_us);
    out << ",\"dur\":" << buffer << ",\"args\":{\"depth\":"
        << event.depth;
    // Distributed-trace attribution only when set, so single-process
    // traces keep their pre-fleet byte layout.
    if (event.trace_id != 0) {
        out << ",\"trace_id\":\"";
        std::snprintf(buffer, sizeof(buffer), "%016llx",
                      static_cast<unsigned long long>(event.trace_id));
        out << buffer << "\"";
    }
    if (event.case_index >= 0)
        out << ",\"case\":" << event.case_index;
    if (!event.worker.empty()) {
        out << ",\"worker\":\"";
        write_escaped_trace_string(out, event.worker);
        out << "\"";
    }
    out << "}}";
}

void
TraceSession::write_chrome_trace(std::ostream& out) const
{
    const std::vector<TraceEvent> events = merged();
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto& event : events) {
        if (!first)
            out << ",";
        write_chrome_event(out, event, 0);
        first = false;
    }
    out << "]}\n";
}

void
TraceSession::write_chrome_trace_file(const std::string& path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("TraceSession: cannot open '", path, "' for writing");
    write_chrome_trace(out);
    out.flush();
    if (!out)
        fatal("TraceSession: failed writing Chrome trace to '", path, "'");
}

TraceSession*
trace()
{
    return g_trace.load(std::memory_order_acquire);
}

void
attach_trace(TraceSession* session)
{
    g_trace.store(session, std::memory_order_release);
}

ScopedSpan::ScopedSpan(std::string_view name)
{
    TraceSession* session = trace();
    if (session == nullptr)
        return;  // inert: no clock read, no state
    session_ = session;
    session_id_ = session->id();
    name_ = name;
    depth_ = t_depth++;
    start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan()
{
    if (session_ == nullptr)
        return;
    const auto end = std::chrono::steady_clock::now();
    --t_depth;
    // Only record into a session that is still attached: a session that
    // detached mid-span may already be flushing (or gone).
    TraceSession* current = trace();
    if (current == session_ && current->id() == session_id_)
        session_->record(name_, start_, end, depth_);
}

SpanTimer::SpanTimer(std::string name) : name_(std::move(name))
{
    if (trace() != nullptr) {
        tracing_ = true;
        depth_ = t_depth++;
    }
    start_ = std::chrono::steady_clock::now();
}

SpanTimer::~SpanTimer()
{
    if (!tracing_)
        return;
    const auto end = std::chrono::steady_clock::now();
    --t_depth;
    TraceSession* current = trace();
    if (current != nullptr)
        current->record(name_, start_, end, depth_);
}

double
SpanTimer::elapsed_s() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
}

double
monotonic_seconds()
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         monotonic_epoch())
        .count();
}

}  // namespace chrysalis::obs

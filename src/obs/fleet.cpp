#include "obs/fleet.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::obs {

namespace {

bool
parse_u64_text(std::string_view text, std::uint64_t& out)
{
    if (text.empty())
        return false;
    const std::string copy(text);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(copy.c_str(), &end, 10);
    if (end != copy.c_str() + copy.size())
        return false;
    out = static_cast<std::uint64_t>(value);
    return true;
}

bool
parse_i64_text(std::string_view text, std::int64_t& out)
{
    if (text.empty())
        return false;
    const std::string copy(text);
    char* end = nullptr;
    const long long value = std::strtoll(copy.c_str(), &end, 10);
    if (end != copy.c_str() + copy.size())
        return false;
    out = static_cast<std::int64_t>(value);
    return true;
}

bool
parse_double_text(std::string_view text, double& out)
{
    if (text.empty())
        return false;
    const std::string copy(text);
    char* end = nullptr;
    const double value = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size())
        return false;
    out = value;
    return true;
}

/// Splits \p text into exactly \p fixed fields at ';', with everything
/// after the last separator (which may itself contain ';') appended as
/// one final field. Returns false when there are too few separators.
bool
split_fixed_then_rest(std::string_view text, std::size_t fixed,
                      std::vector<std::string_view>& out)
{
    out.clear();
    std::size_t begin = 0;
    for (std::size_t i = 0; i < fixed; ++i) {
        const std::size_t sep = text.find(';', begin);
        if (sep == std::string_view::npos)
            return false;
        out.push_back(text.substr(begin, sep - begin));
        begin = sep + 1;
    }
    out.push_back(text.substr(begin));
    return true;
}

/// The field separator is structural, so variable-length fields that
/// are not in the trailing "rest" position must not contain it.
std::string
sanitize_field(std::string_view text)
{
    std::string out(text);
    std::replace(out.begin(), out.end(), ';', '_');
    return out;
}

/// Worker ids become JSON object keys and metric-name segments; the
/// writers do not escape keys, so strip anything JSON-significant.
std::string
sanitize_worker_key(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
            out += '_';
        else
            out += c;
    }
    return out;
}

void
append_u64_list(std::string& out, const std::vector<std::uint64_t>& values)
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0)
            out += ',';
        out += std::to_string(values[i]);
    }
}

void
append_double_list(std::string& out, const std::vector<double>& values)
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0)
            out += ',';
        out += format_double_17g(values[i]);
    }
}

bool
parse_u64_list(std::string_view text, std::vector<std::uint64_t>& out)
{
    out.clear();
    if (text.empty())
        return true;
    std::size_t begin = 0;
    while (true) {
        const std::size_t sep = text.find(',', begin);
        const std::string_view item =
            text.substr(begin, sep == std::string_view::npos
                                   ? std::string_view::npos
                                   : sep - begin);
        std::uint64_t value = 0;
        if (!parse_u64_text(item, value))
            return false;
        out.push_back(value);
        if (sep == std::string_view::npos)
            return true;
        begin = sep + 1;
    }
}

bool
parse_double_list(std::string_view text, std::vector<double>& out)
{
    out.clear();
    if (text.empty())
        return true;
    std::size_t begin = 0;
    while (true) {
        const std::size_t sep = text.find(',', begin);
        const std::string_view item =
            text.substr(begin, sep == std::string_view::npos
                                   ? std::string_view::npos
                                   : sep - begin);
        double value = 0.0;
        if (!parse_double_text(item, value))
            return false;
        out.push_back(value);
        if (sep == std::string_view::npos)
            return true;
        begin = sep + 1;
    }
}

}  // namespace

double
clock_offset_from_probe(double local_send_s, double local_recv_s,
                        double remote_mono_now_s)
{
    return 0.5 * (local_send_s + local_recv_s) - remote_mono_now_s;
}

void
FleetCollector::add_worker(WorkerTelemetry telemetry)
{
    workers_.push_back(std::move(telemetry));
}

std::vector<FleetCollector::AlignedEvent>
FleetCollector::aligned(std::uint64_t* clamped) const
{
    std::vector<AlignedEvent> events;
    events.reserve(event_count());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        // NOLINTNEXTLINE(chrysalis-unit-suffix): Chrome trace spec uses us
        const double shift_us = workers_[w].clock_offset_s * 1e6;
        for (const TraceEvent& event : workers_[w].events) {
            AlignedEvent aligned_event;
            aligned_event.worker = w;
            aligned_event.event = event;
            aligned_event.event.start_us = event.start_us + shift_us;
            events.push_back(std::move(aligned_event));
        }
    }
    // Re-base so the merged timeline starts at zero — offsets can be
    // negative and Chrome viewers dislike hugely negative timestamps.
    double base_us = 0.0;  // NOLINT(chrysalis-unit-suffix): trace unit
    bool have_base = false;
    for (const AlignedEvent& event : events) {
        if (!have_base || event.event.start_us < base_us) {
            base_us = event.event.start_us;
            have_base = true;
        }
    }
    std::uint64_t clamp_count = 0;
    for (AlignedEvent& event : events) {
        event.event.start_us -= base_us;
        // Durations are measured on one clock and unaffected by the
        // shift, but defend against garbage inputs: the merged trace
        // must never show time running backwards.
        if (event.event.duration_us < 0.0) {
            event.event.duration_us = 0.0;
            ++clamp_count;
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const AlignedEvent& a, const AlignedEvent& b) {
                         if (a.worker != b.worker)
                             return a.worker < b.worker;
                         if (a.event.tid != b.event.tid)
                             return a.event.tid < b.event.tid;
                         if (a.event.start_us != b.event.start_us)
                             return a.event.start_us < b.event.start_us;
                         return a.event.depth < b.event.depth;
                     });
    if (clamped != nullptr)
        *clamped = clamp_count;
    return events;
}

std::uint64_t
FleetCollector::event_count() const
{
    std::uint64_t total = 0;
    for (const WorkerTelemetry& worker : workers_)
        total += worker.events.size();
    return total;
}

void
FleetCollector::write_chrome_trace(std::ostream& out) const
{
    const std::vector<AlignedEvent> events = aligned();
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        if (!first)
            out << ",";
        out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << w
            << ",\"tid\":0,\"args\":{\"name\":\"";
        write_escaped_trace_string(out, workers_[w].worker_id);
        out << "\"}}";
        first = false;
    }
    for (const AlignedEvent& event : events) {
        if (!first)
            out << ",";
        write_chrome_event(out, event.event, event.worker);
        first = false;
    }
    out << "]}\n";
}

void
FleetCollector::write_chrome_trace_file(const std::string& path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("FleetCollector: cannot open '", path, "' for writing");
    write_chrome_trace(out);
    out.flush();
    if (!out)
        fatal("FleetCollector: failed writing fleet trace to '", path,
              "'");
}

std::string
FleetCollector::metrics_rollup_json(ReportMode mode) const
{
    std::vector<MetricSample> rollup;
    // Cross-worker aggregates, keyed by the original metric name.
    std::map<std::string, MetricSample> totals;
    std::map<std::string, std::size_t> seen_ids;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        std::string key = sanitize_worker_key(workers_[w].worker_id);
        if (key.empty())
            key = "worker" + std::to_string(w);
        // Two members reporting the same id would collide in the
        // namespaced keys; disambiguate the later one by index.
        const auto [it, inserted] = seen_ids.emplace(key, w);
        if (!inserted)
            key += "#" + std::to_string(w);
        for (const MetricSample& sample : workers_[w].metrics) {
            MetricSample namespaced = sample;
            namespaced.name = "fleet/" + key + "/" + sample.name;
            rollup.push_back(std::move(namespaced));

            const auto total = totals.find(sample.name);
            if (total == totals.end()) {
                totals.emplace(sample.name, sample);
                continue;
            }
            MetricSample& aggregate = total->second;
            if (aggregate.kind != sample.kind)
                continue;  // conflicting kinds: keep the first
            switch (sample.kind) {
              case MetricKind::kCounter:
                aggregate.count += sample.count;
                break;
              case MetricKind::kGauge:
                aggregate.value += sample.value;
                break;
              case MetricKind::kHistogram:
                if (aggregate.bounds != sample.bounds ||
                    aggregate.counts.size() != sample.counts.size())
                    continue;  // incomparable shapes: keep the first
                for (std::size_t i = 0; i < sample.counts.size(); ++i)
                    aggregate.counts[i] += sample.counts[i];
                if (sample.count > 0) {
                    if (aggregate.count == 0 ||
                        sample.min < aggregate.min)
                        aggregate.min = sample.min;
                    if (aggregate.count == 0 ||
                        sample.max > aggregate.max)
                        aggregate.max = sample.max;
                }
                aggregate.count += sample.count;
                aggregate.sum += sample.sum;
                break;
            }
        }
    }
    for (auto& [name, aggregate] : totals) {
        MetricSample total = std::move(aggregate);
        total.name = "fleet/total/" + name;
        rollup.push_back(std::move(total));
    }
    MetricSample workers_sample;
    workers_sample.name = "fleet/workers";
    workers_sample.kind = MetricKind::kCounter;
    workers_sample.stability = Stability::kStable;
    workers_sample.count = workers_.size();
    rollup.push_back(std::move(workers_sample));
    return samples_to_json(std::move(rollup), mode);
}

void
FleetCollector::write_metrics_rollup_file(const std::string& path,
                                          ReportMode mode) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("FleetCollector: cannot open '", path, "' for writing");
    out << metrics_rollup_json(mode);
    out.flush();
    if (!out)
        fatal("FleetCollector: failed writing fleet rollup to '", path,
              "'");
}

std::string
encode_trace_event(const TraceEvent& event)
{
    std::string out;
    out.reserve(64 + event.name.size() + event.worker.size());
    out += std::to_string(event.tid);
    out += ';';
    out += std::to_string(event.depth);
    out += ';';
    out += format_double_17g(event.start_us);
    out += ';';
    out += format_double_17g(event.duration_us);
    out += ';';
    out += std::to_string(event.trace_id);
    out += ';';
    out += std::to_string(event.case_index);
    out += ';';
    out += sanitize_field(event.worker);
    out += ';';
    out += event.name;  // trailing field: may contain ';'
    return out;
}

bool
decode_trace_event(const std::string& text, TraceEvent& out)
{
    std::vector<std::string_view> fields;
    if (!split_fixed_then_rest(text, 7, fields))
        return false;
    TraceEvent event;
    std::uint64_t tid = 0;
    std::uint64_t depth = 0;
    if (!parse_u64_text(fields[0], tid) ||
        !parse_u64_text(fields[1], depth) ||
        !parse_double_text(fields[2], event.start_us) ||
        !parse_double_text(fields[3], event.duration_us) ||
        !parse_u64_text(fields[4], event.trace_id) ||
        !parse_i64_text(fields[5], event.case_index))
        return false;
    event.tid = static_cast<std::uint32_t>(tid);
    event.depth = static_cast<std::uint32_t>(depth);
    event.worker = std::string(fields[6]);
    event.name = std::string(fields[7]);
    out = std::move(event);
    return true;
}

std::string
encode_metric_sample(const MetricSample& sample)
{
    std::string out;
    const char stability =
        sample.stability == Stability::kStable ? 's' : 'v';
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += "c;";
        out += stability;
        out += ';';
        out += std::to_string(sample.count);
        out += ';';
        break;
      case MetricKind::kGauge:
        out += "g;";
        out += stability;
        out += ';';
        out += format_double_17g(sample.value);
        out += ';';
        break;
      case MetricKind::kHistogram:
        out += "h;";
        out += stability;
        out += ';';
        out += std::to_string(sample.count);
        out += ';';
        out += format_double_17g(sample.sum);
        out += ';';
        out += format_double_17g(sample.min);
        out += ';';
        out += format_double_17g(sample.max);
        out += ';';
        append_double_list(out, sample.bounds);
        out += ';';
        append_u64_list(out, sample.counts);
        out += ';';
        break;
    }
    out += sample.name;  // trailing field: may contain ';'
    return out;
}

bool
decode_metric_sample(const std::string& text, MetricSample& out)
{
    if (text.size() < 2)
        return false;
    const char kind = text[0];
    const std::size_t fixed = (kind == 'h') ? 8 : 3;
    std::vector<std::string_view> fields;
    if (!split_fixed_then_rest(text, fixed, fields))
        return false;
    MetricSample sample;
    if (fields[1] == "s")
        sample.stability = Stability::kStable;
    else if (fields[1] == "v")
        sample.stability = Stability::kVolatile;
    else
        return false;
    switch (kind) {
      case 'c':
        sample.kind = MetricKind::kCounter;
        if (!parse_u64_text(fields[2], sample.count))
            return false;
        sample.name = std::string(fields[3]);
        break;
      case 'g':
        sample.kind = MetricKind::kGauge;
        if (!parse_double_text(fields[2], sample.value))
            return false;
        sample.name = std::string(fields[3]);
        break;
      case 'h':
        sample.kind = MetricKind::kHistogram;
        if (!parse_u64_text(fields[2], sample.count) ||
            !parse_double_text(fields[3], sample.sum) ||
            !parse_double_text(fields[4], sample.min) ||
            !parse_double_text(fields[5], sample.max) ||
            !parse_double_list(fields[6], sample.bounds) ||
            !parse_u64_list(fields[7], sample.counts))
            return false;
        sample.name = std::string(fields[8]);
        break;
      default:
        return false;
    }
    out = std::move(sample);
    return true;
}

}  // namespace chrysalis::obs

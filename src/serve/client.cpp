#include "serve/client.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace chrysalis::serve {
namespace {

/// True when \p text is entirely one JSON-compatible number.
bool
is_bare_number(const std::string& text)
{
    if (text.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0' && errno == 0 &&
           std::isfinite(value);
}

}  // namespace

Client::~Client()
{
    close();
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_id_(other.next_id_),
      decoder_(std::move(other.decoder_))
{
    other.fd_ = -1;
}

Client&
Client::operator=(Client&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        next_id_ = other.next_id_;
        decoder_ = std::move(other.decoder_);
        other.fd_ = -1;
    }
    return *this;
}

bool
Client::connect(const std::string& host, int port, double timeout_s)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) != 0) {
        close();
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (timeout_s > 0.0) {
        timeval timeout{};
        timeout.tv_sec = static_cast<time_t>(timeout_s);
        timeout.tv_usec = static_cast<suseconds_t>(
            (timeout_s - static_cast<double>(timeout.tv_sec)) * 1e6);
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof timeout);
    }
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    decoder_ = FrameDecoder();
}

void
Client::shutdown_write()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

bool
Client::send_bytes(const void* data, std::size_t size)
{
    const char* bytes = static_cast<const char*>(data);
    std::size_t sent_total = 0;
    while (sent_total < size) {
        const ssize_t sent = ::send(fd_, bytes + sent_total,
                                    size - sent_total, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent_total += static_cast<std::size_t>(sent);
    }
    return true;
}

bool
Client::send_frame(const std::string& payload)
{
    const std::string frame = encode_frame(payload);
    return send_bytes(frame.data(), frame.size());
}

bool
Client::recv_frame(std::string& payload)
{
    while (true) {
        switch (decoder_.next(payload)) {
          case FrameDecoder::Status::kFrame:
            return true;
          case FrameDecoder::Status::kOversized:
            return false;
          case FrameDecoder::Status::kNeedMore:
            break;
        }
        char buffer[4096];
        const ssize_t received = ::recv(fd_, buffer, sizeof buffer, 0);
        if (received > 0) {
            decoder_.feed(buffer, static_cast<std::size_t>(received));
            continue;
        }
        if (received < 0 && errno == EINTR)
            continue;
        return false;  // EOF, timeout (EAGAIN under SO_RCVTIMEO) or error
    }
}

std::string
Client::build_request(const std::string& type,
                      const FlatJsonFields& params)
{
    std::string payload = "{";
    json_append_field(payload, "v", kProtocolVersion);
    json_append_raw_field(payload, "id", std::to_string(next_id_++));
    json_append_field(payload, "type", type);
    for (const auto& [key, value] : params) {
        if (key == "v" || key == "id" || key == "type")
            continue;
        if (is_bare_number(value))
            json_append_raw_field(payload, key.c_str(), value);
        else
            json_append_field(payload, key.c_str(), value);
    }
    payload += '}';
    return payload;
}

bool
Client::call(const std::string& type, const FlatJsonFields& params,
             Response& response)
{
    if (!send_frame(build_request(type, params)))
        return false;
    std::string payload;
    if (!recv_frame(payload))
        return false;
    return parse_response(payload, response);
}

bool
parse_response(const std::string& payload, Response& response)
{
    response = Response();
    response.raw = payload;
    if (!scan_flat_json(payload, response.fields))
        return false;
    std::uint64_t ok = 0;
    json_get_uint64(response.fields, "ok", ok);
    response.ok = ok != 0;
    json_get_uint64(response.fields, "id", response.id);
    json_get_string(response.fields, "error", response.error);
    json_get_string(response.fields, "detail", response.detail);
    return true;
}

}  // namespace chrysalis::serve

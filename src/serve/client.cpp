#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/handlers.hpp"

namespace chrysalis::serve {
namespace {

/// True when \p text is entirely one JSON-compatible number.
bool
is_bare_number(const std::string& text)
{
    if (text.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0' && errno == 0 &&
           std::isfinite(value);
}

void
bump(const char* name, std::uint64_t delta = 1)
{
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->counter(name, obs::Stability::kVolatile).add(delta);
}

void
record_latency(const char* name, double value_s)
{
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry
            ->histogram(name, obs::latency_bounds(),
                        obs::Stability::kVolatile)
            .record(value_s);
}

/// splitmix64 finalizer — the same bit mixer the fault injectors use.
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Deterministic uniform double in [0, 1) keyed by (seed, id, attempt).
double
jitter01(std::uint64_t seed, std::uint64_t request_id,
         std::uint64_t attempt)
{
    const std::uint64_t word =
        mix64(seed + mix64(request_id * 0x9e3779b97f4a7c15ULL) +
              mix64(attempt + 0x6a09e667f3bcc909ULL));
    return static_cast<double>(word >> 11) * 0x1.0p-53;
}

/// Absolute obs::monotonic_seconds() deadline; +inf when unbounded.
double
deadline_after(double timeout_s)
{
    if (timeout_s <= 0.0)
        return std::numeric_limits<double>::infinity();
    return obs::monotonic_seconds() + timeout_s;
}

/// Millisecond poll timeout that never wakes before \p deadline_s
/// (rounded up), clamped so int stays sane; -1 when unbounded.
int
poll_timeout_ms(double now_s, double deadline_s)
{
    if (!std::isfinite(deadline_s))
        return -1;
    const double wait_s = std::max(0.0, deadline_s - now_s);
    return static_cast<int>(std::min(wait_s * 1000.0, 60000.0)) + 1;
}

bool
set_blocking(int fd, bool blocking)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    const int wanted =
        blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
    return ::fcntl(fd, F_SETFL, wanted) >= 0;
}

}  // namespace

const char*
to_string(CallStatus status)
{
    switch (status) {
      case CallStatus::kOk:
        return "ok";
      case CallStatus::kTransportError:
        return "transport_error";
      case CallStatus::kTimeout:
        return "timeout";
      case CallStatus::kProtocolError:
        return "protocol_error";
      case CallStatus::kCircuitOpen:
        return "circuit_open";
    }
    return "unknown";
}

void
ClientOptions::validate() const
{
    if (!(connect_timeout_s >= 0.0) || !std::isfinite(connect_timeout_s))
        fatal("serve: client connect_timeout_s must be finite and >= 0");
    if (!(request_timeout_s >= 0.0) || !std::isfinite(request_timeout_s))
        fatal("serve: client request_timeout_s must be finite and >= 0 "
              "(0 waits forever)");
    if (max_attempts < 1)
        fatal("serve: client max_attempts must be >= 1");
    if (!(backoff_base_s >= 0.0) || !std::isfinite(backoff_base_s))
        fatal("serve: client backoff_base_s must be finite and >= 0");
    if (!(backoff_max_s >= backoff_base_s) ||
        !std::isfinite(backoff_max_s))
        fatal("serve: client backoff_max_s must be finite and >= "
              "backoff_base_s");
    if (circuit_breaker_threshold < 0)
        fatal("serve: client circuit_breaker_threshold must be >= 0 "
              "(0 disables the breaker)");
    if (!(circuit_breaker_cooldown_s >= 0.0) ||
        !std::isfinite(circuit_breaker_cooldown_s))
        fatal("serve: client circuit_breaker_cooldown_s must be finite "
              "and >= 0");
}

Client::Client(ClientOptions options) : options_(std::move(options))
{
    options_.validate();
}

Client::~Client()
{
    close();
}

Client::Client(Client&& other) noexcept
    : options_(std::move(other.options_)),
      fd_(other.fd_),
      next_id_(other.next_id_),
      decoder_(std::move(other.decoder_)),
      host_(std::move(other.host_)),
      port_(other.port_),
      stats_(other.stats_),
      consecutive_failures_(other.consecutive_failures_),
      circuit_open_(other.circuit_open_),
      circuit_open_until_s_(other.circuit_open_until_s_)
{
    other.fd_ = -1;
}

Client&
Client::operator=(Client&& other) noexcept
{
    if (this != &other) {
        close();
        options_ = std::move(other.options_);
        fd_ = other.fd_;
        next_id_ = other.next_id_;
        decoder_ = std::move(other.decoder_);
        host_ = std::move(other.host_);
        port_ = other.port_;
        stats_ = other.stats_;
        consecutive_failures_ = other.consecutive_failures_;
        circuit_open_ = other.circuit_open_;
        circuit_open_until_s_ = other.circuit_open_until_s_;
        other.fd_ = -1;
    }
    return *this;
}

bool
Client::connect(const std::string& host, int port, double timeout_s)
{
    if (timeout_s >= 0.0) {
        // Back-compat: the old single timeout parameter bounds both the
        // dial and each request (0 = wait forever).
        options_.connect_timeout_s = timeout_s;
        options_.request_timeout_s = timeout_s;
    }
    host_ = host;
    port_ = port;
    return dial();
}

bool
Client::dial()
{
    close();
    if (host_.empty())
        return false;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(port_));
    if (::inet_pton(AF_INET, host_.c_str(), &address.sin_addr) != 1) {
        close();
        return false;
    }
    if (!set_blocking(fd_, false)) {
        close();
        return false;
    }
    const int rc = ::connect(
        fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address);
    // EINTR on a nonblocking connect means the handshake continues
    // asynchronously — exactly like EINPROGRESS.
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
        close();
        return false;
    }
    if (rc != 0) {
        const double deadline_s = deadline_after(options_.connect_timeout_s);
        while (true) {
            const double now_s = obs::monotonic_seconds();
            if (now_s >= deadline_s) {
                close();
                return false;  // connect timeout
            }
            pollfd waiter{fd_, POLLOUT, 0};
            const int ready =
                ::poll(&waiter, 1, poll_timeout_ms(now_s, deadline_s));
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                close();
                return false;
            }
            if (ready == 0)
                continue;  // recheck the deadline
            break;
        }
        int error = 0;
        socklen_t length = sizeof error;
        if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &length) !=
                0 ||
            error != 0) {
            close();
            return false;  // refused, reset or unreachable
        }
    }
    if (!set_blocking(fd_, true)) {
        close();
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    decoder_ = FrameDecoder();
}

void
Client::shutdown_write()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

bool
Client::send_bytes(const void* data, std::size_t size)
{
    const char* bytes = static_cast<const char*>(data);
    std::size_t sent_total = 0;
    while (sent_total < size) {
        const ssize_t sent = ::send(fd_, bytes + sent_total,
                                    size - sent_total, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent_total += static_cast<std::size_t>(sent);
    }
    return true;
}

bool
Client::send_frame(const std::string& payload)
{
    const std::string frame = encode_frame(payload);
    return send_bytes(frame.data(), frame.size());
}

bool
Client::recv_frame(std::string& payload)
{
    return recv_frame_until(payload,
                            deadline_after(options_.request_timeout_s)) ==
           RecvOutcome::kFrame;
}

Client::RecvOutcome
Client::recv_frame_until(std::string& payload, double deadline_s)
{
    while (true) {
        switch (decoder_.next(payload)) {
          case FrameDecoder::Status::kFrame:
            return RecvOutcome::kFrame;
          case FrameDecoder::Status::kOversized:
            return RecvOutcome::kCorrupt;
          case FrameDecoder::Status::kNeedMore:
            break;
        }
        // One wall-clock deadline across the whole frame: a server
        // trickling single bytes cannot reset it the way a per-recv()
        // timer (SO_RCVTIMEO) would be reset by every byte.
        const double now_s = obs::monotonic_seconds();
        if (now_s >= deadline_s)
            return RecvOutcome::kTimeout;
        pollfd waiter{fd_, POLLIN, 0};
        const int ready =
            ::poll(&waiter, 1, poll_timeout_ms(now_s, deadline_s));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return RecvOutcome::kClosed;
        }
        if (ready == 0)
            continue;  // recheck the deadline
        char buffer[4096];
        const ssize_t received = ::recv(fd_, buffer, sizeof buffer, 0);
        if (received > 0) {
            decoder_.feed(buffer, static_cast<std::size_t>(received));
            continue;
        }
        if (received < 0 &&
            (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
            continue;
        return RecvOutcome::kClosed;  // EOF, reset or hard error
    }
}

std::string
Client::build_request(const std::string& type,
                      const FlatJsonFields& params)
{
    std::string payload = "{";
    json_append_field(payload, "v", kProtocolVersion);
    json_append_raw_field(payload, "id", std::to_string(next_id_++));
    json_append_field(payload, "type", type);
    for (const auto& [key, value] : params) {
        if (key == "v" || key == "id" || key == "type")
            continue;
        if (is_bare_number(value))
            json_append_raw_field(payload, key.c_str(), value);
        else
            json_append_field(payload, key.c_str(), value);
    }
    payload += '}';
    return payload;
}

bool
Client::call(const std::string& type, const FlatJsonFields& params,
             Response& response)
{
    if (!send_frame(build_request(type, params)))
        return false;
    std::string payload;
    if (!recv_frame(payload))
        return false;
    return parse_response(payload, response);
}

CallStatus
Client::request(const std::string& type, const FlatJsonFields& params,
                Response& response)
{
    if (options_.circuit_breaker_threshold > 0 && circuit_open_) {
        if (obs::monotonic_seconds() < circuit_open_until_s_) {
            ++stats_.circuit_open_rejections;
            bump("serve/client/circuit_open_rejections");
            return CallStatus::kCircuitOpen;
        }
        // Cooldown elapsed: this request is the half-open probe. On
        // success the breaker closes; on failure it re-arms.
    }

    // Build once so every attempt resends the exact same bytes — the
    // id must not advance between retries, both for idempotence (one
    // memo key) and so the reply can be matched to this request.
    const std::string payload = build_request(type, params);
    const std::uint64_t request_id = next_id_ - 1;
    const bool retryable = response_is_memoized(type);
    const int max_attempts = retryable ? options_.max_attempts : 1;

    CallStatus status = CallStatus::kTransportError;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        ++stats_.attempts;
        if (attempt > 1) {
            ++stats_.retries;
            bump("serve/client/retries");
            sleep_backoff(request_id, attempt);
        }
        status = attempt_once(payload, request_id, response);
        if (status == CallStatus::kOk) {
            if (!response.ok && retryable && attempt < max_attempts &&
                (response.error == kErrOverloaded ||
                 response.error == kErrShuttingDown)) {
                // The server explicitly asked us to back off; the
                // stream is still in sync, so keep the connection.
                continue;
            }
            consecutive_failures_ = 0;
            circuit_open_ = false;
            if (response.ok)
                note_remote_timing(params, response);
            return CallStatus::kOk;
        }
        // A failed attempt poisons the stream (a late reply could be
        // mis-associated with the next request): drop the connection
        // and let the next attempt redial.
        close();
    }
    record_failure(status);
    return status;
}

void
Client::note_remote_timing(const FlatJsonFields& params,
                           const Response& response)
{
    double queue_wait_s = 0.0;
    if (!json_get_double(response.fields, "timing_queue_s", queue_wait_s))
        return;  // untraced request, or a pre-timing server
    double decode_s = 0.0;
    double eval_s = 0.0;
    double encode_s = 0.0;
    json_get_double(response.fields, "timing_decode_s", decode_s);
    json_get_double(response.fields, "timing_eval_s", eval_s);
    json_get_double(response.fields, "timing_encode_s", encode_s);
    record_latency("serve/client/remote_queue_wait_s", queue_wait_s);
    record_latency("serve/client/remote_decode_s", decode_s);
    record_latency("serve/client/remote_eval_s", eval_s);
    record_latency("serve/client/remote_encode_s", encode_s);

    obs::TraceSession* session = obs::trace();
    if (session == nullptr)
        return;
    obs::TraceContext context;
    const auto trace_it = params.find("trace");
    if (trace_it == params.end() ||
        !obs::parse_trace_field(trace_it->second, context) ||
        !context.active())
        return;
    std::int64_t case_index = -1;
    json_get_int64(params, "case_index", case_index);

    // Place the four stage spans back-to-back, ending "now" on this
    // session's timeline — the true remote interval isn't knowable
    // without the worker's clock, but the durations are exact and the
    // spans land inside the enclosing client-side span, which is what
    // makes the trace readable. FleetCollector replaces these with the
    // worker's own aligned spans when a fleet pull runs.
    const double total_s = queue_wait_s + decode_s + eval_s + encode_s;
    double cursor_s = session->seconds_since_epoch() - total_s;
    const std::string worker = host_ + ":" + std::to_string(port_);
    const std::uint32_t depth = obs::current_trace_depth() + 1;
    const auto add = [&](const char* name, double duration_s) {
        obs::TraceEvent event;
        event.name = name;
        event.depth = depth;
        event.start_us = cursor_s * 1e6;
        event.duration_us = duration_s * 1e6;
        event.trace_id = context.trace_id;
        event.case_index = case_index;
        event.worker = worker;
        session->add_event(std::move(event));
        cursor_s += duration_s;
    };
    add("serve/remote/queue_wait", queue_wait_s);
    add("serve/remote/decode", decode_s);
    add("serve/remote/eval", eval_s);
    add("serve/remote/encode", encode_s);
}

CallStatus
Client::attempt_once(const std::string& payload,
                     std::uint64_t request_id, Response& response)
{
    const double deadline_s = deadline_after(options_.request_timeout_s);
    if (!connected()) {
        const double dial_start_s = obs::monotonic_seconds();
        if (!dial()) {
            ++stats_.transport_errors;
            bump("serve/client/transport_errors");
            return CallStatus::kTransportError;
        }
        ++stats_.reconnects;
        bump("serve/client/reconnects");
        record_latency("serve/client/reconnect_s",
                       obs::monotonic_seconds() - dial_start_s);
    }
    if (!send_frame(payload)) {
        ++stats_.transport_errors;
        bump("serve/client/transport_errors");
        return CallStatus::kTransportError;
    }
    std::string reply;
    switch (recv_frame_until(reply, deadline_s)) {
      case RecvOutcome::kFrame:
        break;
      case RecvOutcome::kTimeout:
        ++stats_.timeouts;
        bump("serve/client/timeouts");
        return CallStatus::kTimeout;
      case RecvOutcome::kClosed:
        ++stats_.transport_errors;
        bump("serve/client/transport_errors");
        return CallStatus::kTransportError;
      case RecvOutcome::kCorrupt:
        ++stats_.protocol_errors;
        bump("serve/client/protocol_errors");
        return CallStatus::kProtocolError;
    }
    if (!parse_response(reply, response) || response.id != request_id) {
        ++stats_.protocol_errors;
        bump("serve/client/protocol_errors");
        return CallStatus::kProtocolError;
    }
    return CallStatus::kOk;
}

void
Client::record_failure(CallStatus status)
{
    (void)status;
    if (options_.circuit_breaker_threshold <= 0)
        return;
    ++consecutive_failures_;
    if (consecutive_failures_ >= options_.circuit_breaker_threshold) {
        if (!circuit_open_) {
            ++stats_.circuit_opens;
            bump("serve/client/circuit_opens");
        }
        circuit_open_ = true;
        circuit_open_until_s_ = obs::monotonic_seconds() +
                                options_.circuit_breaker_cooldown_s;
    }
}

void
Client::sleep_backoff(std::uint64_t request_id, int attempt)
{
    double backoff_s = options_.backoff_base_s;
    for (int doubling = 2; doubling < attempt; ++doubling)
        backoff_s = std::min(backoff_s * 2.0, options_.backoff_max_s);
    backoff_s = std::min(backoff_s, options_.backoff_max_s);
    // Deterministic jitter in [0.5, 1.0]: decorrelates clients that
    // failed together without sacrificing replayability.
    backoff_s *= 0.5 + 0.5 * jitter01(options_.retry_seed, request_id,
                                      static_cast<std::uint64_t>(attempt));
    record_latency("serve/client/backoff_s", backoff_s);
    if (backoff_s <= 0.0)
        return;
    const double until_s = obs::monotonic_seconds() + backoff_s;
    while (true) {
        const double now_s = obs::monotonic_seconds();
        if (now_s >= until_s)
            return;
        // poll() with no fds is the portable sub-second sleep that the
        // lint fence permits here (no <chrono> outside src/obs/).
        ::poll(nullptr, 0, poll_timeout_ms(now_s, until_s));
    }
}

bool
parse_response(const std::string& payload, Response& response)
{
    response = Response();
    response.raw = payload;
    if (!scan_flat_json(payload, response.fields))
        return false;
    std::uint64_t ok = 0;
    json_get_uint64(response.fields, "ok", ok);
    response.ok = ok != 0;
    json_get_uint64(response.fields, "id", response.id);
    json_get_string(response.fields, "error", response.error);
    json_get_string(response.fields, "detail", response.detail);
    return true;
}

}  // namespace chrysalis::serve

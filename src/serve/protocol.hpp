/// \file
/// Wire format of `chrysalis-serve-v1`: length-prefixed flat-JSON frames.
///
/// Every message — request or response — is one flat JSON object (see
/// common/flat_json.hpp) preceded by a 4-byte big-endian payload length.
/// The fixed prefix makes framing trivial to implement in any language
/// and lets the server reject oversized frames *before* buffering them:
/// a length above kMaxFrameBytes is answered with a `bad_frame` error
/// and the connection is closed, since the byte stream beyond a refused
/// frame cannot be resynchronized.
///
/// Requests carry `"v"` (protocol version), `"id"` (client-chosen echo
/// token) and `"type"`; responses echo `"v"` and `"id"` and carry
/// `"ok":1` plus result fields, or `"ok":0` plus `"error"` (a stable
/// code from the kErr* constants) and `"detail"`. docs/serving.md has
/// the full field tables.

#ifndef CHRYSALIS_SERVE_PROTOCOL_HPP
#define CHRYSALIS_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace chrysalis::serve {

/// Version token every request and response carries in "v".
inline constexpr const char* kProtocolVersion = "chrysalis-serve-v1";

/// Bytes of the big-endian length prefix.
inline constexpr std::size_t kLengthPrefixBytes = 4;

/// Maximum payload bytes in one frame. Far above any legitimate
/// request; a larger announced length is a protocol violation.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

// Stable error codes ("error" field of an "ok":0 response).
inline constexpr const char* kErrBadFrame = "bad_frame";
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrBadVersion = "bad_version";
inline constexpr const char* kErrUnknownType = "unknown_type";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrShuttingDown = "shutting_down";

/// Frames \p payload: 4-byte big-endian length followed by the bytes.
/// fatal() when the payload exceeds kMaxFrameBytes (an internal caller
/// bug — handlers never build responses that large).
std::string encode_frame(std::string_view payload);

/// Incremental deframer for one byte stream. Feed whatever recv()
/// produced; pop complete payloads with next(). An oversized announced
/// length is sticky: the stream cannot be resynchronized past a frame
/// that was never buffered, so the connection must be torn down after
/// the error reply.
class FrameDecoder
{
  public:
    enum class Status {
        kNeedMore,   ///< no complete frame buffered yet
        kFrame,      ///< one payload extracted into the out-param
        kOversized,  ///< announced length exceeds kMaxFrameBytes
    };

    /// Appends raw received bytes to the reassembly buffer.
    void feed(const char* data, std::size_t size);

    /// Extracts the next complete payload, if any.
    Status next(std::string& payload);

    /// Announced length that tripped kOversized (0 before that).
    std::size_t oversized_length() const { return oversized_length_; }

    /// Bytes currently buffered awaiting a complete frame.
    std::size_t buffered_bytes() const { return buffer_.size(); }

  private:
    std::string buffer_;
    std::size_t oversized_length_ = 0;
};

}  // namespace chrysalis::serve

#endif  // CHRYSALIS_SERVE_PROTOCOL_HPP

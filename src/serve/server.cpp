#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace chrysalis::serve {
namespace {

void
set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("serve: fcntl(O_NONBLOCK): ", std::strerror(errno));
}

void
close_fd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
bump(const char* name, std::uint64_t delta = 1)
{
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->counter(name, obs::Stability::kVolatile).add(delta);
}

/// True for replies the server counts as errors ("ok":0). The flag is
/// always the first body field, right after the fixed "v"/"id" prefix.
bool
is_error_reply(const std::string& response)
{
    return response.find("\"ok\":0") != std::string::npos;
}

}  // namespace

void
ServerOptions::validate() const
{
    if (host.empty())
        fatal("serve: bind host must not be empty");
    if (port < 0 || port > 65535)
        fatal("serve: port ", port, " outside [0, 65535]");
    if (threads < 0)
        fatal("serve: threads must be >= 0 (0 = hardware threads)");
    if (max_connections < 1)
        fatal("serve: max_connections must be >= 1");
    if (max_inflight < 1)
        fatal("serve: max_inflight must be >= 1");
    if (queue_depth < 1)
        fatal("serve: queue_depth must be >= 1");
    if (batch_max < 1)
        fatal("serve: batch_max must be >= 1");
    if (!(drain_timeout_s > 0.0))
        fatal("serve: drain_timeout_s must be > 0");
}

Server::Server(ServerOptions options) : options_(std::move(options))
{
    options_.validate();
}

Server::~Server()
{
    stop();
    close_fd(listen_fd_);
    close_fd(wake_read_fd_);
    close_fd(wake_write_fd_);
}

void
Server::start()
{
    if (running_.load())
        fatal("serve: start() called on a running server");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("serve: socket(): ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1)
        fatal("serve: invalid bind address \"", options_.host, "\"");
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0)
        fatal("serve: cannot bind ", options_.host, ":", options_.port,
              ": ", std::strerror(errno));
    if (::listen(listen_fd_, 128) != 0)
        fatal("serve: listen(): ", std::strerror(errno));
    socklen_t length = sizeof address;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                      &length) != 0)
        fatal("serve: getsockname(): ", std::strerror(errno));
    port_ = static_cast<int>(ntohs(address.sin_port));
    set_nonblocking(listen_fd_);

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
        fatal("serve: pipe(): ", std::strerror(errno));
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    set_nonblocking(wake_read_fd_);
    set_nonblocking(wake_write_fd_);

    pool_ = std::make_unique<runtime::ThreadPool>(options_.threads);
    if (options_.cache_capacity > 0)
        cache_ = std::make_unique<ResponseCache>(options_.cache_capacity);
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        counters_.threads = pool_->thread_count();
    }

    stop_requested_.store(false);
    running_.store(true);
    io_thread_ = std::thread([this] { loop(); });
}

void
Server::stop()
{
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (!io_thread_.joinable())
        return;
    stop_requested_.store(true);
    const char byte = 1;
    // The self-pipe is the only wakeup the blocked poll() needs; a full
    // pipe already guarantees a pending wakeup, so the result is moot.
    [[maybe_unused]] const ssize_t n =
        ::write(wake_write_fd_, &byte, 1);
    io_thread_.join();
    running_.store(false);
}

ServerStatsSnapshot
Server::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return snapshot_locked();
}

ServerStatsSnapshot
Server::snapshot_locked() const
{
    ServerStatsSnapshot snapshot = counters_;
    if (cache_ != nullptr)
        snapshot.cache = cache_->stats();
    return snapshot;
}

// ---- I/O thread ----------------------------------------------------------

void
Server::loop()
{
    while (!stop_requested_.load()) {
        std::vector<pollfd> fds;
        fds.push_back({wake_read_fd_, POLLIN, 0});
        const bool accepting =
            static_cast<int>(connections_.size()) <
            options_.max_connections;
        const std::size_t listen_index = fds.size();
        if (accepting)
            fds.push_back({listen_fd_, POLLIN, 0});
        const std::size_t connection_base = fds.size();
        std::vector<std::uint64_t> ids;
        ids.reserve(connections_.size());
        for (const Connection& connection : connections_) {
            short events = POLLIN;
            if (connection.out_offset < connection.out.size())
                events |= POLLOUT;
            fds.push_back({connection.fd, events, 0});
            ids.push_back(connection.id);
        }

        const int timeout_ms = pending_.empty() ? -1 : 0;
        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()),
                                 timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll(): ", std::strerror(errno));
            break;
        }

        if ((fds[0].revents & POLLIN) != 0) {
            char drain[64];
            while (::read(wake_read_fd_, drain, sizeof drain) > 0) {
            }
        }
        if (accepting && (fds[listen_index].revents & POLLIN) != 0)
            accept_ready();

        for (std::size_t i = 0; i < ids.size(); ++i) {
            const pollfd& entry = fds[connection_base + i];
            Connection* connection = find_connection(ids[i]);
            if (connection == nullptr)
                continue;
            if ((entry.revents & POLLNVAL) != 0 ||
                (entry.revents & POLLERR) != 0) {
                close_connection(ids[i]);
                continue;
            }
            // Read before honoring POLLHUP: a closed peer may still
            // have queued bytes we must consume (recv() returning 0 is
            // the real EOF signal).
            if ((entry.revents & POLLIN) != 0)
                read_ready(*connection);
            connection = find_connection(ids[i]);
            if (connection == nullptr)
                continue;
            if ((entry.revents & POLLOUT) != 0)
                flush(*connection);
            connection = find_connection(ids[i]);
            if (connection == nullptr)
                continue;
            if ((entry.revents & POLLHUP) != 0 &&
                (entry.revents & POLLIN) == 0)
                close_connection(ids[i]);
        }

        if (!pending_.empty())
            dispatch_batch();
    }
    drain_and_close();
}

void
Server::accept_ready()
{
    while (static_cast<int>(connections_.size()) <
           options_.max_connections) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN: accepted everything pending. Other errors
            // (aborted handshakes, fd pressure) drop this attempt but
            // never the listener.
            return;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        Connection connection;
        connection.fd = fd;
        connection.id = next_connection_id_++;
        connections_.push_back(std::move(connection));
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++counters_.connections_total;
            ++counters_.connections_open;
        }
        bump("serve/connections");
    }
}

void
Server::read_ready(Connection& connection)
{
    char buffer[4096];
    while (true) {
        const ssize_t received =
            ::recv(connection.fd, buffer, sizeof buffer, 0);
        if (received > 0) {
            OBS_SPAN("serve/decode");
            connection.decoder.feed(
                buffer, static_cast<std::size_t>(received));
            std::string payload;
            while (true) {
                const FrameDecoder::Status status =
                    connection.decoder.next(payload);
                if (status == FrameDecoder::Status::kNeedMore)
                    break;
                if (status == FrameDecoder::Status::kOversized) {
                    // The stream cannot be resynchronized past a frame
                    // that was never buffered: reply, then close once
                    // the reply (and any queued ones) is flushed.
                    enqueue_reply(
                        connection,
                        error_response(
                            0, kErrBadFrame,
                            "announced frame length " +
                                std::to_string(connection.decoder
                                                   .oversized_length()) +
                                " exceeds the " +
                                std::to_string(kMaxFrameBytes) +
                                "-byte limit"));
                    connection.closing = true;
                    ::shutdown(connection.fd, SHUT_RD);
                    return;
                }
                ingest_payload(connection, payload);
                if (connection.closing)
                    return;
            }
            continue;
        }
        if (received == 0) {
            // EOF: the peer finished sending (possibly shutdown(WR))
            // but may still be reading; finish queued replies first.
            connection.closing = true;
            if (connection.queued == 0 &&
                connection.out_offset >= connection.out.size())
                close_connection(connection.id);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        close_connection(connection.id);
        return;
    }
}

void
Server::ingest_payload(Connection& connection, const std::string& payload)
{
    FlatJsonFields fields;
    if (!scan_flat_json(payload, fields)) {
        // Malformed payload inside a well-delimited frame: the stream
        // is still in sync, so answer and keep the connection.
        enqueue_reply(connection,
                      error_response(0, kErrBadRequest,
                                     "payload is not a flat JSON object"));
        return;
    }
    const std::uint64_t id = request_id(fields);
    if (static_cast<int>(pending_.size()) >= options_.max_inflight ||
        connection.queued >= options_.queue_depth) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++counters_.overload_rejections;
        }
        bump("serve/overloaded");
        enqueue_reply(
            connection,
            error_response(id, kErrOverloaded,
                           "server queue is full; retry after replies "
                           "drain"));
        return;
    }

    PendingRequest request;
    request.connection_id = connection.id;
    request.id = id;
    std::string type;
    json_get_string(fields, "type", type);
    request.type = type;
    request.fields = std::move(fields);
    request.timer = std::make_unique<obs::SpanTimer>("serve/request");
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++counters_.requests_total;
        if (type == "eval_design_point")
            ++counters_.requests_eval_design_point;
        else if (type == "eval_mapping")
            ++counters_.requests_eval_mapping;
        else if (type == "sim_step")
            ++counters_.requests_sim_step;
        else if (type == "server_stats")
            ++counters_.requests_server_stats;
    }
    bump("serve/requests");
    pending_.push_back(std::move(request));
    ++connection.queued;
}

void
Server::dispatch_batch()
{
    const std::size_t count =
        std::min(pending_.size(),
                 static_cast<std::size_t>(options_.batch_max));
    std::vector<PendingRequest> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
    }

    ServerStatsSnapshot snapshot;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++counters_.batches;
        counters_.max_batch =
            std::max(counters_.max_batch,
                     static_cast<std::uint64_t>(count));
        counters_.pending =
            static_cast<std::uint64_t>(pending_.size());
        snapshot = snapshot_locked();
    }
    bump("serve/batches");
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->gauge("serve/queue_depth", obs::Stability::kVolatile)
            .set(static_cast<double>(pending_.size()));

    std::vector<std::string> responses;
    {
        OBS_SPAN("serve/eval_batch");
        responses = pool_->parallel_map(count, [&](std::size_t i) {
            return finish_response(
                batch[i].id,
                handle_request_body(batch[i].fields, cache_.get(),
                                    snapshot));
        });
    }

    for (std::size_t i = 0; i < count; ++i) {
        if (obs::MetricsRegistry* registry = obs::metrics())
            registry
                ->histogram("serve/request_latency_s",
                            obs::latency_bounds(),
                            obs::Stability::kVolatile)
                .record(batch[i].timer->elapsed_s());
        batch[i].timer.reset();  // records the trace span
        Connection* connection =
            find_connection(batch[i].connection_id);
        if (connection == nullptr)
            continue;  // client disconnected mid-request: drop reply
        --connection->queued;
        enqueue_reply(*connection, responses[i]);
    }
}

void
Server::enqueue_reply(Connection& connection, const std::string& response)
{
    {
        OBS_SPAN("serve/encode");
        connection.out += encode_frame(response);
    }
    if (is_error_reply(response)) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++counters_.errors_total;
        bump("serve/errors");
    }
    flush(connection);
}

void
Server::flush(Connection& connection)
{
    while (connection.out_offset < connection.out.size()) {
        const ssize_t sent = ::send(
            connection.fd, connection.out.data() + connection.out_offset,
            connection.out.size() - connection.out_offset, MSG_NOSIGNAL);
        if (sent > 0) {
            connection.out_offset += static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;  // poll() will report POLLOUT
        if (sent < 0 && errno == EINTR)
            continue;
        close_connection(connection.id);
        return;
    }
    connection.out.clear();
    connection.out_offset = 0;
    if (connection.closing && connection.queued == 0)
        close_connection(connection.id);
}

void
Server::close_connection(std::uint64_t connection_id)
{
    for (std::size_t i = 0; i < connections_.size(); ++i) {
        if (connections_[i].id != connection_id)
            continue;
        ::close(connections_[i].fd);
        connections_.erase(
            connections_.begin() + static_cast<std::ptrdiff_t>(i));
        std::lock_guard<std::mutex> lock(stats_mutex_);
        --counters_.connections_open;
        return;
    }
}

void
Server::drain_and_close()
{
    // Evaluate everything already admitted; new reads stopped with the
    // loop, so the queue only shrinks.
    while (!pending_.empty())
        dispatch_batch();

    // Flush outstanding replies, bounded by the drain timeout.
    obs::SpanTimer deadline("serve/drain");
    while (deadline.elapsed_s() < options_.drain_timeout_s) {
        std::vector<pollfd> fds;
        std::vector<std::uint64_t> ids;
        for (const Connection& connection : connections_) {
            if (connection.out_offset < connection.out.size()) {
                fds.push_back({connection.fd, POLLOUT, 0});
                ids.push_back(connection.id);
            }
        }
        if (fds.empty())
            break;
        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()), 50);
        if (ready < 0 && errno != EINTR)
            break;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if ((fds[i].revents &
                 (POLLOUT | POLLERR | POLLHUP | POLLNVAL)) == 0)
                continue;
            if ((fds[i].revents & POLLOUT) != 0) {
                if (Connection* connection = find_connection(ids[i]))
                    flush(*connection);
            } else {
                close_connection(ids[i]);
            }
        }
    }

    for (const Connection& connection : connections_)
        ::close(connection.fd);
    connections_.clear();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    counters_.connections_open = 0;
}

Server::Connection*
Server::find_connection(std::uint64_t connection_id)
{
    for (Connection& connection : connections_) {
        if (connection.id == connection_id)
            return &connection;
    }
    return nullptr;
}

}  // namespace chrysalis::serve

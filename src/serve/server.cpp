#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace chrysalis::serve {
namespace {

void
set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("serve: fcntl(O_NONBLOCK): ", errno_text(errno));
}

void
close_fd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
bump(const char* name, std::uint64_t delta = 1)
{
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->counter(name, obs::Stability::kVolatile).add(delta);
}

/// True for replies the server counts as errors ("ok":0). The flag is
/// always the first body field, right after the fixed "v"/"id" prefix.
bool
is_error_reply(const std::string& response)
{
    return response.find("\"ok\":0") != std::string::npos;
}

/// Records a traced request's stage spans (request + decode/queue_wait/
/// eval/encode children) into \p session with explicit timestamps —
/// directly, not via ScopedSpan, so the spans land in the *server's*
/// telemetry session (which in-process multi-server tests keep
/// per-server) rather than whatever the global happens to be. All
/// inputs are monotonic_seconds() readings; the exact session skew
/// maps them onto the session epoch.
void
record_stage_spans(obs::TraceSession& session,
                   const obs::TraceContext& context, double decode_s,
                   double enqueue_mono_s, double queue_wait_s,
                   double eval_start_s, double eval_end_s,
                   double encode_end_s)
{
    const double skew_s = session.epoch_to_monotonic_skew_s();
    const auto add = [&](const char* name, double start_mono_s,
                         double duration_s, std::uint32_t depth) {
        obs::TraceEvent event;
        event.name = name;
        event.depth = depth;
        event.start_us = (start_mono_s - skew_s) * 1e6;
        event.duration_us = duration_s * 1e6;
        event.trace_id = context.trace_id;
        event.case_index = context.case_index;
        session.add_event(std::move(event));
    };
    const double decode_start_s = enqueue_mono_s - decode_s;
    add("serve/request", decode_start_s, encode_end_s - decode_start_s,
        0);
    add("serve/decode", decode_start_s, decode_s, 1);
    add("serve/queue_wait", enqueue_mono_s, queue_wait_s, 1);
    add("serve/eval", eval_start_s, eval_end_s - eval_start_s, 1);
    add("serve/encode", eval_end_s, encode_end_s - eval_end_s, 1);
}

}  // namespace

void
ServerOptions::validate() const
{
    if (host.empty())
        fatal("serve: bind host must not be empty");
    if (port < 0 || port > 65535)
        fatal("serve: port ", port, " outside [0, 65535]");
    if (threads < 0)
        fatal("serve: threads must be >= 0 (0 = hardware threads)");
    if (max_connections < 1)
        fatal("serve: max_connections must be >= 1");
    if (max_inflight < 1)
        fatal("serve: max_inflight must be >= 1");
    if (queue_depth < 1)
        fatal("serve: queue_depth must be >= 1");
    if (batch_max < 1)
        fatal("serve: batch_max must be >= 1");
    if (!(drain_timeout_s > 0.0))
        fatal("serve: drain_timeout_s must be > 0");
    if (!(read_timeout_s >= 0.0) || !std::isfinite(read_timeout_s))
        fatal("serve: read_timeout_s must be finite and >= 0 "
              "(0 disables the slow-loris defense)");
    if (!(idle_timeout_s >= 0.0) || !std::isfinite(idle_timeout_s))
        fatal("serve: idle_timeout_s must be finite and >= 0 "
              "(0 disables idle reaping)");
    if (max_write_buffer_bytes < kMaxFrameBytes + kLengthPrefixBytes)
        fatal("serve: max_write_buffer_bytes must hold at least one "
              "maximum-size reply frame (",
              kMaxFrameBytes + kLengthPrefixBytes, " bytes)");
}

Server::Server(ServerOptions options) : options_(std::move(options))
{
    options_.validate();
}

Server::~Server()
{
    stop();
    close_fd(listen_fd_);
    close_fd(wake_read_fd_);
    close_fd(wake_write_fd_);
}

void
Server::start()
{
    if (running_.load())
        fatal("serve: start() called on a running server");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("serve: socket(): ", errno_text(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1)
        fatal("serve: invalid bind address \"", options_.host, "\"");
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0)
        fatal("serve: cannot bind ", options_.host, ":", options_.port,
              ": ", errno_text(errno));
    if (::listen(listen_fd_, 128) != 0)
        fatal("serve: listen(): ", errno_text(errno));
    socklen_t length = sizeof address;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                      &length) != 0)
        fatal("serve: getsockname(): ", errno_text(errno));
    port_ = static_cast<int>(ntohs(address.sin_port));
    set_nonblocking(listen_fd_);

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
        fatal("serve: pipe(): ", errno_text(errno));
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    set_nonblocking(wake_read_fd_);
    set_nonblocking(wake_write_fd_);

    pool_ = std::make_unique<runtime::ThreadPool>(options_.threads);
    if (options_.cache_capacity > 0)
        cache_ = std::make_unique<ResponseCache>(options_.cache_capacity);
    std::string worker_id = options_.worker_id;
    if (worker_id.empty()) {
        // Default identity: "<hostname>:<port>" — resolvable only now
        // that the kernel has assigned the listening port.
        char hostname[256] = "localhost";
        if (::gethostname(hostname, sizeof hostname) != 0)
            std::snprintf(hostname, sizeof hostname, "localhost");
        hostname[sizeof hostname - 1] = '\0';
        worker_id = std::string(hostname) + ":" + std::to_string(port_);
    }
    {
        MutexLock lock(stats_mutex_);
        counters_.threads = pool_->thread_count();
        counters_.worker_id = worker_id;
        start_time_s_ = obs::monotonic_seconds();
    }

    stop_requested_.store(false);
    running_.store(true);
    io_thread_ = std::thread([this] { loop(); });
}

void
Server::stop()
{
    MutexLock lock(stop_mutex_);
    if (!io_thread_.joinable())
        return;
    stop_requested_.store(true);
    const char byte = 1;
    // The self-pipe is the only wakeup the blocked poll() needs; a full
    // pipe already guarantees a pending wakeup, so the result is moot.
    [[maybe_unused]] const ssize_t n =
        ::write(wake_write_fd_, &byte, 1);
    io_thread_.join();
    running_.store(false);
}

ServerStatsSnapshot
Server::stats() const
{
    MutexLock lock(stats_mutex_);
    return snapshot_locked();
}

ServerStatsSnapshot
Server::snapshot_locked() const
{
    ServerStatsSnapshot snapshot = counters_;
    snapshot.draining = stop_requested_.load() && running_.load();
    if (start_time_s_ > 0.0)
        snapshot.uptime_seconds = obs::monotonic_seconds() - start_time_s_;
    if (cache_ != nullptr)
        snapshot.cache = cache_->stats();
    // The latency histogram is internally atomic (not guarded by
    // stats_mutex_); quantiles resolve to bucket upper edges.
    snapshot.latency_count = latency_hist_.count();
    const std::vector<std::uint64_t> latency_counts =
        latency_hist_.bucket_counts();
    snapshot.latency_p50_s = obs::histogram_quantile(
        latency_hist_.bounds(), latency_counts, 0.50);
    snapshot.latency_p95_s = obs::histogram_quantile(
        latency_hist_.bounds(), latency_counts, 0.95);
    snapshot.latency_p99_s = obs::histogram_quantile(
        latency_hist_.bounds(), latency_counts, 0.99);
    return snapshot;
}

// ---- I/O thread ----------------------------------------------------------

void
Server::loop()
{
    while (!stop_requested_.load()) {
        const double now_s = obs::monotonic_seconds();
        std::vector<pollfd> fds;
        fds.push_back({wake_read_fd_, POLLIN, 0});
        const bool accepting =
            static_cast<int>(connections_.size()) <
                options_.max_connections &&
            now_s >= accept_not_before_s;
        const std::size_t listen_index = fds.size();
        if (accepting)
            fds.push_back({listen_fd_, POLLIN, 0});
        const std::size_t connection_base = fds.size();
        std::vector<std::uint64_t> ids;
        ids.reserve(connections_.size());
        for (const Connection& connection : connections_) {
            // Chaos deferrals mask the corresponding readiness bit so a
            // hot socket cannot spin the loop while its op is stalled;
            // POLLERR/POLLHUP are still reported on a zero mask.
            short events = 0;
            if (now_s >= connection.read_not_before_s)
                events |= POLLIN;
            if (connection.out_offset < connection.out.size() &&
                now_s >= connection.write_not_before_s)
                events |= POLLOUT;
            fds.push_back({connection.fd, events, 0});
            ids.push_back(connection.id);
        }

        int timeout_ms = pending_.empty() ? -1 : 0;
        if (timeout_ms != 0) {
            const double deadline_s = next_deadline_s(now_s);
            if (std::isfinite(deadline_s)) {
                const double wait_s = std::max(0.0, deadline_s - now_s);
                // Round up so we never wake a hair before the deadline
                // and busy-loop on a not-yet-expired timer.
                timeout_ms = static_cast<int>(
                                 std::min(wait_s * 1000.0, 60000.0)) +
                             1;
            }
        }
        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()),
                                 timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll(): ", errno_text(errno));
            break;
        }

        if ((fds[0].revents & POLLIN) != 0) {
            char drain[64];
            while (true) {
                const ssize_t got =
                    ::read(wake_read_fd_, drain, sizeof drain);
                if (got > 0 || (got < 0 && errno == EINTR))
                    continue;
                break;
            }
        }
        if (accepting && (fds[listen_index].revents & POLLIN) != 0)
            accept_ready();

        for (std::size_t i = 0; i < ids.size(); ++i) {
            const pollfd& entry = fds[connection_base + i];
            Connection* connection = find_connection(ids[i]);
            if (connection == nullptr)
                continue;
            if ((entry.revents & POLLNVAL) != 0 ||
                (entry.revents & POLLERR) != 0) {
                close_connection(ids[i]);
                continue;
            }
            // Read before honoring POLLHUP: a closed peer may still
            // have queued bytes we must consume (recv() returning 0 is
            // the real EOF signal).
            if ((entry.revents & POLLIN) != 0)
                read_ready(*connection);
            connection = find_connection(ids[i]);
            if (connection == nullptr)
                continue;
            if ((entry.revents & POLLOUT) != 0)
                flush(*connection);
            connection = find_connection(ids[i]);
            if (connection == nullptr)
                continue;
            if ((entry.revents & POLLHUP) != 0 &&
                (entry.revents & POLLIN) == 0)
                close_connection(ids[i]);
        }

        sweep_timeouts(obs::monotonic_seconds());

        if (!pending_.empty())
            dispatch_batch();
    }
    drain_and_close();
}

double
Server::next_deadline_s(double now_s) const
{
    double next_s = std::numeric_limits<double>::infinity();
    if (static_cast<int>(connections_.size()) < options_.max_connections &&
        accept_not_before_s > now_s)
        next_s = std::min(next_s, accept_not_before_s);
    for (const Connection& connection : connections_) {
        if (connection.read_not_before_s > now_s)
            next_s = std::min(next_s, connection.read_not_before_s);
        if (connection.out_offset < connection.out.size() &&
            connection.write_not_before_s > now_s)
            next_s = std::min(next_s, connection.write_not_before_s);
        if (options_.read_timeout_s > 0.0 &&
            connection.decoder.buffered_bytes() > 0)
            next_s = std::min(next_s, connection.last_activity_s +
                                          options_.read_timeout_s);
        else if (options_.idle_timeout_s > 0.0 &&
                 connection.queued == 0 &&
                 connection.out_offset >= connection.out.size())
            next_s = std::min(next_s, connection.last_activity_s +
                                          options_.idle_timeout_s);
    }
    return next_s;
}

void
Server::sweep_timeouts(double now_s)
{
    std::vector<std::uint64_t> expired_read;
    std::vector<std::uint64_t> expired_idle;
    for (const Connection& connection : connections_) {
        // A partial frame sitting in the decoder means the peer owes us
        // bytes: that is the slow-loris signature. A connection with no
        // buffered traffic in either direction is merely idle.
        if (options_.read_timeout_s > 0.0 &&
            connection.decoder.buffered_bytes() > 0) {
            if (now_s - connection.last_activity_s >=
                options_.read_timeout_s)
                expired_read.push_back(connection.id);
        } else if (options_.idle_timeout_s > 0.0 &&
                   connection.queued == 0 &&
                   connection.out_offset >= connection.out.size() &&
                   now_s - connection.last_activity_s >=
                       options_.idle_timeout_s) {
            expired_idle.push_back(connection.id);
        }
    }
    for (const std::uint64_t connection_id : expired_read) {
        close_connection(connection_id);
        {
            MutexLock lock(stats_mutex_);
            ++counters_.timeouts_read;
        }
        bump("serve/timeouts_read");
    }
    for (const std::uint64_t connection_id : expired_idle) {
        close_connection(connection_id);
        {
            MutexLock lock(stats_mutex_);
            ++counters_.timeouts_idle;
        }
        bump("serve/timeouts_idle");
    }
}

void
Server::accept_ready()
{
    while (static_cast<int>(connections_.size()) <
           options_.max_connections) {
        if (options_.chaos != nullptr) {
            const double now_s = obs::monotonic_seconds();
            if (now_s < accept_not_before_s)
                return;  // still stalled; poll timeout resumes us
            if (!accept_stall_checked_) {
                accept_stall_checked_ = true;
                const double stall_s =
                    options_.chaos->accept_stall(accept_index_);
                if (stall_s > 0.0) {
                    accept_not_before_s = now_s + stall_s;
                    return;
                }
            }
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN: accepted everything pending. Other errors
            // (aborted handshakes, fd pressure) drop this attempt but
            // never the listener.
            return;
        }
        const std::uint64_t accept_index = accept_index_++;
        accept_stall_checked_ = false;
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (options_.chaos != nullptr &&
            options_.chaos->refuse_connect(accept_index)) {
            // Simulated refusal: RST before a single byte is served, so
            // the client sees the same failure as a dead listener.
            const linger hard_reset{1, 0};
            ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
                         sizeof hard_reset);
            ::close(fd);
            continue;
        }
        Connection connection;
        connection.fd = fd;
        connection.id = next_connection_id_++;
        connection.last_activity_s = obs::monotonic_seconds();
        connections_.push_back(std::move(connection));
        {
            MutexLock lock(stats_mutex_);
            ++counters_.connections_total;
            ++counters_.connections_open;
        }
        bump("serve/connections");
    }
}

void
Server::read_ready(Connection& connection)
{
    if (options_.chaos != nullptr) {
        const double now_s = obs::monotonic_seconds();
        if (now_s < connection.read_not_before_s)
            return;  // deferred; the poll timeout resumes us
        const double delay_s =
            options_.chaos->read_delay(connection.id,
                                       connection.read_ops++);
        if (delay_s > 0.0) {
            connection.read_not_before_s = now_s + delay_s;
            return;
        }
    }
    char buffer[4096];
    while (true) {
        const ssize_t received =
            ::recv(connection.fd, buffer, sizeof buffer, 0);
        if (received > 0) {
            connection.last_activity_s = obs::monotonic_seconds();
            OBS_SPAN("serve/decode");
            connection.decoder.feed(
                buffer, static_cast<std::size_t>(received));
            std::string payload;
            while (true) {
                const FrameDecoder::Status status =
                    connection.decoder.next(payload);
                if (status == FrameDecoder::Status::kNeedMore)
                    break;
                if (status == FrameDecoder::Status::kOversized) {
                    // The stream cannot be resynchronized past a frame
                    // that was never buffered: reply, then close once
                    // the reply (and any queued ones) is flushed.
                    if (enqueue_reply(
                            connection,
                            error_response(
                                0, kErrBadFrame,
                                "announced frame length " +
                                    std::to_string(
                                        connection.decoder
                                            .oversized_length()) +
                                    " exceeds the " +
                                    std::to_string(kMaxFrameBytes) +
                                    "-byte limit"))) {
                        connection.closing = true;
                        ::shutdown(connection.fd, SHUT_RD);
                    }
                    return;
                }
                if (!ingest_payload(connection, payload))
                    return;  // connection closed; reference dangling
                if (connection.closing)
                    return;
            }
            continue;
        }
        if (received == 0) {
            // EOF: the peer finished sending (possibly shutdown(WR))
            // but may still be reading; finish queued replies first.
            connection.closing = true;
            if (connection.queued == 0 &&
                connection.out_offset >= connection.out.size())
                close_connection(connection.id);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        close_connection(connection.id);
        return;
    }
}

bool
Server::ingest_payload(Connection& connection, const std::string& payload)
{
    const double ingest_start_s = obs::monotonic_seconds();
    FlatJsonFields fields;
    if (!scan_flat_json(payload, fields)) {
        // Malformed payload inside a well-delimited frame: the stream
        // is still in sync, so answer and keep the connection.
        return enqueue_reply(
            connection,
            error_response(0, kErrBadRequest,
                           "payload is not a flat JSON object"));
    }
    const std::uint64_t id = request_id(fields);
    if (static_cast<int>(pending_.size()) >= options_.max_inflight ||
        connection.queued >= options_.queue_depth) {
        {
            MutexLock lock(stats_mutex_);
            ++counters_.overload_rejections;
        }
        bump("serve/overloaded");
        return enqueue_reply(
            connection,
            error_response(id, kErrOverloaded,
                           "server queue is full; retry after replies "
                           "drain"));
    }

    PendingRequest request;
    request.connection_id = connection.id;
    request.id = id;
    std::string type;
    json_get_string(fields, "type", type);
    request.type = type;
    // Distributed-trace context rides along as an optional field; a
    // malformed value is ignored (tracing must never fail a request).
    std::string trace_field;
    if (json_get_string(fields, "trace", trace_field) &&
        obs::parse_trace_field(trace_field, request.trace_ctx)) {
        std::uint64_t case_index = 0;
        if (json_get_uint64(fields, "case_index", case_index))
            request.trace_ctx.case_index =
                static_cast<std::int64_t>(case_index);
    }
    request.fields = std::move(fields);
    request.timer = std::make_unique<obs::SpanTimer>("serve/request");
    request.enqueue_mono_s = obs::monotonic_seconds();
    request.decode_s = request.enqueue_mono_s - ingest_start_s;
    {
        MutexLock lock(stats_mutex_);
        ++counters_.requests_total;
        if (type == "eval_design_point")
            ++counters_.requests_eval_design_point;
        else if (type == "eval_mapping")
            ++counters_.requests_eval_mapping;
        else if (type == "sim_step")
            ++counters_.requests_sim_step;
        else if (type == "run_case")
            ++counters_.requests_run_case;
        else if (type == "server_stats")
            ++counters_.requests_server_stats;
        else if (type == "health")
            ++counters_.requests_health;
        else if (type == "metrics_snapshot")
            ++counters_.requests_metrics_snapshot;
        else if (type == "trace_export")
            ++counters_.requests_trace_export;
    }
    bump("serve/requests");
    pending_.push_back(std::move(request));
    ++connection.queued;
    return true;
}

void
Server::dispatch_batch()
{
    const std::size_t count =
        std::min(pending_.size(),
                 static_cast<std::size_t>(options_.batch_max));
    std::vector<PendingRequest> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
    }

    ServerStatsSnapshot snapshot;
    {
        MutexLock lock(stats_mutex_);
        ++counters_.batches;
        counters_.max_batch =
            std::max(counters_.max_batch,
                     static_cast<std::uint64_t>(count));
        counters_.pending =
            static_cast<std::uint64_t>(pending_.size());
        snapshot = snapshot_locked();
    }
    bump("serve/batches");
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->gauge("serve/queue_depth", obs::Stability::kVolatile)
            .set(static_cast<double>(pending_.size()));

    // Telemetry sources resolve per batch: explicit options win, else
    // the process globals (nullptr disables the corresponding export).
    TelemetrySources telemetry;
    telemetry.metrics = options_.metrics_source != nullptr
                            ? options_.metrics_source
                            : obs::metrics();
    telemetry.trace = options_.trace_source != nullptr
                          ? options_.trace_source
                          : obs::trace();
    const double dispatch_start_s = obs::monotonic_seconds();

    std::vector<std::string> responses;
    {
        OBS_SPAN("serve/eval_batch");
        responses = pool_->parallel_map(count, [&](std::size_t i) {
            PendingRequest& request = batch[i];
            if (!request.trace_ctx.active()) {
                return finish_response(
                    request.id,
                    handle_request_body(request.fields, cache_.get(),
                                        snapshot, telemetry));
            }
            // Traced request: install the caller's context (spans
            // recorded by the handler inherit it), measure each stage
            // and splice the timings into the reply — after the memo,
            // so cached bytes stay timing-free.
            obs::ScopedTraceContext context(request.trace_ctx);
            const double queue_wait_s =
                dispatch_start_s - request.enqueue_mono_s;
            const double eval_start_s = obs::monotonic_seconds();
            const std::string body = handle_request_body(
                request.fields, cache_.get(), snapshot, telemetry);
            const double eval_end_s = obs::monotonic_seconds();
            std::string response = finish_response(request.id, body);
            const double encode_end_s = obs::monotonic_seconds();
            append_timing_fields(response, queue_wait_s,
                                 request.decode_s,
                                 eval_end_s - eval_start_s,
                                 encode_end_s - eval_end_s);
            if (telemetry.trace != nullptr)
                record_stage_spans(*telemetry.trace, request.trace_ctx,
                                   request.decode_s,
                                   request.enqueue_mono_s, queue_wait_s,
                                   eval_start_s, eval_end_s,
                                   encode_end_s);
            return response;
        });
    }

    for (std::size_t i = 0; i < count; ++i) {
        const double latency_s = batch[i].timer->elapsed_s();
        latency_hist_.record(latency_s);
        if (telemetry.metrics != nullptr)
            telemetry.metrics
                ->histogram("serve/request_latency_s",
                            obs::latency_bounds(),
                            obs::Stability::kVolatile)
                .record(latency_s);
        {
            // The released span inherits the request's trace context.
            obs::ScopedTraceContext context(batch[i].trace_ctx);
            batch[i].timer.reset();  // records the trace span
        }
        Connection* connection =
            find_connection(batch[i].connection_id);
        if (connection == nullptr)
            continue;  // client disconnected mid-request: drop reply
        --connection->queued;
        enqueue_reply(*connection, responses[i]);
    }
}

bool
Server::enqueue_reply(Connection& connection, const std::string& response)
{
    {
        OBS_SPAN("serve/encode");
        connection.out += encode_frame(response);
    }
    if (is_error_reply(response)) {
        MutexLock lock(stats_mutex_);
        ++counters_.errors_total;
        bump("serve/errors");
    }
    if (connection.out.size() - connection.out_offset >
        options_.max_write_buffer_bytes) {
        // Slow-consumer defense: the peer keeps asking but stopped
        // reading; drop it rather than buffer replies without bound.
        const std::uint64_t connection_id = connection.id;
        close_connection(connection_id);
        {
            MutexLock lock(stats_mutex_);
            ++counters_.slow_consumer_closes;
        }
        bump("serve/slow_consumer_closes");
        return false;
    }
    const std::uint64_t connection_id = connection.id;
    flush(connection);
    return find_connection(connection_id) != nullptr;
}

void
Server::flush(Connection& connection)
{
    while (connection.out_offset < connection.out.size()) {
        std::size_t want =
            connection.out.size() - connection.out_offset;
        bool torn = false;
        double stall_s = 0.0;
        if (options_.chaos != nullptr) {
            const double now_s = obs::monotonic_seconds();
            if (now_s < connection.write_not_before_s)
                return;  // stalled; the poll timeout resumes us
            const std::uint64_t write_op = connection.write_ops++;
            if (options_.chaos->reset_after_write(connection.id,
                                                  write_op)) {
                // Deliver one more chunk, then RST mid-frame: the
                // client sees a torn reply followed by ECONNRESET.
                const std::size_t cap =
                    options_.chaos->spec().torn_write_chunk_bytes;
                [[maybe_unused]] const ssize_t sent = ::send(
                    connection.fd,
                    connection.out.data() + connection.out_offset,
                    std::min(want, cap), MSG_NOSIGNAL);
                reset_connection(connection.id);
                return;
            }
            const std::size_t cap = options_.chaos->write_cap_bytes(
                connection.id, write_op);
            if (cap < want) {
                want = cap;
                torn = true;
                stall_s =
                    options_.chaos->write_stall(connection.id, write_op);
            }
        }
        const ssize_t sent = ::send(
            connection.fd, connection.out.data() + connection.out_offset,
            want, MSG_NOSIGNAL);
        if (sent > 0) {
            connection.out_offset += static_cast<std::size_t>(sent);
            connection.last_activity_s = obs::monotonic_seconds();
            if (torn && stall_s > 0.0 &&
                connection.out_offset < connection.out.size()) {
                connection.write_not_before_s =
                    connection.last_activity_s + stall_s;
                return;  // resume after the inter-chunk stall
            }
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;  // poll() will report POLLOUT
        if (sent < 0 && errno == EINTR)
            continue;
        close_connection(connection.id);
        return;
    }
    connection.out.clear();
    connection.out_offset = 0;
    if (connection.closing && connection.queued == 0)
        close_connection(connection.id);
}

void
Server::close_connection(std::uint64_t connection_id)
{
    for (std::size_t i = 0; i < connections_.size(); ++i) {
        if (connections_[i].id != connection_id)
            continue;
        ::close(connections_[i].fd);
        connections_.erase(
            connections_.begin() + static_cast<std::ptrdiff_t>(i));
        MutexLock lock(stats_mutex_);
        --counters_.connections_open;
        return;
    }
}

void
Server::reset_connection(std::uint64_t connection_id)
{
    for (std::size_t i = 0; i < connections_.size(); ++i) {
        if (connections_[i].id != connection_id)
            continue;
        // SO_LINGER with zero timeout turns close() into an immediate
        // RST — the chaos schedule's mid-frame connection reset.
        const linger hard_reset{1, 0};
        ::setsockopt(connections_[i].fd, SOL_SOCKET, SO_LINGER,
                     &hard_reset, sizeof hard_reset);
        ::close(connections_[i].fd);
        connections_.erase(
            connections_.begin() + static_cast<std::ptrdiff_t>(i));
        MutexLock lock(stats_mutex_);
        --counters_.connections_open;
        return;
    }
}

void
Server::drain_and_close()
{
    // Evaluate everything already admitted; new reads stopped with the
    // loop, so the queue only shrinks.
    while (!pending_.empty())
        dispatch_batch();

    // Flush outstanding replies, bounded by the drain timeout.
    obs::SpanTimer deadline("serve/drain");
    while (deadline.elapsed_s() < options_.drain_timeout_s) {
        std::vector<pollfd> fds;
        std::vector<std::uint64_t> ids;
        for (const Connection& connection : connections_) {
            if (connection.out_offset < connection.out.size()) {
                fds.push_back({connection.fd, POLLOUT, 0});
                ids.push_back(connection.id);
            }
        }
        if (fds.empty())
            break;
        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()), 50);
        if (ready < 0 && errno != EINTR)
            break;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if ((fds[i].revents &
                 (POLLOUT | POLLERR | POLLHUP | POLLNVAL)) == 0)
                continue;
            if ((fds[i].revents & POLLOUT) != 0) {
                if (Connection* connection = find_connection(ids[i]))
                    flush(*connection);
            } else {
                close_connection(ids[i]);
            }
        }
    }

    for (const Connection& connection : connections_)
        ::close(connection.fd);
    connections_.clear();
    MutexLock lock(stats_mutex_);
    counters_.connections_open = 0;
}

Server::Connection*
Server::find_connection(std::uint64_t connection_id)
{
    for (Connection& connection : connections_) {
        if (connection.id == connection_id)
            return &connection;
    }
    return nullptr;
}

}  // namespace chrysalis::serve

/// \file
/// Process-level wrappers around serve::Server and serve::Client: flag
/// parsing, SIGINT/SIGTERM-driven graceful drain, and the one-shot
/// request path. Shared by the standalone `chrysalis_served` binary and
/// the `chrysalis_cli serve` / `chrysalis_cli call` subcommands so both
/// spellings behave identically.

#ifndef CHRYSALIS_SERVE_DAEMON_HPP
#define CHRYSALIS_SERVE_DAEMON_HPP

#include <string>

#include "serve/server.hpp"

namespace chrysalis::serve {

/// `serve` front-end configuration.
struct ServeCliOptions {
    ServerOptions server;
    std::string metrics_out;  ///< metrics JSON report path ("" = none)
    std::string trace_out;    ///< Chrome trace path ("" = none)
};

/// Prints the flag reference for the serve front-end.
void serve_usage(const char* argv0);

/// Prints the flag reference for the call front-end.
void call_usage(const char* argv0);

/// Runs the daemon: start the server, announce the bound address on
/// stdout ("chrysalis_served listening on HOST:PORT"), block until
/// SIGINT or SIGTERM, drain, report totals and write the optional
/// metrics/trace files. Flags are parsed from argv[first..); fatal()
/// on unknown flags. Returns the process exit code.
int run_serve_cli(int argc, char** argv, int first);

/// Runs one request against a server and prints the raw reply payload
/// on stdout. Recognized flags: --host, --port (required), --type
/// (required), --timeout; every other `--key value` becomes a request
/// field. Exit code 0 when the reply says "ok":1, 1 otherwise.
int run_call_cli(int argc, char** argv, int first);

}  // namespace chrysalis::serve

#endif  // CHRYSALIS_SERVE_DAEMON_HPP

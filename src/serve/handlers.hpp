/// \file
/// Request handlers of `chrysalis-serve-v1`: pure functions from parsed
/// request fields to a response *body* (the fields after `"v"` and
/// `"id"`), factored out of the server's I/O loop so tests can exercise
/// every request type without a socket.
///
/// Determinism contract: for `eval_design_point`, `eval_mapping`,
/// `sim_step` and `run_case` the body is a pure function of the request
/// fields — all
/// doubles are rendered with format_double_17g() and all field orders
/// are fixed — so identical requests produce byte-identical responses
/// regardless of server thread count, cache state, or which worker ran
/// them. `server_stats` reports live state and is exempt (and is never
/// cached).

#ifndef CHRYSALIS_SERVE_HANDLERS_HPP
#define CHRYSALIS_SERVE_HANDLERS_HPP

#include <cstdint>
#include <string>

#include "common/flat_json.hpp"
#include "runtime/eval_cache.hpp"

namespace chrysalis::obs {
class MetricsRegistry;
class TraceSession;
}  // namespace chrysalis::obs

namespace chrysalis::serve {

/// Response memo shared across connections: request-key -> body bytes.
/// Two clients asking the same question cost one evaluation.
using ResponseCache = runtime::EvalCache<std::string>;

/// Point-in-time copy of the server's counters, captured on the I/O
/// thread when a batch is dispatched; `server_stats` replies are
/// formatted from this snapshot on a worker without touching live state.
struct ServerStatsSnapshot {
    std::uint64_t connections_open = 0;
    std::uint64_t connections_total = 0;   ///< accepted since start
    std::uint64_t requests_total = 0;      ///< well-framed requests seen
    std::uint64_t requests_eval_design_point = 0;
    std::uint64_t requests_eval_mapping = 0;
    std::uint64_t requests_sim_step = 0;
    std::uint64_t requests_run_case = 0;
    std::uint64_t requests_server_stats = 0;
    std::uint64_t requests_health = 0;
    std::uint64_t requests_metrics_snapshot = 0;
    std::uint64_t requests_trace_export = 0;
    std::uint64_t errors_total = 0;        ///< "ok":0 replies sent
    std::uint64_t overload_rejections = 0; ///< admission-control refusals
    std::uint64_t batches = 0;             ///< micro-batches dispatched
    std::uint64_t max_batch = 0;           ///< largest batch so far
    std::uint64_t pending = 0;             ///< queued at snapshot time
    std::uint64_t timeouts_read = 0;       ///< slow-loris closes (partial
                                           ///< frame past read_timeout_s)
    std::uint64_t timeouts_idle = 0;       ///< idle closes (idle_timeout_s)
    std::uint64_t slow_consumer_closes = 0;  ///< write buffer overflows
    bool draining = false;                 ///< stop() requested; no new
                                           ///< work admitted after drain
    int threads = 1;                       ///< eval worker count
    runtime::EvalCacheStats cache;         ///< shared response-memo stats
    /// Stable identity this daemon reports in `server_stats` and
    /// `health` replies (ServerOptions::worker_id, defaulted to
    /// "<hostname>:<port>" at start()), so fleet coordinators and logs
    /// can attribute work to workers.
    std::string worker_id;
    double uptime_seconds = 0.0;           ///< seconds since start()
    /// Request-latency summary, computed server-side from the latency
    /// histogram's bucket counts (obs::histogram_quantile) so
    /// operators read a p99 from one `server_stats` call without a
    /// full metrics pull. Quantiles resolve to bucket upper edges.
    std::uint64_t latency_count = 0;
    double latency_p50_s = 0.0;
    double latency_p95_s = 0.0;
    double latency_p99_s = 0.0;
};

/// Live telemetry the `metrics_snapshot` / `trace_export` handlers
/// read from. Both pointers are non-owning and may be null (the
/// handler replies with `attached:0` and zero entries). Unlike the
/// stats snapshot these are read at handler time — the whole point of
/// a pull is current data.
struct TelemetrySources {
    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceSession* trace = nullptr;
};

/// The client-chosen "id" echo token; 0 when absent or unparsable.
std::uint64_t request_id(const FlatJsonFields& fields);

/// True for request types whose response goes through the StableHash
/// response memo (`eval_design_point`, `eval_mapping`, `sim_step`,
/// `run_case`):
/// their replies are pure functions of the request fields. This is also
/// the retry-safety classification — the resilient client resends only
/// memoized types after a transport failure, because a lost reply to
/// one costs a cache hit, never a second side effect. `server_stats`
/// and `health` report live state and are neither cached nor retried.
bool response_is_memoized(const std::string& type);

/// Stable memo key of a request: StableHash over the protocol version
/// and every field except "id" and "trace", in key-sorted order. Two
/// requests that differ only in "id" or trace context (or field
/// spelling order on the wire — the map is sorted) share a key and
/// therefore a cached body: tracing is observability, never semantics,
/// so a traced and an untraced request must hit the same memo entry.
CacheKey request_cache_key(const FlatJsonFields& fields);

/// Dispatches one parsed request to its handler. Eval-type responses go
/// through \p cache when non-null. Never throws and never fatals:
/// handler-level fatal() (unknown model, bad field value) is converted
/// to an `"ok":0` body via FatalThrowGuard. \p telemetry feeds the
/// live `metrics_snapshot` / `trace_export` pull handlers only.
std::string handle_request_body(const FlatJsonFields& fields,
                                ResponseCache* cache,
                                const ServerStatsSnapshot& stats,
                                const TelemetrySources& telemetry = {});

/// Splices the per-request stage timings into a finished response
/// (before the trailing '}'): `timing_queue_s`, `timing_decode_s`,
/// `timing_eval_s`, `timing_encode_s`, all format_double_17g. The
/// server calls this only for requests that carried a `trace` field,
/// AFTER any response-memo lookup — timing never enters cached bytes,
/// so traced and untraced clients read byte-identical payloads.
void append_timing_fields(std::string& response, double queue_wait_s,
                          double decode_s, double eval_s,
                          double encode_s);

/// Body of an `"ok":0` reply: `"ok":0,"error":<code>,"detail":<detail>`.
std::string error_body(const std::string& code, const std::string& detail);

/// Wraps a body into the full response object:
/// `{"v":<version>,"id":<id>,<body>}`.
std::string finish_response(std::uint64_t id, const std::string& body);

/// finish_response(error_body(...)) in one step — the server's reply
/// for refused requests (overload, malformed frame, shutdown).
std::string error_response(std::uint64_t id, const std::string& code,
                           const std::string& detail);

}  // namespace chrysalis::serve

#endif  // CHRYSALIS_SERVE_HANDLERS_HPP

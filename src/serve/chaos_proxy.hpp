/// \file
/// In-process TCP chaos proxy: sits between a client and a
/// `chrysalis-serve-v1` daemon and injects seed-deterministic network
/// faults on the *client-facing* side — torn writes delivered in
/// delayed chunks, mid-frame connection resets, delayed reply
/// delivery, and connections refused with an RST right after accept.
/// The upstream side is forwarded faithfully, so the daemon under test
/// sees a clean peer while the client sees a hostile network.
///
/// Used by the resilient-client tests and `chrysalis_bench_load
/// --chaos`: because every fault decision comes from a
/// `fault::NetFaultInjector` schedule (pure function of seed and
/// operation indices), a chaotic run can be replayed exactly.
///
/// One background thread owns all sockets and runs a poll() loop —
/// same single-owner architecture as serve::Server, so no locking.
/// Forwarding is transparent at the byte level: the proxy never
/// parses frames, which is exactly why torn writes land at arbitrary
/// offsets inside them.

#ifndef CHRYSALIS_SERVE_CHAOS_PROXY_HPP
#define CHRYSALIS_SERVE_CHAOS_PROXY_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "fault/net_fault_injector.hpp"

namespace chrysalis::serve {

/// Proxy knobs; validate() fatals on nonsense values.
struct ChaosProxyOptions {
    std::string host = "127.0.0.1";      ///< listen address
    int port = 0;                        ///< 0 = kernel-chosen
    std::string upstream_host = "127.0.0.1";
    int upstream_port = 0;               ///< the real daemon
    /// The chaos schedule applied to the client-facing side.
    /// Non-owning; may be nullptr for a fault-free pass-through.
    const fault::NetFaultInjector* chaos = nullptr;
    /// Per-direction forward buffer bound; reading a side pauses
    /// (backpressure) while its buffer is full.
    std::size_t max_buffer_bytes = 1u << 20;

    void validate() const;
};

/// The proxy. Construct, start(), eventually stop(). stop() is
/// thread-safe and idempotent.
class ChaosProxy
{
  public:
    explicit ChaosProxy(ChaosProxyOptions options);
    ~ChaosProxy();  ///< stop()s if still running

    ChaosProxy(const ChaosProxy&) = delete;
    ChaosProxy& operator=(const ChaosProxy&) = delete;

    /// Binds, listens and launches the forwarding thread. fatal() when
    /// the address cannot be bound.
    void start();

    /// Closes every link and joins the forwarding thread. Idempotent.
    void stop();

    bool running() const { return running_.load(); }

    /// Resolved listening port (after start()); clients dial this.
    int port() const { return port_; }

    const ChaosProxyOptions& options() const { return options_; }

    /// Links accepted since start() (includes refused ones).
    std::uint64_t links_total() const { return links_total_.load(); }

  private:
    /// One client<->upstream pairing and its forward buffers.
    struct Link {
        int client_fd = -1;
        int upstream_fd = -1;
        std::uint64_t id = 0;
        std::string to_client;        ///< upstream->client bytes
        std::size_t to_client_offset = 0;
        std::string to_upstream;      ///< client->upstream bytes
        std::size_t to_upstream_offset = 0;
        bool client_eof = false;      ///< client finished sending
        bool upstream_eof = false;    ///< upstream finished sending
        // Chaos bookkeeping (client-facing side only).
        double write_not_before_s = 0.0;  ///< torn-write stall deadline
        double read_not_before_s = 0.0;   ///< delayed-delivery deadline
        std::uint64_t write_ops = 0;
        std::uint64_t read_ops = 0;
    };

    void loop();
    void accept_ready();
    /// Drains to_client toward the client, applying the chaos schedule
    /// (caps, stalls, resets). Returns false when the link was closed.
    bool flush_to_client(std::size_t index);
    /// Returns false when the link was closed.
    bool flush_to_upstream(std::size_t index);
    void close_link(std::size_t index, bool reset_client);
    double next_deadline_s(double now_s) const;

    ChaosProxyOptions options_;

    int listen_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;
    int port_ = 0;

    std::thread io_thread_;
    Mutex stop_mutex_;  ///< serializes concurrent stop() calls
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    std::atomic<std::uint64_t> links_total_{0};

    // Forwarding-thread state (no locking needed).
    std::vector<Link> links_;
    std::uint64_t next_link_id_ = 1;
    std::uint64_t accept_index_ = 0;
    double accept_not_before_s = 0.0;
    bool accept_stall_checked_ = false;
};

}  // namespace chrysalis::serve

#endif  // CHRYSALIS_SERVE_CHAOS_PROXY_HPP

/// \file
/// `chrysalis-serve-v1` client: connect, frame requests, read framed
/// replies. Used by `chrysalis_cli call`, the load-generator bench and
/// the protocol tests (which also use the raw send_bytes() escape
/// hatch to produce deliberately broken frames).
///
/// Two calling conventions coexist:
///
///  - The low-level primitives (`send_frame` / `recv_frame` / `call`)
///    make exactly one attempt. `recv_frame` enforces a single
///    wall-clock deadline across the *whole* frame — a server that
///    trickles one byte per poll interval can no longer hold a request
///    forever by resetting a per-recv() timer.
///
///  - `request()` is the resilient path: overall per-request deadline,
///    connect timeout, automatic reconnect, bounded exponential backoff
///    with deterministic jitter (seeded — replays exactly), and a
///    circuit breaker that fast-fails after a run of consecutive
///    failures instead of hammering a dead server. Retries are
///    restricted to request types classified idempotent by the server's
///    StableHash response memo (`response_is_memoized()`): resending
///    one costs at most a cache hit, never a second side effect. Each
///    failed attempt closes the socket before retrying, so a late reply
///    from a timed-out attempt can never be mis-associated with the
///    next request.

#ifndef CHRYSALIS_SERVE_CLIENT_HPP
#define CHRYSALIS_SERVE_CLIENT_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/flat_json.hpp"
#include "serve/protocol.hpp"

namespace chrysalis::serve {

/// One parsed response.
struct Response {
    bool ok = false;           ///< the "ok" flag of the reply
    std::uint64_t id = 0;      ///< echoed request id
    std::string error;         ///< kErr* code when !ok
    std::string detail;        ///< human-readable error context
    std::string raw;           ///< full reply payload (exact bytes)
    FlatJsonFields fields;     ///< every reply field, parsed
};

/// Outcome of a resilient request() — the terminal classification
/// after every permitted attempt was spent.
enum class CallStatus {
    kOk = 0,          ///< reply received and parsed (may be "ok":0)
    kTransportError,  ///< connect/send/recv failed on the final attempt
    kTimeout,         ///< request deadline elapsed on the final attempt
    kProtocolError,   ///< reply was unparsable or mis-addressed
    kCircuitOpen,     ///< fast-failed without touching the network
};

/// Stable lowercase token for logs and bench reports.
const char* to_string(CallStatus status);

/// Knobs of the resilient request() path; validate() fatals on
/// nonsense values. The defaults suit a loopback daemon.
struct ClientOptions {
    /// Bounds the TCP dial (nonblocking connect + poll).
    double connect_timeout_s = 5.0;
    /// Wall-clock budget of one attempt: send + whole reply frame.
    /// 0 = wait forever.
    double request_timeout_s = 30.0;
    /// Total attempts per request() (1 = no retry). Only requests whose
    /// type is response_is_memoized() get more than one attempt.
    int max_attempts = 4;
    double backoff_base_s = 0.01;  ///< first retry delay
    double backoff_max_s = 1.0;    ///< exponential backoff cap
    /// Consecutive request() failures that open the circuit breaker;
    /// 0 disables the breaker.
    int circuit_breaker_threshold = 8;
    /// While open, request() fast-fails kCircuitOpen until this much
    /// time has passed; the next attempt is the half-open probe.
    double circuit_breaker_cooldown_s = 1.0;
    /// Seed of the deterministic backoff jitter: same seed, same
    /// request ids, same attempt numbers -> identical delays.
    std::uint64_t retry_seed = 1;

    void validate() const;
};

/// Counters of the resilient path, kept per client instance (the load
/// bench aggregates across clients; obs counters mirror them globally).
struct RetryStats {
    std::uint64_t attempts = 0;          ///< network attempts made
    std::uint64_t retries = 0;           ///< attempts after the first
    std::uint64_t reconnects = 0;        ///< successful re-dials
    std::uint64_t timeouts = 0;          ///< attempts lost to the deadline
    std::uint64_t transport_errors = 0;  ///< attempts lost to connect/IO
    std::uint64_t protocol_errors = 0;   ///< unparsable or wrong-id replies
    std::uint64_t circuit_open_rejections = 0;  ///< fast-failed requests
    std::uint64_t circuit_opens = 0;     ///< closed->open transitions
};

/// TCP client. Movable (so benches can hold a vector of connections),
/// not copyable. Not thread-safe; one client per thread.
class Client
{
  public:
    Client() = default;
    explicit Client(ClientOptions options);
    ~Client();
    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Connects to host:port and remembers the address for automatic
    /// reconnects. \p timeout_s >= 0 overrides both the connect and the
    /// per-request deadline (back-compat with the old per-recv timeout
    /// parameter, 0 = wait forever); the default -1 uses
    /// ClientOptions::connect_timeout_s / request_timeout_s. Returns
    /// false on failure (fd left closed).
    bool connect(const std::string& host, int port,
                 double timeout_s = -1.0);

    bool connected() const { return fd_ >= 0; }

    /// Closes the socket (both directions).
    void close();

    /// Half-closes the write side; the server sees EOF after the bytes
    /// in flight, replies to what it received, then closes.
    void shutdown_write();

    /// Sends raw bytes as-is — no framing. For tests that need
    /// truncated or hand-corrupted frames.
    bool send_bytes(const void* data, std::size_t size);

    /// Frames and sends one payload.
    bool send_frame(const std::string& payload);

    /// Blocks until one complete reply frame arrives, bounded by one
    /// wall-clock deadline across the whole frame (the per-request
    /// timeout, however slowly the bytes trickle in). Returns false on
    /// EOF, deadline expiry or protocol corruption.
    bool recv_frame(std::string& payload);

    /// Builds a request payload: `"v"`, an auto-incremented `"id"`,
    /// `"type"`, then \p params in key-sorted order. Parameter values
    /// that parse fully as numbers are emitted bare, everything else as
    /// a JSON string — matching what the handlers accept either way.
    std::string build_request(const std::string& type,
                              const FlatJsonFields& params);

    /// send_frame(build_request(...)) + recv_frame + parse, in one
    /// call — exactly one attempt, no retry. Returns false on any
    /// transport failure; protocol-level errors ("ok":0) still return
    /// true with response.ok == false.
    bool call(const std::string& type, const FlatJsonFields& params,
              Response& response);

    /// The resilient path: one request, up to
    /// ClientOptions::max_attempts network attempts (retrying only
    /// types the server memoizes), automatic reconnect between
    /// attempts, deterministic backoff, circuit breaker. Returns kOk
    /// with \p response filled, or the failure classification of the
    /// final attempt.
    CallStatus request(const std::string& type,
                       const FlatJsonFields& params, Response& response);

    const ClientOptions& options() const { return options_; }
    const RetryStats& retry_stats() const { return stats_; }

    /// True while the circuit breaker refuses requests.
    bool circuit_open() const { return circuit_open_; }

    /// The "id" the next build_request() will use.
    std::uint64_t next_id() const { return next_id_; }
    void set_next_id(std::uint64_t id) { next_id_ = id; }

  private:
    enum class RecvOutcome { kFrame, kTimeout, kClosed, kCorrupt };

    /// Consumes the reply's `timing_*` stage fields (servers splice
    /// them in only for traced requests): records them into the
    /// `serve/client/remote_*` latency histograms and — when a trace
    /// session is attached — injects synthetic child spans attributed
    /// to the remote worker (`host:port`), so a client-side trace
    /// shows where the remote time went without pulling the worker's
    /// own trace buffer. No-op when the reply carries no timing.
    void note_remote_timing(const FlatJsonFields& params,
                            const Response& response);
    /// Dials host_:port_ within connect_timeout. Returns false and
    /// leaves the fd closed on failure.
    bool dial();
    /// recv_frame against an absolute obs::monotonic_seconds()
    /// deadline; +inf waits forever.
    RecvOutcome recv_frame_until(std::string& payload, double deadline_s);
    /// One send+recv+parse attempt of the prebuilt \p payload.
    CallStatus attempt_once(const std::string& payload,
                            std::uint64_t request_id, Response& response);
    void record_failure(CallStatus status);
    void sleep_backoff(std::uint64_t request_id, int attempt);

    ClientOptions options_;
    int fd_ = -1;
    std::uint64_t next_id_ = 1;
    FrameDecoder decoder_;

    std::string host_;  ///< remembered dial address for reconnects
    int port_ = 0;

    RetryStats stats_;
    int consecutive_failures_ = 0;
    bool circuit_open_ = false;
    double circuit_open_until_s_ = 0.0;
};

/// Parses a reply payload into a Response. Returns false (and fills
/// response.error with kErrBadRequest semantics) when the payload is
/// not a flat JSON object.
bool parse_response(const std::string& payload, Response& response);

}  // namespace chrysalis::serve

#endif  // CHRYSALIS_SERVE_CLIENT_HPP

/// \file
/// Blocking `chrysalis-serve-v1` client: connect, frame requests, read
/// framed replies. Used by `chrysalis_cli call`, the load-generator
/// bench and the protocol tests (which also use the raw send_bytes()
/// escape hatch to produce deliberately broken frames).

#ifndef CHRYSALIS_SERVE_CLIENT_HPP
#define CHRYSALIS_SERVE_CLIENT_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/flat_json.hpp"
#include "serve/protocol.hpp"

namespace chrysalis::serve {

/// One parsed response.
struct Response {
    bool ok = false;           ///< the "ok" flag of the reply
    std::uint64_t id = 0;      ///< echoed request id
    std::string error;         ///< kErr* code when !ok
    std::string detail;        ///< human-readable error context
    std::string raw;           ///< full reply payload (exact bytes)
    FlatJsonFields fields;     ///< every reply field, parsed
};

/// Blocking TCP client. Movable (so benches can hold a vector of
/// connections), not copyable.
class Client
{
  public:
    Client() = default;
    ~Client();
    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Connects to host:port. \p timeout_s bounds each blocking recv()
    /// (0 = wait forever). Returns false on failure (fd left closed).
    bool connect(const std::string& host, int port,
                 double timeout_s = 30.0);

    bool connected() const { return fd_ >= 0; }

    /// Closes the socket (both directions).
    void close();

    /// Half-closes the write side; the server sees EOF after the bytes
    /// in flight, replies to what it received, then closes.
    void shutdown_write();

    /// Sends raw bytes as-is — no framing. For tests that need
    /// truncated or hand-corrupted frames.
    bool send_bytes(const void* data, std::size_t size);

    /// Frames and sends one payload.
    bool send_frame(const std::string& payload);

    /// Blocks until one complete reply frame arrives. Returns false on
    /// EOF, timeout or protocol corruption.
    bool recv_frame(std::string& payload);

    /// Builds a request payload: `"v"`, an auto-incremented `"id"`,
    /// `"type"`, then \p params in key-sorted order. Parameter values
    /// that parse fully as numbers are emitted bare, everything else as
    /// a JSON string — matching what the handlers accept either way.
    std::string build_request(const std::string& type,
                              const FlatJsonFields& params);

    /// send_frame(build_request(...)) + recv_frame + parse, in one
    /// call. Returns false on any transport failure; protocol-level
    /// errors ("ok":0) still return true with response.ok == false.
    bool call(const std::string& type, const FlatJsonFields& params,
              Response& response);

    /// The "id" the next build_request() will use.
    std::uint64_t next_id() const { return next_id_; }
    void set_next_id(std::uint64_t id) { next_id_ = id; }

  private:
    int fd_ = -1;
    std::uint64_t next_id_ = 1;
    FrameDecoder decoder_;
};

/// Parses a reply payload into a Response. Returns false (and fills
/// response.error with kErrBadRequest semantics) when the payload is
/// not a flat JSON object.
bool parse_response(const std::string& payload, Response& response);

}  // namespace chrysalis::serve

#endif  // CHRYSALIS_SERVE_CLIENT_HPP

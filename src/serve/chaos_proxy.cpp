#include "serve/chaos_proxy.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <limits>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace chrysalis::serve {
namespace {

void
set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("chaos_proxy: fcntl(O_NONBLOCK): ", errno_text(errno));
}

void
close_fd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
rst_close(int fd)
{
    // SO_LINGER with zero timeout turns close() into an immediate RST.
    const linger hard_reset{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
                 sizeof hard_reset);
    ::close(fd);
}

}  // namespace

void
ChaosProxyOptions::validate() const
{
    if (host.empty() || upstream_host.empty())
        fatal("chaos_proxy: addresses must not be empty");
    if (port < 0 || port > 65535)
        fatal("chaos_proxy: port ", port, " outside [0, 65535]");
    if (upstream_port < 1 || upstream_port > 65535)
        fatal("chaos_proxy: upstream_port ", upstream_port,
              " outside [1, 65535]");
    if (max_buffer_bytes < 4096)
        fatal("chaos_proxy: max_buffer_bytes must be >= 4096");
}

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options))
{
    options_.validate();
}

ChaosProxy::~ChaosProxy()
{
    stop();
    close_fd(listen_fd_);
    close_fd(wake_read_fd_);
    close_fd(wake_write_fd_);
}

void
ChaosProxy::start()
{
    if (running_.load())
        fatal("chaos_proxy: start() called on a running proxy");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal("chaos_proxy: socket(): ", errno_text(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) !=
        1)
        fatal("chaos_proxy: invalid bind address \"", options_.host,
              "\"");
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0)
        fatal("chaos_proxy: cannot bind ", options_.host, ":",
              options_.port, ": ", errno_text(errno));
    if (::listen(listen_fd_, 128) != 0)
        fatal("chaos_proxy: listen(): ", errno_text(errno));
    socklen_t length = sizeof address;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                      &length) != 0)
        fatal("chaos_proxy: getsockname(): ", errno_text(errno));
    port_ = static_cast<int>(ntohs(address.sin_port));
    set_nonblocking(listen_fd_);

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
        fatal("chaos_proxy: pipe(): ", errno_text(errno));
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    set_nonblocking(wake_read_fd_);
    set_nonblocking(wake_write_fd_);

    stop_requested_.store(false);
    running_.store(true);
    io_thread_ = std::thread([this] { loop(); });
}

void
ChaosProxy::stop()
{
    MutexLock lock(stop_mutex_);
    if (!io_thread_.joinable())
        return;
    stop_requested_.store(true);
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
    io_thread_.join();
    running_.store(false);
}

double
ChaosProxy::next_deadline_s(double now_s) const
{
    double next_s = std::numeric_limits<double>::infinity();
    if (accept_not_before_s > now_s)
        next_s = std::min(next_s, accept_not_before_s);
    for (const Link& link : links_) {
        if (link.to_client_offset < link.to_client.size() &&
            link.write_not_before_s > now_s)
            next_s = std::min(next_s, link.write_not_before_s);
        if (!link.upstream_eof && link.read_not_before_s > now_s)
            next_s = std::min(next_s, link.read_not_before_s);
    }
    return next_s;
}

void
ChaosProxy::loop()
{
    while (!stop_requested_.load()) {
        const double now_s = obs::monotonic_seconds();
        std::vector<pollfd> fds;
        fds.push_back({wake_read_fd_, POLLIN, 0});
        const bool accepting = now_s >= accept_not_before_s;
        const std::size_t listen_index = fds.size();
        if (accepting)
            fds.push_back({listen_fd_, POLLIN, 0});
        const std::size_t link_base = fds.size();
        std::vector<std::uint64_t> ids;
        ids.reserve(links_.size());
        for (const Link& link : links_) {
            // Backpressure: stop reading a side while its forward
            // buffer is full; chaos deferrals mask readiness the same
            // way the server's loop does.
            short client_events = 0;
            if (!link.client_eof &&
                link.to_upstream.size() - link.to_upstream_offset <
                    options_.max_buffer_bytes)
                client_events |= POLLIN;
            if (link.to_client_offset < link.to_client.size() &&
                now_s >= link.write_not_before_s)
                client_events |= POLLOUT;
            fds.push_back({link.client_fd, client_events, 0});
            short upstream_events = 0;
            if (!link.upstream_eof &&
                link.to_client.size() - link.to_client_offset <
                    options_.max_buffer_bytes &&
                now_s >= link.read_not_before_s)
                upstream_events |= POLLIN;
            if (link.to_upstream_offset < link.to_upstream.size())
                upstream_events |= POLLOUT;
            fds.push_back({link.upstream_fd, upstream_events, 0});
            ids.push_back(link.id);
        }

        int timeout_ms = -1;
        const double deadline_s = next_deadline_s(now_s);
        if (std::isfinite(deadline_s)) {
            const double wait_s = std::max(0.0, deadline_s - now_s);
            timeout_ms =
                static_cast<int>(std::min(wait_s * 1000.0, 60000.0)) + 1;
        }
        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()),
                                 timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("chaos_proxy: poll(): ", errno_text(errno));
            break;
        }

        if ((fds[0].revents & POLLIN) != 0) {
            char drain[64];
            while (true) {
                const ssize_t got =
                    ::read(wake_read_fd_, drain, sizeof drain);
                if (got > 0 || (got < 0 && errno == EINTR))
                    continue;
                break;
            }
        }
        if (accepting && (fds[listen_index].revents & POLLIN) != 0)
            accept_ready();

        for (std::size_t i = 0; i < ids.size(); ++i) {
            // Re-find by id: earlier iterations may have erased links.
            std::size_t index = links_.size();
            for (std::size_t j = 0; j < links_.size(); ++j) {
                if (links_[j].id == ids[i]) {
                    index = j;
                    break;
                }
            }
            if (index == links_.size())
                continue;
            const pollfd& client_pfd = fds[link_base + 2 * i];
            const pollfd& upstream_pfd = fds[link_base + 2 * i + 1];
            if ((client_pfd.revents & (POLLERR | POLLNVAL)) != 0 ||
                (upstream_pfd.revents & (POLLERR | POLLNVAL)) != 0) {
                close_link(index, false);
                continue;
            }

            // client -> to_upstream
            if ((client_pfd.revents & POLLIN) != 0) {
                Link& link = links_[index];
                char buffer[4096];
                bool closed = false;
                while (link.to_upstream.size() -
                           link.to_upstream_offset <
                       options_.max_buffer_bytes) {
                    const ssize_t received = ::recv(
                        link.client_fd, buffer, sizeof buffer, 0);
                    if (received > 0) {
                        link.to_upstream.append(
                            buffer, static_cast<std::size_t>(received));
                        continue;
                    }
                    if (received == 0) {
                        link.client_eof = true;
                        break;
                    }
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        break;
                    if (errno == EINTR)
                        continue;
                    close_link(index, false);
                    closed = true;
                    break;
                }
                if (closed)
                    continue;
            }

            // upstream -> to_client (with chaos delivery delay)
            if ((upstream_pfd.revents & POLLIN) != 0) {
                Link& link = links_[index];
                bool deferred = false;
                if (options_.chaos != nullptr) {
                    const double read_now_s = obs::monotonic_seconds();
                    if (read_now_s >= link.read_not_before_s) {
                        const double delay_s = options_.chaos->read_delay(
                            link.id, link.read_ops++);
                        if (delay_s > 0.0) {
                            link.read_not_before_s =
                                read_now_s + delay_s;
                            deferred = true;
                        }
                    } else {
                        deferred = true;
                    }
                }
                if (!deferred) {
                    char buffer[4096];
                    bool closed = false;
                    while (link.to_client.size() -
                               link.to_client_offset <
                           options_.max_buffer_bytes) {
                        const ssize_t received = ::recv(
                            link.upstream_fd, buffer, sizeof buffer, 0);
                        if (received > 0) {
                            link.to_client.append(
                                buffer,
                                static_cast<std::size_t>(received));
                            continue;
                        }
                        if (received == 0) {
                            link.upstream_eof = true;
                            break;
                        }
                        if (errno == EAGAIN || errno == EWOULDBLOCK)
                            break;
                        if (errno == EINTR)
                            continue;
                        close_link(index, false);
                        closed = true;
                        break;
                    }
                    if (closed)
                        continue;
                }
            }

            if (!flush_to_upstream(index))
                continue;
            if (!flush_to_client(index))
                continue;

            Link& link = links_[index];
            if (link.client_eof &&
                link.to_upstream_offset >= link.to_upstream.size())
                ::shutdown(link.upstream_fd, SHUT_WR);
            if (link.upstream_eof &&
                link.to_client_offset >= link.to_client.size()) {
                // Everything the daemon will ever say has been
                // delivered: a clean close completes the link.
                close_link(index, false);
                continue;
            }
            if ((client_pfd.revents & POLLHUP) != 0 && link.client_eof)
                close_link(index, false);
        }
    }

    for (const Link& link : links_) {
        ::close(link.client_fd);
        ::close(link.upstream_fd);
    }
    links_.clear();
}

void
ChaosProxy::accept_ready()
{
    while (true) {
        if (options_.chaos != nullptr) {
            const double now_s = obs::monotonic_seconds();
            if (now_s < accept_not_before_s)
                return;  // still stalled; poll timeout resumes us
            if (!accept_stall_checked_) {
                accept_stall_checked_ = true;
                const double stall_s =
                    options_.chaos->accept_stall(accept_index_);
                if (stall_s > 0.0) {
                    accept_not_before_s = now_s + stall_s;
                    return;
                }
            }
        }
        const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
        if (client_fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // EAGAIN or transient accept failure
        }
        const std::uint64_t accept_index = accept_index_++;
        accept_stall_checked_ = false;
        links_total_.fetch_add(1);
        set_nonblocking(client_fd);
        const int one = 1;
        ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof one);
        if (options_.chaos != nullptr &&
            options_.chaos->refuse_connect(accept_index)) {
            // The client dialed a "dead" endpoint: RST immediately.
            rst_close(client_fd);
            continue;
        }

        // Dial the daemon (blocking: loopback, and the forwarding
        // thread has nothing better to do until the link exists).
        const int upstream_fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (upstream_fd < 0) {
            rst_close(client_fd);
            continue;
        }
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port =
            htons(static_cast<std::uint16_t>(options_.upstream_port));
        if (::inet_pton(AF_INET, options_.upstream_host.c_str(),
                        &address.sin_addr) != 1 ||
            ::connect(upstream_fd,
                      reinterpret_cast<const sockaddr*>(&address),
                      sizeof address) != 0) {
            ::close(upstream_fd);
            rst_close(client_fd);
            continue;
        }
        set_nonblocking(upstream_fd);
        ::setsockopt(upstream_fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof one);

        Link link;
        link.client_fd = client_fd;
        link.upstream_fd = upstream_fd;
        link.id = next_link_id_++;
        links_.push_back(std::move(link));
    }
}

bool
ChaosProxy::flush_to_upstream(std::size_t index)
{
    Link& link = links_[index];
    while (link.to_upstream_offset < link.to_upstream.size()) {
        const ssize_t sent =
            ::send(link.upstream_fd,
                   link.to_upstream.data() + link.to_upstream_offset,
                   link.to_upstream.size() - link.to_upstream_offset,
                   MSG_NOSIGNAL);
        if (sent > 0) {
            link.to_upstream_offset += static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;  // poll() will report POLLOUT
        if (sent < 0 && errno == EINTR)
            continue;
        close_link(index, false);
        return false;
    }
    link.to_upstream.clear();
    link.to_upstream_offset = 0;
    return true;
}

bool
ChaosProxy::flush_to_client(std::size_t index)
{
    while (links_[index].to_client_offset <
           links_[index].to_client.size()) {
        Link& link = links_[index];
        std::size_t want = link.to_client.size() - link.to_client_offset;
        bool torn = false;
        double stall_s = 0.0;
        if (options_.chaos != nullptr) {
            const double now_s = obs::monotonic_seconds();
            if (now_s < link.write_not_before_s)
                return true;  // stalled; the poll timeout resumes us
            const std::uint64_t write_op = link.write_ops++;
            if (options_.chaos->reset_after_write(link.id, write_op)) {
                // Deliver one chunk of the frame, then RST: the client
                // sees a torn reply followed by ECONNRESET.
                const std::size_t cap =
                    options_.chaos->spec().torn_write_chunk_bytes;
                [[maybe_unused]] const ssize_t sent = ::send(
                    link.client_fd,
                    link.to_client.data() + link.to_client_offset,
                    std::min(want, cap), MSG_NOSIGNAL);
                close_link(index, true);
                return false;
            }
            const std::size_t cap =
                options_.chaos->write_cap_bytes(link.id, write_op);
            if (cap < want) {
                want = cap;
                torn = true;
                stall_s =
                    options_.chaos->write_stall(link.id, write_op);
            }
        }
        const ssize_t sent =
            ::send(link.client_fd,
                   link.to_client.data() + link.to_client_offset, want,
                   MSG_NOSIGNAL);
        if (sent > 0) {
            link.to_client_offset += static_cast<std::size_t>(sent);
            if (torn && stall_s > 0.0 &&
                link.to_client_offset < link.to_client.size()) {
                link.write_not_before_s =
                    obs::monotonic_seconds() + stall_s;
                return true;  // resume after the inter-chunk stall
            }
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (sent < 0 && errno == EINTR)
            continue;
        close_link(index, false);
        return false;
    }
    Link& link = links_[index];
    link.to_client.clear();
    link.to_client_offset = 0;
    return true;
}

void
ChaosProxy::close_link(std::size_t index, bool reset_client)
{
    Link& link = links_[index];
    if (reset_client)
        rst_close(link.client_fd);
    else
        ::close(link.client_fd);
    ::close(link.upstream_fd);
    links_.erase(links_.begin() + static_cast<std::ptrdiff_t>(index));
}

}  // namespace chrysalis::serve

#include "serve/protocol.hpp"

#include "common/logging.hpp"

namespace chrysalis::serve {

std::string
encode_frame(std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        fatal("serve: frame payload of ", payload.size(),
              " bytes exceeds the ", kMaxFrameBytes, "-byte limit");
    const auto length = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(kLengthPrefixBytes + payload.size());
    frame += static_cast<char>((length >> 24) & 0xff);
    frame += static_cast<char>((length >> 16) & 0xff);
    frame += static_cast<char>((length >> 8) & 0xff);
    frame += static_cast<char>(length & 0xff);
    frame.append(payload.data(), payload.size());
    return frame;
}

void
FrameDecoder::feed(const char* data, std::size_t size)
{
    buffer_.append(data, size);
}

FrameDecoder::Status
FrameDecoder::next(std::string& payload)
{
    if (oversized_length_ > 0)
        return Status::kOversized;
    if (buffer_.size() < kLengthPrefixBytes)
        return Status::kNeedMore;
    const auto byte = [&](std::size_t i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(buffer_[i]));
    };
    const std::uint32_t length =
        (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
    if (length > kMaxFrameBytes) {
        oversized_length_ = length;
        return Status::kOversized;
    }
    if (buffer_.size() < kLengthPrefixBytes + length)
        return Status::kNeedMore;
    payload.assign(buffer_, kLengthPrefixBytes, length);
    buffer_.erase(0, kLengthPrefixBytes + length);
    return Status::kFrame;
}

}  // namespace chrysalis::serve

#include "serve/handlers.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/string_utils.hpp"
#include "core/campaign.hpp"
#include "core/campaign_spec.hpp"
#include "core/chrysalis.hpp"
#include "dnn/model_zoo.hpp"
#include "fault/fault_injector.hpp"
#include "hw/accelerator.hpp"
#include "obs/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace chrysalis::serve {
namespace {

// ---- body builders -------------------------------------------------------
// A body is the comma-joined field list *between* the braces; the
// leading comma logic therefore keys on emptiness, not on '{'.

void
body_raw(std::string& body, const char* name, const std::string& value)
{
    if (!body.empty())
        body += ',';
    body += '"';
    body += name;
    body += "\":";
    body += value;
}

void
body_str(std::string& body, const char* name, const std::string& value)
{
    if (!body.empty())
        body += ',';
    body += '"';
    body += name;
    body += "\":";
    json_append_escaped(body, value);
}

void
body_f64(std::string& body, const char* name, double value)
{
    body_raw(body, name, format_double_17g(value));
}

void
body_i64(std::string& body, const char* name, std::int64_t value)
{
    body_raw(body, name, std::to_string(value));
}

void
body_u64(std::string& body, const char* name, std::uint64_t value)
{
    body_raw(body, name, std::to_string(value));
}

void
body_flag(std::string& body, const char* name, bool value)
{
    body_raw(body, name, value ? "1" : "0");
}

// ---- strict field access -------------------------------------------------
// Absent fields fall back to their default; present-but-unparsable
// fields are a client error and fatal() (converted to a bad_request
// reply by the dispatch wrapper) instead of being silently ignored.

double
field_double(const FlatJsonFields& fields, const char* name, double fallback)
{
    if (fields.find(name) == fields.end())
        return fallback;
    double out = 0.0;
    if (!json_get_double(fields, name, out))
        fatal("request field \"", name, "\" is not a number");
    return out;
}

std::int64_t
field_int64(const FlatJsonFields& fields, const char* name,
            std::int64_t fallback)
{
    if (fields.find(name) == fields.end())
        return fallback;
    std::int64_t out = 0;
    if (!json_get_int64(fields, name, out))
        fatal("request field \"", name, "\" is not an integer");
    return out;
}

std::uint64_t
field_uint64(const FlatJsonFields& fields, const char* name,
             std::uint64_t fallback)
{
    if (fields.find(name) == fields.end())
        return fallback;
    std::uint64_t out = 0;
    if (!json_get_uint64(fields, name, out))
        fatal("request field \"", name,
              "\" is not a non-negative integer");
    return out;
}

std::string
field_string(const FlatJsonFields& fields, const char* name,
             std::string fallback)
{
    std::string out;
    if (json_get_string(fields, name, out))
        return out;
    return fallback;
}

// ---- request decoding ----------------------------------------------------

/// Everything an eval-type handler needs, decoded from request fields.
struct EvalRequest {
    explicit EvalRequest(dnn::Model workload) : model(std::move(workload))
    {}

    dnn::Model model;
    search::DesignSpace space;
    search::Objective objective;
    search::ExplorerOptions options;
    search::HwCandidate candidate;
    /// Owns the injector `options.faults` / `sim.faults` point at.
    std::unique_ptr<fault::FaultInjector> faults;
    sim::SimConfig sim;
    int runs = 3;  ///< sim_step validation repetitions
};

EvalRequest
parse_eval_request(const FlatJsonFields& fields)
{
    EvalRequest request(
        dnn::make_model(field_string(fields, "model", "kws")));

    const std::string space = field_string(fields, "space", "existing");
    if (space == "existing")
        request.space = search::DesignSpace::existing_aut();
    else if (space == "future")
        request.space = search::DesignSpace::future_aut();
    else
        fatal("unknown space '", space, "' (expected existing|future)");

    const std::string objective =
        field_string(fields, "objective", "latsp");
    if (objective == "lat")
        request.objective.kind = search::ObjectiveKind::kLatency;
    else if (objective == "sp")
        request.objective.kind = search::ObjectiveKind::kSolarPanel;
    else if (objective == "latsp")
        request.objective.kind = search::ObjectiveKind::kLatSp;
    else
        fatal("unknown objective '", objective,
              "' (expected lat|sp|latsp)");
    request.objective.sp_limit_cm2 =
        field_double(fields, "sp_limit", request.objective.sp_limit_cm2);
    request.objective.lat_limit_s =
        field_double(fields, "lat_limit", request.objective.lat_limit_s);

    const double bright = field_double(fields, "bright", 2.0e-3);
    const double dark = field_double(fields, "dark", 0.5e-3);
    request.options.k_eh_envs = {bright, dark};

    const std::uint64_t seed = field_uint64(fields, "seed", 1);
    request.options.inner.seed = seed;
    request.options.inner.max_candidates_per_dim =
        static_cast<std::size_t>(field_int64(
            fields, "mapping_candidates",
            static_cast<std::int64_t>(
                request.options.inner.max_candidates_per_dim)));
    // The handler evaluates exactly one candidate; the per-request memo
    // inside the explorer would never hit and the server already shares
    // a response-level cache across connections.
    request.options.cache_capacity = 0;

    request.candidate = request.space.defaults;
    request.candidate.solar_cm2 = field_double(
        fields, "solar_cm2", request.candidate.solar_cm2);
    request.candidate.capacitance_f = field_double(
        fields, "capacitance_f", request.candidate.capacitance_f);
    const std::string arch = field_string(fields, "arch", "");
    if (!arch.empty())
        request.candidate.arch = hw::accelerator_arch_from_string(arch);
    request.candidate.n_pe =
        field_int64(fields, "n_pe", request.candidate.n_pe);
    request.candidate.cache_bytes =
        field_int64(fields, "cache_bytes", request.candidate.cache_bytes);

    fault::FaultSpec spec;
    spec.seed = seed;
    spec.dropout_probability =
        field_double(fields, "fault_dropout", 0.0);
    spec.mission_age_years = field_double(fields, "fault_age", 0.0);
    spec.ckpt_corruption_rate = field_double(fields, "fault_ckpt", 0.0);
    if (spec.any_active()) {
        spec.validate();
        request.faults = std::make_unique<fault::FaultInjector>(spec);
        request.options.faults = request.faults.get();
    }

    request.sim.seed = seed;
    request.sim.step_s = field_double(fields, "step_s", request.sim.step_s);
    request.sim.exception_rate = field_double(
        fields, "exception_rate", request.sim.exception_rate);
    request.sim.faults = request.options.faults;
    request.runs = static_cast<int>(field_int64(fields, "runs", 3));
    if (request.runs < 1)
        fatal("request field \"runs\" must be >= 1");
    return request;
}

// ---- per-type handlers ---------------------------------------------------

std::string
eval_design_point_body(const FlatJsonFields& fields)
{
    const EvalRequest request = parse_eval_request(fields);
    const core::Chrysalis tool({request.model, request.space,
                                request.objective, request.options});
    const core::AuTSolution solution =
        tool.evaluate_candidate(request.candidate);

    std::string body;
    body_flag(body, "ok", true);
    body_str(body, "type", "eval_design_point");
    body_flag(body, "feasible", solution.feasible);
    body_f64(body, "score", solution.score);
    body_f64(body, "mean_latency_s", solution.mean_latency_s);
    body_f64(body, "lat_sp", solution.lat_sp);
    body_f64(body, "e_all_j", solution.cost.total_energy_j());
    body_i64(body, "n_tile", solution.cost.n_tile);
    // Echo the (clamped) candidate that was actually evaluated.
    body_f64(body, "solar_cm2", solution.hardware.solar_cm2);
    body_f64(body, "capacitance_f", solution.hardware.capacitance_f);
    body_str(body, "arch", hw::to_string(solution.hardware.arch));
    body_i64(body, "n_pe", solution.hardware.n_pe);
    body_i64(body, "cache_bytes", solution.hardware.cache_bytes);
    body_str(body, "failure",
             std::string(fault::to_string(solution.failure.code)));
    return body;
}

std::string
eval_mapping_body(const FlatJsonFields& fields)
{
    const EvalRequest request = parse_eval_request(fields);
    const search::BiLevelExplorer explorer(
        request.model, request.space, request.objective, request.options);
    const search::EvaluatedDesign design =
        explorer.evaluate(request.candidate);

    // Compact per-layer rendering: "<dataflow>:KxYxN" joined by ';'.
    std::string mappings;
    for (const auto& mapping : design.mapping.mappings) {
        if (!mappings.empty())
            mappings += ';';
        mappings += dataflow::to_string(mapping.dataflow);
        mappings += ':';
        mappings += std::to_string(mapping.tiles_k);
        mappings += 'x';
        mappings += std::to_string(mapping.tiles_y);
        mappings += 'x';
        mappings += std::to_string(mapping.tiles_n);
    }

    std::string body;
    body_flag(body, "ok", true);
    body_str(body, "type", "eval_mapping");
    body_flag(body, "feasible", design.mapping.feasible);
    body_f64(body, "time_s", design.mapping.cost.time_s);
    body_f64(body, "e_all_j", design.mapping.cost.total_energy_j());
    body_f64(body, "max_tile_energy_j",
             design.mapping.cost.max_tile_energy_j());
    body_i64(body, "n_tile", design.mapping.cost.n_tile);
    body_f64(body, "violation_j", design.mapping.violation_j);
    body_i64(body, "evaluations", design.mapping.evaluations);
    body_u64(body, "layers", design.mapping.mappings.size());
    body_str(body, "mappings", mappings);
    body_str(body, "failure",
             std::string(fault::to_string(design.mapping.failure.code)));
    return body;
}

std::string
sim_step_body(const FlatJsonFields& fields)
{
    const EvalRequest request = parse_eval_request(fields);
    const core::Chrysalis tool({request.model, request.space,
                                request.objective, request.options});
    const core::AuTSolution solution =
        tool.evaluate_candidate(request.candidate);

    std::string body;
    body_flag(body, "ok", true);
    body_str(body, "type", "sim_step");
    body_flag(body, "feasible", solution.feasible);
    if (!solution.feasible) {
        // No mapping to replay; report why instead of simulating.
        body_flag(body, "completed", false);
        body_str(body, "failure",
                 std::string(fault::to_string(solution.failure.code)));
        return body;
    }

    const core::ValidationResult validation = tool.validate(
        solution, request.options.k_eh_envs.front(), request.sim,
        request.runs);
    body_flag(body, "completed", validation.sim.completed);
    body_f64(body, "mean_sim_latency_s", validation.mean_sim_latency_s);
    body_f64(body, "analytic_latency_s", validation.analytic_latency_s);
    body_f64(body, "relative_error", validation.relative_error);
    body_i64(body, "steps", validation.sim.steps);
    body_i64(body, "tiles_total", validation.sim.tiles_total);
    body_i64(body, "tiles_executed", validation.sim.tiles_executed);
    body_i64(body, "exceptions", validation.sim.exceptions);
    body_i64(body, "energy_cycles", validation.sim.energy_cycles);
    body_i64(body, "power_offs", validation.sim.power_offs);
    body_i64(body, "ckpt_saves", validation.sim.ckpt_saves);
    body_i64(body, "ckpt_restores", validation.sim.ckpt_restores);
    body_i64(body, "ckpt_corruptions", validation.sim.ckpt_corruptions);
    body_f64(body, "e_all_j", validation.sim.e_all_j());
    body_str(body, "failure",
             std::string(fault::to_string(validation.sim.failure.code)));
    return body;
}

/// Executes one whole campaign case — the distributed coordinator's
/// unit of work. The reply carries the case's *deterministic* journal
/// record (wall times zeroed, doubles in %.17g): because the worker
/// runs the exact run_campaign_case code path a local campaign uses,
/// and the volatile fields are stripped, the body is a pure function of
/// the request fields and the merged campaign output stays
/// byte-identical at any worker count.
std::string
run_case_body(const FlatJsonFields& fields)
{
    const core::CampaignSpec spec = core::spec_from_fields(fields);
    std::uint64_t case_index = 0;
    if (!json_get_uint64(fields, "case_index", case_index))
        fatal("request field \"case_index\" is missing or not a "
              "non-negative integer");
    if (case_index >= static_cast<std::uint64_t>(spec.cases))
        fatal("request field \"case_index\" (", case_index,
              ") exceeds the campaign's ", spec.cases, " cases");

    // Workers resolve the workload by zoo name only: a model *file*
    // lives on the coordinator's disk and could not be resolved
    // identically here.
    const dnn::Model model = dnn::make_model(spec.model);
    const core::CampaignCase campaign_case = core::build_campaign_case(
        spec, model, static_cast<std::size_t>(case_index));
    std::unique_ptr<fault::FaultInjector> faults;
    const search::ExplorerOptions options =
        core::build_explorer_options(spec, faults);
    const core::CampaignEntry entry = core::run_campaign_case(
        campaign_case, options, static_cast<std::size_t>(case_index),
        spec.max_attempts);
    const core::JournalRecord record = core::deterministic_record(
        core::to_journal_record(entry, ""));

    std::string body;
    body_flag(body, "ok", true);
    body_str(body, "type", "run_case");
    body_u64(body, "case_index", case_index);
    core::append_record_fields(body, record);
    return body;
}

std::string
server_stats_body(const ServerStatsSnapshot& stats)
{
    std::string body;
    body_flag(body, "ok", true);
    body_str(body, "type", "server_stats");
    body_u64(body, "connections_open", stats.connections_open);
    body_u64(body, "connections_total", stats.connections_total);
    body_u64(body, "requests_total", stats.requests_total);
    body_u64(body, "requests_eval_design_point",
             stats.requests_eval_design_point);
    body_u64(body, "requests_eval_mapping", stats.requests_eval_mapping);
    body_u64(body, "requests_sim_step", stats.requests_sim_step);
    body_u64(body, "requests_run_case", stats.requests_run_case);
    body_u64(body, "requests_server_stats", stats.requests_server_stats);
    body_u64(body, "requests_health", stats.requests_health);
    body_u64(body, "errors_total", stats.errors_total);
    body_u64(body, "overload_rejections", stats.overload_rejections);
    body_u64(body, "batches", stats.batches);
    body_u64(body, "max_batch", stats.max_batch);
    body_u64(body, "pending", stats.pending);
    body_u64(body, "timeouts_read", stats.timeouts_read);
    body_u64(body, "timeouts_idle", stats.timeouts_idle);
    body_u64(body, "slow_consumer_closes", stats.slow_consumer_closes);
    body_flag(body, "draining", stats.draining);
    body_i64(body, "threads", stats.threads);
    body_u64(body, "cache_hits", stats.cache.hits);
    body_u64(body, "cache_misses", stats.cache.misses);
    body_u64(body, "cache_insertions", stats.cache.insertions);
    body_u64(body, "cache_evictions", stats.cache.evictions);
    body_u64(body, "cache_entries", stats.cache.entries);
    body_u64(body, "cache_capacity", stats.cache.capacity);
    body_f64(body, "cache_hit_rate", stats.cache.hit_rate());
    body_str(body, "worker_id", stats.worker_id);
    body_f64(body, "uptime_seconds", stats.uptime_seconds);
    body_u64(body, "requests_metrics_snapshot",
             stats.requests_metrics_snapshot);
    body_u64(body, "requests_trace_export", stats.requests_trace_export);
    body_u64(body, "latency_count", stats.latency_count);
    body_f64(body, "latency_p50_s", stats.latency_p50_s);
    body_f64(body, "latency_p95_s", stats.latency_p95_s);
    body_f64(body, "latency_p99_s", stats.latency_p99_s);
    return body;
}

/// Readiness/drain probe for load balancers and deploy scripts: cheap
/// (never evaluates anything, never cached) and honest during shutdown
/// — requests admitted before stop() still drain, but a draining reply
/// tells the client to take new traffic elsewhere.
std::string
health_body(const ServerStatsSnapshot& stats)
{
    std::string body;
    body_flag(body, "ok", true);
    body_str(body, "type", "health");
    body_str(body, "status", stats.draining ? "draining" : "ready");
    body_str(body, "worker_id", stats.worker_id);
    body_flag(body, "draining", stats.draining);
    body_u64(body, "connections_open", stats.connections_open);
    body_u64(body, "pending", stats.pending);
    body_i64(body, "threads", stats.threads);
    // This process's monotonic_seconds() at reply time — the raw
    // material for the coordinator's RTT-midpoint clock-offset
    // estimate (obs::clock_offset_from_probe).
    body_f64(body, "mono_now_s", obs::monotonic_seconds());
    return body;
}

// ---- fleet telemetry pulls -----------------------------------------------
// Bounded, cursor-resumable: a pulled page always fits the 1 MiB frame
// limit regardless of how much the worker has buffered. Cursors come
// from a previous reply's `cursor_next`; `remaining == 0` means
// drained. Both types report live state: never cached, never retried.

constexpr std::uint64_t kSnapshotMaxEntriesDefault = 128;
constexpr std::uint64_t kSnapshotMaxEntriesCap = 2048;
constexpr std::uint64_t kExportMaxEventsDefault = 512;
constexpr std::uint64_t kExportMaxEventsCap = 4096;

std::string
metrics_snapshot_body(const FlatJsonFields& fields,
                      const TelemetrySources& telemetry,
                      const ServerStatsSnapshot& stats)
{
    const std::uint64_t cursor = field_uint64(fields, "cursor", 0);
    std::uint64_t max_entries =
        field_uint64(fields, "max_entries", kSnapshotMaxEntriesDefault);
    if (max_entries == 0)
        max_entries = 1;
    if (max_entries > kSnapshotMaxEntriesCap)
        max_entries = kSnapshotMaxEntriesCap;

    std::string body;
    body_flag(body, "ok", true);
    body_str(body, "type", "metrics_snapshot");
    body_str(body, "worker_id", stats.worker_id);
    body_flag(body, "attached", telemetry.metrics != nullptr);
    body_f64(body, "mono_now_s", obs::monotonic_seconds());
    if (telemetry.metrics == nullptr) {
        body_u64(body, "total", 0);
        body_u64(body, "cursor_next", 0);
        body_u64(body, "remaining", 0);
        body_u64(body, "entries", 0);
        return body;
    }
    // The cursor indexes the name-sorted sample vector; registering a
    // new metric mid-pull can shift indices, so pull at quiescence
    // (campaign end) — exactly how the dist layer uses it.
    const std::vector<obs::MetricSample> samples =
        telemetry.metrics->samples();
    const std::uint64_t total = samples.size();
    const std::uint64_t begin = std::min(cursor, total);
    const std::uint64_t end = std::min(begin + max_entries, total);
    body_u64(body, "total", total);
    body_u64(body, "cursor_next", end);
    body_u64(body, "remaining", total - end);
    body_u64(body, "entries", end - begin);
    for (std::uint64_t i = begin; i < end; ++i) {
        const std::string key = "m" + std::to_string(i - begin);
        body_str(body, key.c_str(),
                 obs::encode_metric_sample(samples[i]));
    }
    return body;
}

std::string
trace_export_body(const FlatJsonFields& fields,
                  const TelemetrySources& telemetry,
                  const ServerStatsSnapshot& stats)
{
    const std::uint64_t cursor = field_uint64(fields, "cursor", 0);
    std::uint64_t max_events =
        field_uint64(fields, "max_events", kExportMaxEventsDefault);
    if (max_events == 0)
        max_events = 1;
    if (max_events > kExportMaxEventsCap)
        max_events = kExportMaxEventsCap;

    std::string body;
    body_flag(body, "ok", true);
    body_str(body, "type", "trace_export");
    body_str(body, "worker_id", stats.worker_id);
    body_flag(body, "attached", telemetry.trace != nullptr);
    body_f64(body, "mono_now_s", obs::monotonic_seconds());
    if (telemetry.trace == nullptr) {
        body_f64(body, "mono_skew_s", 0.0);
        body_u64(body, "total", 0);
        body_u64(body, "dropped", 0);
        body_u64(body, "cursor_next", 0);
        body_u64(body, "remaining", 0);
        body_u64(body, "events", 0);
        return body;
    }
    // session-epoch -> monotonic_seconds() skew: exact (both epochs
    // are fixed clock points), so the puller maps event timestamps
    // onto this worker's monotonic timeline without estimation error.
    body_f64(body, "mono_skew_s",
             telemetry.trace->epoch_to_monotonic_skew_s());
    std::uint64_t cursor_next = 0;
    std::uint64_t remaining = 0;
    const std::vector<obs::TraceEvent> events =
        telemetry.trace->export_events(
            cursor, static_cast<std::size_t>(max_events), cursor_next,
            remaining);
    body_u64(body, "total", telemetry.trace->event_count());
    body_u64(body, "dropped", telemetry.trace->dropped());
    body_u64(body, "cursor_next", cursor_next);
    body_u64(body, "remaining", remaining);
    body_u64(body, "events", events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        const std::string key = "e" + std::to_string(i);
        body_str(body, key.c_str(), obs::encode_trace_event(events[i]));
    }
    return body;
}

}  // namespace

std::uint64_t
request_id(const FlatJsonFields& fields)
{
    std::uint64_t id = 0;
    json_get_uint64(fields, "id", id);
    return id;
}

bool
response_is_memoized(const std::string& type)
{
    return type == "eval_design_point" || type == "eval_mapping" ||
           type == "sim_step" || type == "run_case";
}

CacheKey
request_cache_key(const FlatJsonFields& fields)
{
    StableHash hash;
    hash.add(std::string_view(kProtocolVersion));
    for (const auto& [key, value] : fields) {
        // "id" is the echo token; "trace" is observability context.
        // Neither changes what is computed, so neither may split the
        // memo — a traced request must hit an untraced request's entry.
        if (key == "id" || key == "trace")
            continue;
        hash.add(std::string_view(key));
        hash.add(std::string_view(value));
    }
    return hash.key();
}

std::string
error_body(const std::string& code, const std::string& detail)
{
    std::string body;
    body_flag(body, "ok", false);
    body_str(body, "error", code);
    body_str(body, "detail", detail);
    return body;
}

std::string
finish_response(std::uint64_t id, const std::string& body)
{
    std::string out = "{";
    json_append_field(out, "v", kProtocolVersion);
    json_append_raw_field(out, "id", std::to_string(id));
    out += ',';
    out += body;
    out += '}';
    return out;
}

std::string
error_response(std::uint64_t id, const std::string& code,
               const std::string& detail)
{
    return finish_response(id, error_body(code, detail));
}

void
append_timing_fields(std::string& response, double queue_wait_s,
                     double decode_s, double eval_s, double encode_s)
{
    if (response.empty() || response.back() != '}')
        return;
    std::string timing;
    body_f64(timing, "timing_queue_s", queue_wait_s);
    body_f64(timing, "timing_decode_s", decode_s);
    body_f64(timing, "timing_eval_s", eval_s);
    body_f64(timing, "timing_encode_s", encode_s);
    response.pop_back();
    response += ',';
    response += timing;
    response += '}';
}

std::string
handle_request_body(const FlatJsonFields& fields, ResponseCache* cache,
                    const ServerStatsSnapshot& stats,
                    const TelemetrySources& telemetry)
{
    std::string version;
    if (!json_get_string(fields, "v", version))
        return error_body(kErrBadVersion, "missing protocol field \"v\"");
    if (version != kProtocolVersion)
        return error_body(kErrBadVersion,
                          "unsupported protocol version \"" + version +
                              "\"; this server speaks " +
                              kProtocolVersion);
    std::string type;
    if (!json_get_string(fields, "type", type))
        return error_body(kErrBadRequest,
                          "missing request field \"type\"");
    if (type == "server_stats")
        return server_stats_body(stats);
    if (type == "health")
        return health_body(stats);
    if (type == "metrics_snapshot")
        return metrics_snapshot_body(fields, telemetry, stats);
    if (type == "trace_export")
        return trace_export_body(fields, telemetry, stats);
    if (!response_is_memoized(type))
        return error_body(kErrUnknownType,
                          "unknown request type \"" + type + "\"");

    const auto compute = [&]() -> std::string {
        OBS_SPAN("serve/eval");
        // Handlers report user errors via fatal(); isolate them to an
        // error reply instead of taking the daemon down.
        FatalThrowGuard guard;
        try {
            if (type == "eval_design_point")
                return eval_design_point_body(fields);
            if (type == "eval_mapping")
                return eval_mapping_body(fields);
            if (type == "run_case")
                return run_case_body(fields);
            return sim_step_body(fields);
        } catch (const FatalError& error) {
            return error_body(kErrBadRequest, error.what());
        } catch (const std::exception& error) {
            return error_body(kErrBadRequest, error.what());
        }
    };
    if (cache == nullptr)
        return compute();
    return cache->get_or_compute(request_cache_key(fields), compute);
}

}  // namespace chrysalis::serve

#include "serve/daemon.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"

namespace chrysalis::serve {
namespace {

// Self-pipe written by the signal handler; the daemon's main thread
// blocks in poll() on the read end. Signal-handler-safe by design
// (write() is async-signal-safe; everything else happens outside the
// handler).
int g_signal_pipe[2] = {-1, -1};

extern "C" void
handle_shutdown_signal(int)
{
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(g_signal_pipe[1], &byte, 1);
}

int
parse_int_flag(const std::string& flag, const std::string& value)
{
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno != 0)
        fatal("invalid integer for ", flag, ": \"", value, "\"");
    return static_cast<int>(parsed);
}

double
parse_double_flag(const std::string& flag, const std::string& value)
{
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || errno != 0)
        fatal("invalid number for ", flag, ": \"", value, "\"");
    return parsed;
}

/// Splits "--key=value" into key + inline value; returns the key.
std::string
split_flag(const std::string& arg, std::string& inline_value,
           bool& has_inline)
{
    has_inline = false;
    if (arg.rfind("--", 0) != 0)
        return arg;
    const auto eq = arg.find('=');
    if (eq == std::string::npos)
        return arg;
    inline_value = arg.substr(eq + 1);
    has_inline = true;
    return arg.substr(0, eq);
}

}  // namespace

void
serve_usage(const char* argv0)
{
    std::printf(
        "usage: %s [--host addr] [--port n] [--threads n]\n"
        "          [--worker-id id]\n"
        "          [--cache-capacity n] [--max-connections n]\n"
        "          [--max-inflight n] [--queue-depth n] [--batch-max n]\n"
        "          [--read-timeout s] [--idle-timeout s]\n"
        "          [--max-write-buffer bytes]\n"
        "          [--drain-timeout s] [--metrics-out file]\n"
        "          [--trace-out file]\n"
        "Serves chrysalis-serve-v1 evaluation requests until SIGINT or\n"
        "SIGTERM, then drains in-flight work and exits.\n"
        "Live telemetry is always on: fleet coordinators pull it via\n"
        "the metrics_snapshot / trace_export request types;\n"
        "--metrics-out/--trace-out additionally write files at drain.\n"
        "--read-timeout closes connections that leave a frame half-sent\n"
        "(slow-loris defense, 0 disables); --idle-timeout reaps fully\n"
        "quiet connections (0, the default, keeps them); slow consumers\n"
        "are disconnected once --max-write-buffer reply bytes queue.\n",
        argv0);
}

void
call_usage(const char* argv0)
{
    std::printf(
        "usage: %s [--host addr] --port n --type\n"
        "          eval_design_point|eval_mapping|sim_step|run_case"
        "|server_stats|health\n"
        "          [--timeout s] [--retries n] [--<field> value ...]\n"
        "Sends one request and prints the raw reply payload. Any flag\n"
        "not listed above becomes a request field, e.g. --model har\n"
        "--solar_cm2 8 --objective lat. --retries allows n extra\n"
        "attempts (reconnect + backoff) for memoized request types.\n",
        argv0);
}

int
run_serve_cli(int argc, char** argv, int first)
{
    ServeCliOptions options;
    for (int i = first; i < argc; ++i) {
        std::string inline_value;
        bool has_inline = false;
        const std::string arg =
            split_flag(argv[i], inline_value, has_inline);
        const auto next = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            serve_usage(argv[0]);
            return 0;
        } else if (arg == "--host") {
            options.server.host = next();
        } else if (arg == "--port") {
            options.server.port = parse_int_flag(arg, next());
        } else if (arg == "--threads") {
            options.server.threads = parse_int_flag(arg, next());
        } else if (arg == "--worker-id") {
            options.server.worker_id = next();
        } else if (arg == "--cache-capacity") {
            options.server.cache_capacity =
                static_cast<std::size_t>(parse_int_flag(arg, next()));
        } else if (arg == "--max-connections") {
            options.server.max_connections = parse_int_flag(arg, next());
        } else if (arg == "--max-inflight") {
            options.server.max_inflight = parse_int_flag(arg, next());
        } else if (arg == "--queue-depth") {
            options.server.queue_depth = parse_int_flag(arg, next());
        } else if (arg == "--batch-max") {
            options.server.batch_max = parse_int_flag(arg, next());
        } else if (arg == "--read-timeout") {
            options.server.read_timeout_s =
                parse_double_flag(arg, next());
        } else if (arg == "--idle-timeout") {
            options.server.idle_timeout_s =
                parse_double_flag(arg, next());
        } else if (arg == "--max-write-buffer") {
            options.server.max_write_buffer_bytes =
                static_cast<std::size_t>(parse_int_flag(arg, next()));
        } else if (arg == "--drain-timeout") {
            options.server.drain_timeout_s =
                parse_double_flag(arg, next());
        } else if (arg == "--metrics-out") {
            options.metrics_out = next();
        } else if (arg == "--trace-out") {
            options.trace_out = next();
        } else {
            serve_usage(argv[0]);
            fatal("unknown option ", arg);
        }
    }

    // The daemon always carries live telemetry so a fleet coordinator
    // can pull `metrics_snapshot` / `trace_export` from any worker —
    // no flag required. --metrics-out/--trace-out only control whether
    // the final state is also written to files at drain. The per-thread
    // event cap bounds the trace memory of a long-lived daemon between
    // pulls (overflow is counted in the export's `dropped` field).
    obs::MetricsRegistry registry;
    obs::attach_metrics(&registry);
    obs::TraceSession trace;
    trace.set_max_events_per_thread(1u << 18);
    obs::attach_trace(&trace);
    options.server.metrics_source = &registry;
    options.server.trace_source = &trace;

    if (::pipe(g_signal_pipe) != 0)
        fatal("serve: pipe(): ", errno_text(errno));
    struct sigaction action{};
    action.sa_handler = handle_shutdown_signal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    Server server(options.server);
    server.start();
    std::printf("chrysalis_served listening on %s:%d\n",
                options.server.host.c_str(), server.port());
    std::fflush(stdout);

    pollfd waiter{g_signal_pipe[0], POLLIN, 0};
    while (::poll(&waiter, 1, -1) < 0 && errno == EINTR) {
    }

    std::printf("chrysalis_served draining...\n");
    std::fflush(stdout);
    server.stop();

    const ServerStatsSnapshot stats = server.stats();
    std::printf("chrysalis_served drained: %llu requests "
                "(%llu errors, %llu overloaded) over %llu connections, "
                "cache %llu/%llu hits\n",
                static_cast<unsigned long long>(stats.requests_total),
                static_cast<unsigned long long>(stats.errors_total),
                static_cast<unsigned long long>(
                    stats.overload_rejections),
                static_cast<unsigned long long>(
                    stats.connections_total),
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.hits +
                                                stats.cache.misses));
    std::fflush(stdout);

    obs::attach_trace(nullptr);
    obs::attach_metrics(nullptr);
    if (!options.trace_out.empty())
        trace.write_chrome_trace_file(options.trace_out);
    if (!options.metrics_out.empty())
        registry.write_json_file(options.metrics_out);

    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
    g_signal_pipe[0] = g_signal_pipe[1] = -1;
    return 0;
}

int
run_call_cli(int argc, char** argv, int first)
{
    std::string host = "127.0.0.1";
    int port = 0;
    std::string type;
    double timeout_s = 30.0;
    int retries = 0;
    FlatJsonFields params;
    for (int i = first; i < argc; ++i) {
        std::string inline_value;
        bool has_inline = false;
        const std::string arg =
            split_flag(argv[i], inline_value, has_inline);
        const auto next = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            call_usage(argv[0]);
            return 0;
        } else if (arg == "--host") {
            host = next();
        } else if (arg == "--port") {
            port = parse_int_flag(arg, next());
        } else if (arg == "--type") {
            type = next();
        } else if (arg == "--timeout") {
            timeout_s = parse_double_flag(arg, next());
        } else if (arg == "--retries") {
            retries = parse_int_flag(arg, next());
        } else if (arg.rfind("--", 0) == 0 && arg.size() > 2) {
            params[arg.substr(2)] = next();
        } else {
            call_usage(argv[0]);
            fatal("unknown argument ", arg);
        }
    }
    if (port <= 0)
        fatal("--port is required (the server prints it on startup)");
    if (type.empty())
        fatal("--type is required (eval_design_point|eval_mapping|"
              "sim_step|run_case|server_stats|health)");
    if (retries < 0)
        fatal("--retries must be >= 0");

    ClientOptions client_options;
    client_options.max_attempts = retries + 1;
    Client client(client_options);
    if (!client.connect(host, port, timeout_s) && retries == 0)
        fatal("cannot connect to ", host, ":", port);
    Response response;
    const CallStatus status = client.request(type, params, response);
    if (status != CallStatus::kOk)
        fatal("request failed talking to ", host, ":", port, " (",
              to_string(status), ")");
    std::printf("%s\n", response.raw.c_str());
    if (response.ok && type == "server_stats") {
        // Human summary after the raw payload (scripts read line 1);
        // the '#' prefix keeps it unambiguous. Quantiles are histogram
        // bucket upper edges, hence the "<=".
        std::uint64_t count = 0;
        double p50_s = 0.0;
        double p95_s = 0.0;
        double p99_s = 0.0;
        if (json_get_uint64(response.fields, "latency_count", count) &&
            json_get_double(response.fields, "latency_p50_s", p50_s) &&
            json_get_double(response.fields, "latency_p95_s", p95_s) &&
            json_get_double(response.fields, "latency_p99_s", p99_s)) {
            std::printf("# latency: %llu requests, p50<=%gs p95<=%gs "
                        "p99<=%gs\n",
                        static_cast<unsigned long long>(count), p50_s,
                        p95_s, p99_s);
        }
    }
    return response.ok ? 0 : 1;
}

}  // namespace chrysalis::serve

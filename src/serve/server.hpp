/// \file
/// The `chrysalis-serve-v1` TCP server: evaluation-as-a-service on a
/// plain POSIX socket, no external dependencies.
///
/// Architecture: one I/O thread owns every socket and runs a poll()
/// loop — accept, incremental frame reassembly, admission control and
/// reply writes all happen there, so connection state needs no locking.
/// Complete requests queue up and are dispatched in arrival order as
/// micro-batches onto a `runtime::ThreadPool` (`parallel_map`, which
/// preserves index order); handlers are pure functions of the request
/// fields (serve/handlers.hpp), so replies are byte-identical at any
/// thread count. A sharded `ResponseCache` is shared by all
/// connections: two clients asking the same question cost one
/// evaluation.
///
/// Admission control: at most `max_connections` sockets (beyond that
/// the listener simply stops accepting; nothing is dropped), at most
/// `max_inflight` queued requests in total and `queue_depth` per
/// connection (beyond either, the request is answered immediately with
/// an `overloaded` error instead of growing the queue). Malformed
/// payloads get a structured `bad_request` reply and the connection
/// lives on; only an oversized length prefix — after which the byte
/// stream cannot be resynchronized — closes a connection, and even then
/// a `bad_frame` reply is flushed first.
///
/// Self-defense against hostile or broken peers: a connection that
/// leaves a frame half-sent for longer than `read_timeout_s` is closed
/// (slow-loris defense), one that goes fully quiet for longer than
/// `idle_timeout_s` is reaped (0 disables — idle pools are legitimate),
/// and one that stops reading while replies accumulate past
/// `max_write_buffer_bytes` is dropped instead of growing the buffer
/// without bound. Every socket syscall retries on EINTR.
///
/// Chaos hook (tests and the chaos bench only): when
/// `ServerOptions::chaos` points at a `fault::NetFaultInjector`, the
/// I/O loop consults its seed-deterministic schedule to tear writes
/// into delayed chunks, hard-reset connections mid-frame, defer reads
/// and stall accepts — without touching the request/reply semantics, so
/// a resilient client must still extract byte-identical replies.
///
/// stop() drains: queued requests are evaluated, replies are flushed
/// (bounded by `drain_timeout_s`), then sockets close. While draining,
/// `health` replies report "draining".

#ifndef CHRYSALIS_SERVE_SERVER_HPP
#define CHRYSALIS_SERVE_SERVER_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "fault/net_fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"

namespace chrysalis::serve {

/// Server knobs; validate() fatals on nonsense values.
struct ServerOptions {
    std::string host = "127.0.0.1";  ///< bind address (dotted quad)
    int port = 0;                    ///< 0 = kernel-chosen (see port())
    /// Eval worker threads; 0 = all hardware threads. Replies are
    /// byte-identical at any value.
    int threads = 1;
    /// Shared response-memo capacity (entries); 0 disables caching.
    std::size_t cache_capacity = 4096;
    int max_connections = 64;   ///< sockets accepted concurrently
    int max_inflight = 256;     ///< total queued requests
    int queue_depth = 32;       ///< queued requests per connection
    int batch_max = 32;         ///< requests per dispatched micro-batch
    double drain_timeout_s = 5.0;  ///< reply-flush bound during stop()
    /// Closes a connection that has held a frame half-sent this long
    /// (slow-loris defense). 0 disables.
    double read_timeout_s = 30.0;
    /// Reaps a connection with nothing buffered in either direction
    /// after this long. 0 (the default) disables — long-lived idle
    /// client pools are legitimate.
    double idle_timeout_s = 0.0;
    /// Closes a connection whose unflushed reply bytes exceed this
    /// (slow-consumer defense; the peer asked and never read).
    std::size_t max_write_buffer_bytes = 8u << 20;
    /// Test-only network chaos schedule; nullptr (the default) in
    /// production. Non-owning — the caller keeps the injector alive
    /// for the server's lifetime.
    const fault::NetFaultInjector* chaos = nullptr;
    /// Identity reported in `server_stats`/`health` replies so fleet
    /// coordinators can attribute work to workers. Empty (the default)
    /// resolves to "<hostname>:<port>" at start(), after the listening
    /// port is known.
    std::string worker_id;
    /// Telemetry the `metrics_snapshot` / `trace_export` pull handlers
    /// export, and (for the trace) where traced requests' stage spans
    /// are recorded. Non-owning; nullptr (the default) falls back to
    /// the process-global obs::metrics()/obs::trace() at request time
    /// — a daemon just attaches globals, while in-process multi-server
    /// tests give each server its own session so pulls stay distinct.
    obs::MetricsRegistry* metrics_source = nullptr;
    obs::TraceSession* trace_source = nullptr;

    void validate() const;
};

/// The daemon core. Construct, start(), eventually stop(). Thread-safe
/// methods: stop() and stats() may be called from any thread.
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();  ///< stop()s if still running

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds, listens and launches the I/O thread. fatal() when the
    /// address cannot be bound. After start() returns, port() is the
    /// resolved listening port and clients may connect.
    void start();

    /// Requests shutdown, drains queued work and joins the I/O thread.
    /// Idempotent.
    void stop() CHRYSALIS_EXCLUDES(stop_mutex_);

    /// True between start() and stop().
    bool running() const { return running_.load(); }

    /// Resolved listening port (after start()).
    int port() const { return port_; }

    const ServerOptions& options() const { return options_; }

    /// Point-in-time copy of the serving counters.
    ServerStatsSnapshot stats() const CHRYSALIS_EXCLUDES(stats_mutex_);

  private:
    struct Connection {
        int fd = -1;
        std::uint64_t id = 0;     ///< stable handle across vector moves
        FrameDecoder decoder;
        std::string out;          ///< unflushed reply bytes
        std::size_t out_offset = 0;
        int queued = 0;           ///< requests awaiting evaluation
        bool closing = false;     ///< close once `out` is flushed
        /// monotonic_seconds() of the last byte-level progress in
        /// either direction; the idle/read-timeout reference point.
        double last_activity_s = 0.0;
        // Chaos bookkeeping (unused when options_.chaos == nullptr).
        double read_not_before_s = 0.0;   ///< deferred-read deadline
        double write_not_before_s = 0.0;  ///< torn-write stall deadline
        std::uint64_t read_ops = 0;       ///< chaos read-op index
        std::uint64_t write_ops = 0;      ///< chaos write-op index
    };

    struct PendingRequest {
        std::uint64_t connection_id = 0;
        std::uint64_t id = 0;     ///< request "id" echo token
        FlatJsonFields fields;
        std::string type;
        /// Queue+eval latency probe; records a trace span when released.
        std::unique_ptr<obs::SpanTimer> timer;
        /// Parsed "trace" request field (trace_id 0 = untraced); its
        /// case_index is filled from the request's "case_index" field.
        obs::TraceContext trace_ctx;
        /// monotonic_seconds() when the request entered pending_ —
        /// queue_wait = dispatch time minus this.
        double enqueue_mono_s = 0.0;
        /// Payload scan time for this request (the decode stage).
        double decode_s = 0.0;
    };

    void loop();
    void accept_ready();
    void read_ready(Connection& connection);
    /// Returns false when the connection was closed (slow consumer,
    /// send failure) — the caller's reference is then dangling.
    bool ingest_payload(Connection& connection, const std::string& payload);
    void dispatch_batch();
    void flush(Connection& connection);
    /// Returns false when the connection was closed (see ingest_payload).
    bool enqueue_reply(Connection& connection, const std::string& response);
    void close_connection(std::uint64_t connection_id);
    /// close_connection with an immediate RST (SO_LINGER 0) — the
    /// chaos hook's mid-frame reset.
    void reset_connection(std::uint64_t connection_id);
    /// Closes connections whose read/idle deadline has passed.
    void sweep_timeouts(double now_s);
    /// Earliest future wakeup the poll timeout must honor (chaos
    /// stalls, read/idle deadlines); +inf when there is none.
    double next_deadline_s(double now_s) const;
    Connection* find_connection(std::uint64_t connection_id);
    void drain_and_close();
    ServerStatsSnapshot snapshot_locked() const
        CHRYSALIS_REQUIRES(stats_mutex_);

    ServerOptions options_;
    std::unique_ptr<runtime::ThreadPool> pool_;
    std::unique_ptr<ResponseCache> cache_;

    int listen_fd_ = -1;
    int wake_read_fd_ = -1;   ///< self-pipe: stop() wakes the poll loop
    int wake_write_fd_ = -1;
    int port_ = 0;

    std::thread io_thread_;
    Mutex stop_mutex_;  ///< serializes concurrent stop() calls
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};

    // I/O-thread state (no locking needed).
    std::vector<Connection> connections_;
    std::deque<PendingRequest> pending_;
    std::uint64_t next_connection_id_ = 1;
    std::uint64_t accept_index_ = 0;       ///< chaos accept-op index
    double accept_not_before_s = 0.0;      ///< chaos accept-stall deadline
    bool accept_stall_checked_ = false;    ///< one consult per accept

    // Counters, shared with stats() callers.
    mutable Mutex stats_mutex_;
    ServerStatsSnapshot counters_ CHRYSALIS_GUARDED_BY(stats_mutex_);
    /// monotonic_seconds() at start()
    double start_time_s_ CHRYSALIS_GUARDED_BY(stats_mutex_) = 0.0;
    /// Always-on request-latency histogram backing the server_stats
    /// p50/p95/p99 summary (internally atomic — recorded on the I/O
    /// thread, read by stats() callers without stats_mutex_).
    obs::Histogram latency_hist_{obs::latency_bounds()};
};

}  // namespace chrysalis::serve

#endif  // CHRYSALIS_SERVE_SERVER_HPP

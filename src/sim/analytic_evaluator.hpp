/// \file
/// Closed-form evaluator (Eqs. 3, 5, 7, 8).
///
/// The bi-level search evaluates thousands of candidate architectures; the
/// analytic evaluator provides a fast estimate of end-to-end latency and
/// energy by combining the dataflow cost model (E_all, Eq. 5) with the
/// energy subsystem's effective charging power:
///
///   E2ELat = max(E_all / P_eff, T_active) + T_cold
///   P_eff  = P_eh * eta_chg * eta_dis - P_leak - P_quiescent
///
/// T_cold is the charging latency from U_off to U_on: the paper observes
/// that "in an AuT, the latency is mainly determined by the charging
/// latency" (§III-B3), and its Fig. 7 shows single-inference latency
/// growing with capacitor size because a request arriving after a
/// brown-out must charge the full swing before turn-on. The evaluator
/// also checks the per-cycle feasibility constraint E_tile <= E_available
/// (Eq. 8 with Eq. 3). The step-based IntermittentSimulator cross-validates
/// this estimate (see tests/sim/cross_validation_test.cpp).

#ifndef CHRYSALIS_SIM_ANALYTIC_EVALUATOR_HPP
#define CHRYSALIS_SIM_ANALYTIC_EVALUATOR_HPP

#include "dataflow/cost_model.hpp"
#include "energy/capacitor.hpp"
#include "energy/power_management.hpp"
#include "fault/failure.hpp"
#include "fault/fault_injector.hpp"

namespace chrysalis::sim {

/// Energy-subsystem parameters as seen by the analytic evaluator.
struct EnergyEnv {
    double p_eh_w = 0.0;  ///< harvester input power P_eh = A_eh * k_eh [W]
    energy::Capacitor::Config capacitor;
    energy::PowerManagementIc::Config pmic;
};

/// Returns \p env derated by \p faults so analytic evaluations see the
/// same degraded device the step simulator would: P_eh scaled by the
/// mean harvest factor of dropout storms, capacitance fade and leakage
/// growth applied to the capacitor, and threshold drift applied to the
/// PMIC (clamped against the capacitor's rated voltage, matching
/// `EnergyController::attach_fault_model`).
EnergyEnv with_faults(EnergyEnv env, const fault::FaultInjector& faults);

/// Analytic evaluation outcome.
struct AnalyticResult {
    bool feasible = false;      ///< system can finish the inference
    fault::SimFailure failure;  ///< failure code + detail when infeasible

    double latency_s = 0.0;      ///< E2ELat (Eq. 7 + cold-start charge)
    double cold_start_s = 0.0;   ///< time to charge U_off -> U_on
    double e_all_j = 0.0;        ///< load-side energy E_all (Eq. 5)
    double e_harvest_j = 0.0;    ///< harvested energy over the latency
    double e_leak_j = 0.0;       ///< capacitor leakage over the latency
    double p_eff_w = 0.0;        ///< effective charging power
    double cycle_energy_j = 0.0; ///< usable energy per cycle (Eq. 3 E_store)
    double max_tile_energy_j = 0.0;  ///< worst E_tile across layers
    double system_efficiency = 0.0;  ///< E_infer / E_eh (Fig. 8/11 metric)
};

/// Usable stored energy per energy cycle at the load side:
/// eta_dis * 1/2 C (U_on^2 - U_off^2).
double cycle_store_energy(const EnergyEnv& env);

/// Effective charging power reaching the load:
/// P_eh * eta_chg * eta_dis - eta_dis * P_leak(U_on) - eta_dis * P_q.
/// May be negative when leakage dominates.
double effective_power(const EnergyEnv& env);

/// Per-cycle energy budget available to a tile whose active time is
/// \p tile_time_s (Eq. 3 + Eq. 8 feasibility bound).
double cycle_budget(const EnergyEnv& env, double tile_time_s);

/// Closed-form lower bound on the number of intermittent tiles (Eq. 9).
///
/// The paper rearranges E_tile <= E_available (Eqs. 3, 4, 8) into
///   N_tile >= (a3 + a4*N_mem) /
///             (a1*C + k_eh*A_eh*T_df/N_PE - k_cap*C*T_df/N_PE - a2),
/// i.e. the layer's divisible body energy over the per-cycle budget that
/// remains after fixed per-tile overheads. In this framework's terms:
///
///   N_tile >= (E_body - P_eff * T_body) / (E_store - E_ckpt_tile)
///
/// where E_body/T_body are the layer's tiling-invariant energy/active
/// time (numerator: what storage must bridge beyond concurrent harvest),
/// E_store is the usable stored swing per cycle and E_ckpt_tile the
/// fixed checkpoint overhead added to every tile.
///
/// \returns the minimum integer tile count (>= 1), or -1 when no finite
/// tiling works (the denominator is <= 0: per-tile overhead alone
/// exceeds a cycle).
std::int64_t min_tiles_eq9(double e_body_j, double t_body_s,
                           double e_ckpt_tile_j, const EnergyEnv& env);

/// Evaluates a model cost against an energy environment.
AnalyticResult analytic_evaluate(const dataflow::ModelCost& cost,
                                 const EnergyEnv& env);

}  // namespace chrysalis::sim

#endif  // CHRYSALIS_SIM_ANALYTIC_EVALUATOR_HPP

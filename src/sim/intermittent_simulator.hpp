/// \file
/// Step-based intermittent-inference simulator (§III-D).
///
/// Unlike statistical simulators that "simply sum up the energy or time of
/// individual components", the step-based simulator advances wall-clock
/// time in small steps; in each step the *energy controller* updates
/// harvest/leakage/storage and the *inference controller* advances the
/// current tile's execution with the energy actually delivered. Power
/// interruptions, checkpoint saves/restores, energy exceptions (r_exc) and
/// charge latency all emerge from the interaction of the two controllers,
/// reproducing the execution model of Figure 4:
///
///   read tile from NVM -> compute partial sums -> write tile to NVM,
///   checkpoint on brown-out, resume when energy returns.

#ifndef CHRYSALIS_SIM_INTERMITTENT_SIMULATOR_HPP
#define CHRYSALIS_SIM_INTERMITTENT_SIMULATOR_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "dataflow/cost_model.hpp"
#include "energy/energy_controller.hpp"
#include "fault/failure.hpp"
#include "fault/fault_injector.hpp"

namespace chrysalis::sim {

/// When checkpoints are written (Table III "Strategy" row variants).
enum class CheckpointPolicy {
    /// HAWAII-style: save at every tile boundary plus on brown-outs.
    /// Restarts are cheap; steady-state checkpoint energy is higher.
    kEagerBoundary,
    /// QUICKRECALL/JIT-style: save only when power is about to fail.
    /// Cheaper under stable power; identical exposure to r_exc losses.
    kOnDemand,
};

/// Simulation controls.
struct SimConfig {
    double step_s = 0.05;            ///< simulation step length [s]
    double max_sim_time_s = 3.0e5;   ///< give up after this much sim time
    double start_time_s = 10 * 3600; ///< wall-clock start (for diurnal env)
    std::uint64_t seed = 1;          ///< seed for exception sampling
    double exception_rate = 0.05;    ///< r_exc: P(exception) per tile
    /// Drain the capacitor to U_off before every run (simulate_repeated
    /// only): models duty-cycled requests that each pay the cold-start
    /// charging latency, matching the analytic evaluator's E2E semantics.
    bool drain_between_runs = false;
    /// Checkpoint strategy; the analytic model assumes kEagerBoundary
    /// (Eq. 5 charges one save per tile).
    CheckpointPolicy checkpoint_policy = CheckpointPolicy::kEagerBoundary;
    /// Optional oscilloscope probe: called after every simulation step
    /// with (time, capacitor voltage, load active). Used to export the
    /// "periodic energy cycles" traces the paper's Fig. 7 shows from a
    /// real oscilloscope. Leave empty for no tracing.
    std::function<void(double t_s, double voltage_v, bool active)> probe;
    /// Optional fault injector (non-owning, may outlive many runs). The
    /// simulator attaches it to the energy controller (harvest dropouts,
    /// capacitor degradation, PMIC drift) and consults it on every
    /// checkpoint restore: a corrupted restore forces re-execution from
    /// the previous tile boundary, extending the r_exc model.
    const fault::FaultInjector* faults = nullptr;
};

/// fatal() with an actionable message when \p config is invalid
/// (non-positive step or horizon, exception rate outside [0, 1],
/// non-finite start time). Called on entry by simulate_inference and
/// simulate_repeated so bad configurations fail fast instead of hanging.
void validate_sim_config(const SimConfig& config);

/// Outcome of simulating one full inference.
struct SimResult {
    bool completed = false;
    fault::SimFailure failure;   ///< failure code + detail when !completed

    double latency_s = 0.0;      ///< end-to-end wall-clock (E2ELat)
    double active_time_s = 0.0;  ///< time with the load actually running
    std::int64_t steps = 0;      ///< energy-controller steps advanced
    std::int64_t tiles_total = 0;
    std::int64_t tiles_executed = 0;  ///< includes re-executions
    std::int64_t exceptions = 0;      ///< energy exceptions encountered
    std::int64_t energy_cycles = 0;   ///< charge->active transitions
    std::int64_t power_offs = 0;      ///< brown-outs mid-tile
    std::int64_t ckpt_saves = 0;      ///< checkpoint saves written
    std::int64_t ckpt_restores = 0;   ///< checkpoint restores performed
    std::int64_t ckpt_corruptions = 0;  ///< restores that read corrupted
                                        ///< state (forced re-execution)

    // Load-side energy breakdown (joules at the load).
    double e_infer_j = 0.0;   ///< compute + local buffers (E_infer)
    double e_nvm_j = 0.0;     ///< NVM data movement
    double e_static_j = 0.0;  ///< static memory/PE energy
    double e_ckpt_j = 0.0;    ///< checkpoint save/restore

    energy::EnergyLedger ledger;  ///< energy-subsystem accounting

    /// E_infer / E_eh — the paper's system-efficiency metric (Figs. 8/11).
    double system_efficiency() const
    {
        return ledger.harvested_j > 0.0 ? e_infer_j / ledger.harvested_j
                                        : 0.0;
    }

    /// Total load-side energy (comparable to the analytic E_all).
    double e_all_j() const
    {
        return e_infer_j + e_nvm_j + e_static_j + e_ckpt_j;
    }
};

/// Runs one inference to completion (or failure) under intermittent power.
///
/// \param cost per-layer cost breakdown from the dataflow model; defines
///        the tile work list (n_tile tiles per layer with its per-tile
///        energy/time and checkpoint footprint).
/// \param controller energy subsystem (consumed: simulation mutates it).
/// \param config simulation controls.
SimResult simulate_inference(const dataflow::ModelCost& cost,
                             energy::EnergyController& controller,
                             const SimConfig& config);

/// Convenience overload: repeats the inference \p runs times (fresh
/// exception sampling each run, continuing wall-clock time) and returns
/// per-run results. Useful for diurnal environments where k_eh changes
/// between inferences.
std::vector<SimResult> simulate_repeated(const dataflow::ModelCost& cost,
                                         energy::EnergyController& controller,
                                         const SimConfig& config, int runs);

}  // namespace chrysalis::sim

#endif  // CHRYSALIS_SIM_INTERMITTENT_SIMULATOR_HPP

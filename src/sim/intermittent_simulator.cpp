#include "sim/intermittent_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chrysalis::sim {

namespace {

/// Static per-layer execution profile shared by that layer's tiles.
struct LayerProfile {
    double body_energy_j = 0.0;  ///< compute+vm+nvm+static per tile
    double body_time_s = 0.0;    ///< active time per tile (incl. ckpt I/O)
    double save_j = 0.0;         ///< checkpoint save energy
    double restore_j = 0.0;      ///< checkpoint restore energy
    // Fractions of body energy for the result breakdown.
    double frac_infer = 0.0;
    double frac_nvm = 0.0;
    double frac_static = 0.0;
    std::int64_t n_tile = 0;
};

LayerProfile
profile_layer(const dataflow::LayerCost& cost)
{
    LayerProfile profile;
    profile.n_tile = cost.n_tile;
    const double tiles = static_cast<double>(cost.n_tile);
    const double body =
        (cost.e_compute_j + cost.e_vm_j + cost.e_nvm_j + cost.e_static_j) /
        tiles;
    profile.body_energy_j = body;
    profile.body_time_s = cost.time_s / tiles;
    // One save+restore pair costs N_ckpt * (e_r + e_w); split evenly.
    profile.save_j = 0.5 * cost.ckpt_pair_energy_j;
    profile.restore_j = 0.5 * cost.ckpt_pair_energy_j;
    if (body > 0.0) {
        profile.frac_infer = (cost.e_compute_j + cost.e_vm_j) / tiles / body;
        profile.frac_nvm = cost.e_nvm_j / tiles / body;
        profile.frac_static = cost.e_static_j / tiles / body;
    }
    return profile;
}

/// Checks whether the harvester can ever lift the capacitor to U_on: the
/// equilibrium voltage where charge rate equals leakage must exceed the
/// turn-on threshold.
bool
can_reach_turn_on(const energy::EnergyController& controller, double t_s)
{
    const double p_in = controller.input_power_w(t_s) *
                        controller.pmic().charge_efficiency() -
                        controller.pmic().quiescent_power();
    if (p_in <= 0.0)
        return false;
    const auto& cap = controller.capacitor().config();
    if (cap.k_cap <= 0.0)
        return true;
    const double v_eq = std::sqrt(p_in / (cap.k_cap * cap.capacitance_f));
    return v_eq >= controller.pmic().v_on();
}

}  // namespace

void
validate_sim_config(const SimConfig& config)
{
    if (!(config.step_s > 0.0) || !std::isfinite(config.step_s)) {
        fatal("SimConfig: step_s must be finite and > 0, got ",
              config.step_s, " — a non-positive step never advances "
              "simulated time");
    }
    if (!(config.max_sim_time_s > 0.0)) {
        fatal("SimConfig: max_sim_time_s must be > 0, got ",
              config.max_sim_time_s, " — a non-positive horizon times "
              "out immediately");
    }
    if (!(config.start_time_s >= 0.0) ||
        !std::isfinite(config.start_time_s)) {
        fatal("SimConfig: start_time_s must be finite and >= 0, got ",
              config.start_time_s);
    }
    if (!(config.exception_rate >= 0.0 && config.exception_rate <= 1.0)) {
        fatal("SimConfig: exception_rate (r_exc) must be in [0, 1], got ",
              config.exception_rate);
    }
    // The injector's own spec was validated at construction.
}

namespace {

/// Counts one finished simulation into the global registry, if attached.
/// The run itself aggregates onto SimResult locals; this is the only
/// registry touch per inference, keeping the step loop metrics-free.
void
publish_run(const SimResult& result)
{
    obs::MetricsRegistry* registry = obs::metrics();
    if (registry == nullptr)
        return;
    const auto add = [&](std::string_view name, std::int64_t value) {
        registry->counter(name).add(static_cast<std::uint64_t>(value));
    };
    add("sim/runs", 1);
    add("sim/steps", result.steps);
    add("sim/tiles_executed", result.tiles_executed);
    add("sim/exceptions", result.exceptions);
    add("sim/energy_cycles", result.energy_cycles);
    add("sim/power_offs", result.power_offs);
    add("sim/ckpt_saves", result.ckpt_saves);
    add("sim/ckpt_restores", result.ckpt_restores);
    add("sim/ckpt_corruptions", result.ckpt_corruptions);
    add(result.completed ? "sim/completed" : "sim/failures", 1);
}

/// simulate_inference body; the public wrapper publishes metrics so that
/// every return path is counted exactly once.
SimResult
run_inference(const dataflow::ModelCost& cost,
              energy::EnergyController& controller,
              const SimConfig& config)
{
    validate_sim_config(config);
    SimResult result;
    if (!cost.feasible) {
        result.failure = fault::make_failure(
            fault::FailureCode::kMappingInfeasible);
        return result;
    }
    if (config.faults != nullptr)
        controller.attach_fault_model(config.faults);

    Rng rng(config.seed);
    double t = config.start_time_s;
    const double deadline = t + config.max_sim_time_s;

    if (!can_reach_turn_on(controller, t)) {
        result.failure =
            fault::make_failure(fault::FailureCode::kUnavailable);
        return result;
    }

    for (const auto& layer : cost.layers)
        result.tiles_total += layer.n_tile;

    // Snapshot the ledger so the result reports this inference's delta even
    // when the controller is reused across repeated runs.
    const energy::EnergyLedger ledger_before = controller.ledger();

    // Monotone restore counter feeding the corruption stream: the n-th
    // restore of a run is corrupted (or not) purely as a function of
    // (fault seed, n), so reruns replay the identical fault sequence.
    std::uint64_t restore_counter = 0;

    for (const auto& layer_cost : cost.layers) {
        const LayerProfile profile =
            profile_layer(layer_cost);
        for (std::int64_t tile = 0; tile < profile.n_tile; ++tile) {
            double progress_j = 0.0;      // body energy invested
            double restore_due_j = 0.0;   // restore cost owed before body
            bool was_interrupted = false;

            // Pre-sample whether this tile hits an energy exception and at
            // what body-progress point it strikes.
            bool exception_pending = rng.bernoulli(config.exception_rate);
            double exception_at_j =
                exception_pending
                    ? rng.uniform(0.1, 0.9) * profile.body_energy_j
                    : 0.0;

            while (progress_j < profile.body_energy_j) {
                if (t >= deadline) {
                    result.failure = fault::make_failure(
                        fault::FailureCode::kTimeout);
                    result.latency_s = t - config.start_time_s;
                    return result;
                }

                const double need_j = restore_due_j +
                                      (profile.body_energy_j - progress_j);
                const double tile_power =
                    profile.body_time_s > 0.0
                        ? profile.body_energy_j / profile.body_time_s
                        : 0.0;

                if (!controller.can_run()) {
                    // Charge with the load off. The step adapts to the
                    // estimated time-to-turn-on so tiny capacitors are not
                    // penalized by step quantization.
                    double dt = config.step_s;
                    const double p_net =
                        controller.input_power_w(t) *
                            controller.pmic().charge_efficiency() -
                        controller.capacitor().leakage_power() -
                        controller.pmic().quiescent_power();
                    if (p_net > 0.0) {
                        const double needed =
                            controller.capacitor().energy_between(
                                controller.voltage(),
                                controller.pmic().v_on());
                        dt = std::clamp(needed / p_net, 1e-6,
                                        config.step_s);
                    }
                    controller.step(t, dt, 0.0);
                    ++result.steps;
                    t += dt;
                    if (config.probe)
                        config.probe(t, controller.voltage(), false);
                    continue;
                }

                // Run the load for up to one step (or less if the tile
                // finishes sooner).
                const double span = tile_power > 0.0
                    ? std::min(config.step_s, need_j / tile_power)
                    : config.step_s;
                const auto res = controller.step(t, span, tile_power);
                ++result.steps;
                t += span;
                result.active_time_s += span;
                if (config.probe)
                    config.probe(t, controller.voltage(), true);

                double delivered = res.delivered_j;
                // Restore cost is paid first after an interruption.
                const double to_restore = std::min(delivered, restore_due_j);
                restore_due_j -= to_restore;
                result.e_ckpt_j += to_restore;
                delivered -= to_restore;
                progress_j += delivered;

                // A fully paid restore may read back corrupted NVM state:
                // the tile restarts from its boundary and owes a fresh
                // restore from the last good checkpoint (extended r_exc).
                if (to_restore > 0.0 && restore_due_j == 0.0) {
                    const std::uint64_t restore_index = restore_counter++;
                    ++result.ckpt_restores;
                    if (config.faults != nullptr &&
                        config.faults->corrupt_restore(restore_index)) {
                        ++result.ckpt_corruptions;
                        progress_j = 0.0;
                        restore_due_j += profile.restore_j;
                        was_interrupted = true;
                        continue;
                    }
                }

                // Injected energy exception: progress is lost.
                if (exception_pending && progress_j >= exception_at_j) {
                    exception_pending = false;
                    ++result.exceptions;
                    progress_j = 0.0;
                    restore_due_j += profile.restore_j;
                    was_interrupted = true;
                    continue;
                }

                if (res.browned_out && progress_j < profile.body_energy_j) {
                    // Power interruption: VM state is checkpointed using
                    // the PMIC's reserve margin below U_off (not modelled
                    // as capacitor charge), and a restore is owed when
                    // power returns.
                    ++result.power_offs;
                    ++result.ckpt_saves;
                    result.e_ckpt_j += profile.save_j;
                    restore_due_j += profile.restore_j;
                    was_interrupted = true;
                }
            }

            // Tile boundary: commit outputs and, under the eager policy,
            // write the boundary checkpoint (Fig. 4 steps 5-6).
            if (config.checkpoint_policy ==
                CheckpointPolicy::kEagerBoundary) {
                ++result.ckpt_saves;
                result.e_ckpt_j += profile.save_j;
            }
            const double body = profile.body_energy_j;
            result.e_infer_j += body * profile.frac_infer;
            result.e_nvm_j += body * profile.frac_nvm;
            result.e_static_j += body * profile.frac_static;
            ++result.tiles_executed;
            (void)was_interrupted;
        }
    }

    result.completed = true;
    result.latency_s = t - config.start_time_s;
    const energy::EnergyLedger& after = controller.ledger();
    result.ledger.harvested_j = after.harvested_j - ledger_before.harvested_j;
    result.ledger.stored_j = after.stored_j - ledger_before.stored_j;
    result.ledger.wasted_j = after.wasted_j - ledger_before.wasted_j;
    result.ledger.leaked_j = after.leaked_j - ledger_before.leaked_j;
    result.ledger.delivered_j =
        after.delivered_j - ledger_before.delivered_j;
    result.ledger.quiescent_j =
        after.quiescent_j - ledger_before.quiescent_j;
    result.ledger.cycle_count =
        after.cycle_count - ledger_before.cycle_count;
    result.energy_cycles = result.ledger.cycle_count;
    return result;
}

}  // namespace

SimResult
simulate_inference(const dataflow::ModelCost& cost,
                   energy::EnergyController& controller,
                   const SimConfig& config)
{
    OBS_SPAN("sim/inference");
    SimResult result = run_inference(cost, controller, config);
    publish_run(result);
    return result;
}

std::vector<SimResult>
simulate_repeated(const dataflow::ModelCost& cost,
                  energy::EnergyController& controller,
                  const SimConfig& config, int runs)
{
    if (runs < 1)
        fatal("simulate_repeated: runs must be >= 1, got ", runs);
    validate_sim_config(config);
    std::vector<SimResult> results;
    results.reserve(static_cast<std::size_t>(runs));
    SimConfig run_config = config;
    for (int run = 0; run < runs; ++run) {
        run_config.seed = config.seed + static_cast<std::uint64_t>(run);
        if (config.drain_between_runs)
            controller.drain_to(controller.pmic().v_off());
        SimResult result = simulate_inference(cost, controller, run_config);
        run_config.start_time_s += result.latency_s;
        const bool completed = result.completed;
        results.push_back(std::move(result));
        if (!completed)
            break;
    }
    return results;
}

}  // namespace chrysalis::sim

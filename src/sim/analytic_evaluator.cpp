#include "sim/analytic_evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace chrysalis::sim {

EnergyEnv
with_faults(EnergyEnv env, const fault::FaultInjector& faults)
{
    env.p_eh_w *= faults.mean_harvest_factor();
    env.capacitor.capacitance_f *= faults.capacitance_scale();
    env.capacitor.k_cap *= faults.leakage_scale();
    env.pmic = energy::PowerManagementIc::drifted(
        env.pmic, faults.v_on_offset_v(), faults.v_off_offset_v(),
        env.capacitor.rated_voltage_v);
    return env;
}

double
cycle_store_energy(const EnergyEnv& env)
{
    const energy::PowerManagementIc pmic(env.pmic);
    const energy::Capacitor capacitor(env.capacitor);
    return pmic.load_energy_from_capacitor(
        capacitor.energy_between(pmic.v_off(), pmic.v_on()));
}

double
effective_power(const EnergyEnv& env)
{
    const energy::PowerManagementIc pmic(env.pmic);
    const double v_on = pmic.v_on();
    // Leakage at the cycle's upper voltage (the paper's simplification of
    // Eq. 3: "the leakage energy is simplified as the voltage is
    // unchanged").
    const double p_leak =
        env.capacitor.k_cap * env.capacitor.capacitance_f * v_on * v_on;
    return env.p_eh_w * pmic.charge_efficiency() *
               pmic.discharge_efficiency() -
           pmic.load_energy_from_capacitor(p_leak) -
           pmic.quiescent_power() * pmic.discharge_efficiency();
}

double
cycle_budget(const EnergyEnv& env, double tile_time_s)
{
    return cycle_store_energy(env) +
           std::max(0.0, effective_power(env)) * tile_time_s;
}

std::int64_t
min_tiles_eq9(double e_body_j, double t_body_s, double e_ckpt_tile_j,
              const EnergyEnv& env)
{
    if (e_body_j < 0.0 || t_body_s < 0.0 || e_ckpt_tile_j < 0.0)
        fatal("min_tiles_eq9: negative inputs");
    const double store = cycle_store_energy(env);
    const double p_eff = std::max(0.0, effective_power(env));
    const double numerator = e_body_j - p_eff * t_body_s;
    const double denominator = store - e_ckpt_tile_j;
    if (numerator <= 0.0)
        return 1;  // harvest alone powers the layer: no split required
    if (denominator <= 0.0)
        return -1;  // fixed per-tile overhead exceeds a whole cycle
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(numerator / denominator)));
}

AnalyticResult
analytic_evaluate(const dataflow::ModelCost& cost, const EnergyEnv& env)
{
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->counter("sim/analytic_evals").add(1);
    AnalyticResult result;
    result.e_all_j = cost.total_energy_j();
    result.max_tile_energy_j = cost.max_tile_energy_j();
    result.cycle_energy_j = cycle_store_energy(env);
    result.p_eff_w = effective_power(env);

    if (!cost.feasible) {
        result.failure = fault::make_failure(
            fault::FailureCode::kMappingInfeasible);
        return result;
    }
    if (result.p_eff_w <= 0.0) {
        result.failure = fault::make_failure(
            fault::FailureCode::kLeakageDominates);
        return result;
    }

    // Per-cycle feasibility (Eq. 8): the worst tile must fit inside one
    // energy cycle; harvest continues during execution (Eq. 3's T term).
    const double budget = cycle_budget(env, cost.max_tile_time_s());
    if (result.max_tile_energy_j > budget) {
        result.failure = fault::make_failure(
            fault::FailureCode::kTileExceedsCycle);
        return result;
    }

    // E2ELat (Eq. 7): when charging dominates, latency = E_all / P_eff;
    // when the harvester out-powers the load the system runs continuously
    // and the active execution time is the floor. On top of either, a
    // request arriving at U_off must first charge the capacitor swing to
    // U_on — the cold-start charging latency, which grows with C and is
    // the mechanism behind the paper's Fig. 7 capacitor trend.
    const energy::PowerManagementIc pmic(env.pmic);
    const double v_on = pmic.v_on();
    const double v_off = pmic.v_off();
    const double p_leak =
        env.capacitor.k_cap * env.capacitor.capacitance_f * v_on * v_on;
    const double swing_j =
        0.5 * env.capacitor.capacitance_f * (v_on * v_on - v_off * v_off);
    const double p_charge_net =
        env.p_eh_w * pmic.charge_efficiency() - p_leak -
        pmic.quiescent_power();
    if (p_charge_net <= 0.0) {
        result.failure = fault::make_failure(
            fault::FailureCode::kLeakageDominates);
        return result;
    }
    result.cold_start_s = swing_j / p_charge_net;

    // The cold start pre-charges the full swing; the execution may borrow
    // that stored energy, so only the *remainder* of E_all has to be
    // gathered while running (avoids double-counting the swing when
    // E_all is small relative to the capacitor).
    const double borrowed_j =
        std::min(result.e_all_j,
                 pmic.load_energy_from_capacitor(swing_j));
    result.feasible = true;
    result.latency_s =
        std::max((result.e_all_j - borrowed_j) / result.p_eff_w,
                 cost.time_s) +
        result.cold_start_s;
    result.e_harvest_j = env.p_eh_w * result.latency_s;
    result.e_leak_j = p_leak * result.latency_s;
    const double e_infer = cost.e_compute_j + cost.e_vm_j;
    result.system_efficiency =
        result.e_harvest_j > 0.0 ? e_infer / result.e_harvest_j : 0.0;
    return result;
}

}  // namespace chrysalis::sim

/// \file
/// Wire-serializable campaign description: the unit of work a
/// distributed campaign ships to `chrysalis_served` workers.
///
/// A `CampaignSpec` captures everything that shapes a campaign's
/// *results* — workload, design space, objective cycle, GA budget,
/// seeds, environments, fault spec — as flat scalar fields, so the same
/// spec can be (a) expanded locally into `CampaignCase`s +
/// `ExplorerOptions` and run through `run_campaign`, or (b) encoded
/// into `chrysalis-serve-v1` `run_case` request fields, evaluated on a
/// remote worker, and merged back byte-identically. Execution knobs
/// that never change results (thread counts, timeouts, journal paths)
/// are deliberately *not* part of the spec.
///
/// The spec mirrors `chrysalis_cli --campaign`: \p cases search cases
/// over one workload, objectives cycling latsp/lat/sp, per-case seeds
/// decorrelated by `run_campaign`'s index offset.

#ifndef CHRYSALIS_CORE_CAMPAIGN_SPEC_HPP
#define CHRYSALIS_CORE_CAMPAIGN_SPEC_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_json.hpp"
#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "fault/fault_injector.hpp"

namespace chrysalis::core {

/// Result-shaping description of one campaign. validate() fatals on
/// out-of-range fields.
struct CampaignSpec {
    std::string model = "kws";       ///< model-zoo workload name
    std::string space = "existing";  ///< "existing" | "future"
    int cases = 6;                   ///< objectives cycle latsp/lat/sp
    double sp_limit_cm2 = 20.0;      ///< panel budget (lat objective)
    double lat_limit_s = 10.0;       ///< deadline (sp objective)
    int population = 24;             ///< HW-level GA population
    int generations = 16;            ///< HW-level GA generations
    std::uint64_t seed = 1;          ///< base search seed
    double bright_w_cm2 = 2.0e-3;    ///< brighter environment k_eh
    double dark_w_cm2 = 0.5e-3;      ///< darker environment k_eh
    double fault_dropout = 0.0;      ///< harvester dropout probability
    double fault_age_years = 0.0;    ///< capacitor mission age
    double fault_ckpt = 0.0;         ///< checkpoint corruption rate
    int max_attempts = 2;            ///< per-case isolation attempts

    void validate() const;
};

/// Objective kind of case \p index: "latsp", "lat", "sp", cycling — the
/// `chrysalis_cli --campaign` scheme.
const char* campaign_case_kind(std::size_t index);

/// Label of case \p index: "<model-name>-<kind>-<index>".
std::string campaign_case_label(const std::string& model_name,
                                std::size_t index);

/// Builds case \p index over \p model (resolved by the caller so local
/// runs may use file-loaded models; workers use make_model(spec.model),
/// which must agree with the coordinator's resolution for distributed
/// byte-identity).
CampaignCase build_campaign_case(const CampaignSpec& spec,
                                 const dnn::Model& model,
                                 std::size_t index);

/// All spec.cases cases, in index order.
std::vector<CampaignCase> build_campaign_cases(const CampaignSpec& spec,
                                               const dnn::Model& model);

/// ExplorerOptions the spec describes: defaults + GA budget, seed,
/// environments and — when any fault knob is active — an injector
/// (owned via \p faults, which must outlive the returned options).
search::ExplorerOptions
build_explorer_options(const CampaignSpec& spec,
                       std::unique_ptr<fault::FaultInjector>& faults);

/// Encodes the spec as flat request fields (doubles via
/// format_double_17g so the encoding is byte-stable and cache-keyable).
FlatJsonFields to_fields(const CampaignSpec& spec);

/// to_fields() plus the per-request "case_index" field — the parameter
/// set of one `run_case` request.
FlatJsonFields case_request_fields(const CampaignSpec& spec,
                                   std::size_t index);

/// Decodes request fields into a spec. Absent fields keep their
/// defaults; present-but-unparsable fields fatal() (the serve dispatch
/// layer converts that into a `bad_request` reply).
CampaignSpec spec_from_fields(const FlatJsonFields& fields);

/// Appends a journal record's result fields (label, objective,
/// hardware, metrics, failure, attempts — everything except `key` and
/// the volatile wall times) to a response body under construction.
/// Inverse of campaign_record_from_fields().
void append_record_fields(std::string& body, const JournalRecord& record);

/// Parses the fields appended by append_record_fields() back into a
/// record (key left empty, wall times zero). Returns false when any
/// field is missing or malformed.
bool campaign_record_from_fields(const FlatJsonFields& fields,
                                 JournalRecord& record);

}  // namespace chrysalis::core

#endif  // CHRYSALIS_CORE_CAMPAIGN_SPEC_HPP

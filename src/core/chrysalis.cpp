#include "core/chrysalis.hpp"

#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "common/string_utils.hpp"
#include "energy/energy_controller.hpp"
#include "energy/solar_environment.hpp"

namespace chrysalis::core {

std::string
AuTSolution::describe(const dnn::Model& model) const
{
    std::ostringstream os;
    os << "=== AuT solution for workload '" << model.name() << "' ===\n";
    os << "Energy subsystem:\n";
    os << "  solar panel A_eh = " << format_fixed(hardware.solar_cm2, 2)
       << " cm^2\n";
    os << "  capacitor C = " << format_si(hardware.capacitance_f, "F", 1)
       << "\n";
    os << "Inference subsystem:\n";
    const auto hw_model = hardware.build_hardware();
    os << "  " << hw_model->describe() << "\n";
    os << "Metrics:\n";
    if (failure)
        os << "  failure: " << failure.message() << "\n";
    os << "  mean latency = " << format_si(mean_latency_s, "s") << "\n";
    os << "  lat*sp = " << format_fixed(lat_sp, 2) << " cm^2*s\n";
    os << "  E_all = " << format_si(cost.total_energy_j(), "J") << ", "
       << cost.n_tile << " tiles\n";
    if (evaluations > 0) {
        os << "Search:\n";
        os << "  " << evaluations << " designs evaluated in "
           << format_si(search_wall_time_s, "s") << " (memo: "
           << cache_hits << " hits, " << cache_misses << " misses)\n";
    }
    os << "Dataflow (Fig. 4 loop nests):\n";
    for (std::size_t i = 0; i < mappings.size(); ++i)
        os << mappings[i].describe(model.layer(i));
    return os.str();
}

Chrysalis::Chrysalis(ChrysalisInputs inputs)
    : inputs_(std::move(inputs)),
      explorer_(inputs_.model, inputs_.space, inputs_.objective,
                inputs_.options)
{
}

AuTSolution
Chrysalis::to_solution(const search::EvaluatedDesign& design,
                       const search::ExplorationResult* result) const
{
    AuTSolution solution;
    solution.hardware = design.candidate;
    solution.mappings = design.mapping.mappings;
    solution.cost = design.mapping.cost;
    solution.mean_latency_s = design.mean_latency_s;
    solution.lat_sp = design.mean_latency_s * design.candidate.solar_cm2;
    solution.score = design.score;
    solution.feasible = design.feasible;
    solution.failure = design.failure;
    if (result != nullptr) {
        solution.pareto = result->pareto;
        solution.evaluations = result->evaluations;
        solution.cache_hits = result->cache.hits;
        solution.cache_misses = result->cache.misses;
        solution.cache_evictions = result->cache.evictions;
        solution.search_wall_time_s = result->wall_time_s;
    }
    return solution;
}

AuTSolution
Chrysalis::generate(
    const std::vector<search::HwCandidate>& warm_starts) const
{
    const search::ExplorationResult result =
        explorer_.explore(warm_starts);
    return to_solution(result.best, &result);
}

AuTSolution
Chrysalis::evaluate_candidate(const search::HwCandidate& candidate) const
{
    return to_solution(explorer_.evaluate(candidate), nullptr);
}

ValidationResult
Chrysalis::validate(const AuTSolution& solution, double k_eh,
                    const sim::SimConfig& sim_config, int runs) const
{
    if (runs < 1)
        fatal("Chrysalis::validate: runs must be >= 1, got ", runs);
    ValidationResult validation;

    // Build the concrete energy subsystem described by the solution,
    // starting at the turn-on threshold (steady-state assumption).
    auto environment = std::make_shared<energy::ConstantSolarEnvironment>(
        k_eh, "validation");
    auto panel = std::make_unique<energy::SolarPanel>(
        solution.hardware.solar_cm2, environment);
    energy::Capacitor::Config cap_config =
        inputs_.options.capacitor_base;
    cap_config.capacitance_f = solution.hardware.capacitance_f;
    cap_config.initial_voltage_v = inputs_.options.pmic.v_off;
    energy::EnergyController controller(
        std::move(panel), energy::Capacitor(cap_config),
        energy::PowerManagementIc(inputs_.options.pmic));

    // Every run starts at U_off so each pays the cold-start charging
    // latency, matching the analytic E2E semantics.
    sim::SimConfig run_config = sim_config;
    run_config.drain_between_runs = true;
    const std::vector<sim::SimResult> results =
        sim::simulate_repeated(solution.cost, controller, run_config,
                               runs);
    double latency_sum = 0.0;
    int completed = 0;
    for (const auto& result : results) {
        if (result.completed) {
            latency_sum += result.latency_s;
            ++completed;
        }
    }
    validation.sim = results.back();
    validation.mean_sim_latency_s =
        completed > 0 ? latency_sum / completed : 0.0;

    // Analytic reference in the same environment (fault-derated when the
    // simulation injects faults, so the comparison stays apples-to-apples).
    sim::EnergyEnv env;
    env.p_eh_w = solution.hardware.solar_cm2 * k_eh;
    env.capacitor = cap_config;
    env.pmic = inputs_.options.pmic;
    if (sim_config.faults != nullptr)
        env = sim::with_faults(env, *sim_config.faults);
    const sim::AnalyticResult analytic =
        sim::analytic_evaluate(solution.cost, env);
    validation.analytic_latency_s = analytic.latency_s;
    if (analytic.feasible && completed > 0 && analytic.latency_s > 0.0) {
        validation.relative_error =
            std::fabs(validation.mean_sim_latency_s -
                      analytic.latency_s) /
            analytic.latency_s;
    }
    return validation;
}

}  // namespace chrysalis::core

/// \file
/// Batch experiment campaigns: run a list of (workload, space, objective)
/// search cases with shared options and export the results as CSV — the
/// workflow behind sweeping tables like the paper's Fig. 10 grid, exposed
/// as a reusable API for downstream studies.

#ifndef CHRYSALIS_CORE_CAMPAIGN_HPP
#define CHRYSALIS_CORE_CAMPAIGN_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "core/chrysalis.hpp"

namespace chrysalis::core {

/// One search case in a campaign.
struct CampaignCase {
    std::string label;           ///< row identifier in reports
    dnn::Model model;            ///< workload
    search::DesignSpace space;   ///< (possibly ablated) design space
    search::Objective objective; ///< optimization target
};

/// Result of one case.
struct CampaignEntry {
    std::string label;
    std::string objective_label;  ///< "lat" / "sp" / "lat*sp"
    AuTSolution solution;
    /// Per-case search wall-clock time, measured on a monotonic clock
    /// inside the case's task so it stays correct when cases run
    /// concurrently (it is the case's own duration, not a share of the
    /// campaign's elapsed time).
    double wall_time_s = 0.0;
    int attempts = 1;          ///< evaluation attempts (1 = first try)
    bool from_journal = false; ///< restored from a resume journal, not run
};

/// Which columns write_csv emits.
enum class CsvColumns {
    kAll,            ///< every column, including wall-clock timing
    kDeterministic,  ///< drops wall_time_s, so a resumed campaign's CSV
                     ///< is byte-identical to an uninterrupted run's
};

/// Aggregated campaign results.
struct CampaignResult {
    std::vector<CampaignEntry> entries;
    double wall_time_s = 0.0;  ///< whole-campaign wall-clock time
    std::size_t journal_skips = 0;  ///< cases restored from the journal

    /// Writes a CSV with one row per case: label, feasibility, the
    /// chosen EA/IA parameters, metrics, failure code, search effort,
    /// memo-cache activity, attempts and (in kAll mode) timing.
    void write_csv(std::ostream& output,
                   CsvColumns columns = CsvColumns::kAll) const;

    /// Looks up an entry by label; fatal() if absent.
    const CampaignEntry& entry(const std::string& label) const;
};

/// Campaign-level execution controls.
struct CampaignOptions {
    /// Case-level fan-out: 0 = all hardware threads, 1 = sequential.
    /// Cases are independent searches with decorrelated seeds, so any
    /// value produces identical entries in identical order; searches
    /// running on campaign workers keep their inner evaluation serial
    /// (nested pool batches run inline), avoiding oversubscription.
    int threads = 1;

    /// When true, a case whose evaluation fatals (bad derived
    /// configuration, a crashed search) is retried and — if it keeps
    /// failing — recorded as an infeasible kCrashed entry instead of
    /// killing the whole campaign. When false, fatal() behaves as usual
    /// and terminates the process.
    bool isolate_failures = true;
    /// Evaluation attempts per case (>= 1); only meaningful with
    /// isolate_failures.
    int max_attempts = 2;
    /// Base sleep before a retry; doubles per attempt.
    double retry_backoff_s = 0.0;
    /// Cap on the retry backoff.
    double retry_backoff_cap_s = 5.0;

    /// When non-empty, finished cases are appended to this JSONL journal
    /// and — on a later run with the same cases and options — loaded
    /// from it instead of re-evaluated, so a killed campaign resumes
    /// where it stopped. See campaign_journal.hpp.
    std::string journal_path;

    /// Minimum seconds between progress-heartbeat lines (emitted at
    /// kInform level through the logging sink; silent at the default
    /// kWarn threshold). 0 logs a line after every finished case.
    double progress_interval_s = 5.0;

    /// When true, journal records are written with the volatile
    /// wall-clock fields zeroed (see deterministic_record()), so two
    /// runs of the same campaign produce byte-identical journal lines —
    /// the property the distributed coordinator's byte-identity
    /// guarantee is checked against.
    bool deterministic_journal = false;

    /// fatal() with an actionable message when any field is out of range.
    void validate() const;
};

/// Runs every case with \p base_options (the per-case seed is offset by
/// the case index so cases are decorrelated but the whole campaign stays
/// reproducible).
CampaignResult run_campaign(const std::vector<CampaignCase>& cases,
                            const search::ExplorerOptions& base_options,
                            const CampaignOptions& campaign_options);

/// Sequential convenience overload (CampaignOptions defaults).
CampaignResult run_campaign(const std::vector<CampaignCase>& cases,
                            const search::ExplorerOptions& base_options);

/// Runs a single campaign case exactly as run_campaign would — same
/// per-index seed offset, same FatalThrowGuard crash isolation with up
/// to \p max_attempts attempts, same kCrashed fallback entry — without
/// the campaign scaffolding (thread pool, journal, progress). This is
/// the unit of work a `run_case` serve request executes on a worker:
/// because it is the same code path, a remotely evaluated case is
/// bit-identical to a local one.
CampaignEntry run_campaign_case(const CampaignCase& campaign_case,
                                const search::ExplorerOptions& base_options,
                                std::size_t index, int max_attempts = 2);

}  // namespace chrysalis::core

#endif  // CHRYSALIS_CORE_CAMPAIGN_HPP

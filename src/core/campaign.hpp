/// \file
/// Batch experiment campaigns: run a list of (workload, space, objective)
/// search cases with shared options and export the results as CSV — the
/// workflow behind sweeping tables like the paper's Fig. 10 grid, exposed
/// as a reusable API for downstream studies.

#ifndef CHRYSALIS_CORE_CAMPAIGN_HPP
#define CHRYSALIS_CORE_CAMPAIGN_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "core/chrysalis.hpp"

namespace chrysalis::core {

/// One search case in a campaign.
struct CampaignCase {
    std::string label;           ///< row identifier in reports
    dnn::Model model;            ///< workload
    search::DesignSpace space;   ///< (possibly ablated) design space
    search::Objective objective; ///< optimization target
};

/// Result of one case.
struct CampaignEntry {
    std::string label;
    std::string objective_label;  ///< "lat" / "sp" / "lat*sp"
    AuTSolution solution;
    double wall_time_s = 0.0;  ///< search wall-clock time
};

/// Aggregated campaign results.
struct CampaignResult {
    std::vector<CampaignEntry> entries;

    /// Writes a CSV with one row per case: label, feasibility, the
    /// chosen EA/IA parameters, metrics, search effort and timing.
    void write_csv(std::ostream& output) const;

    /// Looks up an entry by label; fatal() if absent.
    const CampaignEntry& entry(const std::string& label) const;
};

/// Runs every case sequentially with \p base_options (the per-case seed
/// is offset by the case index so cases are decorrelated but the whole
/// campaign stays reproducible).
CampaignResult run_campaign(const std::vector<CampaignCase>& cases,
                            const search::ExplorerOptions& base_options);

}  // namespace chrysalis::core

#endif  // CHRYSALIS_CORE_CAMPAIGN_HPP

/// \file
/// Named AuT application scenarios: ready-made ChrysalisInputs for the
/// deployment contexts the paper's introduction motivates (wearables,
/// environmental monitoring, space/UAV-class SWaP budgets). Used by the
/// examples and by integration tests.

#ifndef CHRYSALIS_CORE_SCENARIOS_HPP
#define CHRYSALIS_CORE_SCENARIOS_HPP

#include <string>
#include <vector>

#include "core/chrysalis.hpp"

namespace chrysalis::core {

/// A scenario bundles inputs with a human-readable motivation string.
struct Scenario {
    std::string name;
    std::string description;
    ChrysalisInputs inputs;
};

/// Battery-free wearable keyword spotter: tiny panel budget (indoor
/// light), latency objective under a strict size constraint.
Scenario make_wearable_kws_scenario();

/// Remote environmental (volcano/field) monitor running HAR-class sensing:
/// minimize panel size subject to a latency deadline, dim environment.
Scenario make_environment_monitor_scenario();

/// Future AuT camera node with a reconfigurable accelerator running
/// AlexNet-class vision: lat*sp efficiency objective.
Scenario make_vision_node_scenario();

/// Quickstart: single convolution layer, small search budget — finishes
/// in well under a second.
Scenario make_quickstart_scenario();

/// All scenarios above.
std::vector<Scenario> all_scenarios();

}  // namespace chrysalis::core

#endif  // CHRYSALIS_CORE_SCENARIOS_HPP

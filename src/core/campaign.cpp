#include "core/campaign.hpp"

#include <chrono>
#include <ostream>

#include "common/logging.hpp"
#include "hw/accelerator.hpp"

namespace chrysalis::core {

void
CampaignResult::write_csv(std::ostream& output) const
{
    output << "label,feasible,objective,sp_cm2,capacitance_f,arch,n_pe,"
              "cache_bytes,mean_latency_s,lat_sp,score,evaluations,"
              "wall_time_s\n";
    for (const auto& entry : entries) {
        const auto& solution = entry.solution;
        output << entry.label << ',' << (solution.feasible ? 1 : 0)
               << ',' << entry.objective_label << ','
               << solution.hardware.solar_cm2 << ','
               << solution.hardware.capacitance_f << ','
               << hw::to_string(solution.hardware.arch) << ','
               << solution.hardware.n_pe << ','
               << solution.hardware.cache_bytes << ','
               << solution.mean_latency_s << ',' << solution.lat_sp
               << ',' << solution.score << ',' << solution.evaluations
               << ',' << entry.wall_time_s << '\n';
    }
}

const CampaignEntry&
CampaignResult::entry(const std::string& label) const
{
    for (const auto& candidate : entries) {
        if (candidate.label == label)
            return candidate;
    }
    fatal("CampaignResult: no entry labelled '", label, "'");
}

CampaignResult
run_campaign(const std::vector<CampaignCase>& cases,
             const search::ExplorerOptions& base_options)
{
    if (cases.empty())
        fatal("run_campaign: no cases supplied");
    CampaignResult result;
    result.entries.reserve(cases.size());
    std::uint64_t index = 0;
    for (const auto& campaign_case : cases) {
        search::ExplorerOptions options = base_options;
        options.outer.seed = base_options.outer.seed + 1000 * ++index;
        ChrysalisInputs inputs{campaign_case.model, campaign_case.space,
                               campaign_case.objective, options};
        const Chrysalis tool(std::move(inputs));
        const auto start = std::chrono::steady_clock::now();
        AuTSolution solution = tool.generate();
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        result.entries.push_back(
            {campaign_case.label,
             to_string(campaign_case.objective.kind),
             std::move(solution), elapsed});
    }
    return result;
}

}  // namespace chrysalis::core

#include "core/campaign.hpp"

#include <chrono>
#include <ostream>

#include "common/logging.hpp"
#include "hw/accelerator.hpp"
#include "runtime/thread_pool.hpp"

namespace chrysalis::core {

void
CampaignResult::write_csv(std::ostream& output) const
{
    output << "label,feasible,objective,sp_cm2,capacitance_f,arch,n_pe,"
              "cache_bytes,mean_latency_s,lat_sp,score,evaluations,"
              "cache_hits,cache_misses,wall_time_s\n";
    for (const auto& entry : entries) {
        const auto& solution = entry.solution;
        output << entry.label << ',' << (solution.feasible ? 1 : 0)
               << ',' << entry.objective_label << ','
               << solution.hardware.solar_cm2 << ','
               << solution.hardware.capacitance_f << ','
               << hw::to_string(solution.hardware.arch) << ','
               << solution.hardware.n_pe << ','
               << solution.hardware.cache_bytes << ','
               << solution.mean_latency_s << ',' << solution.lat_sp
               << ',' << solution.score << ',' << solution.evaluations
               << ',' << solution.cache_hits << ','
               << solution.cache_misses << ',' << entry.wall_time_s
               << '\n';
    }
}

const CampaignEntry&
CampaignResult::entry(const std::string& label) const
{
    for (const auto& candidate : entries) {
        if (candidate.label == label)
            return candidate;
    }
    fatal("CampaignResult: no entry labelled '", label, "'");
}

CampaignResult
run_campaign(const std::vector<CampaignCase>& cases,
             const search::ExplorerOptions& base_options,
             const CampaignOptions& campaign_options)
{
    if (cases.empty())
        fatal("run_campaign: no cases supplied");
    if (campaign_options.threads < 0)
        fatal("run_campaign: threads must be >= 0, got ",
              campaign_options.threads);

    using Clock = std::chrono::steady_clock;
    const auto campaign_start = Clock::now();

    CampaignResult result;
    result.entries.resize(cases.size());
    runtime::ThreadPool pool(campaign_options.threads);
    pool.parallel_for(cases.size(), [&](std::size_t index) {
        const auto& campaign_case = cases[index];
        search::ExplorerOptions options = base_options;
        options.outer.seed =
            base_options.outer.seed + 1000 * (index + 1);
        ChrysalisInputs inputs{campaign_case.model, campaign_case.space,
                               campaign_case.objective, options};
        const Chrysalis tool(std::move(inputs));
        // Per-case timing lives inside the task: under fan-out each
        // case reports its own duration, not the loop's.
        const auto start = Clock::now();
        AuTSolution solution = tool.generate();
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        result.entries[index] = {campaign_case.label,
                                 to_string(campaign_case.objective.kind),
                                 std::move(solution), elapsed};
    });
    result.wall_time_s =
        std::chrono::duration<double>(Clock::now() - campaign_start)
            .count();
    return result;
}

CampaignResult
run_campaign(const std::vector<CampaignCase>& cases,
             const search::ExplorerOptions& base_options)
{
    return run_campaign(cases, base_options, CampaignOptions{});
}

}  // namespace chrysalis::core

#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <thread>
#include <utility>

#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "common/string_utils.hpp"
#include "core/campaign_journal.hpp"
#include "hw/accelerator.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace chrysalis::core {

void
CampaignOptions::validate() const
{
    if (threads < 0)
        fatal("CampaignOptions: threads must be >= 0 (0 = all hardware "
              "threads), got ", threads);
    if (max_attempts < 1)
        fatal("CampaignOptions: max_attempts must be >= 1, got ",
              max_attempts);
    if (!(retry_backoff_s >= 0.0) || !std::isfinite(retry_backoff_s))
        fatal("CampaignOptions: retry_backoff_s must be finite and >= 0, "
              "got ", retry_backoff_s);
    if (!(retry_backoff_cap_s >= 0.0) ||
        !std::isfinite(retry_backoff_cap_s))
        fatal("CampaignOptions: retry_backoff_cap_s must be finite and "
              ">= 0, got ", retry_backoff_cap_s);
    if (!(progress_interval_s >= 0.0) || !std::isfinite(progress_interval_s))
        fatal("CampaignOptions: progress_interval_s must be finite and "
              ">= 0, got ", progress_interval_s);
}

void
CampaignResult::write_csv(std::ostream& output, CsvColumns columns) const
{
    output << "label,feasible,objective,sp_cm2,capacitance_f,arch,n_pe,"
              "cache_bytes,mean_latency_s,lat_sp,score,failure,"
              "evaluations,cache_hits,cache_misses,cache_evictions,attempts";
    if (columns == CsvColumns::kAll)
        output << ",wall_time_s";
    output << '\n';
    // Doubles go through format_double_17g so the CSV round-trips
    // bit-exactly and a journal-resumed run's export stays
    // byte-identical to an uninterrupted one.
    for (const auto& entry : entries) {
        const auto& solution = entry.solution;
        output << entry.label << ',' << (solution.feasible ? 1 : 0)
               << ',' << entry.objective_label << ','
               << format_double_17g(solution.hardware.solar_cm2) << ','
               << format_double_17g(solution.hardware.capacitance_f)
               << ',' << hw::to_string(solution.hardware.arch) << ','
               << solution.hardware.n_pe << ','
               << solution.hardware.cache_bytes << ','
               << format_double_17g(solution.mean_latency_s) << ','
               << format_double_17g(solution.lat_sp) << ','
               << format_double_17g(solution.score) << ','
               << fault::to_string(solution.failure.code) << ','
               << solution.evaluations << ',' << solution.cache_hits
               << ',' << solution.cache_misses << ','
               << solution.cache_evictions << ',' << entry.attempts;
        if (columns == CsvColumns::kAll)
            output << ',' << format_double_17g(entry.wall_time_s);
        output << '\n';
    }
}

const CampaignEntry&
CampaignResult::entry(const std::string& label) const
{
    for (const auto& candidate : entries) {
        if (candidate.label == label)
            return candidate;
    }
    fatal("CampaignResult: no entry labelled '", label, "'");
}

namespace {

/// Runs one case end-to-end (explorer construction + search). The span
/// timer measures the case's own duration on a monotonic clock inside
/// the task, so fan-out reports stay correct when cases run
/// concurrently. May fatal()/throw; the caller handles isolation.
CampaignEntry
run_case(const CampaignCase& campaign_case,
         const search::ExplorerOptions& base_options, std::size_t index)
{
    search::ExplorerOptions options = base_options;
    options.outer.seed = base_options.outer.seed + 1000 * (index + 1);
    ChrysalisInputs inputs{campaign_case.model, campaign_case.space,
                           campaign_case.objective, options};
    const Chrysalis tool(std::move(inputs));
    obs::SpanTimer timer("case:" + campaign_case.label);
    const double cpu_before = obs::thread_cpu_seconds();
    AuTSolution solution = tool.generate();
    CampaignEntry entry;
    entry.label = campaign_case.label;
    entry.objective_label = to_string(campaign_case.objective.kind);
    entry.solution = std::move(solution);
    entry.wall_time_s = timer.elapsed_s();
    if (obs::MetricsRegistry* registry = obs::metrics()) {
        registry->counter("campaign/cases_evaluated").add(1);
        // Wall/CPU times are volatile by nature; the histograms record
        // their order-of-magnitude distribution for the run report.
        registry
            ->histogram("campaign/case_wall_s", obs::decade_bounds(),
                        obs::Stability::kVolatile)
            .record(entry.wall_time_s);
        registry
            ->histogram("campaign/case_cpu_s", obs::decade_bounds(),
                        obs::Stability::kVolatile)
            .record(obs::thread_cpu_seconds() - cpu_before);
    }
    return entry;
}

/// run_case with retry + crash isolation: a fatal() inside the case is
/// caught (via FatalThrowGuard), retried with capped exponential backoff
/// and — when attempts are exhausted — turned into an infeasible
/// kCrashed entry so one bad case cannot kill a long campaign.
/// \p progress is optional: campaign workers report retries and crashes
/// to the heartbeat, standalone (run_campaign_case) callers pass null.
CampaignEntry
run_case_with_retries(const CampaignCase& campaign_case,
                      const search::ExplorerOptions& base_options,
                      std::size_t index, int max_attempts,
                      double retry_backoff_s, double retry_backoff_cap_s,
                      obs::ProgressReporter* progress)
{
    std::string last_error;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        try {
            FatalThrowGuard guard;
            CampaignEntry entry =
                run_case(campaign_case, base_options, index);
            entry.attempts = attempt;
            return entry;
        } catch (const std::exception& error) {
            last_error = error.what();
            warn("campaign case '", campaign_case.label, "' attempt ",
                 attempt, "/", max_attempts, " failed: ", last_error);
        }
        if (attempt < max_attempts) {
            if (progress != nullptr)
                progress->note_retry();
            if (obs::MetricsRegistry* registry = obs::metrics())
                registry->counter("campaign/case_retries").add(1);
        }
        if (attempt < max_attempts && retry_backoff_s > 0.0) {
            const double backoff = std::min(
                retry_backoff_cap_s,
                retry_backoff_s * std::pow(2.0, attempt - 1));
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
        }
    }
    if (progress != nullptr)
        progress->note_crash();
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->counter("campaign/cases_crashed").add(1);
    CampaignEntry entry;
    entry.label = campaign_case.label;
    entry.objective_label = to_string(campaign_case.objective.kind);
    entry.attempts = max_attempts;
    entry.solution.feasible = false;
    entry.solution.failure = fault::make_failure(
        fault::FailureCode::kCrashed, last_error);
    entry.solution.score = campaign_case.objective.penalty_score(
        entry.solution.failure);
    return entry;
}

}  // namespace

CampaignEntry
run_campaign_case(const CampaignCase& campaign_case,
                  const search::ExplorerOptions& base_options,
                  std::size_t index, int max_attempts)
{
    if (max_attempts < 1)
        fatal("run_campaign_case: max_attempts must be >= 1, got ",
              max_attempts);
    return run_case_with_retries(campaign_case, base_options, index,
                                 max_attempts, 0.0, 0.0, nullptr);
}

CampaignResult
run_campaign(const std::vector<CampaignCase>& cases,
             const search::ExplorerOptions& base_options,
             const CampaignOptions& campaign_options)
{
    if (cases.empty())
        fatal("run_campaign: no cases supplied");
    campaign_options.validate();

    obs::SpanTimer timer("campaign/run");

    // Resume support: compute every case's stable key up front, load the
    // journal once, and only evaluate cases the journal does not cover.
    const bool journaled = !campaign_options.journal_path.empty();
    std::vector<std::string> keys(cases.size());
    std::unordered_map<std::string, JournalRecord> journal;
    if (journaled) {
        for (std::size_t i = 0; i < cases.size(); ++i)
            keys[i] = campaign_case_key_hex(cases[i], base_options, i);
        journal = load_campaign_journal(campaign_options.journal_path);
    }

    if (obs::MetricsRegistry* registry = obs::metrics()) {
        registry->counter("campaign/runs").add(1);
        registry->counter("campaign/cases_total").add(cases.size());
        if (journaled) {
            registry->counter("campaign/journal_loaded")
                .add(journal.size());
        }
    }
    obs::ProgressReporter::Options progress_options;
    progress_options.min_interval_s = campaign_options.progress_interval_s;
    obs::ProgressReporter progress("campaign", cases.size(),
                                   progress_options);

    CampaignResult result;
    result.entries.resize(cases.size());
    Mutex journal_mutex;
    runtime::ThreadPool pool(campaign_options.threads);
    pool.parallel_for(cases.size(), [&](std::size_t index) {
        if (journaled) {
            const auto it = journal.find(keys[index]);
            if (it != journal.end()) {
                result.entries[index] = from_journal_record(it->second);
                progress.note_restored();
                progress.advance();
                return;
            }
        }
        CampaignEntry entry = campaign_options.isolate_failures
            ? run_case_with_retries(cases[index], base_options, index,
                                    campaign_options.max_attempts,
                                    campaign_options.retry_backoff_s,
                                    campaign_options.retry_backoff_cap_s,
                                    &progress)
            : run_case(cases[index], base_options, index);
        if (journaled) {
            JournalRecord record = to_journal_record(entry, keys[index]);
            if (campaign_options.deterministic_journal)
                record = deterministic_record(std::move(record));
            MutexLock lock(journal_mutex);
            append_campaign_journal(campaign_options.journal_path, record);
        }
        result.entries[index] = std::move(entry);
        progress.advance();
    });
    for (const auto& entry : result.entries) {
        if (entry.from_journal)
            ++result.journal_skips;
    }
    if (obs::MetricsRegistry* registry = obs::metrics()) {
        registry->counter("campaign/journal_restored")
            .add(result.journal_skips);
    }
    progress.finish();
    result.wall_time_s = timer.elapsed_s();
    return result;
}

CampaignResult
run_campaign(const std::vector<CampaignCase>& cases,
             const search::ExplorerOptions& base_options)
{
    return run_campaign(cases, base_options, CampaignOptions{});
}

}  // namespace chrysalis::core

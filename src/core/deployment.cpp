#include "core/deployment.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"
#include "common/string_utils.hpp"
#include "energy/energy_controller.hpp"

namespace chrysalis::core {

std::string
DeploymentReport::summary() const
{
    std::ostringstream os;
    os << "Deployment study: " << requests.size() << " requests, "
       << format_percent(completion_rate) << " completed, "
       << format_percent(deadline_rate) << " within deadline, "
       << format_si(total_harvested_j, "J") << " harvested.\n";
    for (std::size_t day = 0; day < days.size(); ++day) {
        const DayStats& stats = days[day];
        os << "  day " << day << ": " << stats.completed << "/"
           << stats.requests << " completed, " << stats.deadline_met
           << " on time";
        if (stats.completed > 0)
            os << ", mean latency "
               << format_si(stats.mean_latency_s, "s");
        os << ", harvested " << format_si(stats.harvested_j, "J")
           << "\n";
    }
    return os.str();
}

DeploymentReport
simulate_deployment(const AuTSolution& solution,
                    const energy::SolarEnvironment& environment,
                    const energy::PowerManagementIc::Config& pmic,
                    const DeploymentConfig& config)
{
    if (config.days < 1)
        fatal("simulate_deployment: days must be >= 1");
    if (config.request_interval_s <= 0.0)
        fatal("simulate_deployment: request interval must be > 0");
    if (!solution.feasible)
        fatal("simulate_deployment: solution must be feasible");

    constexpr double kDay = 24.0 * 3600.0;

    // Build the concrete energy subsystem once; state persists for the
    // whole study.
    energy::Capacitor::Config cap_config;
    cap_config.capacitance_f = solution.hardware.capacitance_f;
    cap_config.initial_voltage_v = 0.0;  // deployed empty
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            solution.hardware.solar_cm2,
            std::shared_ptr<const energy::SolarEnvironment>(
                environment.clone())),
        energy::Capacitor(cap_config), energy::PowerManagementIc(pmic));

    DeploymentReport report;
    report.days.resize(static_cast<std::size_t>(config.days));

    // Advances the controller (load off) through idle periods so the
    // node keeps harvesting between requests and overnight.
    double sim_clock = 0.0;
    const auto idle_until = [&](double target) {
        constexpr double kIdleStep = 5.0;
        while (sim_clock < target) {
            const double dt = std::min(kIdleStep, target - sim_clock);
            controller.step(sim_clock, dt, 0.0);
            sim_clock += dt;
        }
    };

    double busy_until = 0.0;
    const double study_end = config.days * kDay;
    int issued = 0;
    std::uint64_t request_index = 0;
    double last_harvest_snapshot = 0.0;
    for (double issue = config.first_request_s; issue < study_end;
         issue += config.request_interval_s, ++request_index) {
        RequestOutcome outcome;
        outcome.issue_time_s = issue;
        const auto day = static_cast<std::size_t>(issue / kDay);
        ++report.days[day].requests;
        ++issued;

        if (issue < busy_until) {
            // Previous inference still running: skip this request.
            report.requests.push_back(outcome);
            continue;
        }
        idle_until(issue);
        outcome.attempted = true;

        sim::SimConfig sim_config = config.sim;
        sim_config.start_time_s = issue;
        sim_config.max_sim_time_s = config.request_interval_s;
        sim_config.seed = config.sim.seed + request_index;
        const sim::SimResult result =
            sim::simulate_inference(solution.cost, controller,
                                    sim_config);
        sim_clock = issue + result.latency_s;
        const double harvested_so_far =
            controller.ledger().harvested_j;
        report.days[day].harvested_j +=
            harvested_so_far - last_harvest_snapshot;
        last_harvest_snapshot = harvested_so_far;
        if (result.completed) {
            outcome.completed = true;
            outcome.latency_s = result.latency_s;
            outcome.met_deadline =
                result.latency_s <= config.deadline_s;
            busy_until = issue + result.latency_s;
            ++report.days[day].completed;
            report.days[day].deadline_met +=
                outcome.met_deadline ? 1 : 0;
            report.days[day].mean_latency_s += result.latency_s;
        } else {
            // Abandoned at the interval boundary; the node is free again.
            busy_until = issue + config.request_interval_s;
        }
        report.requests.push_back(outcome);
    }

    report.total_harvested_j = controller.ledger().harvested_j;

    int completed = 0, on_time = 0;
    for (const auto& outcome : report.requests) {
        completed += outcome.completed ? 1 : 0;
        on_time += outcome.met_deadline ? 1 : 0;
    }
    report.completion_rate =
        issued > 0 ? static_cast<double>(completed) / issued : 0.0;
    report.deadline_rate =
        issued > 0 ? static_cast<double>(on_time) / issued : 0.0;
    for (auto& day : report.days) {
        if (day.completed > 0)
            day.mean_latency_s /= day.completed;
    }
    return report;
}

}  // namespace chrysalis::core

#include "core/campaign_spec.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::core {

namespace {

/// Probability knobs must be finite and within [0, 1].
void
check_probability(const char* name, double value)
{
    if (!(value >= 0.0 && value <= 1.0) || !std::isfinite(value))
        fatal("CampaignSpec: ", name, " must be in [0, 1], got ", value);
}

}  // namespace

void
CampaignSpec::validate() const
{
    if (model.empty())
        fatal("CampaignSpec: model must not be empty");
    const std::string space_key = to_lower(space);
    if (space_key != "existing" && space_key != "future")
        fatal("CampaignSpec: space must be 'existing' or 'future', got '",
              space, "'");
    if (cases < 1)
        fatal("CampaignSpec: cases must be >= 1, got ", cases);
    if (!(sp_limit_cm2 > 0.0) || !std::isfinite(sp_limit_cm2))
        fatal("CampaignSpec: sp_limit_cm2 must be finite and > 0, got ",
              sp_limit_cm2);
    if (!(lat_limit_s > 0.0) || !std::isfinite(lat_limit_s))
        fatal("CampaignSpec: lat_limit_s must be finite and > 0, got ",
              lat_limit_s);
    if (population < 1)
        fatal("CampaignSpec: population must be >= 1, got ", population);
    if (generations < 1)
        fatal("CampaignSpec: generations must be >= 1, got ", generations);
    if (!(bright_w_cm2 > 0.0) || !std::isfinite(bright_w_cm2))
        fatal("CampaignSpec: bright_w_cm2 must be finite and > 0, got ",
              bright_w_cm2);
    if (!(dark_w_cm2 > 0.0) || !std::isfinite(dark_w_cm2))
        fatal("CampaignSpec: dark_w_cm2 must be finite and > 0, got ",
              dark_w_cm2);
    check_probability("fault_dropout", fault_dropout);
    check_probability("fault_ckpt", fault_ckpt);
    if (!(fault_age_years >= 0.0) || !std::isfinite(fault_age_years))
        fatal("CampaignSpec: fault_age_years must be finite and >= 0, "
              "got ", fault_age_years);
    if (max_attempts < 1)
        fatal("CampaignSpec: max_attempts must be >= 1, got ",
              max_attempts);
}

const char*
campaign_case_kind(std::size_t index)
{
    static const char* const kKinds[] = {"latsp", "lat", "sp"};
    return kKinds[index % 3];
}

std::string
campaign_case_label(const std::string& model_name, std::size_t index)
{
    return model_name + "-" + campaign_case_kind(index) + "-" +
           std::to_string(index);
}

CampaignCase
build_campaign_case(const CampaignSpec& spec, const dnn::Model& model,
                    std::size_t index)
{
    const std::string kind = campaign_case_kind(index);
    search::Objective objective;
    if (kind == "lat") {
        objective = {search::ObjectiveKind::kLatency, spec.sp_limit_cm2,
                     0.0};
    } else if (kind == "sp") {
        objective = {search::ObjectiveKind::kSolarPanel, 0.0,
                     spec.lat_limit_s};
    } else {
        objective = {search::ObjectiveKind::kLatSp, 0.0, 0.0};
    }
    return {campaign_case_label(model.name(), index), model,
            to_lower(spec.space) == "future"
                ? search::DesignSpace::future_aut()
                : search::DesignSpace::existing_aut(),
            objective};
}

std::vector<CampaignCase>
build_campaign_cases(const CampaignSpec& spec, const dnn::Model& model)
{
    spec.validate();
    std::vector<CampaignCase> cases;
    cases.reserve(static_cast<std::size_t>(spec.cases));
    for (int i = 0; i < spec.cases; ++i)
        cases.push_back(
            build_campaign_case(spec, model, static_cast<std::size_t>(i)));
    return cases;
}

search::ExplorerOptions
build_explorer_options(const CampaignSpec& spec,
                       std::unique_ptr<fault::FaultInjector>& faults)
{
    spec.validate();
    search::ExplorerOptions options;
    options.outer.population = spec.population;
    options.outer.generations = spec.generations;
    options.outer.seed = spec.seed;
    options.k_eh_envs = {spec.bright_w_cm2, spec.dark_w_cm2};
    faults.reset();
    if (spec.fault_dropout > 0.0 || spec.fault_age_years > 0.0 ||
        spec.fault_ckpt > 0.0) {
        fault::FaultSpec fault_spec;
        fault_spec.seed = spec.seed;
        fault_spec.dropout_probability = spec.fault_dropout;
        fault_spec.mission_age_years = spec.fault_age_years;
        fault_spec.ckpt_corruption_rate = spec.fault_ckpt;
        faults = std::make_unique<fault::FaultInjector>(fault_spec);
    }
    options.faults = faults.get();
    return options;
}

FlatJsonFields
to_fields(const CampaignSpec& spec)
{
    FlatJsonFields fields;
    fields["model"] = spec.model;
    fields["space"] = spec.space;
    fields["cases"] = std::to_string(spec.cases);
    fields["sp_limit"] = format_double_17g(spec.sp_limit_cm2);
    fields["lat_limit"] = format_double_17g(spec.lat_limit_s);
    fields["population"] = std::to_string(spec.population);
    fields["generations"] = std::to_string(spec.generations);
    fields["seed"] = std::to_string(spec.seed);
    fields["bright"] = format_double_17g(spec.bright_w_cm2);
    fields["dark"] = format_double_17g(spec.dark_w_cm2);
    fields["fault_dropout"] = format_double_17g(spec.fault_dropout);
    fields["fault_age"] = format_double_17g(spec.fault_age_years);
    fields["fault_ckpt"] = format_double_17g(spec.fault_ckpt);
    fields["max_attempts"] = std::to_string(spec.max_attempts);
    return fields;
}

FlatJsonFields
case_request_fields(const CampaignSpec& spec, std::size_t index)
{
    FlatJsonFields fields = to_fields(spec);
    fields["case_index"] = std::to_string(index);
    return fields;
}

namespace {

/// Absent fields keep the spec default; present-but-unparsable fields
/// fatal() — the serve dispatch layer turns that into `bad_request`.
void
take_double(const FlatJsonFields& fields, const char* name, double& out)
{
    if (fields.find(name) == fields.end())
        return;
    if (!json_get_double(fields, name, out))
        fatal("campaign spec: field '", name, "' is not a number");
}

void
take_int(const FlatJsonFields& fields, const char* name, int& out)
{
    if (fields.find(name) == fields.end())
        return;
    if (!json_get_int(fields, name, out))
        fatal("campaign spec: field '", name, "' is not an integer");
}

void
take_uint64(const FlatJsonFields& fields, const char* name,
            std::uint64_t& out)
{
    if (fields.find(name) == fields.end())
        return;
    if (!json_get_uint64(fields, name, out))
        fatal("campaign spec: field '", name,
              "' is not an unsigned integer");
}

}  // namespace

CampaignSpec
spec_from_fields(const FlatJsonFields& fields)
{
    CampaignSpec spec;
    json_get_string(fields, "model", spec.model);
    json_get_string(fields, "space", spec.space);
    take_int(fields, "cases", spec.cases);
    take_double(fields, "sp_limit", spec.sp_limit_cm2);
    take_double(fields, "lat_limit", spec.lat_limit_s);
    take_int(fields, "population", spec.population);
    take_int(fields, "generations", spec.generations);
    take_uint64(fields, "seed", spec.seed);
    take_double(fields, "bright", spec.bright_w_cm2);
    take_double(fields, "dark", spec.dark_w_cm2);
    take_double(fields, "fault_dropout", spec.fault_dropout);
    take_double(fields, "fault_age", spec.fault_age_years);
    take_double(fields, "fault_ckpt", spec.fault_ckpt);
    take_int(fields, "max_attempts", spec.max_attempts);
    spec.validate();
    return spec;
}

void
append_record_fields(std::string& body, const JournalRecord& record)
{
    json_append_field(body, "label", record.label);
    json_append_field(body, "objective", record.objective_label);
    json_append_raw_field(body, "feasible", record.feasible ? "1" : "0");
    json_append_raw_field(body, "family", std::to_string(record.family));
    json_append_raw_field(body, "solar_cm2",
                          format_double_17g(record.solar_cm2));
    json_append_raw_field(body, "capacitance_f",
                          format_double_17g(record.capacitance_f));
    json_append_raw_field(body, "arch", std::to_string(record.arch));
    json_append_raw_field(body, "n_pe", std::to_string(record.n_pe));
    json_append_raw_field(body, "cache_bytes",
                          std::to_string(record.cache_bytes));
    json_append_raw_field(body, "mean_latency_s",
                          format_double_17g(record.mean_latency_s));
    json_append_raw_field(body, "lat_sp",
                          format_double_17g(record.lat_sp));
    json_append_raw_field(body, "score", format_double_17g(record.score));
    json_append_raw_field(body, "evaluations",
                          std::to_string(record.evaluations));
    json_append_raw_field(body, "cache_hits",
                          std::to_string(record.cache_hits));
    json_append_raw_field(body, "cache_misses",
                          std::to_string(record.cache_misses));
    json_append_raw_field(body, "cache_evictions",
                          std::to_string(record.cache_evictions));
    json_append_field(body, "failure_code", record.failure_code);
    json_append_field(body, "failure_detail", record.failure_detail);
    json_append_raw_field(body, "attempts",
                          std::to_string(record.attempts));
}

bool
campaign_record_from_fields(const FlatJsonFields& fields,
                            JournalRecord& record)
{
    std::int64_t feasible = 0;
    const bool ok =
        json_get_string(fields, "label", record.label) &&
        json_get_string(fields, "objective", record.objective_label) &&
        json_get_int64(fields, "feasible", feasible) &&
        json_get_int(fields, "family", record.family) &&
        json_get_double(fields, "solar_cm2", record.solar_cm2) &&
        json_get_double(fields, "capacitance_f", record.capacitance_f) &&
        json_get_int(fields, "arch", record.arch) &&
        json_get_int64(fields, "n_pe", record.n_pe) &&
        json_get_int64(fields, "cache_bytes", record.cache_bytes) &&
        json_get_double(fields, "mean_latency_s", record.mean_latency_s) &&
        json_get_double(fields, "lat_sp", record.lat_sp) &&
        json_get_double(fields, "score", record.score) &&
        json_get_int64(fields, "evaluations", record.evaluations) &&
        json_get_uint64(fields, "cache_hits", record.cache_hits) &&
        json_get_uint64(fields, "cache_misses", record.cache_misses) &&
        json_get_uint64(fields, "cache_evictions",
                        record.cache_evictions) &&
        json_get_string(fields, "failure_code", record.failure_code) &&
        json_get_string(fields, "failure_detail", record.failure_detail) &&
        json_get_int(fields, "attempts", record.attempts);
    record.key.clear();
    record.feasible = feasible != 0;
    record.search_wall_time_s = 0.0;
    record.wall_time_s = 0.0;
    return ok;
}

}  // namespace chrysalis::core

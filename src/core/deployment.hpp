/// \file
/// Multi-day deployment studies: drive a generated AuT solution with
/// periodic inference requests under a time-varying light environment
/// (diurnal / Markov weather / recorded trace) and report per-day service
/// statistics. This answers the question a deployer actually asks of a
/// design — "how many inferences per day will this node deliver, and
/// when does it go dark?" — which single-inference latency alone cannot.

#ifndef CHRYSALIS_CORE_DEPLOYMENT_HPP
#define CHRYSALIS_CORE_DEPLOYMENT_HPP

#include <string>
#include <vector>

#include "core/chrysalis.hpp"
#include "energy/solar_environment.hpp"

namespace chrysalis::core {

/// Deployment-study controls.
struct DeploymentConfig {
    int days = 3;                      ///< study length
    double request_interval_s = 900;   ///< one inference request per
                                       ///< interval, from midnight day 0
    double deadline_s = 60.0;          ///< per-request latency deadline
    double first_request_s = 0.0;      ///< offset of the first request
    sim::SimConfig sim;                ///< step-simulator controls
};

/// Outcome of one inference request.
struct RequestOutcome {
    double issue_time_s = 0.0;  ///< absolute issue time
    bool attempted = false;     ///< false if the previous request overran
    bool completed = false;
    double latency_s = 0.0;
    bool met_deadline = false;
};

/// Aggregates for one deployment day.
struct DayStats {
    int requests = 0;
    int completed = 0;
    int deadline_met = 0;
    double mean_latency_s = 0.0;  ///< over completed requests
    double harvested_j = 0.0;
};

/// Full study result.
struct DeploymentReport {
    std::vector<RequestOutcome> requests;
    std::vector<DayStats> days;
    double completion_rate = 0.0;   ///< completed / issued
    double deadline_rate = 0.0;     ///< met deadline / issued
    double total_harvested_j = 0.0;

    /// Multi-line human-readable summary.
    std::string summary() const;
};

/// Runs the study: requests are issued every `request_interval_s`; a
/// request whose inference is still running when the next one is due
/// causes the overlapped requests to be skipped (marked !attempted).
/// Energy state persists across requests and nights (no artificial
/// draining); a request that cannot finish within one interval is
/// abandoned as failed.
///
/// \param solution a feasible design from Chrysalis::generate().
/// \param environment light model (cloned internally).
/// \param pmic PMIC configuration for the built energy subsystem.
DeploymentReport simulate_deployment(
    const AuTSolution& solution,
    const energy::SolarEnvironment& environment,
    const energy::PowerManagementIc::Config& pmic,
    const DeploymentConfig& config);

}  // namespace chrysalis::core

#endif  // CHRYSALIS_CORE_DEPLOYMENT_HPP

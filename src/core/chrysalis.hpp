/// \file
/// CHRYSALIS public facade (Fig. 3 usage model).
///
/// Given a domain-specific DNN workload, platform constraints (the design
/// space), objective demands and environment/technology constraints
/// (Table II inputs), `Chrysalis::generate()` runs the bi-level
/// exploration and returns the ideal AuT solution: energy-harvester and
/// capacitor sizing, inference-hardware configuration and per-layer
/// intermittent dataflow (Table II outputs). `validate()` replays the
/// solution on the step-based intermittent simulator for higher-fidelity
/// confirmation of the analytic estimate.

#ifndef CHRYSALIS_CORE_CHRYSALIS_HPP
#define CHRYSALIS_CORE_CHRYSALIS_HPP

#include <string>

#include "dnn/model.hpp"
#include "search/bilevel_explorer.hpp"
#include "sim/intermittent_simulator.hpp"

namespace chrysalis::core {

/// Everything the tool needs (Table II "Input" rows).
struct ChrysalisInputs {
    dnn::Model model;                ///< workload: DNN task
    search::DesignSpace space;       ///< platform constraint
    search::Objective objective;     ///< objective demand function pi
    search::ExplorerOptions options; ///< environment + search controls
};

/// The generated AuT architecture (Table II "Output" rows).
struct AuTSolution {
    search::HwCandidate hardware;    ///< A_eh, C, N_PE, N_mem, arch
    std::vector<dataflow::LayerMapping> mappings;  ///< preferable dataflow
    dataflow::ModelCost cost;        ///< evaluator breakdown

    double mean_latency_s = 0.0;     ///< across target environments
    double lat_sp = 0.0;             ///< latency * solar-panel product
    double score = 0.0;              ///< objective score
    bool feasible = false;
    fault::SimFailure failure;       ///< why, when not feasible

    std::vector<search::ParetoPoint> pareto;  ///< (sp, lat) front
    int evaluations = 0;             ///< design points evaluated
    std::uint64_t cache_hits = 0;    ///< memoized design evaluations
    std::uint64_t cache_misses = 0;  ///< evaluations actually computed
    std::uint64_t cache_evictions = 0;  ///< memo entries dropped by LRU
    double search_wall_time_s = 0.0; ///< exploration wall-clock time

    /// Multi-line human-readable report (the "AuT HW and SW Describer"
    /// output): energy subsystem, inference subsystem and the per-layer
    /// mapping loop nests of Fig. 4.
    std::string describe(const dnn::Model& model) const;
};

/// Step-simulation validation of a solution in one environment.
struct ValidationResult {
    sim::SimResult sim;           ///< last run's simulation outcome
    double mean_sim_latency_s = 0.0;  ///< mean across validation runs
    double analytic_latency_s = 0.0;
    double relative_error = 0.0;  ///< |mean sim - analytic| / analytic
};

/// The facade.
class Chrysalis
{
  public:
    explicit Chrysalis(ChrysalisInputs inputs);

    /// Runs the full bi-level exploration and returns the best solution.
    /// \p warm_starts optionally seed the search with known-good
    /// candidates (portfolio seeding).
    AuTSolution generate(
        const std::vector<search::HwCandidate>& warm_starts = {}) const;

    /// Evaluates a specific candidate without exploring (used to score
    /// baseline/reference configurations).
    AuTSolution evaluate_candidate(const search::HwCandidate& candidate)
        const;

    /// Replays \p solution on the step simulator under the environment
    /// with light coefficient \p k_eh. Runs \p runs duty-cycled
    /// inferences, each starting at U_off (paying the cold-start charging
    /// latency), so the mean latency is comparable to the analytic E2E
    /// estimate.
    ValidationResult validate(const AuTSolution& solution, double k_eh,
                              const sim::SimConfig& sim_config = {},
                              int runs = 5) const;

    const ChrysalisInputs& inputs() const { return inputs_; }

  private:
    AuTSolution to_solution(const search::EvaluatedDesign& design,
                            const search::ExplorationResult* result) const;

    ChrysalisInputs inputs_;
    search::BiLevelExplorer explorer_;
};

}  // namespace chrysalis::core

#endif  // CHRYSALIS_CORE_CHRYSALIS_HPP

/// \file
/// Crash-safe campaign result journal (JSONL).
///
/// `run_campaign` appends one flat JSON record per finished case to a
/// journal file. A campaign killed mid-run can be restarted with the same
/// cases, options and journal path: completed cases are loaded from the
/// journal (keyed by a `StableHash` of the case and the base
/// options, so a stale journal from a *different* campaign never
/// contaminates results) and are not re-evaluated. Doubles round-trip
/// through "%.17g", so a resumed campaign's deterministic CSV is
/// byte-identical to an uninterrupted run's. Torn or malformed lines —
/// the expected state after a kill mid-write — are skipped.

#ifndef CHRYSALIS_CORE_CAMPAIGN_JOURNAL_HPP
#define CHRYSALIS_CORE_CAMPAIGN_JOURNAL_HPP

#include <string>
#include <unordered_map>

#include "core/campaign.hpp"

namespace chrysalis::core {

/// One journal line: everything needed to reconstruct a CampaignEntry's
/// CSV row without re-running the search. (Mappings, cost breakdowns and
/// Pareto fronts are not journaled; a restored entry carries only the
/// summary metrics and is flagged `from_journal`.)
struct JournalRecord {
    std::string key;  ///< campaign_case_key_hex() of the producing case

    std::string label;
    std::string objective_label;
    bool feasible = false;
    int family = 0;
    double solar_cm2 = 0.0;
    double capacitance_f = 0.0;
    int arch = 0;
    std::int64_t n_pe = 0;
    std::int64_t cache_bytes = 0;
    double mean_latency_s = 0.0;
    double lat_sp = 0.0;
    double score = 0.0;
    std::int64_t evaluations = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
    double search_wall_time_s = 0.0;
    double wall_time_s = 0.0;
    std::string failure_code;    ///< fault::to_string(code); "" for none
    std::string failure_detail;
    int attempts = 1;
};

/// Stable identity of one campaign case: hashes the case index, label,
/// workload identity, design space, objective and every base-option field
/// that shapes the search result (seeds, environments, technology, fault
/// spec — but not thread counts, which never change results).
std::string campaign_case_key_hex(const CampaignCase& campaign_case,
                                  const search::ExplorerOptions& base,
                                  std::size_t index);

/// Converts a finished entry into its journal record.
JournalRecord to_journal_record(const CampaignEntry& entry,
                                const std::string& key);

/// Copy of \p record with the volatile wall-clock fields
/// (search_wall_time_s, wall_time_s) zeroed — every remaining field is
/// a pure function of the case and the base options, so a
/// deterministic-journal line is reproducible byte-for-byte across
/// runs, processes and (the distributed coordinator's guarantee)
/// worker fleets.
JournalRecord deterministic_record(JournalRecord record);

/// Reconstructs a (summary-only) entry from a journal record.
CampaignEntry from_journal_record(const JournalRecord& record);

/// Serializes a record as one flat JSON line (no trailing newline).
std::string to_json_line(const JournalRecord& record);

/// Parses a journal line; returns false (leaving \p record unspecified)
/// on torn or malformed input.
bool parse_json_line(const std::string& line, JournalRecord& record);

/// Loads a journal file into a key -> record map. Malformed lines are
/// skipped with a warning; when a key repeats, the last record wins.
/// A missing file yields an empty map (first run of a campaign).
std::unordered_map<std::string, JournalRecord>
load_campaign_journal(const std::string& path);

/// Appends \p record to the journal at \p path (creating it if needed)
/// and flushes, so the record survives a kill immediately after return.
void append_campaign_journal(const std::string& path,
                             const JournalRecord& record);

}  // namespace chrysalis::core

#endif  // CHRYSALIS_CORE_CAMPAIGN_JOURNAL_HPP

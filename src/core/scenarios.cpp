#include "core/scenarios.hpp"

#include "dnn/model_zoo.hpp"

namespace chrysalis::core {

namespace {

/// Small default search budget so examples finish interactively.
search::ExplorerOptions
default_options(std::uint64_t seed)
{
    search::ExplorerOptions options;
    options.outer.population = 16;
    options.outer.generations = 10;
    options.outer.seed = seed;
    options.inner.max_candidates_per_dim = 5;
    return options;
}

}  // namespace

Scenario
make_wearable_kws_scenario()
{
    ChrysalisInputs inputs{
        dnn::make_kws_mlp(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatency,
                          /*sp_limit_cm2=*/6.0, /*lat_limit_s=*/0.0},
        default_options(/*seed=*/101),
    };
    // Indoor-light coefficients: dimmer than the outdoor presets.
    inputs.options.k_eh_envs = {0.8e-3, 0.3e-3};
    return Scenario{
        "wearable-kws",
        "Battery-free wearable keyword spotter (MSP430-class, indoor "
        "light): minimize latency with a 6 cm^2 panel budget.",
        std::move(inputs)};
}

Scenario
make_environment_monitor_scenario()
{
    ChrysalisInputs inputs{
        dnn::make_har_cnn(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kSolarPanel,
                          /*sp_limit_cm2=*/0.0, /*lat_limit_s=*/30.0},
        default_options(/*seed=*/202),
    };
    return Scenario{
        "environment-monitor",
        "Remote field monitor running HAR-class sensing: minimize solar "
        "panel size subject to a 30 s inference deadline.",
        std::move(inputs)};
}

Scenario
make_vision_node_scenario()
{
    ChrysalisInputs inputs{
        dnn::make_alexnet(),
        search::DesignSpace::future_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        default_options(/*seed=*/303),
    };
    return Scenario{
        "vision-node",
        "Future AuT camera node with a reconfigurable accelerator running "
        "AlexNet: minimize lat*sp (throughput per panel area).",
        std::move(inputs)};
}

Scenario
make_quickstart_scenario()
{
    ChrysalisInputs inputs{
        dnn::make_simple_conv(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        default_options(/*seed=*/7),
    };
    inputs.options.outer.population = 12;
    inputs.options.outer.generations = 6;
    return Scenario{
        "quickstart",
        "Single convolution layer on the MSP430 platform with a small "
        "search budget.",
        std::move(inputs)};
}

std::vector<Scenario>
all_scenarios()
{
    std::vector<Scenario> scenarios;
    scenarios.push_back(make_quickstart_scenario());
    scenarios.push_back(make_wearable_kws_scenario());
    scenarios.push_back(make_environment_monitor_scenario());
    scenarios.push_back(make_vision_node_scenario());
    return scenarios;
}

}  // namespace chrysalis::core

#include "core/campaign_journal.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

#include "common/flat_json.hpp"
#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::core {

std::string
campaign_case_key_hex(const CampaignCase& campaign_case,
                      const search::ExplorerOptions& base,
                      std::size_t index)
{
    StableHash hash;
    hash.add(std::string_view("campaign-case"))
        .add(static_cast<std::uint64_t>(index))
        .add(std::string_view(campaign_case.label));

    const dnn::Model& model = campaign_case.model;
    hash.add(std::string_view(model.name()))
        .add(model.element_bytes())
        .add(model.input().c)
        .add(model.input().h)
        .add(model.input().w)
        .add(static_cast<std::uint64_t>(model.layer_count()))
        .add(model.total_params())
        .add(model.total_macs())
        .add(model.total_data_bytes());

    const search::DesignSpace& space = campaign_case.space;
    hash.add(static_cast<int>(space.family))
        .add(space.search_solar)
        .add(space.solar_min_cm2)
        .add(space.solar_max_cm2)
        .add(space.search_capacitor)
        .add(space.cap_min_f)
        .add(space.cap_max_f)
        .add(space.search_arch)
        .add(space.search_pe)
        .add(space.pe_min)
        .add(space.pe_max)
        .add(space.search_cache)
        .add(space.cache_min_bytes)
        .add(space.cache_max_bytes);
    const search::HwCandidate& defaults = space.defaults;
    hash.add(static_cast<int>(defaults.family))
        .add(defaults.solar_cm2)
        .add(defaults.capacitance_f)
        .add(static_cast<int>(defaults.arch))
        .add(defaults.n_pe)
        .add(defaults.cache_bytes);

    const search::Objective& objective = campaign_case.objective;
    hash.add(static_cast<int>(objective.kind))
        .add(objective.sp_limit_cm2)
        .add(objective.lat_limit_s);

    hash.add(static_cast<int>(base.strategy));
    const search::OptimizerOptions& outer = base.outer;
    hash.add(outer.population)
        .add(outer.generations)
        .add(outer.crossover_rate)
        .add(outer.mutation_rate)
        .add(outer.mutation_sigma)
        .add(outer.tournament_size)
        .add(outer.elitism)
        .add(outer.seed);
    const search::MappingSearchOptions& inner = base.inner;
    hash.add(static_cast<int>(inner.strategy))
        .add(static_cast<std::uint64_t>(inner.max_candidates_per_dim))
        .add(inner.ga_population)
        .add(inner.ga_generations)
        .add(inner.seed);
    hash.add_range(base.k_eh_envs);
    const auto& cap = base.capacitor_base;
    hash.add(cap.capacitance_f)
        .add(cap.rated_voltage_v)
        .add(cap.k_cap)
        .add(cap.initial_voltage_v)
        .add(cap.temperature_c)
        .add(cap.leakage_doubling_c);
    const auto& pmic = base.pmic;
    hash.add(pmic.v_on)
        .add(pmic.v_off)
        .add(pmic.charge_efficiency)
        .add(pmic.discharge_efficiency)
        .add(pmic.quiescent_power_w);
    hash.add(base.faults != nullptr);
    if (base.faults != nullptr)
        base.faults->add_to_hash(hash);

    const CacheKey key = hash.key();
    char buffer[2 * 16 + 1];
    std::snprintf(buffer, sizeof buffer, "%016llx%016llx",
                  static_cast<unsigned long long>(key.hi),
                  static_cast<unsigned long long>(key.lo));
    return buffer;
}

JournalRecord
to_journal_record(const CampaignEntry& entry, const std::string& key)
{
    const AuTSolution& solution = entry.solution;
    JournalRecord record;
    record.key = key;
    record.label = entry.label;
    record.objective_label = entry.objective_label;
    record.feasible = solution.feasible;
    record.family = static_cast<int>(solution.hardware.family);
    record.solar_cm2 = solution.hardware.solar_cm2;
    record.capacitance_f = solution.hardware.capacitance_f;
    record.arch = static_cast<int>(solution.hardware.arch);
    record.n_pe = solution.hardware.n_pe;
    record.cache_bytes = solution.hardware.cache_bytes;
    record.mean_latency_s = solution.mean_latency_s;
    record.lat_sp = solution.lat_sp;
    record.score = solution.score;
    record.evaluations = solution.evaluations;
    record.cache_hits = solution.cache_hits;
    record.cache_misses = solution.cache_misses;
    record.cache_evictions = solution.cache_evictions;
    record.search_wall_time_s = solution.search_wall_time_s;
    record.wall_time_s = entry.wall_time_s;
    if (solution.failure) {
        record.failure_code =
            std::string(fault::to_string(solution.failure.code));
        record.failure_detail = solution.failure.detail;
    }
    record.attempts = entry.attempts;
    return record;
}

JournalRecord
deterministic_record(JournalRecord record)
{
    record.search_wall_time_s = 0.0;
    record.wall_time_s = 0.0;
    return record;
}

CampaignEntry
from_journal_record(const JournalRecord& record)
{
    CampaignEntry entry;
    entry.label = record.label;
    entry.objective_label = record.objective_label;
    entry.wall_time_s = record.wall_time_s;
    entry.attempts = record.attempts;
    entry.from_journal = true;

    AuTSolution& solution = entry.solution;
    solution.feasible = record.feasible;
    solution.hardware.family =
        static_cast<search::HardwareFamily>(record.family);
    solution.hardware.solar_cm2 = record.solar_cm2;
    solution.hardware.capacitance_f = record.capacitance_f;
    solution.hardware.arch = static_cast<hw::AcceleratorArch>(record.arch);
    solution.hardware.n_pe = record.n_pe;
    solution.hardware.cache_bytes = record.cache_bytes;
    solution.mean_latency_s = record.mean_latency_s;
    solution.lat_sp = record.lat_sp;
    solution.score = record.score;
    solution.evaluations = static_cast<int>(record.evaluations);
    solution.cache_hits = record.cache_hits;
    solution.cache_misses = record.cache_misses;
    solution.cache_evictions = record.cache_evictions;
    solution.search_wall_time_s = record.search_wall_time_s;
    if (!record.failure_code.empty()) {
        solution.failure = fault::make_failure(
            fault::failure_code_from_string(record.failure_code),
            record.failure_detail);
    }
    return entry;
}

std::string
to_json_line(const JournalRecord& record)
{
    std::string out = "{";
    json_append_field(out, "key", record.key);
    json_append_field(out, "label", record.label);
    json_append_field(out, "objective", record.objective_label);
    json_append_raw_field(out, "feasible", record.feasible ? "1" : "0");
    json_append_raw_field(out, "family", std::to_string(record.family));
    json_append_raw_field(out, "solar_cm2", format_double_17g(record.solar_cm2));
    json_append_raw_field(out, "capacitance_f",
                          format_double_17g(record.capacitance_f));
    json_append_raw_field(out, "arch", std::to_string(record.arch));
    json_append_raw_field(out, "n_pe", std::to_string(record.n_pe));
    json_append_raw_field(out, "cache_bytes",
                          std::to_string(record.cache_bytes));
    json_append_raw_field(out, "mean_latency_s",
                          format_double_17g(record.mean_latency_s));
    json_append_raw_field(out, "lat_sp", format_double_17g(record.lat_sp));
    json_append_raw_field(out, "score", format_double_17g(record.score));
    json_append_raw_field(out, "evaluations",
                          std::to_string(record.evaluations));
    json_append_raw_field(out, "cache_hits",
                          std::to_string(record.cache_hits));
    json_append_raw_field(out, "cache_misses",
                          std::to_string(record.cache_misses));
    json_append_raw_field(out, "cache_evictions",
                          std::to_string(record.cache_evictions));
    json_append_raw_field(out, "search_wall_time_s",
                          format_double_17g(record.search_wall_time_s));
    json_append_raw_field(out, "wall_time_s",
                          format_double_17g(record.wall_time_s));
    json_append_field(out, "failure_code", record.failure_code);
    json_append_field(out, "failure_detail", record.failure_detail);
    json_append_raw_field(out, "attempts", std::to_string(record.attempts));
    out += '}';
    return out;
}

bool
parse_json_line(const std::string& line, JournalRecord& record)
{
    FlatJsonFields fields;
    if (!scan_flat_json(line, fields))
        return false;
    std::int64_t feasible = 0;
    const bool ok =
        json_get_string(fields, "key", record.key) &&
        json_get_string(fields, "label", record.label) &&
        json_get_string(fields, "objective", record.objective_label) &&
        json_get_int64(fields, "feasible", feasible) &&
        json_get_int(fields, "family", record.family) &&
        json_get_double(fields, "solar_cm2", record.solar_cm2) &&
        json_get_double(fields, "capacitance_f", record.capacitance_f) &&
        json_get_int(fields, "arch", record.arch) &&
        json_get_int64(fields, "n_pe", record.n_pe) &&
        json_get_int64(fields, "cache_bytes", record.cache_bytes) &&
        json_get_double(fields, "mean_latency_s", record.mean_latency_s) &&
        json_get_double(fields, "lat_sp", record.lat_sp) &&
        json_get_double(fields, "score", record.score) &&
        json_get_int64(fields, "evaluations", record.evaluations) &&
        json_get_uint64(fields, "cache_hits", record.cache_hits) &&
        json_get_uint64(fields, "cache_misses", record.cache_misses) &&
        json_get_uint64(fields, "cache_evictions",
                        record.cache_evictions) &&
        json_get_double(fields, "search_wall_time_s",
                        record.search_wall_time_s) &&
        json_get_double(fields, "wall_time_s", record.wall_time_s) &&
        json_get_string(fields, "failure_code", record.failure_code) &&
        json_get_string(fields, "failure_detail", record.failure_detail) &&
        json_get_int(fields, "attempts", record.attempts);
    record.feasible = feasible != 0;
    return ok;
}

std::unordered_map<std::string, JournalRecord>
load_campaign_journal(const std::string& path)
{
    std::unordered_map<std::string, JournalRecord> records;
    std::ifstream input(path);
    if (!input)
        return records;  // first run: nothing journaled yet
    std::string line;
    std::size_t line_number = 0;
    std::size_t skipped = 0;
    while (std::getline(input, line)) {
        ++line_number;
        if (line.empty())
            continue;
        JournalRecord record;
        if (!parse_json_line(line, record)) {
            ++skipped;
            continue;
        }
        records[record.key] = std::move(record);  // last record wins
    }
    if (skipped > 0) {
        warn("campaign journal '", path, "': skipped ", skipped, " of ",
             line_number, " lines (torn or malformed; expected after an "
             "interrupted run)");
    }
    return records;
}

void
append_campaign_journal(const std::string& path,
                        const JournalRecord& record)
{
    std::ofstream output(path, std::ios::app);
    if (!output)
        fatal("campaign journal: cannot open '", path, "' for append");
    output << to_json_line(record) << '\n';
    output.flush();
    if (!output)
        fatal("campaign journal: write to '", path, "' failed");
}

}  // namespace chrysalis::core

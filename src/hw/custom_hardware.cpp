#include "hw/custom_hardware.hpp"

#include "common/logging.hpp"

namespace chrysalis::hw {

CustomHardware::CustomHardware(std::string name,
                               dataflow::CostParams params,
                               std::vector<dataflow::Dataflow> dataflows)
    : name_(std::move(name)), params_(params),
      dataflows_(std::move(dataflows))
{
    if (name_.empty())
        fatal("CustomHardware: name must not be empty");
    if (dataflows_.empty())
        fatal("CustomHardware: at least one dataflow required");
    if (params_.n_pe < 1)
        fatal("CustomHardware: n_pe must be >= 1");
    if (params_.vm_bytes_per_pe < 1)
        fatal("CustomHardware: vm_bytes_per_pe must be >= 1");
    if (params_.e_mac_j < 0.0 || params_.e_vm_byte_j < 0.0 ||
        params_.e_nvm_read_byte_j < 0.0 ||
        params_.e_nvm_write_byte_j < 0.0) {
        fatal("CustomHardware: energies must be >= 0");
    }
    if (params_.macs_per_s_per_pe <= 0.0)
        fatal("CustomHardware: throughput must be > 0");
    if (params_.nvm_bytes_per_s <= 0.0)
        fatal("CustomHardware: NVM bandwidth must be > 0");
    if (params_.element_bytes < 1)
        fatal("CustomHardware: element_bytes must be >= 1");
}

std::unique_ptr<InferenceHardware>
CustomHardware::clone() const
{
    return std::make_unique<CustomHardware>(*this);
}

}  // namespace chrysalis::hw

/// \file
/// Inference-hardware abstraction (Table III "Infer" rows).
///
/// A hardware model supplies the technology constants the dataflow cost
/// model consumes (CostParams), declares which dataflow taxonomies it can
/// execute, and reports its average active power draw — which the energy
/// controller uses as the load during intermittent execution. Hardware is
/// substituted through this interface ("interface-oriented approach",
/// §III-D).

#ifndef CHRYSALIS_HW_INFERENCE_HARDWARE_HPP
#define CHRYSALIS_HW_INFERENCE_HARDWARE_HPP

#include <memory>
#include <string>
#include <vector>

#include "dataflow/cost_model.hpp"
#include "dataflow/mapping.hpp"

namespace chrysalis::hw {

/// Interface implemented by every inference-hardware model.
class InferenceHardware
{
  public:
    virtual ~InferenceHardware() = default;

    /// Short identifier, e.g. "msp430fr5994", "tpu", "eyeriss".
    virtual std::string name() const = 0;

    /// Technology constants for the analytical cost model.
    virtual dataflow::CostParams cost_params() const = 0;

    /// Dataflow taxonomies this hardware can execute.
    virtual std::vector<dataflow::Dataflow> supported_dataflows() const = 0;

    /// Average power drawn from the energy subsystem while computing [W].
    /// Derived from the cost parameters: MAC power at full rate plus
    /// static memory and PE power.
    virtual double active_power_w() const;

    /// Non-volatile storage capacity [bytes]; weights, inter-layer
    /// activations and checkpoints must fit. 0 means unlimited (external
    /// NVM can be provisioned to the workload).
    virtual std::int64_t nvm_capacity_bytes() const { return 0; }

    /// Deep copy.
    virtual std::unique_ptr<InferenceHardware> clone() const = 0;

    /// One-line human-readable description for reports.
    virtual std::string describe() const;
};

}  // namespace chrysalis::hw

#endif  // CHRYSALIS_HW_INFERENCE_HARDWARE_HPP

/// \file
/// MSP430FR5994 + LEA model: the "existing AuT setup" of Table III.
///
/// The platform is a 16 MHz MSP430 MCU with the Low-Energy Accelerator
/// (LEA) for vector MACs, 8 KiB of shared SRAM (volatile memory) and
/// 256 KiB of FRAM (non-volatile memory). Constants are calibrated so the
/// non-intermittent MNIST-CNN row of Figure 2(a) reproduces (~1.4 s,
/// ~7.5 mW), following the paper's approach of adapting the iNAS [49]
/// energy/latency models rather than cycle-simulating the MCU.

#ifndef CHRYSALIS_HW_MSP430_LEA_HPP
#define CHRYSALIS_HW_MSP430_LEA_HPP

#include "hw/inference_hardware.hpp"

namespace chrysalis::hw {

/// Fixed-configuration MCU+LEA inference hardware.
class Msp430Lea final : public InferenceHardware
{
  public:
    /// Tunable constants (defaults = MSP430FR5994 LaunchPad calibration).
    struct Config {
        double macs_per_s = 4.7e5;        ///< effective LEA throughput
        double e_mac_j = 9.0e-9;          ///< energy per 16-bit MAC [J]
        std::int64_t sram_bytes = 8 * 1024;    ///< shared SRAM (VM)
        std::int64_t fram_bytes = 256 * 1024;  ///< FRAM (NVM) capacity
        double e_fram_read_byte_j = 0.5e-9;    ///< e_r [J/byte]
        double e_fram_write_byte_j = 0.7e-9;   ///< e_w [J/byte]
        double fram_bytes_per_s = 8e6;         ///< FRAM bandwidth
        double e_sram_byte_j = 0.05e-9;        ///< SRAM access [J/byte]
        double p_sram_w_per_byte = 0.05e-9;    ///< SRAM leakage [W/byte]
        double p_mcu_static_w = 2.6e-3;        ///< MCU active baseline [W]
        double exception_rate = 0.05;          ///< r_exc default
    };

    Msp430Lea() : Msp430Lea(Config{}) {}
    explicit Msp430Lea(const Config& config);

    std::string name() const override { return "msp430fr5994"; }
    dataflow::CostParams cost_params() const override;
    std::vector<dataflow::Dataflow> supported_dataflows() const override;
    std::unique_ptr<InferenceHardware> clone() const override;
    std::int64_t nvm_capacity_bytes() const override
    {
        return config_.fram_bytes;
    }

    /// FRAM capacity — models and checkpoints must fit here.
    std::int64_t fram_bytes() const { return config_.fram_bytes; }

    const Config& config() const { return config_; }

  private:
    Config config_;
};

}  // namespace chrysalis::hw

#endif  // CHRYSALIS_HW_MSP430_LEA_HPP

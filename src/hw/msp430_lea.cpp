#include "hw/msp430_lea.hpp"

#include "common/logging.hpp"

namespace chrysalis::hw {

Msp430Lea::Msp430Lea(const Config& config) : config_(config)
{
    if (config_.macs_per_s <= 0.0)
        fatal("Msp430Lea: throughput must be > 0");
    if (config_.sram_bytes < 1024)
        fatal("Msp430Lea: SRAM must be at least 1 KiB");
}

dataflow::CostParams
Msp430Lea::cost_params() const
{
    dataflow::CostParams params;
    params.e_mac_j = config_.e_mac_j;
    params.macs_per_s_per_pe = config_.macs_per_s;
    params.n_pe = 1;  // the LEA acts as a single vector PE
    params.vm_bytes_per_pe = config_.sram_bytes;
    params.e_vm_byte_j = config_.e_sram_byte_j;
    params.p_mem_w_per_byte = config_.p_sram_w_per_byte;
    params.e_nvm_read_byte_j = config_.e_fram_read_byte_j;
    params.e_nvm_write_byte_j = config_.e_fram_write_byte_j;
    params.nvm_bytes_per_s = config_.fram_bytes_per_s;
    params.p_pe_static_w = config_.p_mcu_static_w;
    params.element_bytes = 2;  // 16-bit fixed point
    params.overlap_transfers = false;  // MCU serializes DMA and compute
    params.exception_rate = config_.exception_rate;
    return params;
}

std::vector<dataflow::Dataflow>
Msp430Lea::supported_dataflows() const
{
    // The LEA streams vectors through a MAC unit: weight-stationary and
    // output-stationary schedules are the ones its DMA supports.
    return {dataflow::Dataflow::kWeightStationary,
            dataflow::Dataflow::kOutputStationary};
}

std::unique_ptr<InferenceHardware>
Msp430Lea::clone() const
{
    return std::make_unique<Msp430Lea>(*this);
}

}  // namespace chrysalis::hw

/// \file
/// User-defined inference hardware: wraps an arbitrary CostParams set and
/// dataflow list behind the InferenceHardware interface. This is the
/// component-substitution hook of §III-D ("the substitution of any
/// component within CHRYSALIS, enabling the evaluation of AuTs with
/// different structures") — e.g. to evaluate an in-memory-computing
/// crossbar (ResiRCA-style) one supplies its measured per-MAC and
/// per-byte energies without writing a new class.

#ifndef CHRYSALIS_HW_CUSTOM_HARDWARE_HPP
#define CHRYSALIS_HW_CUSTOM_HARDWARE_HPP

#include "hw/inference_hardware.hpp"

namespace chrysalis::hw {

/// InferenceHardware defined entirely by data.
class CustomHardware final : public InferenceHardware
{
  public:
    /// \param name identifier used in reports; must be non-empty.
    /// \param params technology constants (validated: positive rates,
    ///        non-negative energies).
    /// \param dataflows supported taxonomies; must be non-empty.
    CustomHardware(std::string name, dataflow::CostParams params,
                   std::vector<dataflow::Dataflow> dataflows);

    std::string name() const override { return name_; }
    dataflow::CostParams cost_params() const override { return params_; }
    std::vector<dataflow::Dataflow> supported_dataflows() const override
    {
        return dataflows_;
    }
    std::unique_ptr<InferenceHardware> clone() const override;

  private:
    std::string name_;
    dataflow::CostParams params_;
    std::vector<dataflow::Dataflow> dataflows_;
};

}  // namespace chrysalis::hw

#endif  // CHRYSALIS_HW_CUSTOM_HARDWARE_HPP

#include "hw/accelerator.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::hw {

std::string
to_string(AcceleratorArch arch)
{
    switch (arch) {
      case AcceleratorArch::kTpu: return "tpu";
      case AcceleratorArch::kEyeriss: return "eyeriss";
    }
    return "?";
}

AcceleratorArch
accelerator_arch_from_string(const std::string& text)
{
    const std::string key = to_lower(text);
    if (key == "tpu")
        return AcceleratorArch::kTpu;
    if (key == "eyeriss")
        return AcceleratorArch::kEyeriss;
    fatal("accelerator_arch_from_string: unknown architecture '", text, "'");
}

ReconfigurableAccelerator::ReconfigurableAccelerator(const Config& config)
    : config_(config)
{
    if (config_.n_pe < kMinPe || config_.n_pe > kMaxPe)
        fatal("ReconfigurableAccelerator: PE count ", config_.n_pe,
              " outside [", kMinPe, ", ", kMaxPe, "]");
    if (config_.cache_bytes_per_pe < kMinCacheBytes ||
        config_.cache_bytes_per_pe > kMaxCacheBytes) {
        fatal("ReconfigurableAccelerator: cache size ",
              config_.cache_bytes_per_pe, " B outside [", kMinCacheBytes,
              ", ", kMaxCacheBytes, "]");
    }
}

std::string
ReconfigurableAccelerator::name() const
{
    return to_string(config_.arch);
}

dataflow::CostParams
ReconfigurableAccelerator::cost_params() const
{
    // Array-size energy scaling: operands traverse O(sqrt(N)) NoC hops in
    // an N-PE array, so per-MAC and per-byte energies grow with the array
    // dimension. The factors are normalized to 1.0 at the 168-PE
    // calibration point (Fig. 2a), making small arrays energy-cheaper per
    // operation — the energy/latency tradeoff the PE-count knob trades.
    const double dim_ratio =
        std::sqrt(static_cast<double>(config_.n_pe) /
                  static_cast<double>(kMaxPe));
    const double mac_scale = 0.6 + 0.4 * dim_ratio;
    const double wire_scale = 0.4 + 0.6 * dim_ratio;

    dataflow::CostParams params;
    params.n_pe = config_.n_pe;
    params.vm_bytes_per_pe = config_.cache_bytes_per_pe;
    params.element_bytes = 1;       // int8 inference
    params.overlap_transfers = true;  // double-buffered DMA
    params.exception_rate = config_.exception_rate;

    // External byte-addressable NVM (FRAM/MRAM class) shared by both
    // presets: reads are cheap, writes are ~3x more expensive.
    params.e_nvm_read_byte_j = 100e-12;
    params.e_nvm_write_byte_j = 300e-12;
    params.nvm_bytes_per_s = 1e9;

    switch (config_.arch) {
      case AcceleratorArch::kTpu:
        // Systolic array: very cheap MACs, but operand movement through
        // the array costs more per byte and each PE is simpler.
        params.e_mac_j = 8e-12 * mac_scale;
        params.macs_per_s_per_pe = 1.0e8;
        params.e_vm_byte_j = 15e-12 * wire_scale;
        params.p_mem_w_per_byte = 1.5e-9;
        params.p_pe_static_w = 0.3e-3;
        break;
      case AcceleratorArch::kEyeriss:
        // Row-stationary array with per-PE scratchpads: slightly costlier
        // MACs, cheaper local accesses. Calibrated so 168 PEs reproduce
        // the AlexNet row of Fig. 2(a) (~115 ms, ~278 mW).
        params.e_mac_j = 20e-12 * mac_scale;
        params.macs_per_s_per_pe = 3.7e7;
        params.e_vm_byte_j = 10e-12 * wire_scale;
        params.p_mem_w_per_byte = 2e-9;
        params.p_pe_static_w = 0.5e-3;
        break;
    }
    return params;
}

std::vector<dataflow::Dataflow>
ReconfigurableAccelerator::supported_dataflows() const
{
    switch (config_.arch) {
      case AcceleratorArch::kTpu:
        return {dataflow::Dataflow::kWeightStationary,
                dataflow::Dataflow::kOutputStationary};
      case AcceleratorArch::kEyeriss:
        return {dataflow::Dataflow::kRowStationary,
                dataflow::Dataflow::kWeightStationary,
                dataflow::Dataflow::kOutputStationary,
                dataflow::Dataflow::kInputStationary};
    }
    panic("supported_dataflows: invalid architecture");
}

std::unique_ptr<InferenceHardware>
ReconfigurableAccelerator::clone() const
{
    return std::make_unique<ReconfigurableAccelerator>(*this);
}

}  // namespace chrysalis::hw

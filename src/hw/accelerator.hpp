/// \file
/// Reconfigurable AI accelerator model: the "future AuT setup" of
/// Table III (CHRYSALIS-MAESTRO / CHRYSALIS-GAMMA path).
///
/// Two base architectures are provided (Table V "Architecture" row):
///   - TPU-style weight-stationary systolic array;
///   - Eyeriss-style row-stationary array (per-PE scratchpads).
/// PE count (1..168) and per-PE cache size (128 B..2 KiB) are the
/// hardware-level design-space knobs. Per-architecture energy constants
/// are calibrated so the Eyeriss preset at 168 PEs reproduces the
/// AlexNet row of Figure 2(a) (~115 ms, ~278 mW, non-intermittent).

#ifndef CHRYSALIS_HW_ACCELERATOR_HPP
#define CHRYSALIS_HW_ACCELERATOR_HPP

#include "hw/inference_hardware.hpp"

namespace chrysalis::hw {

/// Base accelerator architecture.
enum class AcceleratorArch {
    kTpu,      ///< systolic, weight-stationary, cheap MACs
    kEyeriss,  ///< row-stationary, flexible, cheap local buffers
};

/// Returns "tpu" or "eyeriss".
std::string to_string(AcceleratorArch arch);

/// Parses "tpu"/"eyeriss" (case-insensitive); fatal() otherwise.
AcceleratorArch accelerator_arch_from_string(const std::string& text);

/// Parameterized accelerator hardware model.
class ReconfigurableAccelerator final : public InferenceHardware
{
  public:
    /// Design-space configuration (Table V rows).
    struct Config {
        AcceleratorArch arch = AcceleratorArch::kEyeriss;
        std::int64_t n_pe = 168;          ///< 1 .. 168
        std::int64_t cache_bytes_per_pe = 512;  ///< 128 B .. 2 KiB
        double exception_rate = 0.05;     ///< r_exc default
    };

    /// Design-space bounds from Table V.
    static constexpr std::int64_t kMinPe = 1;
    static constexpr std::int64_t kMaxPe = 168;
    static constexpr std::int64_t kMinCacheBytes = 128;
    static constexpr std::int64_t kMaxCacheBytes = 2048;

    explicit ReconfigurableAccelerator(const Config& config);

    std::string name() const override;
    dataflow::CostParams cost_params() const override;
    std::vector<dataflow::Dataflow> supported_dataflows() const override;
    std::unique_ptr<InferenceHardware> clone() const override;

    const Config& config() const { return config_; }

  private:
    Config config_;
};

}  // namespace chrysalis::hw

#endif  // CHRYSALIS_HW_ACCELERATOR_HPP

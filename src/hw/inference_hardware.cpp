#include "hw/inference_hardware.hpp"

#include <sstream>

#include "common/string_utils.hpp"

namespace chrysalis::hw {

double
InferenceHardware::active_power_w() const
{
    const dataflow::CostParams p = cost_params();
    const double compute_power =
        p.e_mac_j * p.macs_per_s_per_pe * static_cast<double>(p.n_pe);
    // Local buffer traffic at roughly one access per MAC on average.
    const double vm_power =
        p.e_vm_byte_j * static_cast<double>(p.element_bytes) *
        p.macs_per_s_per_pe * static_cast<double>(p.n_pe);
    const double static_power =
        static_cast<double>(p.vm_total_bytes()) * p.p_mem_w_per_byte +
        static_cast<double>(p.n_pe) * p.p_pe_static_w;
    return compute_power + vm_power + static_power;
}

std::string
InferenceHardware::describe() const
{
    const dataflow::CostParams p = cost_params();
    std::ostringstream os;
    os << name() << ": " << p.n_pe << " PE x "
       << format_si(p.macs_per_s_per_pe, "MAC/s") << ", VM "
       << format_si(static_cast<double>(p.vm_bytes_per_pe), "B") << "/PE, "
       << format_si(active_power_w(), "W") << " active";
    return os.str();
}

}  // namespace chrysalis::hw

/// \file
/// Lightweight logging and error-reporting utilities.
///
/// Follows the gem5 convention: `fatal()` terminates on *user* error (bad
/// configuration, impossible constraint), `panic()` terminates on an
/// *internal* invariant violation (a CHRYSALIS bug), and `warn()`/`inform()`
/// emit non-terminating diagnostics.

#ifndef CHRYSALIS_COMMON_LOGGING_HPP
#define CHRYSALIS_COMMON_LOGGING_HPP

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace chrysalis {

/// Exception thrown by fatal() while a FatalThrowGuard is active on the
/// calling thread; carries the formatted fatal message.
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& message)
        : std::runtime_error(message)
    {}
};

/// RAII guard converting fatal() on the *current thread* from exit(1)
/// into a thrown FatalError for the guard's lifetime. Lets a supervisor
/// (e.g. core::run_campaign) isolate a misbehaving case instead of
/// taking the whole process down. Guards nest; panic() still aborts.
class FatalThrowGuard
{
  public:
    FatalThrowGuard();
    ~FatalThrowGuard();
    FatalThrowGuard(const FatalThrowGuard&) = delete;
    FatalThrowGuard& operator=(const FatalThrowGuard&) = delete;

    /// True when fatal() on this thread would throw instead of exit.
    static bool active();
};

/// Severity of a log record, ordered from chattiest to most severe.
enum class LogLevel {
    kDebug = 0,
    kInform = 1,
    kWarn = 2,
    kError = 3,
    kSilent = 4,
};

/// Returns the process-wide minimum level that will actually be printed.
/// On the first call the threshold is initialized from the
/// `CHRYSALIS_LOG_LEVEL` environment variable (see parse_log_level);
/// unset or unparsable values leave the kWarn default.
LogLevel log_level();

/// Sets the process-wide minimum level that will be printed.
void set_log_level(LogLevel level);

/// Parses a level name: "debug", "info"/"inform", "warn"/"warning",
/// "error", "silent"/"none"/"off" (case-insensitive). Returns true and
/// writes \p out on success; false (leaving \p out untouched) otherwise.
bool parse_log_level(std::string_view name, LogLevel& out);

/// A replaceable log destination. Receives fully formatted records (one
/// per call); the sink is invoked under the logging mutex, so it never
/// sees interleaved or torn records even when worker threads log
/// concurrently, and it need not be thread-safe itself.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the process-wide sink; an empty function restores the
/// default stderr sink. Intended for tests and embedders.
void set_log_sink(LogSink sink);

/// Emits a log record to the current sink if \p level passes the global
/// threshold. Thread-safe: records from concurrent threads are emitted
/// whole, never interleaved.
void log_message(LogLevel level, std::string_view message);

/// Thread-safe strerror: the text for \p errnum (from <cerrno>) in a
/// freshly owned string. std::strerror returns a shared static buffer
/// and is unusable from the concurrent subsystems (clang-tidy
/// concurrency-mt-unsafe); every errno formatting site routes through
/// here instead.
std::string errno_text(int errnum);

namespace detail {

/// Builds a single string out of a variadic argument pack via operator<<.
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/// Terminates the process with exit(1) — or throws FatalError when a
/// FatalThrowGuard is active on the calling thread; used by fatal().
[[noreturn]] void fatal_exit(const std::string& message);

/// Terminates the process with abort(); used by panic().
[[noreturn]] void panic_abort(const std::string& message);

}  // namespace detail

/// Reports an unrecoverable *user* error (bad input/configuration) and exits.
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatal_exit(detail::concat(std::forward<Args>(args)...));
}

/// Reports an internal invariant violation (a bug in CHRYSALIS) and aborts.
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panic_abort(detail::concat(std::forward<Args>(args)...));
}

/// Emits a non-fatal warning: something may be modelled imprecisely.
template <typename... Args>
void
warn(Args&&... args)
{
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

/// Emits a status message with no connotation of incorrect behaviour.
template <typename... Args>
void
inform(Args&&... args)
{
    log_message(LogLevel::kInform, detail::concat(std::forward<Args>(args)...));
}

/// Emits a verbose diagnostic, suppressed unless the level is kDebug.
template <typename... Args>
void
debug(Args&&... args)
{
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

}  // namespace chrysalis

#endif  // CHRYSALIS_COMMON_LOGGING_HPP

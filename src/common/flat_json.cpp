#include "common/flat_json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace chrysalis {

void
json_append_escaped(std::string& out, const std::string& text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
json_append_field(std::string& out, const char* name,
                  const std::string& value)
{
    if (out.back() != '{')
        out += ',';
    out += '"';
    out += name;
    out += "\":";
    json_append_escaped(out, value);
}

void
json_append_raw_field(std::string& out, const char* name,
                      const std::string& value)
{
    if (out.back() != '{')
        out += ',';
    out += '"';
    out += name;
    out += "\":";
    out += value;
}

bool
scan_flat_json(const std::string& line, FlatJsonFields& fields)
{
    std::size_t i = 0;
    const auto skip_ws = [&] {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
    };
    const auto parse_string = [&](std::string& out) {
        if (i >= line.size() || line[i] != '"')
            return false;
        ++i;
        out.clear();
        while (i < line.size() && line[i] != '"') {
            char c = line[i++];
            if (c == '\\') {
                if (i >= line.size())
                    return false;
                const char esc = line[i++];
                switch (esc) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u': {
                    if (i + 4 > line.size())
                        return false;
                    c = static_cast<char>(std::strtoul(
                        line.substr(i, 4).c_str(), nullptr, 16));
                    i += 4;
                    break;
                  }
                  default: return false;
                }
            }
            out += c;
        }
        if (i >= line.size())
            return false;  // unterminated string: torn input
        ++i;               // closing quote
        return true;
    };

    skip_ws();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    skip_ws();
    if (i < line.size() && line[i] == '}')
        return true;
    while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key))
            return false;
        skip_ws();
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skip_ws();
        std::string value;
        if (i < line.size() && line[i] == '"') {
            if (!parse_string(value))
                return false;
        } else {
            // Flat means flat: a nested object or array is a
            // structural error, not a bare value. Without this check a
            // single-field nested object scans "successfully" into
            // mangled fields.
            if (i < line.size() && (line[i] == '{' || line[i] == '['))
                return false;
            const std::size_t start = i;
            while (i < line.size() && line[i] != ',' && line[i] != '}')
                ++i;
            value = line.substr(start, i - start);
            while (!value.empty() &&
                   std::isspace(static_cast<unsigned char>(value.back())))
                value.pop_back();
            if (value.empty())
                return false;
        }
        fields.emplace(key, std::move(value));
        skip_ws();
        if (i >= line.size())
            return false;  // torn input: no closing brace
        if (line[i] == '}')
            return true;
        if (line[i] != ',')
            return false;
        ++i;
    }
}

bool
json_get_string(const FlatJsonFields& fields, const char* name,
                std::string& out)
{
    const auto it = fields.find(name);
    if (it == fields.end())
        return false;
    out = it->second;
    return true;
}

bool
json_get_double(const FlatJsonFields& fields, const char* name, double& out)
{
    const auto it = fields.find(name);
    if (it == fields.end())
        return false;
    errno = 0;
    char* end = nullptr;
    out = std::strtod(it->second.c_str(), &end);
    return end != it->second.c_str() && *end == '\0' && errno == 0;
}

bool
json_get_int64(const FlatJsonFields& fields, const char* name,
               std::int64_t& out)
{
    const auto it = fields.find(name);
    if (it == fields.end())
        return false;
    errno = 0;
    char* end = nullptr;
    out = std::strtoll(it->second.c_str(), &end, 10);
    return end != it->second.c_str() && *end == '\0' && errno == 0;
}

bool
json_get_uint64(const FlatJsonFields& fields, const char* name,
                std::uint64_t& out)
{
    const auto it = fields.find(name);
    if (it == fields.end())
        return false;
    errno = 0;
    char* end = nullptr;
    out = std::strtoull(it->second.c_str(), &end, 10);
    return end != it->second.c_str() && *end == '\0' && errno == 0;
}

bool
json_get_int(const FlatJsonFields& fields, const char* name, int& out)
{
    std::int64_t wide = 0;
    if (!json_get_int64(fields, name, wide))
        return false;
    out = static_cast<int>(wide);
    return true;
}

}  // namespace chrysalis

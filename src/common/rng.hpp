/// \file
/// Deterministic pseudo-random number generation.
///
/// All stochastic components (genetic search, measurement-noise injection,
/// cloud attenuation, energy-exception sampling) draw from this generator so
/// that every experiment in the repository is reproducible from a seed.
/// The engine is xoshiro256**, which is small, fast and passes BigCrush.

#ifndef CHRYSALIS_COMMON_RNG_HPP
#define CHRYSALIS_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace chrysalis {

/// A seedable, copyable, deterministic random-number generator.
class Rng
{
  public:
    /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Returns the next raw 64-bit value.
    std::uint64_t next_u64();

    /// Returns a double uniformly distributed in [0, 1).
    double uniform();

    /// Returns a double uniformly distributed in [lo, hi).
    double uniform(double lo, double hi);

    /// Returns an integer uniformly distributed in [lo, hi] inclusive.
    /// \pre lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Returns a sample from a log-uniform distribution on [lo, hi].
    /// \pre 0 < lo <= hi.
    double log_uniform(double lo, double hi);

    /// Returns a standard-normal sample (Box-Muller).
    double gaussian();

    /// Returns a normal sample with the given mean and standard deviation.
    double gaussian(double mean, double stddev);

    /// Returns true with probability \p p (clamped to [0, 1]).
    bool bernoulli(double p);

    /// Returns an index in [0, weights.size()) drawn proportionally to the
    /// (non-negative) weights. Falls back to uniform if all weights are 0.
    /// \pre !weights.empty().
    std::size_t weighted_index(const std::vector<double>& weights);

    /// Fisher-Yates shuffles \p items in place.
    template <typename T>
    void
    shuffle(std::vector<T>& items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(
                uniform_int(0, static_cast<std::int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    /// Forks an independent child stream; children with distinct indices
    /// are decorrelated from each other and from the parent.
    Rng fork(std::uint64_t stream_index) const;

  private:
    std::uint64_t state_[4];
    bool has_spare_gaussian_ = false;
    double spare_gaussian_ = 0.0;
};

}  // namespace chrysalis

#endif  // CHRYSALIS_COMMON_RNG_HPP

/// \file
/// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
///
/// Together with the annotated wrappers in common/mutex.hpp these turn
/// the project's lock discipline into a compile-time fact: every
/// mutex-protected member is tagged CHRYSALIS_GUARDED_BY, every
/// caller-must-hold helper is tagged CHRYSALIS_REQUIRES, and the clang
/// CI job promotes -Wthread-safety to an error. GCC (the default local
/// toolchain) expands all macros to nothing, so the annotations cost
/// nothing off Clang.
///
/// Conventions (see docs/static_analysis.md):
///   - members:    `int done_ CHRYSALIS_GUARDED_BY(mutex_);`
///   - helpers:    `void emit_locked() CHRYSALIS_REQUIRES(mutex_);`
///     (the `_locked` suffix marks functions whose caller holds the
///     lock; the public wrapper acquires it and delegates)
///   - interfaces: `void stop() CHRYSALIS_EXCLUDES(mutex_);` on entry
///     points that acquire the lock themselves and would deadlock if
///     called with it held.

#ifndef CHRYSALIS_COMMON_THREAD_ANNOTATIONS_HPP
#define CHRYSALIS_COMMON_THREAD_ANNOTATIONS_HPP

#if defined(__clang__)
#define CHRYSALIS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CHRYSALIS_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define CHRYSALIS_CAPABILITY(x) \
    CHRYSALIS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define CHRYSALIS_SCOPED_CAPABILITY \
    CHRYSALIS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the named capability held.
#define CHRYSALIS_GUARDED_BY(x) \
    CHRYSALIS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by the named capability.
#define CHRYSALIS_PT_GUARDED_BY(x) \
    CHRYSALIS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held (and does not
/// release it). The `_locked` helpers use this.
#define CHRYSALIS_REQUIRES(...) \
    CHRYSALIS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must NOT be called with the capability held — it
/// acquires the lock itself and would self-deadlock otherwise.
#define CHRYSALIS_EXCLUDES(...) \
    CHRYSALIS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability (held on return).
#define CHRYSALIS_ACQUIRE(...) \
    CHRYSALIS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability (no longer held on return).
#define CHRYSALIS_RELEASE(...) \
    CHRYSALIS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns \p result.
#define CHRYSALIS_TRY_ACQUIRE(result, ...) \
    CHRYSALIS_THREAD_ANNOTATION( \
        try_acquire_capability(result __VA_OPT__(, ) __VA_ARGS__))

/// Escape hatch: the function's body is exempt from the analysis (its
/// annotations are still enforced at call sites). Reserve it for code
/// whose safety argument the analysis cannot express, and say why in a
/// comment.
#define CHRYSALIS_NO_THREAD_SAFETY_ANALYSIS \
    CHRYSALIS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // CHRYSALIS_COMMON_THREAD_ANNOTATIONS_HPP

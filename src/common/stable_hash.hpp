/// \file
/// Stable, process-independent hashing for evaluation memoization.
///
/// `StableHash` folds a sequence of primitive values (integers, doubles,
/// strings) into a 128-bit `CacheKey`. The digest depends only on the
/// values and the order they are added — never on pointer values, ASLR or
/// the standard library's `std::hash` — so keys are reproducible across
/// runs and usable as the memo key of `runtime::EvalCache`.

#ifndef CHRYSALIS_COMMON_STABLE_HASH_HPP
#define CHRYSALIS_COMMON_STABLE_HASH_HPP

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace chrysalis {

/// 128-bit cache key; collisions are negligible at the scale of a search
/// campaign (billions of evaluations would be needed for a likely clash).
struct CacheKey {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    friend bool operator==(const CacheKey& a, const CacheKey& b)
    {
        return a.hi == b.hi && a.lo == b.lo;
    }
};

/// Hash functor for unordered containers keyed by CacheKey. The key is
/// already uniformly mixed, so folding the halves is enough.
struct CacheKeyHash {
    std::size_t
    operator()(const CacheKey& key) const noexcept
    {
        return static_cast<std::size_t>(key.hi ^ (key.lo >> 1));
    }
};

/// Order-sensitive accumulator over primitive values.
class StableHash
{
  public:
    /// Mixes one raw 64-bit word into the digest.
    StableHash& add(std::uint64_t value);

    /// Mixes a signed integer (hashed by two's-complement bit pattern).
    StableHash& add(std::int64_t value);
    StableHash& add(int value);

    /// Mixes a bool as 0/1.
    StableHash& add(bool value);

    /// Mixes a double by IEEE-754 bit pattern; -0.0 is normalized to
    /// +0.0 so numerically equal keys cannot diverge.
    StableHash& add(double value);

    /// Mixes a string: length followed by bytes.
    StableHash& add(std::string_view text);

    /// Mixes every element of \p values in order (plus the length, so
    /// {1}+{2} and {1,2}+{} hash differently).
    template <typename T>
    StableHash&
    add_range(const std::vector<T>& values)
    {
        add(static_cast<std::uint64_t>(values.size()));
        for (const auto& value : values)
            add(value);
        return *this;
    }

    /// Finalizes (without consuming) the accumulated state into a key.
    CacheKey key() const;

  private:
    std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
    std::uint64_t count_ = 0;
};

}  // namespace chrysalis

#endif  // CHRYSALIS_COMMON_STABLE_HASH_HPP

#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/logging.hpp"

namespace chrysalis {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& word : state_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next_u64()
{
    // xoshiro256** step.
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::uniform_int: empty range [", lo, ", ", hi, "]");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0)  // full 64-bit range
        return static_cast<std::int64_t>(next_u64());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t raw;
    do {
        raw = next_u64();
    } while (raw >= limit);
    return lo + static_cast<std::int64_t>(raw % span);
}

double
Rng::log_uniform(double lo, double hi)
{
    if (lo <= 0.0 || lo > hi)
        panic("Rng::log_uniform: invalid range [", lo, ", ", hi, "]");
    return std::exp(uniform(std::log(lo), std::log(hi)));
}

double
Rng::gaussian()
{
    if (has_spare_gaussian_) {
        has_spare_gaussian_ = false;
        return spare_gaussian_;
    }
    // Box-Muller transform; guard against log(0).
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    spare_gaussian_ = radius * std::sin(angle);
    has_spare_gaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::size_t
Rng::weighted_index(const std::vector<double>& weights)
{
    if (weights.empty())
        panic("Rng::weighted_index: empty weight vector");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("Rng::weighted_index: negative weight ", w);
        total += w;
    }
    if (total <= 0.0)
        return static_cast<std::size_t>(
            uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
    double target = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;  // floating-point edge: land on last bucket
}

Rng
Rng::fork(std::uint64_t stream_index) const
{
    // Derive a child seed from the current state and the stream index; the
    // parent state is not advanced, so forking is repeatable.
    std::uint64_t mix = state_[0] ^ rotl(state_[3], 13) ^
                        (stream_index * 0xd1342543de82ef95ULL + 1);
    return Rng(splitmix64(mix));
}

}  // namespace chrysalis

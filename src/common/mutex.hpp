/// \file
/// Annotated locking primitives: thin wrappers over std::mutex /
/// std::condition_variable_any that carry the clang thread-safety
/// capability attributes (common/thread_annotations.hpp). libstdc++'s
/// own types are unannotated, so the analysis cannot see their acquire
/// and release sites; routing every lock through these wrappers is
/// what lets the clang CI job prove the lock discipline. Off Clang
/// they compile to the underlying std types with zero overhead.
///
/// Usage:
///     Mutex mutex_;
///     int value_ CHRYSALIS_GUARDED_BY(mutex_);
///     ...
///     MutexLock lock(mutex_);   // RAII; never call .lock() directly
///     while (!ready_)
///         cv_.wait(mutex_);     // predicate loop, re-checked locked
///
/// chrysalis_lint's chrysalis-raw-lock rule bans direct .lock() /
/// .unlock() calls everywhere except this file.

#ifndef CHRYSALIS_COMMON_MUTEX_HPP
#define CHRYSALIS_COMMON_MUTEX_HPP

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace chrysalis {

/// Annotated std::mutex. Satisfies BasicLockable/Lockable so CondVar
/// can wait on it directly.
class CHRYSALIS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() CHRYSALIS_ACQUIRE() { mutex_.lock(); }
    void unlock() CHRYSALIS_RELEASE() { mutex_.unlock(); }
    bool try_lock() CHRYSALIS_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

  private:
    std::mutex mutex_;
};

/// RAII guard over Mutex — the project's std::lock_guard. Scoped
/// acquisition is the only sanctioned way to hold a Mutex (see the
/// chrysalis-raw-lock lint rule).
class CHRYSALIS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) CHRYSALIS_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() CHRYSALIS_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mutex_;
};

/// Condition variable over Mutex. Callers hold the mutex via MutexLock
/// and wait in an explicit predicate loop:
///
///     MutexLock lock(mutex_);
///     while (!condition_)
///         cv_.wait(mutex_);
///
/// (std::condition_variable's lambda-predicate overload is deliberately
/// absent: the lambda would be a separate analysis context that does
/// not inherit the held capability, defeating the annotations.)
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Atomically releases \p mutex, blocks, and re-acquires it before
    /// returning. The capability is held across the call from the
    /// analysis's point of view — release and re-acquire balance out.
    void wait(Mutex& mutex) CHRYSALIS_REQUIRES(mutex)
    {
        cv_.wait(mutex);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    // condition_variable_any waits on any BasicLockable — including
    // the annotated Mutex — where std::condition_variable would force
    // an unannotated std::unique_lock<std::mutex> back into the API.
    std::condition_variable_any cv_;
};

}  // namespace chrysalis

#endif  // CHRYSALIS_COMMON_MUTEX_HPP

/// \file
/// String formatting helpers used by benchmark harnesses and reports:
/// engineering-notation formatting of physical quantities and basic
/// split/trim utilities.

#ifndef CHRYSALIS_COMMON_STRING_UTILS_HPP
#define CHRYSALIS_COMMON_STRING_UTILS_HPP

#include <string>
#include <string_view>
#include <vector>

namespace chrysalis {

/// Formats \p value with a fixed number of significant decimals,
/// e.g. format_fixed(3.14159, 2) -> "3.14".
std::string format_fixed(double value, int decimals);

/// Formats a quantity with an SI prefix and unit suffix, choosing the
/// prefix so the mantissa lies in [1, 1000) where possible,
/// e.g. format_si(3.2e-3, "J") -> "3.200 mJ".
std::string format_si(double value, std::string_view unit, int decimals = 3);

/// Formats a fraction as a percentage, e.g. format_percent(0.564) -> "56.4%".
std::string format_percent(double fraction, int decimals = 1);

/// Serializes \p value with "%.17g" (max_digits10) precision so the
/// text round-trips to the bit-identical double. Every journal/report
/// writer (campaign journal, metrics JSON, campaign CSV, bench
/// headlines) must route doubles through this helper — the property
/// behind byte-identical resumed campaigns and thread-count-invariant
/// reports. Enforced by the chrysalis-float-format lint rule.
std::string format_double_17g(double value);

/// Splits \p text on \p delimiter; consecutive delimiters yield empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string trim(std::string_view text);

/// Left-pads or truncates \p text to exactly \p width characters.
std::string pad_right(std::string_view text, std::size_t width);

/// Right-aligns \p text within \p width characters (no truncation).
std::string pad_left(std::string_view text, std::size_t width);

/// Returns lower-cased copy of \p text (ASCII only).
std::string to_lower(std::string_view text);

}  // namespace chrysalis

#endif  // CHRYSALIS_COMMON_STRING_UTILS_HPP

#include "common/string_utils.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace chrysalis {

std::string
format_fixed(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string
format_double_17g(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string
format_si(double value, std::string_view unit, int decimals)
{
    struct Prefix { double scale; const char* symbol; };
    static constexpr Prefix kPrefixes[] = {
        {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
    };
    const double magnitude = std::fabs(value);
    if (magnitude == 0.0)
        return format_fixed(0.0, decimals) + " " + std::string(unit);
    for (const auto& prefix : kPrefixes) {
        if (magnitude >= prefix.scale) {
            return format_fixed(value / prefix.scale, decimals) + " " +
                   prefix.symbol + std::string(unit);
        }
    }
    const auto& smallest = kPrefixes[std::size(kPrefixes) - 1];
    return format_fixed(value / smallest.scale, decimals) + " " +
           smallest.symbol + std::string(unit);
}

std::string
format_percent(double fraction, int decimals)
{
    return format_fixed(fraction * 100.0, decimals) + "%";
}

std::vector<std::string>
split(std::string_view text, char delimiter)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delimiter, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            break;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::string
pad_right(std::string_view text, std::size_t width)
{
    std::string out(text.substr(0, width));
    out.resize(width, ' ');
    return out;
}

std::string
pad_left(std::string_view text, std::size_t width)
{
    if (text.size() >= width)
        return std::string(text);
    std::string out(width - text.size(), ' ');
    out += text;
    return out;
}

std::string
to_lower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

}  // namespace chrysalis

#include "common/stable_hash.hpp"

#include <bit>

namespace chrysalis {

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer.
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

StableHash&
StableHash::add(std::uint64_t value)
{
    state_ = mix64(state_ ^ mix64(value + count_));
    ++count_;
    return *this;
}

StableHash&
StableHash::add(std::int64_t value)
{
    return add(static_cast<std::uint64_t>(value));
}

StableHash&
StableHash::add(int value)
{
    return add(static_cast<std::int64_t>(value));
}

StableHash&
StableHash::add(bool value)
{
    return add(static_cast<std::uint64_t>(value ? 1 : 0));
}

StableHash&
StableHash::add(double value)
{
    if (value == 0.0)
        value = 0.0;  // collapse -0.0 onto +0.0
    return add(std::bit_cast<std::uint64_t>(value));
}

StableHash&
StableHash::add(std::string_view text)
{
    add(static_cast<std::uint64_t>(text.size()));
    // Pack bytes into words so long strings cost ~n/8 mixes.
    std::uint64_t word = 0;
    int packed = 0;
    for (const char c : text) {
        word = (word << 8) | static_cast<unsigned char>(c);
        if (++packed == 8) {
            add(word);
            word = 0;
            packed = 0;
        }
    }
    if (packed > 0)
        add(word);
    return *this;
}

CacheKey
StableHash::key() const
{
    CacheKey key;
    key.hi = mix64(state_ ^ mix64(count_));
    key.lo = mix64(key.hi ^ 0x6a09e667f3bcc909ULL);
    return key;
}

}  // namespace chrysalis

#include "common/math_utils.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace chrysalis {

std::vector<std::int64_t>
divisors(std::int64_t n)
{
    if (n < 1)
        panic("divisors: n must be >= 1, got ", n);
    std::vector<std::int64_t> low, high;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            low.push_back(d);
            if (d != n / d)
                high.push_back(n / d);
        }
    }
    low.insert(low.end(), high.rbegin(), high.rend());
    return low;
}

bool
approx_equal(double a, double b, double tol)
{
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= tol * scale;
}

double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

double
interp_trace(const std::vector<double>& xs, const std::vector<double>& ys,
             double x)
{
    if (xs.empty() || xs.size() != ys.size())
        panic("interp_trace: malformed trace (", xs.size(), " xs, ",
              ys.size(), " ys)");
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    const auto hi = static_cast<std::size_t>(it - xs.begin());
    const auto lo = hi - 1;
    const double span = xs[hi] - xs[lo];
    const double t = span > 0.0 ? (x - xs[lo]) / span : 0.0;
    return lerp(ys[lo], ys[hi], t);
}

SummaryStats
summarize(const std::vector<double>& samples)
{
    SummaryStats stats;
    stats.count = samples.size();
    if (samples.empty())
        return stats;

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    stats.min = sorted.front();
    stats.max = sorted.back();
    const std::size_t n = sorted.size();
    stats.median = (n % 2 == 1)
        ? sorted[n / 2]
        : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    stats.mean = sum / static_cast<double>(n);

    double sq = 0.0;
    for (double v : sorted) {
        const double d = v - stats.mean;
        sq += d * d;
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(n));
    return stats;
}

double
geometric_mean(const std::vector<double>& samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : samples) {
        if (v <= 0.0)
            panic("geometric_mean: non-positive sample ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

double
relative_improvement(double baseline, double candidate)
{
    if (baseline <= 0.0)
        panic("relative_improvement: baseline must be > 0, got ", baseline);
    return (baseline - candidate) / baseline;
}

}  // namespace chrysalis

#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/string_utils.hpp"

namespace chrysalis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::set_title(std::string title)
{
    title_ = std::move(title);
}

void
TextTable::add_row(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    const auto rule = [&](char fill) {
        os << '+';
        for (std::size_t w : widths)
            os << std::string(w + 2, fill) << '+';
        os << '\n';
    };
    const auto line = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : "";
            os << ' ' << pad_right(cell, widths[c]) << " |";
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    rule('-');
    line(headers_);
    rule('=');
    for (const auto& row : rows_)
        line(row);
    rule('-');
}

void
TextTable::print_csv(std::ostream& os) const
{
    const auto csv_escape = [](const std::string& field) {
        if (field.find_first_of(",\"\n") == std::string::npos)
            return field;
        std::string out = "\"";
        for (char c : field) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    const auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << ',';
            os << csv_escape(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

std::string
TextTable::to_string() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

}  // namespace chrysalis

/// \file
/// Small numeric helpers shared across modules: integer factorization for
/// tiling enumeration, descriptive statistics for benchmark reporting, and
/// interpolation utilities for trace-driven models.

#ifndef CHRYSALIS_COMMON_MATH_UTILS_HPP
#define CHRYSALIS_COMMON_MATH_UTILS_HPP

#include <cstdint>
#include <vector>

namespace chrysalis {

/// Returns all positive divisors of \p n in increasing order.
/// \pre n >= 1.
std::vector<std::int64_t> divisors(std::int64_t n);

/// Returns ceil(a / b) for positive integers.
/// \pre b > 0.
constexpr std::int64_t
ceil_div(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/// Clamps \p value to [lo, hi].
constexpr double
clamp(double value, double lo, double hi)
{
    return value < lo ? lo : (value > hi ? hi : value);
}

/// Returns true when |a - b| <= tol * max(1, |a|, |b|) (scaled tolerance).
bool approx_equal(double a, double b, double tol = 1e-9);

/// Linear interpolation between two points.
double lerp(double a, double b, double t);

/// Piecewise-linear sample of a (time, value) trace; clamps outside range.
/// \pre xs sorted ascending, xs.size() == ys.size(), !xs.empty().
double interp_trace(const std::vector<double>& xs,
                    const std::vector<double>& ys, double x);

/// Descriptive statistics over a sample of doubles.
struct SummaryStats {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;    ///< population standard deviation
    double median = 0.0;
    std::size_t count = 0;
};

/// Computes SummaryStats for \p samples (empty input yields all zeros).
SummaryStats summarize(const std::vector<double>& samples);

/// Geometric mean of strictly positive samples; returns 0 for empty input.
/// \pre every sample > 0.
double geometric_mean(const std::vector<double>& samples);

/// Relative improvement of `candidate` over `baseline` for a
/// lower-is-better metric, as a fraction: (baseline - candidate)/baseline.
/// \pre baseline > 0.
double relative_improvement(double baseline, double candidate);

}  // namespace chrysalis

#endif  // CHRYSALIS_COMMON_MATH_UTILS_HPP

/// \file
/// Flat-JSON encode/decode helpers shared by the line-oriented wire
/// formats in this repo: the campaign resume journal (JSONL) and the
/// `chrysalis-serve-v1` network protocol.
///
/// "Flat" means one level of `{"key":value,...}` with string or
/// bare-number values — no nested objects or arrays. That restriction
/// keeps the scanner a few dozen lines, dependency-free, and robust
/// against torn input (a killed writer, a truncated network frame):
/// any structural problem makes the scan return false instead of
/// guessing. Writers emit doubles through format_double_17g() so values
/// round-trip bit-exactly (the property behind byte-identical resumed
/// campaigns and thread-count-invariant server replies).

#ifndef CHRYSALIS_COMMON_FLAT_JSON_HPP
#define CHRYSALIS_COMMON_FLAT_JSON_HPP

#include <cstdint>
#include <map>
#include <string>

namespace chrysalis {

/// Parsed fields of one flat JSON object, in key-sorted order (an
/// ordered map so iterating — e.g. to hash a request — is
/// deterministic). String values are unescaped; numeric/bare values
/// keep their literal spelling.
using FlatJsonFields = std::map<std::string, std::string>;

/// Appends \p text as a quoted JSON string (escaping quotes,
/// backslashes and control characters) to \p out.
void json_append_escaped(std::string& out, const std::string& text);

/// Appends `"name":"value"` (string value, escaped) to an object under
/// construction; inserts the separating comma unless \p out ends in '{'.
void json_append_field(std::string& out, const char* name,
                       const std::string& value);

/// Appends `"name":value` with \p value emitted verbatim (numbers,
/// booleans-as-0/1 — anything already JSON-formatted).
void json_append_raw_field(std::string& out, const char* name,
                           const std::string& value);

/// Scans one flat JSON object into \p fields. Returns false on any
/// structural problem — torn line, unterminated string, trailing
/// garbage inside the object — leaving \p fields in an unspecified
/// state. Duplicate keys keep the first occurrence.
bool scan_flat_json(const std::string& line, FlatJsonFields& fields);

/// Field accessors: each returns true and writes \p out only when the
/// key is present and (for the numeric forms) parses cleanly in full.
bool json_get_string(const FlatJsonFields& fields, const char* name,
                     std::string& out);
bool json_get_double(const FlatJsonFields& fields, const char* name,
                     double& out);
bool json_get_int64(const FlatJsonFields& fields, const char* name,
                    std::int64_t& out);
bool json_get_uint64(const FlatJsonFields& fields, const char* name,
                     std::uint64_t& out);
bool json_get_int(const FlatJsonFields& fields, const char* name, int& out);

}  // namespace chrysalis

#endif  // CHRYSALIS_COMMON_FLAT_JSON_HPP

/// \file
/// Unit conventions and conversion constants.
///
/// CHRYSALIS stores all physical quantities in SI base units as `double`:
/// seconds, joules, watts, volts, farads, amperes, square-centimetres for
/// panel area (the one deliberate non-SI exception, matching the paper's
/// design-space tables), and bytes for data sizes. The constants below make
/// call sites read like the paper: `100 * units::kMicroFarad`,
/// `8.0 * units::kCm2`.

#ifndef CHRYSALIS_COMMON_UNITS_HPP
#define CHRYSALIS_COMMON_UNITS_HPP

namespace chrysalis::units {

// --- SI prefixes --------------------------------------------------------
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;

// --- Time (seconds) -----------------------------------------------------
inline constexpr double kSecond = 1.0;
inline constexpr double kMillisecond = kMilli;
inline constexpr double kMicrosecond = kMicro;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;

// --- Energy (joules) ----------------------------------------------------
inline constexpr double kJoule = 1.0;
inline constexpr double kMilliJoule = kMilli;
inline constexpr double kMicroJoule = kMicro;
inline constexpr double kNanoJoule = kNano;
inline constexpr double kPicoJoule = kPico;

// --- Power (watts) ------------------------------------------------------
inline constexpr double kWatt = 1.0;
inline constexpr double kMilliWatt = kMilli;
inline constexpr double kMicroWatt = kMicro;
inline constexpr double kNanoWatt = kNano;

// --- Capacitance (farads) -----------------------------------------------
inline constexpr double kFarad = 1.0;
inline constexpr double kMilliFarad = kMilli;
inline constexpr double kMicroFarad = kMicro;

// --- Voltage / current --------------------------------------------------
inline constexpr double kVolt = 1.0;
inline constexpr double kAmpere = 1.0;
inline constexpr double kMicroAmpere = kMicro;

// --- Area ----------------------------------------------------------------
/// Solar-panel areas are expressed in cm^2 throughout, as in Tables IV/V.
inline constexpr double kCm2 = 1.0;

// --- Data sizes (bytes) ---------------------------------------------------
inline constexpr double kByte = 1.0;
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;

// --- Compute --------------------------------------------------------------
inline constexpr double kFlop = 1.0;
inline constexpr double kKiloFlop = kKilo;
inline constexpr double kMegaFlop = kMega;
inline constexpr double kGigaFlop = kGiga;

}  // namespace chrysalis::units

#endif  // CHRYSALIS_COMMON_UNITS_HPP

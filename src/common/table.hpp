/// \file
/// Plain-text table rendering and CSV export.
///
/// Every benchmark binary reproduces a paper table or figure as rows of
/// text; TextTable gives them a single consistent renderer (auto-sized
/// columns, optional title, right-aligned numeric cells) plus a CSV dump so
/// results can be re-plotted.

#ifndef CHRYSALIS_COMMON_TABLE_HPP
#define CHRYSALIS_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace chrysalis {

/// A small helper for building and printing aligned text tables.
class TextTable
{
  public:
    /// Creates a table with the given column headers.
    explicit TextTable(std::vector<std::string> headers);

    /// Optional title printed above the table.
    void set_title(std::string title);

    /// Appends a row; the row is padded/truncated to the header width.
    void add_row(std::vector<std::string> cells);

    /// Number of data rows added so far.
    std::size_t row_count() const { return rows_.size(); }

    /// Renders the table with box-drawing rules to \p os.
    void print(std::ostream& os) const;

    /// Renders the table as CSV (header row first) to \p os.
    void print_csv(std::ostream& os) const;

    /// Convenience: renders to a string via print().
    std::string to_string() const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace chrysalis

#endif  // CHRYSALIS_COMMON_TABLE_HPP

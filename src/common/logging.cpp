#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <system_error>
#include <utility>

#include "common/mutex.hpp"

namespace chrysalis {

namespace {

/// Threshold from CHRYSALIS_LOG_LEVEL, or kWarn when the variable is
/// unset or unparsable (an unparsable value earns a one-off warning to
/// stderr — the logging threshold is not trustworthy at that point).
LogLevel
initial_log_level()
{
    // Read once, during the static initialization of g_log_level,
    // before threads exist.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("CHRYSALIS_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return LogLevel::kWarn;
    LogLevel level = LogLevel::kWarn;
    if (!parse_log_level(env, level)) {
        std::fprintf(stderr,
                     "[chrysalis:warn] CHRYSALIS_LOG_LEVEL='%s' is not a "
                     "log level (debug|info|warn|error|silent); using "
                     "'warn'\n",
                     env);
    }
    return level;
}

std::atomic<LogLevel> g_log_level{initial_log_level()};

/// Serializes sink writes so records from parallel evaluations are
/// emitted whole (never interleaved half-lines). Also guards g_log_sink.
Mutex g_sink_mutex;
LogSink g_log_sink CHRYSALIS_GUARDED_BY(g_sink_mutex);
// empty sink => default stderr sink

const char*
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInform: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kSilent: return "silent";
    }
    return "?";
}

/// Depth of nested FatalThrowGuards on this thread; > 0 => fatal throws.
thread_local int g_fatal_throw_depth = 0;

}  // namespace

FatalThrowGuard::FatalThrowGuard()
{
    ++g_fatal_throw_depth;
}

FatalThrowGuard::~FatalThrowGuard()
{
    --g_fatal_throw_depth;
}

bool
FatalThrowGuard::active()
{
    return g_fatal_throw_depth > 0;
}

LogLevel
log_level()
{
    return g_log_level.load(std::memory_order_relaxed);
}

void
set_log_level(LogLevel level)
{
    g_log_level.store(level, std::memory_order_relaxed);
}

bool
parse_log_level(std::string_view name, LogLevel& out)
{
    std::string lowered(name);
    for (char& c : lowered)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lowered == "debug")
        out = LogLevel::kDebug;
    else if (lowered == "info" || lowered == "inform")
        out = LogLevel::kInform;
    else if (lowered == "warn" || lowered == "warning")
        out = LogLevel::kWarn;
    else if (lowered == "error")
        out = LogLevel::kError;
    else if (lowered == "silent" || lowered == "none" || lowered == "off")
        out = LogLevel::kSilent;
    else
        return false;
    return true;
}

void
set_log_sink(LogSink sink)
{
    MutexLock lock(g_sink_mutex);
    g_log_sink = std::move(sink);
}

void
log_message(LogLevel level, std::string_view message)
{
    if (static_cast<int>(level) < static_cast<int>(log_level()))
        return;
    MutexLock lock(g_sink_mutex);
    if (g_log_sink) {
        g_log_sink(level, message);
        return;
    }
    std::fprintf(stderr, "[chrysalis:%s] %.*s\n", level_tag(level),
                 static_cast<int>(message.size()), message.data());
}

std::string
errno_text(int errnum)
{
    // std::generic_category carries the portable errno table and,
    // unlike std::strerror, owns its storage per call.
    return std::error_code(errnum, std::generic_category()).message();
}

namespace detail {

void
fatal_exit(const std::string& message)
{
    if (FatalThrowGuard::active())
        throw FatalError(message);
    // Deliberately no mutex: fatal/panic must make it out even if the
    // crashing thread already holds the logging lock. Flush both
    // streams so buffered output (reports, partial CSV rows) is not
    // lost — and is ordered before the fatal line — when stderr is
    // redirected to a file.
    std::fflush(stdout);
    std::fprintf(stderr, "[chrysalis:fatal] %s\n", message.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
panic_abort(const std::string& message)
{
    std::fflush(stdout);
    std::fprintf(stderr, "[chrysalis:panic] %s\n", message.c_str());
    std::fflush(stderr);
    std::abort();
}

}  // namespace detail

}  // namespace chrysalis

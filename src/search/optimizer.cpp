#include "search/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace chrysalis::search {

namespace {

void
check_inputs(int gene_count, const OptimizerOptions& opts)
{
    if (gene_count < 1)
        fatal("optimizer: gene_count must be >= 1, got ", gene_count);
    if (opts.population < 2)
        fatal("optimizer: population must be >= 2, got ", opts.population);
    if (opts.generations < 1)
        fatal("optimizer: generations must be >= 1, got ", opts.generations);
    if (opts.elitism < 0 || opts.elitism >= opts.population)
        fatal("optimizer: elitism must lie in [0, population), got ",
              opts.elitism);
    if (opts.tournament_size < 1 || opts.tournament_size > opts.population)
        fatal("optimizer: tournament size out of range");
    if (opts.threads < 0)
        fatal("optimizer: threads must be >= 0, got ", opts.threads);
}

std::vector<double>
random_genes(Rng& rng, int gene_count)
{
    std::vector<double> genes(static_cast<std::size_t>(gene_count));
    for (auto& gene : genes)
        gene = rng.uniform();
    return genes;
}

/// Evaluates one genome batch on the pool and folds it into the result.
///
/// Determinism: evaluation indices are assigned before the batch runs
/// (serial history order), the fitness calls are free to complete in any
/// thread order, and history/evaluations are reduced strictly in index
/// order afterwards — so any thread count produces the same result as
/// the serial loop this replaces.
std::vector<double>
evaluate_batch(runtime::ThreadPool& pool, const IndexedFitnessFn& fitness,
               const std::vector<std::vector<double>>& genomes,
               OptimizeResult& result)
{
    const std::size_t base = static_cast<std::size_t>(result.evaluations);
    std::vector<double> scores = pool.parallel_map(
        genomes.size(),
        [&](std::size_t i) { return fitness(base + i, genomes[i]); });
    for (std::size_t i = 0; i < genomes.size(); ++i) {
        ++result.evaluations;
        result.history.push_back({genomes[i], scores[i]});
    }
    return scores;
}

/// Adapts a plain FitnessFn (index dropped) to the indexed interface.
IndexedFitnessFn
drop_index(const FitnessFn& fitness)
{
    return [&fitness](std::size_t, const std::vector<double>& genes) {
        return fitness(genes);
    };
}

}  // namespace

std::string
to_string(OptimizerStrategy strategy)
{
    switch (strategy) {
      case OptimizerStrategy::kGenetic: return "ga";
      case OptimizerStrategy::kRandom: return "random";
      case OptimizerStrategy::kGrid: return "grid";
    }
    return "?";
}

OptimizeResult
optimize_genetic(int gene_count, const OptimizerOptions& opts,
                 const IndexedFitnessFn& fitness)
{
    check_inputs(gene_count, opts);
    Rng rng(opts.seed);
    runtime::ThreadPool pool(opts.threads);

    struct Individual {
        std::vector<double> genes;
        double score = 0.0;
    };

    OptimizeResult result;

    // Initial population: warm-start seeds first, then random fill. All
    // genomes are drawn before the batch is evaluated; the fitness never
    // touches the RNG, so the stream matches the historical interleaved
    // draw-evaluate loop exactly.
    std::vector<Individual> population(
        static_cast<std::size_t>(opts.population));

    // Per-generation fitness summary. Scores are reduced in index order
    // (see evaluate_batch), so these observations are schedule-invariant
    // and the histograms land in the stable report section.
    const auto publish_generation = [&population] {
        obs::MetricsRegistry* registry = obs::metrics();
        if (registry == nullptr || population.empty())
            return;
        registry->counter("search/ga/generations").add(1);
        double best = population.front().score;
        double sum = 0.0;
        for (const auto& individual : population) {
            best = std::min(best, individual.score);
            sum += individual.score;
        }
        registry
            ->histogram("search/ga/gen_best_score", obs::decade_bounds())
            .record(best);
        registry
            ->histogram("search/ga/gen_mean_score", obs::decade_bounds())
            .record(sum / static_cast<double>(population.size()));
    };

    {
        OBS_SPAN("ga/generation");
        std::vector<std::vector<double>> genomes;
        genomes.reserve(population.size());
        for (std::size_t i = 0; i < population.size(); ++i) {
            if (i < opts.seed_genes.size()) {
                if (opts.seed_genes[i].size() !=
                    static_cast<std::size_t>(gene_count)) {
                    fatal("optimizer: seed individual has ",
                          opts.seed_genes[i].size(), " genes, expected ",
                          gene_count);
                }
                genomes.push_back(opts.seed_genes[i]);
            } else {
                genomes.push_back(random_genes(rng, gene_count));
            }
        }
        const auto scores = evaluate_batch(pool, fitness, genomes, result);
        for (std::size_t i = 0; i < population.size(); ++i) {
            population[i].genes = std::move(genomes[i]);
            population[i].score = scores[i];
        }
        publish_generation();
    }

    const auto by_score = [](const Individual& a, const Individual& b) {
        return a.score < b.score;
    };
    const auto tournament = [&]() -> const Individual& {
        const Individual* best = nullptr;
        for (int i = 0; i < opts.tournament_size; ++i) {
            const auto& contender = population[static_cast<std::size_t>(
                rng.uniform_int(0, opts.population - 1))];
            if (best == nullptr || contender.score < best->score)
                best = &contender;
        }
        return *best;
    };

    for (int gen = 1; gen < opts.generations; ++gen) {
        OBS_SPAN("ga/generation");
        std::sort(population.begin(), population.end(), by_score);
        std::vector<Individual> next;
        next.reserve(population.size());
        for (int e = 0; e < opts.elitism; ++e)
            next.push_back(population[static_cast<std::size_t>(e)]);

        // Variation draws all offspring genomes serially (selection only
        // needs the already-scored parent population), then the batch is
        // scored in parallel.
        std::vector<std::vector<double>> offspring;
        offspring.reserve(population.size() - next.size());
        while (next.size() + offspring.size() < population.size()) {
            const Individual& parent_a = tournament();
            const Individual& parent_b = tournament();
            std::vector<double> genes = parent_a.genes;
            if (rng.bernoulli(opts.crossover_rate)) {
                // Uniform crossover.
                for (std::size_t g = 0; g < genes.size(); ++g) {
                    if (rng.bernoulli(0.5))
                        genes[g] = parent_b.genes[g];
                }
            }
            for (auto& gene : genes) {
                if (rng.bernoulli(opts.mutation_rate)) {
                    gene = clamp(gene + rng.gaussian(0.0,
                                                     opts.mutation_sigma),
                                 0.0, 1.0);
                }
            }
            offspring.push_back(std::move(genes));
        }
        const auto scores =
            evaluate_batch(pool, fitness, offspring, result);
        for (std::size_t i = 0; i < offspring.size(); ++i)
            next.push_back({std::move(offspring[i]), scores[i]});
        population = std::move(next);
        publish_generation();
    }

    const auto best = std::min_element(population.begin(), population.end(),
                                       by_score);
    result.best_genes = best->genes;
    result.best_score = best->score;
    // The elite may have been superseded by a historical point if the last
    // generation regressed; take the global best from the history.
    for (const auto& point : result.history) {
        if (point.score < result.best_score) {
            result.best_score = point.score;
            result.best_genes = point.genes;
        }
    }
    return result;
}

OptimizeResult
optimize_random(int gene_count, const OptimizerOptions& opts,
                const IndexedFitnessFn& fitness)
{
    check_inputs(gene_count, opts);
    Rng rng(opts.seed);
    runtime::ThreadPool pool(opts.threads);
    OptimizeResult result;
    result.best_score = 0.0;
    const int budget = opts.population * opts.generations;

    std::vector<std::vector<double>> genomes;
    genomes.reserve(static_cast<std::size_t>(budget));
    for (int i = 0; i < budget; ++i)
        genomes.push_back(random_genes(rng, gene_count));
    const auto scores = evaluate_batch(pool, fitness, genomes, result);

    for (std::size_t i = 0; i < genomes.size(); ++i) {
        if (i == 0 || scores[i] < result.best_score) {
            result.best_score = scores[i];
            result.best_genes = std::move(genomes[i]);
        }
    }
    return result;
}

OptimizeResult
optimize_grid(int gene_count, const OptimizerOptions& opts,
              const IndexedFitnessFn& fitness)
{
    check_inputs(gene_count, opts);
    runtime::ThreadPool pool(opts.threads);
    const int budget = opts.population * opts.generations;
    const int resolution = std::max(
        2, static_cast<int>(std::floor(std::pow(
               static_cast<double>(budget),
               1.0 / static_cast<double>(gene_count)))));

    OptimizeResult result;
    std::vector<std::vector<double>> genomes;
    std::vector<int> index(static_cast<std::size_t>(gene_count), 0);
    while (true) {
        std::vector<double> genes(static_cast<std::size_t>(gene_count));
        for (std::size_t g = 0; g < genes.size(); ++g) {
            genes[g] = static_cast<double>(index[g]) /
                       static_cast<double>(resolution - 1);
        }
        genomes.push_back(std::move(genes));
        // Odometer increment.
        std::size_t g = 0;
        while (g < index.size()) {
            if (++index[g] < resolution)
                break;
            index[g] = 0;
            ++g;
        }
        if (g == index.size())
            break;
    }

    const auto scores = evaluate_batch(pool, fitness, genomes, result);
    for (std::size_t i = 0; i < genomes.size(); ++i) {
        if (i == 0 || scores[i] < result.best_score) {
            result.best_score = scores[i];
            result.best_genes = genomes[i];
        }
    }
    return result;
}

OptimizeResult
optimize(OptimizerStrategy strategy, int gene_count,
         const OptimizerOptions& opts, const IndexedFitnessFn& fitness)
{
    switch (strategy) {
      case OptimizerStrategy::kGenetic:
        return optimize_genetic(gene_count, opts, fitness);
      case OptimizerStrategy::kRandom:
        return optimize_random(gene_count, opts, fitness);
      case OptimizerStrategy::kGrid:
        return optimize_grid(gene_count, opts, fitness);
    }
    panic("optimize: invalid strategy");
}

OptimizeResult
optimize_genetic(int gene_count, const OptimizerOptions& opts,
                 const FitnessFn& fitness)
{
    return optimize_genetic(gene_count, opts, drop_index(fitness));
}

OptimizeResult
optimize_random(int gene_count, const OptimizerOptions& opts,
                const FitnessFn& fitness)
{
    return optimize_random(gene_count, opts, drop_index(fitness));
}

OptimizeResult
optimize_grid(int gene_count, const OptimizerOptions& opts,
              const FitnessFn& fitness)
{
    return optimize_grid(gene_count, opts, drop_index(fitness));
}

OptimizeResult
optimize(OptimizerStrategy strategy, int gene_count,
         const OptimizerOptions& opts, const FitnessFn& fitness)
{
    return optimize(strategy, gene_count, opts, drop_index(fitness));
}

}  // namespace chrysalis::search

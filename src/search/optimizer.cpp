#include "search/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"

namespace chrysalis::search {

namespace {

void
check_inputs(int gene_count, const OptimizerOptions& opts)
{
    if (gene_count < 1)
        fatal("optimizer: gene_count must be >= 1, got ", gene_count);
    if (opts.population < 2)
        fatal("optimizer: population must be >= 2, got ", opts.population);
    if (opts.generations < 1)
        fatal("optimizer: generations must be >= 1, got ", opts.generations);
    if (opts.elitism < 0 || opts.elitism >= opts.population)
        fatal("optimizer: elitism must lie in [0, population), got ",
              opts.elitism);
    if (opts.tournament_size < 1 || opts.tournament_size > opts.population)
        fatal("optimizer: tournament size out of range");
}

std::vector<double>
random_genes(Rng& rng, int gene_count)
{
    std::vector<double> genes(static_cast<std::size_t>(gene_count));
    for (auto& gene : genes)
        gene = rng.uniform();
    return genes;
}

}  // namespace

std::string
to_string(OptimizerStrategy strategy)
{
    switch (strategy) {
      case OptimizerStrategy::kGenetic: return "ga";
      case OptimizerStrategy::kRandom: return "random";
      case OptimizerStrategy::kGrid: return "grid";
    }
    return "?";
}

OptimizeResult
optimize_genetic(int gene_count, const OptimizerOptions& opts,
                 const FitnessFn& fitness)
{
    check_inputs(gene_count, opts);
    Rng rng(opts.seed);

    struct Individual {
        std::vector<double> genes;
        double score = 0.0;
    };

    OptimizeResult result;
    const auto evaluate = [&](const std::vector<double>& genes) {
        const double score = fitness(genes);
        ++result.evaluations;
        result.history.push_back({genes, score});
        return score;
    };

    // Initial population: warm-start seeds first, then random fill.
    std::vector<Individual> population(
        static_cast<std::size_t>(opts.population));
    for (std::size_t i = 0; i < population.size(); ++i) {
        if (i < opts.seed_genes.size()) {
            if (opts.seed_genes[i].size() !=
                static_cast<std::size_t>(gene_count)) {
                fatal("optimizer: seed individual has ",
                      opts.seed_genes[i].size(), " genes, expected ",
                      gene_count);
            }
            population[i].genes = opts.seed_genes[i];
        } else {
            population[i].genes = random_genes(rng, gene_count);
        }
        population[i].score = evaluate(population[i].genes);
    }

    const auto by_score = [](const Individual& a, const Individual& b) {
        return a.score < b.score;
    };
    const auto tournament = [&]() -> const Individual& {
        const Individual* best = nullptr;
        for (int i = 0; i < opts.tournament_size; ++i) {
            const auto& contender = population[static_cast<std::size_t>(
                rng.uniform_int(0, opts.population - 1))];
            if (best == nullptr || contender.score < best->score)
                best = &contender;
        }
        return *best;
    };

    for (int gen = 1; gen < opts.generations; ++gen) {
        std::sort(population.begin(), population.end(), by_score);
        std::vector<Individual> next;
        next.reserve(population.size());
        for (int e = 0; e < opts.elitism; ++e)
            next.push_back(population[static_cast<std::size_t>(e)]);

        while (next.size() < population.size()) {
            const Individual& parent_a = tournament();
            const Individual& parent_b = tournament();
            Individual child;
            child.genes = parent_a.genes;
            if (rng.bernoulli(opts.crossover_rate)) {
                // Uniform crossover.
                for (std::size_t g = 0; g < child.genes.size(); ++g) {
                    if (rng.bernoulli(0.5))
                        child.genes[g] = parent_b.genes[g];
                }
            }
            for (auto& gene : child.genes) {
                if (rng.bernoulli(opts.mutation_rate)) {
                    gene = clamp(gene + rng.gaussian(0.0,
                                                     opts.mutation_sigma),
                                 0.0, 1.0);
                }
            }
            child.score = evaluate(child.genes);
            next.push_back(std::move(child));
        }
        population = std::move(next);
    }

    const auto best = std::min_element(population.begin(), population.end(),
                                       by_score);
    result.best_genes = best->genes;
    result.best_score = best->score;
    // The elite may have been superseded by a historical point if the last
    // generation regressed; take the global best from the history.
    for (const auto& point : result.history) {
        if (point.score < result.best_score) {
            result.best_score = point.score;
            result.best_genes = point.genes;
        }
    }
    return result;
}

OptimizeResult
optimize_random(int gene_count, const OptimizerOptions& opts,
                const FitnessFn& fitness)
{
    check_inputs(gene_count, opts);
    Rng rng(opts.seed);
    OptimizeResult result;
    result.best_score = 0.0;
    const int budget = opts.population * opts.generations;
    for (int i = 0; i < budget; ++i) {
        std::vector<double> genes = random_genes(rng, gene_count);
        const double score = fitness(genes);
        ++result.evaluations;
        result.history.push_back({genes, score});
        if (i == 0 || score < result.best_score) {
            result.best_score = score;
            result.best_genes = std::move(genes);
        }
    }
    return result;
}

OptimizeResult
optimize_grid(int gene_count, const OptimizerOptions& opts,
              const FitnessFn& fitness)
{
    check_inputs(gene_count, opts);
    const int budget = opts.population * opts.generations;
    const int resolution = std::max(
        2, static_cast<int>(std::floor(std::pow(
               static_cast<double>(budget),
               1.0 / static_cast<double>(gene_count)))));

    OptimizeResult result;
    std::vector<int> index(static_cast<std::size_t>(gene_count), 0);
    std::vector<double> genes(static_cast<std::size_t>(gene_count), 0.0);
    bool first = true;
    while (true) {
        for (std::size_t g = 0; g < genes.size(); ++g) {
            genes[g] = static_cast<double>(index[g]) /
                       static_cast<double>(resolution - 1);
        }
        const double score = fitness(genes);
        ++result.evaluations;
        result.history.push_back({genes, score});
        if (first || score < result.best_score) {
            result.best_score = score;
            result.best_genes = genes;
            first = false;
        }
        // Odometer increment.
        std::size_t g = 0;
        while (g < index.size()) {
            if (++index[g] < resolution)
                break;
            index[g] = 0;
            ++g;
        }
        if (g == index.size())
            break;
    }
    return result;
}

OptimizeResult
optimize(OptimizerStrategy strategy, int gene_count,
         const OptimizerOptions& opts, const FitnessFn& fitness)
{
    switch (strategy) {
      case OptimizerStrategy::kGenetic:
        return optimize_genetic(gene_count, opts, fitness);
      case OptimizerStrategy::kRandom:
        return optimize_random(gene_count, opts, fitness);
      case OptimizerStrategy::kGrid:
        return optimize_grid(gene_count, opts, fitness);
    }
    panic("optimize: invalid strategy");
}

}  // namespace chrysalis::search

#include "search/design_space.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::search {

std::unique_ptr<hw::InferenceHardware>
HwCandidate::build_hardware() const
{
    switch (family) {
      case HardwareFamily::kMsp430:
        return std::make_unique<hw::Msp430Lea>();
      case HardwareFamily::kAccelerator: {
        hw::ReconfigurableAccelerator::Config config;
        config.arch = arch;
        config.n_pe = n_pe;
        config.cache_bytes_per_pe = cache_bytes;
        return std::make_unique<hw::ReconfigurableAccelerator>(config);
      }
    }
    panic("HwCandidate::build_hardware: invalid family");
}

std::string
HwCandidate::describe() const
{
    std::ostringstream os;
    os << "sp=" << format_fixed(solar_cm2, 1) << "cm2 C="
       << format_si(capacitance_f, "F", 0);
    if (family == HardwareFamily::kAccelerator) {
        os << " " << hw::to_string(arch) << " pe=" << n_pe << " cache="
           << cache_bytes << "B";
    } else {
        os << " msp430";
    }
    return os.str();
}

DesignSpace
DesignSpace::existing_aut()
{
    DesignSpace space;
    space.family = HardwareFamily::kMsp430;
    space.defaults.family = HardwareFamily::kMsp430;
    // iNAS-style reference point: P_in = 6 mW at ~2 mW/cm^2 needs ~3 cm^2;
    // the paper replicates iNAS with C >= 1 mF.
    space.defaults.solar_cm2 = 3.0;
    space.defaults.capacitance_f = 1e-3;
    return space;
}

DesignSpace
DesignSpace::future_aut()
{
    DesignSpace space;
    space.family = HardwareFamily::kAccelerator;
    space.search_arch = true;
    space.search_pe = true;
    space.search_cache = true;
    space.defaults.family = HardwareFamily::kAccelerator;
    space.defaults.solar_cm2 = 8.0;
    space.defaults.capacitance_f = 1e-3;
    space.defaults.arch = hw::AcceleratorArch::kEyeriss;
    space.defaults.n_pe = 64;
    space.defaults.cache_bytes = 512;
    return space;
}

HwCandidate
DesignSpace::clamp(HwCandidate candidate) const
{
    candidate.family = family;
    if (search_solar) {
        candidate.solar_cm2 =
            std::clamp(candidate.solar_cm2, solar_min_cm2, solar_max_cm2);
    } else {
        candidate.solar_cm2 = defaults.solar_cm2;
    }
    if (search_capacitor) {
        candidate.capacitance_f =
            std::clamp(candidate.capacitance_f, cap_min_f, cap_max_f);
    } else {
        candidate.capacitance_f = defaults.capacitance_f;
    }
    if (family == HardwareFamily::kAccelerator) {
        if (search_arch) {
            // nothing to clamp: enum already valid
        } else {
            candidate.arch = defaults.arch;
        }
        if (search_pe)
            candidate.n_pe = std::clamp(candidate.n_pe, pe_min, pe_max);
        else
            candidate.n_pe = defaults.n_pe;
        if (search_cache) {
            candidate.cache_bytes = std::clamp(
                candidate.cache_bytes, cache_min_bytes, cache_max_bytes);
        } else {
            candidate.cache_bytes = defaults.cache_bytes;
        }
    } else {
        candidate.arch = defaults.arch;
        candidate.n_pe = 1;
        candidate.cache_bytes = defaults.cache_bytes;
    }
    return candidate;
}

int
DesignSpace::searchable_knob_count() const
{
    int count = 0;
    count += search_solar ? 1 : 0;
    count += search_capacitor ? 1 : 0;
    if (family == HardwareFamily::kAccelerator) {
        count += search_arch ? 1 : 0;
        count += search_pe ? 1 : 0;
        count += search_cache ? 1 : 0;
    }
    return count;
}

std::string
to_string(BaselineKind kind)
{
    switch (kind) {
      case BaselineKind::kFull: return "CHRYSALIS";
      case BaselineKind::kWoCap: return "wo/Cap";
      case BaselineKind::kWoSp: return "wo/SP";
      case BaselineKind::kWoEa: return "wo/EA";
      case BaselineKind::kWoPe: return "wo/PE";
      case BaselineKind::kWoCache: return "wo/Cache";
      case BaselineKind::kWoIa: return "wo/IA";
    }
    return "?";
}

const std::vector<BaselineKind>&
all_baselines()
{
    static const std::vector<BaselineKind> kAll = {
        BaselineKind::kWoCap, BaselineKind::kWoSp, BaselineKind::kWoEa,
        BaselineKind::kWoPe,  BaselineKind::kWoCache, BaselineKind::kWoIa,
        BaselineKind::kFull,
    };
    return kAll;
}

DesignSpace
apply_baseline(DesignSpace space, BaselineKind kind)
{
    switch (kind) {
      case BaselineKind::kFull:
        break;
      case BaselineKind::kWoCap:
        space.search_capacitor = false;
        break;
      case BaselineKind::kWoSp:
        space.search_solar = false;
        break;
      case BaselineKind::kWoEa:
        space.search_capacitor = false;
        space.search_solar = false;
        break;
      case BaselineKind::kWoPe:
        space.search_pe = false;
        break;
      case BaselineKind::kWoCache:
        space.search_cache = false;
        break;
      case BaselineKind::kWoIa:
        space.search_pe = false;
        space.search_cache = false;
        space.search_arch = false;
        break;
    }
    return space;
}

}  // namespace chrysalis::search

#include "search/objective.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace chrysalis::search {

namespace {

/// Base score assigned to any constraint-violating or infeasible point;
/// large enough to dominate every feasible score in practice.
constexpr double kPenaltyBase = 1e9;

}  // namespace

std::string
to_string(ObjectiveKind kind)
{
    switch (kind) {
      case ObjectiveKind::kLatency: return "lat";
      case ObjectiveKind::kSolarPanel: return "sp";
      case ObjectiveKind::kLatSp: return "lat*sp";
    }
    return "?";
}

double
Objective::score(double latency_s, double solar_cm2) const
{
    if (latency_s < 0.0 || solar_cm2 <= 0.0)
        panic("Objective::score: invalid point lat=", latency_s, " sp=",
              solar_cm2);
    switch (kind) {
      case ObjectiveKind::kLatency:
        if (solar_cm2 > sp_limit_cm2) {
            // Graded but capped so infeasible_score always ranks worse.
            return kPenaltyBase *
                   (1.0 + std::min(8.0, (solar_cm2 - sp_limit_cm2) /
                                            sp_limit_cm2));
        }
        return latency_s;
      case ObjectiveKind::kSolarPanel:
        if (latency_s > lat_limit_s) {
            return kPenaltyBase *
                   (1.0 + std::min(8.0, (latency_s - lat_limit_s) /
                                            lat_limit_s));
        }
        return solar_cm2;
      case ObjectiveKind::kLatSp:
        return latency_s * solar_cm2;
    }
    panic("Objective::score: invalid kind");
}

double
Objective::infeasible_score(double violation_magnitude) const
{
    return penalty_score(
        fault::make_failure(fault::FailureCode::kMappingInfeasible),
        violation_magnitude);
}

double
Objective::penalty_score(const fault::SimFailure& failure,
                         double violation_magnitude) const
{
    if (!failure)
        panic("Objective::penalty_score: called without a failure");
    if (violation_magnitude < 0.0 || !std::isfinite(violation_magnitude))
        violation_magnitude = 1e6;
    const double rank =
        static_cast<double>(fault::penalty_rank(failure.code));
    // Rank bands are 10*kPenaltyBase wide; the violation magnitude grades
    // within a band (capped at half a band so codes never interleave).
    // The lowest band (rank 1) starts at 10*kPenaltyBase, above the
    // 9*kPenaltyBase ceiling of constraint-violating feasible scores.
    return kPenaltyBase *
           (10.0 * rank + 5.0 * std::min(violation_magnitude, 1e6) / 1e6);
}

bool
Objective::satisfies_constraint(double latency_s, double solar_cm2) const
{
    switch (kind) {
      case ObjectiveKind::kLatency: return solar_cm2 <= sp_limit_cm2;
      case ObjectiveKind::kSolarPanel: return latency_s <= lat_limit_s;
      case ObjectiveKind::kLatSp: return true;
    }
    return false;
}

}  // namespace chrysalis::search

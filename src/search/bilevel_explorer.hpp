/// \file
/// The CHRYSALIS Explorer: bi-level search over the joint EA/IA design
/// space (§III-C).
///
/// The HW-level optimizer (genetic by default) proposes hardware
/// configurations; for each, the SW-level mapping search finds the best
/// intermittent mapping, and the analytic evaluator scores the resulting
/// design against the objective function in each target environment
/// (average latency across the brighter/darker environments, feasibility
/// required in both, as in §V-A). The explorer returns the best design,
/// the full evaluation history and the (solar-panel-size, latency) Pareto
/// front used by Figure 6.

#ifndef CHRYSALIS_SEARCH_BILEVEL_EXPLORER_HPP
#define CHRYSALIS_SEARCH_BILEVEL_EXPLORER_HPP

#include <memory>
#include <vector>

#include "dnn/model.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/eval_cache.hpp"
#include "energy/capacitor.hpp"
#include "energy/power_management.hpp"
#include "search/design_space.hpp"
#include "search/mapping_search.hpp"
#include "search/objective.hpp"
#include "search/optimizer.hpp"
#include "search/nsga2.hpp"
#include "search/pareto.hpp"
#include "sim/analytic_evaluator.hpp"

namespace chrysalis::search {

/// Explorer controls.
struct ExplorerOptions {
    OptimizerStrategy strategy = OptimizerStrategy::kGenetic;
    OptimizerOptions outer;           ///< HW-level optimizer budget
    MappingSearchOptions inner;       ///< SW-level search controls
    /// Target environments' light coefficients k_eh [W/cm^2]; the paper's
    /// evaluation uses a brighter and a darker preset.
    std::vector<double> k_eh_envs = {2.0e-3, 0.5e-3};
    /// Capacitor technology (capacitance is overridden per candidate).
    energy::Capacitor::Config capacitor_base;
    /// PMIC model shared by all candidates.
    energy::PowerManagementIc::Config pmic;
    /// Evaluation-memo capacity (designs); 0 disables the cache. GA
    /// variation re-proposes genomes it has already scored (surviving
    /// clones, warm-start duplicates), and each hit skips a full inner
    /// mapping search. Evaluation parallelism is `outer.threads`.
    std::size_t cache_capacity = 4096;
    /// Optional fault injector: when set, every candidate is evaluated
    /// under fault-derated environments (harvest derate, capacitor
    /// ageing, PMIC drift via sim::with_faults), so the search optimizes
    /// for resilience. Not owned; must outlive the explorer. The fault
    /// spec is folded into the memo key, so faulted and fault-free
    /// evaluations never alias.
    const fault::FaultInjector* faults = nullptr;
};

/// One fully evaluated design point.
struct EvaluatedDesign {
    HwCandidate candidate;
    MappingSearchResult mapping;
    std::vector<sim::AnalyticResult> per_env;  ///< one per environment
    double mean_latency_s = 0.0;  ///< average across environments
    double score = 0.0;           ///< objective score (lower better)
    bool feasible = false;        ///< feasible in every environment
    fault::SimFailure failure;    ///< first failure when infeasible
};

/// Result of a full exploration.
struct ExplorationResult {
    EvaluatedDesign best;
    std::vector<EvaluatedDesign> history;  ///< every evaluated design
    std::vector<ParetoPoint> pareto;  ///< (sp, lat) front over history
    int evaluations = 0;
    runtime::EvalCacheStats cache;  ///< memo activity during this run
    double wall_time_s = 0.0;       ///< search wall-clock time
};

/// Bi-level explorer: owns the workload, design space and objective.
class BiLevelExplorer
{
  public:
    BiLevelExplorer(dnn::Model model, DesignSpace space, Objective objective,
                    ExplorerOptions options);

    /// Builds the per-candidate energy environments (one per k_eh).
    std::vector<sim::EnergyEnv> environments(const HwCandidate& candidate)
        const;

    /// Evaluates one candidate end-to-end (mapping search + scoring).
    EvaluatedDesign evaluate(const HwCandidate& candidate) const;

    /// Like evaluate(), but memoized on the design's cache key; the
    /// fitness path of explore()/explore_pareto() goes through here.
    /// Thread-safe. Falls back to evaluate() when the cache is disabled.
    EvaluatedDesign evaluate_cached(const HwCandidate& candidate) const;

    /// Stable memo key of a candidate: a hash of the clamped candidate
    /// plus the evaluation context (workload identity, objective,
    /// environments, energy technology and inner-search options), so
    /// caches could even be shared across explorer instances.
    CacheKey candidate_key(const HwCandidate& candidate) const;

    /// Lifetime memo counters (all explore()/evaluate_cached() calls).
    runtime::EvalCacheStats cache_stats() const;

    /// Runs the full bi-level search. \p warm_starts are additional
    /// candidates injected into the initial population (beyond the
    /// space's defaults, which are always seeded) — e.g. portfolio
    /// seeding with solutions found in subspaces.
    ExplorationResult explore(
        const std::vector<HwCandidate>& warm_starts = {}) const;

    /// Runs a dedicated multi-objective (NSGA-II) search for the
    /// (solar-panel size, latency) Pareto front instead of optimizing a
    /// scalar objective. Returns the evaluated designs on the final
    /// non-dominated front, sorted by panel size. The scalar objective's
    /// constraints are ignored; infeasible designs never enter the front.
    std::vector<EvaluatedDesign> explore_pareto() const;

    /// Decodes a normalized gene vector into a (clamped) candidate.
    /// Gene order: [solar, log-capacitance, arch, log-PE, log-cache].
    HwCandidate decode(const std::vector<double>& genes) const;

    /// Encodes a candidate back into normalized genes (inverse of
    /// decode, up to clamping); used to warm-start the GA with the
    /// space's frozen defaults.
    std::vector<double> encode(const HwCandidate& candidate) const;

    /// Number of genes used by the encoding (always 5; frozen knobs are
    /// ignored during decode).
    static constexpr int kGeneCount = 5;

    const dnn::Model& model() const { return model_; }
    const DesignSpace& space() const { return space_; }
    const Objective& objective() const { return objective_; }
    const ExplorerOptions& options() const { return options_; }

  private:
    dnn::Model model_;
    DesignSpace space_;
    Objective objective_;
    ExplorerOptions options_;
    StableHash context_hash_;  ///< premixed non-candidate inputs
    mutable std::unique_ptr<runtime::EvalCache<EvaluatedDesign>> cache_;
};

}  // namespace chrysalis::search

#endif  // CHRYSALIS_SEARCH_BILEVEL_EXPLORER_HPP

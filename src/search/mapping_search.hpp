/// \file
/// SW-level mapping search (the inner level of the bi-level strategy,
/// §III-C).
///
/// Given a model, an inference hardware configuration and one or more
/// energy environments, finds per-layer intermittent mappings (dataflow
/// taxonomy + InterTempMap chunk counts) minimizing total energy E_all —
/// which, by Eq. 7, also minimizes end-to-end latency — subject to the
/// per-cycle feasibility constraint E_tile <= E_available (Eq. 8) holding
/// in *every* supplied environment (the paper requires the system to run
/// in both the brighter and the darker environment).
///
/// Two strategies are provided: bounded exhaustive enumeration per layer
/// (layers are independent given the hardware and environments) and a
/// GAMMA-style per-layer genetic search for very large tiling spaces.

#ifndef CHRYSALIS_SEARCH_MAPPING_SEARCH_HPP
#define CHRYSALIS_SEARCH_MAPPING_SEARCH_HPP

#include <cstdint>
#include <vector>

#include "dataflow/cost_model.hpp"
#include "dnn/model.hpp"
#include "fault/failure.hpp"
#include "hw/inference_hardware.hpp"
#include "sim/analytic_evaluator.hpp"

namespace chrysalis::search {

/// Controls for the SW-level search.
struct MappingSearchOptions {
    enum class Strategy { kExhaustive, kGenetic };

    Strategy strategy = Strategy::kExhaustive;
    std::size_t max_candidates_per_dim = 6;  ///< exhaustive bound
    int ga_population = 16;                  ///< genetic strategy only
    int ga_generations = 8;
    std::uint64_t seed = 1;
};

/// Result of the SW-level search.
struct MappingSearchResult {
    bool feasible = false;  ///< all layers satisfy Eq. 8 in all envs,
                            ///< and the model fits the hardware's NVM
    std::vector<dataflow::LayerMapping> mappings;  ///< one per layer
    dataflow::ModelCost cost;   ///< cost under the chosen mappings
    double violation_j = 0.0;   ///< total Eq. 8 overshoot when infeasible
    fault::SimFailure failure;  ///< why the search failed, when infeasible
    std::int64_t evaluations = 0;  ///< layer-cost evaluations performed
};

/// Runs the SW-level mapping search.
/// \param envs environments the design must run in (feasibility must hold
///        in each; typically the brighter and darker presets).
MappingSearchResult search_mappings(const dnn::Model& model,
                                    const hw::InferenceHardware& hardware,
                                    const std::vector<sim::EnergyEnv>& envs,
                                    const MappingSearchOptions& options);

}  // namespace chrysalis::search

#endif  // CHRYSALIS_SEARCH_MAPPING_SEARCH_HPP

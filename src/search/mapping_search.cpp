#include "search/mapping_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "dataflow/tiling.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chrysalis::search {

namespace {

/// Worst-case Eq. 8 overshoot of a layer's tiles across all environments;
/// 0 when the layer is feasible everywhere.
double
layer_violation(const dataflow::LayerCost& cost,
                const std::vector<sim::EnergyEnv>& envs)
{
    if (!cost.feasible)
        return std::numeric_limits<double>::infinity();
    double worst = 0.0;
    for (const auto& env : envs) {
        if (sim::effective_power(env) <= 0.0)
            return std::numeric_limits<double>::infinity();
        const double budget = sim::cycle_budget(env, cost.tile_time_s());
        worst = std::max(worst, cost.tile_energy_j() - budget);
    }
    return std::max(0.0, worst);
}

/// Scores one (layer, mapping): first by feasibility, then by energy.
struct ScoredMapping {
    dataflow::LayerMapping mapping;
    dataflow::LayerCost cost;
    double violation = std::numeric_limits<double>::infinity();

    bool
    better_than(const ScoredMapping& other) const
    {
        // Feasible dominates infeasible; then lower violation; then lower
        // energy; then fewer tiles (less checkpoint pressure headroom).
        if ((violation == 0.0) != (other.violation == 0.0))
            return violation == 0.0;
        if (violation != other.violation)
            return violation < other.violation;
        const double mine = cost.total_energy_j();
        const double theirs = other.cost.total_energy_j();
        if (mine != theirs)
            return mine < theirs;
        return cost.n_tile < other.cost.n_tile;
    }
};

ScoredMapping
score_mapping(const dnn::Layer& layer, const dataflow::LayerMapping& mapping,
              const dataflow::CostParams& params,
              const std::vector<sim::EnergyEnv>& envs)
{
    ScoredMapping scored;
    scored.mapping = mapping;
    scored.cost = dataflow::analyze_layer(layer, mapping, params);
    scored.violation = scored.cost.feasible
        ? layer_violation(scored.cost, envs)
        : std::numeric_limits<double>::infinity();
    return scored;
}

ScoredMapping
search_layer_exhaustive(const dnn::Layer& layer,
                        const std::vector<dataflow::Dataflow>& dataflows,
                        const dataflow::CostParams& params,
                        const std::vector<sim::EnergyEnv>& envs,
                        const MappingSearchOptions& options,
                        std::int64_t& evaluations)
{
    const auto candidates = dataflow::enumerate_mappings(
        layer, dataflows, options.max_candidates_per_dim);
    ScoredMapping best;
    bool first = true;
    for (const auto& mapping : candidates) {
        ScoredMapping scored = score_mapping(layer, mapping, params, envs);
        ++evaluations;
        if (first || scored.better_than(best)) {
            best = std::move(scored);
            first = false;
        }
    }
    if (first)
        panic("search_layer_exhaustive: no candidates for ", layer.name);
    return best;
}

ScoredMapping
search_layer_genetic(const dnn::Layer& layer,
                     const std::vector<dataflow::Dataflow>& dataflows,
                     const dataflow::CostParams& params,
                     const std::vector<sim::EnergyEnv>& envs,
                     const MappingSearchOptions& options,
                     std::int64_t& evaluations, Rng& rng)
{
    // GAMMA-style: individuals are (dataflow index, chunk-count exponents).
    const auto random_mapping = [&]() {
        dataflow::LayerMapping mapping;
        mapping.dataflow = dataflows[static_cast<std::size_t>(
            rng.uniform_int(0,
                            static_cast<std::int64_t>(dataflows.size()) -
                                1))];
        mapping.tiles_k = rng.uniform_int(1, layer.dims.k);
        mapping.tiles_y = rng.uniform_int(1, layer.dims.y);
        mapping.tiles_n = rng.uniform_int(1, layer.dims.n);
        return mapping;
    };
    const auto mutate = [&](dataflow::LayerMapping mapping) {
        switch (rng.uniform_int(0, 3)) {
          case 0:
            mapping.dataflow = dataflows[static_cast<std::size_t>(
                rng.uniform_int(
                    0, static_cast<std::int64_t>(dataflows.size()) - 1))];
            break;
          case 1:
            mapping.tiles_k = std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       std::llround(static_cast<double>(mapping.tiles_k) *
                                    rng.uniform(0.5, 2.0))));
            break;
          case 2:
            mapping.tiles_y = std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       std::llround(static_cast<double>(mapping.tiles_y) *
                                    rng.uniform(0.5, 2.0))));
            break;
          default:
            mapping.tiles_n = std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       std::llround(static_cast<double>(mapping.tiles_n) *
                                    rng.uniform(0.5, 2.0))));
            break;
        }
        mapping.clamp_to(layer);
        return mapping;
    };

    std::vector<ScoredMapping> population;
    population.reserve(static_cast<std::size_t>(options.ga_population));
    for (int i = 0; i < options.ga_population; ++i) {
        population.push_back(
            score_mapping(layer, random_mapping(), params, envs));
        ++evaluations;
    }
    const auto better = [](const ScoredMapping& a, const ScoredMapping& b) {
        return a.better_than(b);
    };
    for (int gen = 1; gen < options.ga_generations; ++gen) {
        std::sort(population.begin(), population.end(), better);
        const std::size_t keep = population.size() / 2;
        for (std::size_t i = keep; i < population.size(); ++i) {
            const auto& parent =
                population[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(keep) - 1))];
            population[i] =
                score_mapping(layer, mutate(parent.mapping), params, envs);
            ++evaluations;
        }
    }
    return *std::min_element(population.begin(), population.end(), better);
}

}  // namespace

MappingSearchResult
search_mappings(const dnn::Model& model,
                const hw::InferenceHardware& hardware,
                const std::vector<sim::EnergyEnv>& envs,
                const MappingSearchOptions& options)
{
    if (envs.empty())
        fatal("search_mappings: at least one energy environment required");
    OBS_SPAN("search/inner");

    const dataflow::CostParams params = hardware.cost_params();
    const auto dataflows = hardware.supported_dataflows();
    if (dataflows.empty())
        panic("search_mappings: hardware supports no dataflows");

    Rng rng(options.seed);
    MappingSearchResult result;
    result.mappings.reserve(model.layer_count());
    result.feasible = true;

    for (std::size_t i = 0; i < model.layer_count(); ++i) {
        const dnn::Layer& layer = model.layer(i);
        ScoredMapping best =
            options.strategy == MappingSearchOptions::Strategy::kExhaustive
                ? search_layer_exhaustive(layer, dataflows, params, envs,
                                          options, result.evaluations)
                : search_layer_genetic(layer, dataflows, params, envs,
                                       options, result.evaluations, rng);
        if (best.violation > 0.0) {
            result.feasible = false;
            result.violation_j += std::isfinite(best.violation)
                ? best.violation
                : 1e6;
            if (!result.failure) {
                result.failure = fault::make_failure(
                    fault::FailureCode::kTileExceedsCycle,
                    "layer " + std::to_string(i) +
                        ": no mapping satisfies Eq. 8 in every "
                        "environment");
            }
        }
        result.mappings.push_back(best.mapping);
    }

    result.cost = dataflow::analyze_model(model, result.mappings, params);

    // NVM capacity: weights, the worst inter-layer activation pair and
    // the largest checkpoint must all reside in non-volatile storage.
    const std::int64_t capacity = hardware.nvm_capacity_bytes();
    if (capacity > 0) {
        std::int64_t peak_ckpt = 0;
        for (const auto& layer : result.cost.layers)
            peak_ckpt = std::max(peak_ckpt, layer.ckpt_bytes);
        const std::int64_t footprint = model.total_weight_bytes() +
                                       model.peak_activation_bytes() +
                                       peak_ckpt;
        if (footprint > capacity) {
            result.feasible = false;
            // NVM capacity is the structural failure: it overrides any
            // Eq. 8 note because no tiling can fix a model that does not
            // fit non-volatile storage.
            result.failure = fault::make_failure(
                fault::FailureCode::kNvmCapacityExceeded,
                "model footprint " + std::to_string(footprint) +
                    " B exceeds NVM capacity " + std::to_string(capacity) +
                    " B");
        }
    }
    if (obs::MetricsRegistry* registry = obs::metrics()) {
        registry->counter("search/inner/searches").add(1);
        registry->counter("search/inner/evaluations")
            .add(static_cast<std::uint64_t>(result.evaluations));
    }
    return result;
}

}  // namespace chrysalis::search

#include "search/nsga2.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace chrysalis::search {

bool
bi_dominates(const std::array<double, 2>& a, const std::array<double, 2>& b)
{
    return a[0] <= b[0] && a[1] <= b[1] &&
           (a[0] < b[0] || a[1] < b[1]);
}

std::vector<int>
non_dominated_ranks(const std::vector<std::array<double, 2>>& objectives)
{
    const std::size_t n = objectives.size();
    std::vector<int> ranks(n, -1);
    std::vector<int> domination_count(n, 0);
    std::vector<std::vector<std::size_t>> dominated(n);

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (bi_dominates(objectives[i], objectives[j])) {
                dominated[i].push_back(j);
                ++domination_count[j];
            } else if (bi_dominates(objectives[j], objectives[i])) {
                dominated[j].push_back(i);
                ++domination_count[i];
            }
        }
    }

    std::vector<std::size_t> current;
    for (std::size_t i = 0; i < n; ++i) {
        if (domination_count[i] == 0) {
            ranks[i] = 0;
            current.push_back(i);
        }
    }
    int rank = 0;
    while (!current.empty()) {
        std::vector<std::size_t> next;
        for (std::size_t i : current) {
            for (std::size_t j : dominated[i]) {
                if (--domination_count[j] == 0) {
                    ranks[j] = rank + 1;
                    next.push_back(j);
                }
            }
        }
        current = std::move(next);
        ++rank;
    }
    return ranks;
}

std::vector<double>
crowding_distances(const std::vector<std::array<double, 2>>& objectives)
{
    const std::size_t n = objectives.size();
    std::vector<double> distance(n, 0.0);
    if (n <= 2) {
        std::fill(distance.begin(), distance.end(),
                  std::numeric_limits<double>::infinity());
        return distance;
    }
    for (int objective = 0; objective < 2; ++objective) {
        std::vector<std::size_t> order(n);
        for (std::size_t i = 0; i < n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return objectives[a][static_cast<std::size_t>(
                                 objective)] <
                             objectives[b][static_cast<std::size_t>(
                                 objective)];
                  });
        const double span =
            objectives[order.back()][static_cast<std::size_t>(objective)] -
            objectives[order.front()][static_cast<std::size_t>(objective)];
        distance[order.front()] =
            std::numeric_limits<double>::infinity();
        distance[order.back()] = std::numeric_limits<double>::infinity();
        if (span <= 0.0)
            continue;
        for (std::size_t k = 1; k + 1 < n; ++k) {
            const double gap =
                objectives[order[k + 1]][static_cast<std::size_t>(
                    objective)] -
                objectives[order[k - 1]][static_cast<std::size_t>(
                    objective)];
            distance[order[k]] += gap / span;
        }
    }
    return distance;
}

Nsga2Result
optimize_nsga2(int gene_count, const OptimizerOptions& opts,
               const IndexedBiFitnessFn& fitness)
{
    if (gene_count < 1)
        fatal("optimize_nsga2: gene_count must be >= 1");
    if (opts.population < 4)
        fatal("optimize_nsga2: population must be >= 4");
    if (opts.generations < 1)
        fatal("optimize_nsga2: generations must be >= 1");
    if (opts.threads < 0)
        fatal("optimize_nsga2: threads must be >= 0");

    Rng rng(opts.seed);
    runtime::ThreadPool pool(opts.threads);
    Nsga2Result result;

    struct Individual {
        std::vector<double> genes;
        std::array<double, 2> objectives{0.0, 0.0};
        int rank = 0;
        double crowding = 0.0;
    };

    // Scores one pre-drawn genome batch on the pool; history and the
    // returned individuals are reduced in index order, so results are
    // identical at any thread count (see optimizer.cpp).
    const auto evaluate_batch =
        [&](std::vector<std::vector<double>> genomes) {
            const std::size_t base =
                static_cast<std::size_t>(result.evaluations);
            const auto objectives = pool.parallel_map(
                genomes.size(), [&](std::size_t i) {
                    return fitness(base + i, genomes[i]);
                });
            std::vector<Individual> individuals;
            individuals.reserve(genomes.size());
            for (std::size_t i = 0; i < genomes.size(); ++i) {
                ++result.evaluations;
                result.history.push_back({genomes[i], objectives[i]});
                individuals.push_back(
                    {std::move(genomes[i]), objectives[i], 0, 0.0});
            }
            return individuals;
        };

    const auto random_genes = [&]() {
        std::vector<double> genes(static_cast<std::size_t>(gene_count));
        for (auto& gene : genes)
            gene = rng.uniform();
        return genes;
    };

    // Initial population (warm-start seeds honoured).
    std::vector<std::vector<double>> initial;
    initial.reserve(static_cast<std::size_t>(opts.population));
    for (int i = 0; i < opts.population; ++i) {
        if (static_cast<std::size_t>(i) < opts.seed_genes.size()) {
            if (opts.seed_genes[static_cast<std::size_t>(i)].size() !=
                static_cast<std::size_t>(gene_count)) {
                fatal("optimize_nsga2: seed individual has wrong gene "
                      "count");
            }
            initial.push_back(
                opts.seed_genes[static_cast<std::size_t>(i)]);
        } else {
            initial.push_back(random_genes());
        }
    }
    std::vector<Individual> population =
        evaluate_batch(std::move(initial));

    const auto assign_ranks = [&](std::vector<Individual>& group) {
        std::vector<std::array<double, 2>> objectives;
        objectives.reserve(group.size());
        for (const auto& individual : group)
            objectives.push_back(individual.objectives);
        const auto ranks = non_dominated_ranks(objectives);
        for (std::size_t i = 0; i < group.size(); ++i)
            group[i].rank = ranks[i];
        // Crowding per front.
        int max_rank = 0;
        for (int rank : ranks)
            max_rank = std::max(max_rank, rank);
        for (int front = 0; front <= max_rank; ++front) {
            std::vector<std::size_t> members;
            std::vector<std::array<double, 2>> member_objectives;
            for (std::size_t i = 0; i < group.size(); ++i) {
                if (group[i].rank == front) {
                    members.push_back(i);
                    member_objectives.push_back(group[i].objectives);
                }
            }
            const auto distances = crowding_distances(member_objectives);
            for (std::size_t k = 0; k < members.size(); ++k)
                group[members[k]].crowding = distances[k];
        }
    };
    assign_ranks(population);

    const auto better = [](const Individual& a, const Individual& b) {
        if (a.rank != b.rank)
            return a.rank < b.rank;
        return a.crowding > b.crowding;
    };
    const auto tournament = [&]() -> const Individual& {
        const auto& a = population[static_cast<std::size_t>(
            rng.uniform_int(0, opts.population - 1))];
        const auto& b = population[static_cast<std::size_t>(
            rng.uniform_int(0, opts.population - 1))];
        return better(a, b) ? a : b;
    };

    for (int gen = 1; gen < opts.generations; ++gen) {
        OBS_SPAN("nsga2/generation");
        if (obs::MetricsRegistry* registry = obs::metrics())
            registry->counter("search/nsga2/generations").add(1);
        // Offspring via crossover + mutation: all genomes are drawn
        // serially (variation only reads the scored parent population),
        // then the batch is evaluated in parallel.
        std::vector<std::vector<double>> offspring_genomes;
        offspring_genomes.reserve(population.size());
        while (offspring_genomes.size() < population.size()) {
            std::vector<double> genes = tournament().genes;
            if (rng.bernoulli(opts.crossover_rate)) {
                const auto& other = tournament().genes;
                for (std::size_t g = 0; g < genes.size(); ++g) {
                    if (rng.bernoulli(0.5))
                        genes[g] = other[g];
                }
            }
            for (auto& gene : genes) {
                if (rng.bernoulli(opts.mutation_rate)) {
                    gene = clamp(gene + rng.gaussian(
                                            0.0, opts.mutation_sigma),
                                 0.0, 1.0);
                }
            }
            offspring_genomes.push_back(std::move(genes));
        }
        std::vector<Individual> offspring =
            evaluate_batch(std::move(offspring_genomes));

        // Environmental selection from the combined pool.
        std::vector<Individual> combined = std::move(population);
        combined.insert(combined.end(),
                        std::make_move_iterator(offspring.begin()),
                        std::make_move_iterator(offspring.end()));
        assign_ranks(combined);
        std::sort(combined.begin(), combined.end(), better);
        combined.resize(static_cast<std::size_t>(opts.population));
        population = std::move(combined);
        assign_ranks(population);
    }

    // Extract the final front, sorted by the first objective.
    std::vector<Individual> front_members;
    for (const auto& individual : population) {
        if (individual.rank == 0)
            front_members.push_back(individual);
    }
    std::sort(front_members.begin(), front_members.end(),
              [](const Individual& a, const Individual& b) {
                  return a.objectives[0] < b.objectives[0];
              });
    for (auto& individual : front_members) {
        result.front.push_back(
            {std::move(individual.genes), individual.objectives});
    }
    return result;
}

Nsga2Result
optimize_nsga2(int gene_count, const OptimizerOptions& opts,
               const BiFitnessFn& fitness)
{
    const IndexedBiFitnessFn indexed =
        [&fitness](std::size_t, const std::vector<double>& genes) {
            return fitness(genes);
        };
    return optimize_nsga2(gene_count, opts, indexed);
}

}  // namespace chrysalis::search

#include "search/pareto.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace chrysalis::search {

bool
dominates(const ParetoPoint& a, const ParetoPoint& b)
{
    return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

std::vector<ParetoPoint>
pareto_front(std::vector<ParetoPoint> points)
{
    if (points.empty())
        return points;
    // Sort by x ascending, y ascending for ties; then sweep keeping the
    // running y-minimum.
    std::sort(points.begin(), points.end(),
              [](const ParetoPoint& a, const ParetoPoint& b) {
                  return a.x != b.x ? a.x < b.x : a.y < b.y;
              });
    std::vector<ParetoPoint> front;
    double best_y = points.front().y + 1.0;
    for (const auto& point : points) {
        if (point.y < best_y) {
            // Same-x duplicates: the sort guarantees the first (smallest
            // y) wins; later equal-x points have y >= best_y and drop out.
            front.push_back(point);
            best_y = point.y;
        }
    }
    return front;
}

double
hypervolume(const std::vector<ParetoPoint>& front, double ref_x,
            double ref_y)
{
    double volume = 0.0;
    double prev_x = ref_x;
    // Iterate right-to-left (largest x first); each point contributes a
    // rectangle up to the previous point's x.
    for (auto it = front.rbegin(); it != front.rend(); ++it) {
        if (it->x > ref_x || it->y > ref_y)
            panic("hypervolume: front point outside reference box");
        volume += (prev_x - it->x) * (ref_y - it->y);
        prev_x = it->x;
    }
    return volume;
}

}  // namespace chrysalis::search

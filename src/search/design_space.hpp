/// \file
/// Design-space definitions (Tables IV and V) and candidate encoding.
///
/// A HwCandidate is one point in the joint EA/IA design space: the energy
/// subsystem's solar-panel area and capacitor size plus — for the future
/// AuT setup — the accelerator architecture, PE count and per-PE cache
/// size. The DesignSpace describes which knobs are searchable (ablation
/// baselines of Table VI freeze subsets) and their ranges.

#ifndef CHRYSALIS_SEARCH_DESIGN_SPACE_HPP
#define CHRYSALIS_SEARCH_DESIGN_SPACE_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "hw/accelerator.hpp"
#include "hw/msp430_lea.hpp"

namespace chrysalis::search {

/// Which inference hardware family the space targets.
enum class HardwareFamily {
    kMsp430,       ///< existing AuT setup (Table IV): fixed MCU+LEA
    kAccelerator,  ///< future AuT setup (Table V): reconfigurable
};

/// One candidate architecture (the outer-level genome).
struct HwCandidate {
    HardwareFamily family = HardwareFamily::kMsp430;
    double solar_cm2 = 8.0;        ///< A_eh
    double capacitance_f = 100e-6; ///< C
    hw::AcceleratorArch arch = hw::AcceleratorArch::kEyeriss;
    std::int64_t n_pe = 64;             ///< accelerator only
    std::int64_t cache_bytes = 512;     ///< accelerator only (per PE)

    /// Instantiates the inference hardware this candidate describes.
    std::unique_ptr<hw::InferenceHardware> build_hardware() const;

    /// Short description, e.g. "sp=8.0cm2 C=100uF eyeriss pe=64 cache=512".
    std::string describe() const;
};

/// Searchable ranges and frozen defaults.
struct DesignSpace {
    HardwareFamily family = HardwareFamily::kMsp430;

    // Energy subsystem (Table IV/V shared rows).
    bool search_solar = true;
    double solar_min_cm2 = 1.0;
    double solar_max_cm2 = 30.0;
    bool search_capacitor = true;
    double cap_min_f = 1e-6;
    double cap_max_f = 10e-3;

    // Inference subsystem (Table V rows; ignored for kMsp430).
    bool search_arch = false;
    bool search_pe = false;
    std::int64_t pe_min = 1;
    std::int64_t pe_max = 168;
    bool search_cache = false;
    std::int64_t cache_min_bytes = 128;
    std::int64_t cache_max_bytes = 2048;

    // Defaults used when a knob is frozen (the wo/* baselines of
    /// Table VI fix knobs at these values).
    HwCandidate defaults;

    /// Table IV space: MSP430 platform, EH + tiling searched.
    static DesignSpace existing_aut();

    /// Table V space: reconfigurable accelerator, all five knobs searched.
    static DesignSpace future_aut();

    /// Returns a candidate with every frozen knob at its default and every
    /// searchable knob clamped into range.
    HwCandidate clamp(HwCandidate candidate) const;

    /// Number of continuous/int/categorical knobs currently searchable.
    int searchable_knob_count() const;
};

/// Ablation baselines of Table VI: each disables part of the search.
enum class BaselineKind {
    kFull,     ///< CHRYSALIS: everything searched
    kWoCap,    ///< capacitor frozen
    kWoSp,     ///< solar panel frozen (iNAS-style [49])
    kWoEa,     ///< whole energy subsystem frozen ([24], [35])
    kWoPe,     ///< PE count frozen
    kWoCache,  ///< cache size frozen
    kWoIa,     ///< whole inference subsystem frozen
};

/// Short label, e.g. "wo/Cap", "CHRYSALIS".
std::string to_string(BaselineKind kind);

/// All baselines in Table VI order (wo/* first, CHRYSALIS last).
const std::vector<BaselineKind>& all_baselines();

/// Applies a baseline to a design space: freezes the corresponding knobs.
DesignSpace apply_baseline(DesignSpace space, BaselineKind kind);

}  // namespace chrysalis::search

#endif  // CHRYSALIS_SEARCH_DESIGN_SPACE_HPP

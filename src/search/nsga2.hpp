/// \file
/// NSGA-II-style multi-objective optimizer (2 objectives, minimized).
///
/// Figure 6 positions designs on the (solar-panel size, latency) tradeoff
/// curve. The single-objective explorer recovers a front from its search
/// history as a by-product; this dedicated multi-objective GA searches
/// *for* the front: fast non-dominated sorting, crowding-distance
/// selection and the same variation operators as the single-objective GA.

#ifndef CHRYSALIS_SEARCH_NSGA2_HPP
#define CHRYSALIS_SEARCH_NSGA2_HPP

#include <array>
#include <functional>
#include <vector>

#include "search/optimizer.hpp"

namespace chrysalis::search {

/// A bi-objective fitness: returns {f1, f2}, both minimized. Infeasible
/// points should return large values in both coordinates.
using BiFitnessFn =
    std::function<std::array<double, 2>(const std::vector<double>&)>;

/// Bi-objective fitness with the deterministic evaluation index (see
/// IndexedFitnessFn); must be thread-safe when OptimizerOptions::threads
/// != 1.
using IndexedBiFitnessFn = std::function<std::array<double, 2>(
    std::size_t index, const std::vector<double>&)>;

/// One evaluated point of a multi-objective run.
struct BiEvaluatedPoint {
    std::vector<double> genes;
    std::array<double, 2> objectives{0.0, 0.0};
};

/// Result: the non-dominated set of the final population plus history.
struct Nsga2Result {
    std::vector<BiEvaluatedPoint> front;    ///< non-dominated, sorted by f1
    std::vector<BiEvaluatedPoint> history;  ///< every evaluation
    int evaluations = 0;
};

/// Pareto dominance for minimization (strictly better in >= 1 coord).
bool bi_dominates(const std::array<double, 2>& a,
                  const std::array<double, 2>& b);

/// Fast non-dominated sort: returns the front index (0 = best) of each
/// point.
std::vector<int> non_dominated_ranks(
    const std::vector<std::array<double, 2>>& objectives);

/// Crowding distance within one front (same-index subset of points).
/// Boundary points get +infinity.
std::vector<double> crowding_distances(
    const std::vector<std::array<double, 2>>& objectives);

/// Runs the NSGA-II loop. Reuses OptimizerOptions for budget/variation
/// parameters (seed_genes are honoured, population batches are evaluated
/// on `opts.threads` pool workers with index-ordered reduction).
Nsga2Result optimize_nsga2(int gene_count, const OptimizerOptions& opts,
                           const IndexedBiFitnessFn& fitness);
Nsga2Result optimize_nsga2(int gene_count, const OptimizerOptions& opts,
                           const BiFitnessFn& fitness);

}  // namespace chrysalis::search

#endif  // CHRYSALIS_SEARCH_NSGA2_HPP

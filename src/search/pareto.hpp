/// \file
/// Pareto-front utilities for the (latency, solar-panel-size) tradeoff
/// plots of Figure 6.

#ifndef CHRYSALIS_SEARCH_PARETO_HPP
#define CHRYSALIS_SEARCH_PARETO_HPP

#include <cstddef>
#include <vector>

namespace chrysalis::search {

/// A 2-D point where *both* coordinates are minimized; `tag` links back to
/// the originating design (e.g. an index into an evaluation history).
struct ParetoPoint {
    double x = 0.0;       ///< e.g. solar-panel size [cm^2]
    double y = 0.0;       ///< e.g. latency [s]
    std::size_t tag = 0;  ///< caller-defined back-reference
};

/// True when \p a dominates \p b (a <= b in both coords, < in at least
/// one).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Extracts the Pareto-optimal subset (min-min), sorted by ascending x.
/// Duplicate points keep a single representative.
std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

/// Hypervolume indicator w.r.t. a reference point (both coords of every
/// front point must be <= the reference). A larger value means a better
/// front. \pre points form a valid front (use pareto_front first).
double hypervolume(const std::vector<ParetoPoint>& front, double ref_x,
                   double ref_y);

}  // namespace chrysalis::search

#endif  // CHRYSALIS_SEARCH_PARETO_HPP

/// \file
/// Objective functions π (§IV): the three design targets evaluated in the
/// paper — minimize latency under a solar-panel-size constraint ("lat"),
/// minimize solar-panel size under a latency constraint ("sp"), and
/// minimize the latency x panel-size product ("lat*sp", the space-time
/// cost / throughput-per-area metric).
///
/// All objectives are scored lower-is-better; constraint violations and
/// infeasibility are handled with graded penalties so the genetic search
/// can climb back into the feasible region.

#ifndef CHRYSALIS_SEARCH_OBJECTIVE_HPP
#define CHRYSALIS_SEARCH_OBJECTIVE_HPP

#include <string>

#include "fault/failure.hpp"

namespace chrysalis::search {

/// The three objective kinds of §IV.
enum class ObjectiveKind {
    kLatency,     ///< min latency s.t. solar panel <= sp_limit
    kSolarPanel,  ///< min solar panel s.t. latency <= lat_limit
    kLatSp,       ///< min latency * solar panel
};

/// Short label: "lat", "sp", "lat*sp".
std::string to_string(ObjectiveKind kind);

/// Objective demand function π with its constraint parameters.
struct Objective {
    ObjectiveKind kind = ObjectiveKind::kLatSp;
    double sp_limit_cm2 = 20.0;  ///< constraint for kLatency
    double lat_limit_s = 10.0;   ///< constraint for kSolarPanel

    /// Lower-is-better score for a feasible design point.
    /// \param latency_s mean end-to-end inference latency
    /// \param solar_cm2 solar-panel area
    double score(double latency_s, double solar_cm2) const;

    /// Score for an infeasible point: a large base penalty plus the
    /// infeasibility magnitude so the optimizer can still rank failures.
    /// Equivalent to penalty_score() with a kMappingInfeasible failure;
    /// prefer penalty_score() when a failure code is known.
    double infeasible_score(double violation_magnitude) const;

    /// Graded penalty for a failed evaluation: failures are ranked first
    /// by their code's `fault::penalty_rank` (a design that merely
    /// violates Eq. 8 outranks one whose mapping never fit, which
    /// outranks a crashed evaluation), then by \p violation_magnitude
    /// within the same code. Every penalty dominates every feasible and
    /// constraint-violating score, so a faulting evaluation degrades GA
    /// fitness instead of aborting the search. \pre failure.code != kNone.
    double penalty_score(const fault::SimFailure& failure,
                         double violation_magnitude = 0.0) const;

    /// True when the point satisfies the objective's hard constraint.
    bool satisfies_constraint(double latency_s, double solar_cm2) const;
};

}  // namespace chrysalis::search

#endif  // CHRYSALIS_SEARCH_OBJECTIVE_HPP

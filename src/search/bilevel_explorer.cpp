#include "search/bilevel_explorer.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "common/math_utils.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chrysalis::search {

BiLevelExplorer::BiLevelExplorer(dnn::Model model, DesignSpace space,
                                 Objective objective,
                                 ExplorerOptions options)
    : model_(std::move(model)), space_(std::move(space)),
      objective_(objective), options_(std::move(options))
{
    if (options_.k_eh_envs.empty())
        fatal("BiLevelExplorer: at least one environment required");
    for (double k_eh : options_.k_eh_envs) {
        if (k_eh <= 0.0)
            fatal("BiLevelExplorer: k_eh must be > 0, got ", k_eh);
    }

    // Premix everything that shapes an evaluation besides the candidate
    // itself, so candidate_key() only has to fold in the genome.
    context_hash_.add(std::string_view(model_.name()))
        .add(model_.element_bytes())
        .add(model_.input().c)
        .add(model_.input().h)
        .add(model_.input().w)
        .add(static_cast<std::uint64_t>(model_.layer_count()))
        .add(model_.total_params())
        .add(model_.total_macs())
        .add(model_.total_data_bytes());
    context_hash_.add(static_cast<int>(objective_.kind))
        .add(objective_.sp_limit_cm2)
        .add(objective_.lat_limit_s);
    context_hash_.add_range(options_.k_eh_envs);
    const auto& cap = options_.capacitor_base;
    context_hash_.add(cap.capacitance_f)
        .add(cap.rated_voltage_v)
        .add(cap.k_cap)
        .add(cap.initial_voltage_v)
        .add(cap.temperature_c)
        .add(cap.leakage_doubling_c);
    const auto& pmic = options_.pmic;
    context_hash_.add(pmic.v_on)
        .add(pmic.v_off)
        .add(pmic.charge_efficiency)
        .add(pmic.discharge_efficiency)
        .add(pmic.quiescent_power_w);
    const auto& inner = options_.inner;
    context_hash_.add(static_cast<int>(inner.strategy))
        .add(static_cast<std::uint64_t>(inner.max_candidates_per_dim))
        .add(inner.ga_population)
        .add(inner.ga_generations)
        .add(inner.seed);
    // Faulted and fault-free evaluations must never share a memo entry.
    context_hash_.add(options_.faults != nullptr);
    if (options_.faults != nullptr) {
        options_.faults->spec().validate();
        options_.faults->add_to_hash(context_hash_);
    }

    if (options_.cache_capacity > 0) {
        cache_ = std::make_unique<runtime::EvalCache<EvaluatedDesign>>(
            options_.cache_capacity);
    }
}

CacheKey
BiLevelExplorer::candidate_key(const HwCandidate& raw) const
{
    const HwCandidate candidate = space_.clamp(raw);
    StableHash hash = context_hash_;
    hash.add(static_cast<int>(candidate.family))
        .add(candidate.solar_cm2)
        .add(candidate.capacitance_f)
        .add(static_cast<int>(candidate.arch))
        .add(candidate.n_pe)
        .add(candidate.cache_bytes);
    return hash.key();
}

EvaluatedDesign
BiLevelExplorer::evaluate_cached(const HwCandidate& raw) const
{
    if (!cache_)
        return evaluate(raw);
    const HwCandidate candidate = space_.clamp(raw);
    return cache_->get_or_compute(candidate_key(candidate),
                                  [&] { return evaluate(candidate); });
}

runtime::EvalCacheStats
BiLevelExplorer::cache_stats() const
{
    return cache_ ? cache_->stats() : runtime::EvalCacheStats{};
}

std::vector<sim::EnergyEnv>
BiLevelExplorer::environments(const HwCandidate& candidate) const
{
    std::vector<sim::EnergyEnv> envs;
    envs.reserve(options_.k_eh_envs.size());
    for (double k_eh : options_.k_eh_envs) {
        sim::EnergyEnv env;
        env.p_eh_w = candidate.solar_cm2 * k_eh;  // Eq. 1
        env.capacitor = options_.capacitor_base;
        env.capacitor.capacitance_f = candidate.capacitance_f;
        env.pmic = options_.pmic;
        if (options_.faults != nullptr)
            env = sim::with_faults(env, *options_.faults);
        envs.push_back(env);
    }
    return envs;
}

EvaluatedDesign
BiLevelExplorer::evaluate(const HwCandidate& raw_candidate) const
{
    EvaluatedDesign design;
    design.candidate = space_.clamp(raw_candidate);
    const auto hardware = design.candidate.build_hardware();
    const auto envs = environments(design.candidate);

    design.mapping =
        search_mappings(model_, *hardware, envs, options_.inner);

    design.feasible = design.mapping.feasible;
    design.failure = design.mapping.failure;
    double latency_sum = 0.0;
    double violation = design.mapping.violation_j;
    for (const auto& env : envs) {
        sim::AnalyticResult eval =
            sim::analytic_evaluate(design.mapping.cost, env);
        if (eval.feasible) {
            latency_sum += eval.latency_s;
        } else {
            design.feasible = false;
            violation += std::max(
                0.0, eval.max_tile_energy_j - eval.cycle_energy_j);
            // Keep the worst-ranked failure so the penalty band reflects
            // the hardest problem with this design.
            if (fault::penalty_rank(eval.failure.code) >
                fault::penalty_rank(design.failure.code)) {
                design.failure = eval.failure;
            }
        }
        design.per_env.push_back(std::move(eval));
    }

    if (design.feasible) {
        design.mean_latency_s =
            latency_sum / static_cast<double>(envs.size());
        design.score = objective_.score(design.mean_latency_s,
                                        design.candidate.solar_cm2);
    } else {
        design.mean_latency_s = 0.0;
        if (!design.failure) {
            design.failure = fault::make_failure(
                fault::FailureCode::kMappingInfeasible,
                "design infeasible in at least one environment");
        }
        design.score = objective_.penalty_score(design.failure, violation);
    }
    return design;
}

HwCandidate
BiLevelExplorer::decode(const std::vector<double>& genes) const
{
    if (genes.size() != static_cast<std::size_t>(kGeneCount))
        panic("BiLevelExplorer::decode: expected ", kGeneCount,
              " genes, got ", genes.size());
    const auto lerp_log = [](double gene, double lo, double hi) {
        return lo * std::pow(hi / lo, gene);
    };

    HwCandidate candidate;
    candidate.family = space_.family;
    candidate.solar_cm2 =
        space_.solar_min_cm2 +
        genes[0] * (space_.solar_max_cm2 - space_.solar_min_cm2);
    candidate.capacitance_f =
        lerp_log(genes[1], space_.cap_min_f, space_.cap_max_f);
    candidate.arch = genes[2] < 0.5 ? hw::AcceleratorArch::kTpu
                                    : hw::AcceleratorArch::kEyeriss;
    candidate.n_pe = static_cast<std::int64_t>(std::llround(
        lerp_log(genes[3], static_cast<double>(space_.pe_min),
                 static_cast<double>(space_.pe_max))));
    candidate.cache_bytes = static_cast<std::int64_t>(std::llround(
        lerp_log(genes[4], static_cast<double>(space_.cache_min_bytes),
                 static_cast<double>(space_.cache_max_bytes))));
    return space_.clamp(candidate);
}

std::vector<double>
BiLevelExplorer::encode(const HwCandidate& raw) const
{
    const HwCandidate candidate = space_.clamp(raw);
    const auto unlerp_log = [](double value, double lo, double hi) {
        return clamp(std::log(value / lo) / std::log(hi / lo), 0.0, 1.0);
    };
    std::vector<double> genes(static_cast<std::size_t>(kGeneCount), 0.5);
    genes[0] = clamp((candidate.solar_cm2 - space_.solar_min_cm2) /
                         (space_.solar_max_cm2 - space_.solar_min_cm2),
                     0.0, 1.0);
    genes[1] = unlerp_log(candidate.capacitance_f, space_.cap_min_f,
                          space_.cap_max_f);
    genes[2] = candidate.arch == hw::AcceleratorArch::kTpu ? 0.25 : 0.75;
    genes[3] = unlerp_log(static_cast<double>(candidate.n_pe),
                          static_cast<double>(space_.pe_min),
                          static_cast<double>(space_.pe_max));
    genes[4] = unlerp_log(static_cast<double>(candidate.cache_bytes),
                          static_cast<double>(space_.cache_min_bytes),
                          static_cast<double>(space_.cache_max_bytes));
    return genes;
}

ExplorationResult
BiLevelExplorer::explore(const std::vector<HwCandidate>& warm_starts) const
{
    obs::SpanTimer timer("search/explore");
    const runtime::EvalCacheStats cache_before = cache_stats();
    ExplorationResult result;
    const auto expected = static_cast<std::size_t>(
        options_.outer.population * options_.outer.generations);

    // The optimizer may call the fitness from several pool threads;
    // designs are collected under a mutex tagged with their evaluation
    // index and ordered afterwards, so the history is identical to the
    // serial path at any thread count.
    Mutex evaluated_mutex;
    std::vector<std::pair<std::size_t, EvaluatedDesign>> evaluated;
    evaluated.reserve(expected);
    const IndexedFitnessFn fitness = [&](std::size_t index,
                                         const std::vector<double>& genes) {
        EvaluatedDesign design = evaluate_cached(decode(genes));
        const double score = design.score;
        MutexLock lock(evaluated_mutex);
        evaluated.emplace_back(index, std::move(design));
        return score;
    };

    // Warm-start with the space's frozen defaults so a search over a
    // superset space never scores worse than the frozen configuration,
    // plus any caller-provided portfolio seeds.
    OptimizerOptions outer = options_.outer;
    outer.seed_genes.push_back(encode(space_.defaults));
    for (const auto& candidate : warm_starts)
        outer.seed_genes.push_back(encode(candidate));

    const OptimizeResult opt =
        optimize(options_.strategy, kGeneCount, outer, fitness);
    result.evaluations = opt.evaluations;

    std::sort(evaluated.begin(), evaluated.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    result.history.reserve(evaluated.size());
    for (auto& entry : evaluated)
        result.history.push_back(std::move(entry.second));

    // Recover the best design from the history (scores match 1:1).
    const auto best_it = std::min_element(
        result.history.begin(), result.history.end(),
        [](const EvaluatedDesign& a, const EvaluatedDesign& b) {
            return a.score < b.score;
        });
    if (best_it == result.history.end())
        panic("BiLevelExplorer::explore: empty history");
    result.best = *best_it;

    // Pareto front over feasible designs: (solar panel, latency).
    std::vector<ParetoPoint> points;
    for (std::size_t i = 0; i < result.history.size(); ++i) {
        const auto& design = result.history[i];
        if (design.feasible) {
            points.push_back({design.candidate.solar_cm2,
                              design.mean_latency_s, i});
        }
    }
    result.pareto = pareto_front(std::move(points));
    result.cache = cache_stats() - cache_before;
    result.wall_time_s = timer.elapsed_s();
    if (obs::MetricsRegistry* registry = obs::metrics()) {
        registry->counter("search/explorations").add(1);
        registry->counter("search/evaluations")
            .add(static_cast<std::uint64_t>(result.evaluations));
        result.cache.publish(*registry);
        if (options_.faults != nullptr)
            options_.faults->publish(*registry);
    }
    return result;
}

std::vector<EvaluatedDesign>
BiLevelExplorer::explore_pareto() const
{
    OBS_SPAN("search/explore_pareto");
    const runtime::EvalCacheStats cache_before = cache_stats();
    Mutex evaluated_mutex;
    std::vector<std::pair<std::size_t, EvaluatedDesign>> evaluated;
    evaluated.reserve(static_cast<std::size_t>(
        options_.outer.population * options_.outer.generations));

    constexpr double kInfeasible = 1e12;
    const IndexedBiFitnessFn fitness =
        [&](std::size_t index,
            const std::vector<double>& genes) -> std::array<double, 2> {
        EvaluatedDesign design = evaluate_cached(decode(genes));
        std::array<double, 2> objectives{kInfeasible, kInfeasible};
        if (design.feasible) {
            objectives = {design.candidate.solar_cm2,
                          design.mean_latency_s};
        }
        MutexLock lock(evaluated_mutex);
        evaluated.emplace_back(index, std::move(design));
        return objectives;
    };

    OptimizerOptions outer = options_.outer;
    outer.seed_genes.push_back(encode(space_.defaults));
    const Nsga2Result result =
        optimize_nsga2(kGeneCount, outer, fitness);

    // Deterministic evaluation-index order == result.history order.
    std::sort(evaluated.begin(), evaluated.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<EvaluatedDesign> history;
    history.reserve(evaluated.size());
    for (auto& entry : evaluated)
        history.push_back(std::move(entry.second));

    // Map front points back to the evaluated designs (history order ==
    // evaluation order == result.history order).
    std::vector<EvaluatedDesign> front;
    for (const auto& point : result.front) {
        if (point.objectives[0] >= kInfeasible)
            continue;
        // Find the matching history entry by objectives + genes.
        for (std::size_t i = 0; i < result.history.size(); ++i) {
            if (result.history[i].genes == point.genes) {
                front.push_back(history[i]);
                break;
            }
        }
    }
    if (obs::MetricsRegistry* registry = obs::metrics()) {
        registry->counter("search/explorations").add(1);
        registry->counter("search/evaluations").add(history.size());
        (cache_stats() - cache_before).publish(*registry);
        if (options_.faults != nullptr)
            options_.faults->publish(*registry);
    }
    return front;
}

}  // namespace chrysalis::search

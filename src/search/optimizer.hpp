/// \file
/// Black-box optimizers over a normalized gene vector.
///
/// The HW-level optimizer of the CHRYSALIS Explorer ("implemented ... based
/// on the open-source library Optuna and ... a genetic algorithm", §III-D)
/// is reproduced as a tournament genetic algorithm with elitism, plus
/// random-search and grid-search strategies used as exploration baselines
/// and in ablation benches. Genes live in [0, 1]^n; the caller decodes
/// them into a design point.

#ifndef CHRYSALIS_SEARCH_OPTIMIZER_HPP
#define CHRYSALIS_SEARCH_OPTIMIZER_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace chrysalis::search {

/// Fitness callback: lower is better. Genes are in [0, 1].
using FitnessFn = std::function<double(const std::vector<double>&)>;

/// Fitness callback that additionally receives the deterministic
/// evaluation index (the position the point will occupy in
/// `OptimizeResult::history`). When `OptimizerOptions::threads != 1` the
/// optimizer invokes this concurrently from pool threads, so the callback
/// must be thread-safe; the index lets callers record side products
/// (e.g. fully evaluated designs) in an order independent of thread
/// scheduling.
using IndexedFitnessFn =
    std::function<double(std::size_t index, const std::vector<double>&)>;

/// Options shared by all optimizer strategies.
struct OptimizerOptions {
    int population = 24;       ///< GA population / batch size
    int generations = 16;      ///< GA generations (budget = pop * gens)
    double crossover_rate = 0.7;
    double mutation_rate = 0.3;   ///< per-gene mutation probability
    double mutation_sigma = 0.15; ///< gaussian mutation step
    int tournament_size = 3;
    int elitism = 2;           ///< individuals copied unchanged per gen
    std::uint64_t seed = 1;
    /// Fitness-evaluation parallelism: 0 = all hardware threads, 1 =
    /// strictly serial (the historical code path). Any value yields
    /// bit-identical results for a fixed seed: all RNG is drawn on the
    /// caller thread in serial order and batches reduce in index order.
    int threads = 0;
    /// Warm-start individuals injected into the initial GA population
    /// (e.g. the frozen-default design, so a search over a superset space
    /// never loses to its own subspace). Ignored by random/grid.
    std::vector<std::vector<double>> seed_genes;
};

/// One evaluated point in the optimization history.
struct EvaluatedPoint {
    std::vector<double> genes;
    double score = 0.0;
};

/// Optimization outcome.
struct OptimizeResult {
    std::vector<double> best_genes;
    double best_score = 0.0;
    int evaluations = 0;
    std::vector<EvaluatedPoint> history;  ///< every evaluated point
};

/// Strategy selector.
enum class OptimizerStrategy { kGenetic, kRandom, kGrid };

/// Short label: "ga", "random", "grid".
std::string to_string(OptimizerStrategy strategy);

/// Tournament GA with uniform crossover, gaussian mutation and elitism.
/// Fitness batches (initial population, per-generation offspring) are
/// evaluated on a runtime::ThreadPool of `opts.threads` workers.
OptimizeResult optimize_genetic(int gene_count, const OptimizerOptions& opts,
                                const IndexedFitnessFn& fitness);
OptimizeResult optimize_genetic(int gene_count, const OptimizerOptions& opts,
                                const FitnessFn& fitness);

/// Uniform random sampling with the same evaluation budget as the GA.
OptimizeResult optimize_random(int gene_count, const OptimizerOptions& opts,
                               const IndexedFitnessFn& fitness);
OptimizeResult optimize_random(int gene_count, const OptimizerOptions& opts,
                               const FitnessFn& fitness);

/// Full-factorial grid with per-dimension resolution chosen to fit the
/// budget (resolution = floor(budget^(1/n)), at least 2).
OptimizeResult optimize_grid(int gene_count, const OptimizerOptions& opts,
                             const IndexedFitnessFn& fitness);
OptimizeResult optimize_grid(int gene_count, const OptimizerOptions& opts,
                             const FitnessFn& fitness);

/// Dispatches on \p strategy.
OptimizeResult optimize(OptimizerStrategy strategy, int gene_count,
                        const OptimizerOptions& opts,
                        const IndexedFitnessFn& fitness);
OptimizeResult optimize(OptimizerStrategy strategy, int gene_count,
                        const OptimizerOptions& opts,
                        const FitnessFn& fitness);

}  // namespace chrysalis::search

#endif  // CHRYSALIS_SEARCH_OPTIMIZER_HPP

/// \file
/// Black-box optimizers over a normalized gene vector.
///
/// The HW-level optimizer of the CHRYSALIS Explorer ("implemented ... based
/// on the open-source library Optuna and ... a genetic algorithm", §III-D)
/// is reproduced as a tournament genetic algorithm with elitism, plus
/// random-search and grid-search strategies used as exploration baselines
/// and in ablation benches. Genes live in [0, 1]^n; the caller decodes
/// them into a design point.

#ifndef CHRYSALIS_SEARCH_OPTIMIZER_HPP
#define CHRYSALIS_SEARCH_OPTIMIZER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace chrysalis::search {

/// Fitness callback: lower is better. Genes are in [0, 1].
using FitnessFn = std::function<double(const std::vector<double>&)>;

/// Options shared by all optimizer strategies.
struct OptimizerOptions {
    int population = 24;       ///< GA population / batch size
    int generations = 16;      ///< GA generations (budget = pop * gens)
    double crossover_rate = 0.7;
    double mutation_rate = 0.3;   ///< per-gene mutation probability
    double mutation_sigma = 0.15; ///< gaussian mutation step
    int tournament_size = 3;
    int elitism = 2;           ///< individuals copied unchanged per gen
    std::uint64_t seed = 1;
    /// Warm-start individuals injected into the initial GA population
    /// (e.g. the frozen-default design, so a search over a superset space
    /// never loses to its own subspace). Ignored by random/grid.
    std::vector<std::vector<double>> seed_genes;
};

/// One evaluated point in the optimization history.
struct EvaluatedPoint {
    std::vector<double> genes;
    double score = 0.0;
};

/// Optimization outcome.
struct OptimizeResult {
    std::vector<double> best_genes;
    double best_score = 0.0;
    int evaluations = 0;
    std::vector<EvaluatedPoint> history;  ///< every evaluated point
};

/// Strategy selector.
enum class OptimizerStrategy { kGenetic, kRandom, kGrid };

/// Short label: "ga", "random", "grid".
std::string to_string(OptimizerStrategy strategy);

/// Tournament GA with uniform crossover, gaussian mutation and elitism.
OptimizeResult optimize_genetic(int gene_count, const OptimizerOptions& opts,
                                const FitnessFn& fitness);

/// Uniform random sampling with the same evaluation budget as the GA.
OptimizeResult optimize_random(int gene_count, const OptimizerOptions& opts,
                               const FitnessFn& fitness);

/// Full-factorial grid with per-dimension resolution chosen to fit the
/// budget (resolution = floor(budget^(1/n)), at least 2).
OptimizeResult optimize_grid(int gene_count, const OptimizerOptions& opts,
                             const FitnessFn& fitness);

/// Dispatches on \p strategy.
OptimizeResult optimize(OptimizerStrategy strategy, int gene_count,
                        const OptimizerOptions& opts,
                        const FitnessFn& fitness);

}  // namespace chrysalis::search

#endif  // CHRYSALIS_SEARCH_OPTIMIZER_HPP

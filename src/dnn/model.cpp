#include "dnn/model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace chrysalis::dnn {

Model::Model(std::string name, InputShape input, int element_bytes)
    : name_(std::move(name)), input_(input), element_bytes_(element_bytes)
{
    if (input_.c < 1 || input_.h < 1 || input_.w < 1)
        fatal("Model ", name_, ": input shape extents must be >= 1");
    if (element_bytes_ < 1 || element_bytes_ > 8)
        fatal("Model ", name_, ": element_bytes must lie in [1, 8], got ",
              element_bytes_);
}

void
Model::add_layer(Layer layer)
{
    layers_.push_back(std::move(layer));
}

const Layer&
Model::layer(std::size_t index) const
{
    if (index >= layers_.size())
        panic("Model::layer: index ", index, " out of range (",
              layers_.size(), " layers)");
    return layers_[index];
}

std::size_t
Model::weight_layer_count() const
{
    return static_cast<std::size_t>(
        std::count_if(layers_.begin(), layers_.end(),
                      [](const Layer& l) { return l.has_weights(); }));
}

std::int64_t
Model::total_params() const
{
    std::int64_t total = 0;
    for (const auto& layer : layers_)
        total += layer.param_count();
    return total;
}

std::int64_t
Model::total_macs() const
{
    std::int64_t total = 0;
    for (const auto& layer : layers_)
        total += layer.macs();
    return total;
}

std::int64_t
Model::total_flops() const
{
    std::int64_t total = 0;
    for (const auto& layer : layers_)
        total += layer.flops();
    return total;
}

std::int64_t
Model::total_weight_bytes() const
{
    return total_params() * element_bytes_;
}

std::int64_t
Model::peak_activation_bytes() const
{
    std::int64_t peak = input_.elems() * element_bytes_;
    for (const auto& layer : layers_) {
        const std::int64_t working =
            (layer.input_elems() + layer.output_elems()) * element_bytes_;
        peak = std::max(peak, working);
    }
    return peak;
}

std::int64_t
Model::total_data_bytes() const
{
    std::int64_t elems = 0;
    for (const auto& layer : layers_) {
        elems += layer.input_elems() + layer.output_elems() +
                 layer.param_count();
    }
    return elems * element_bytes_;
}

}  // namespace chrysalis::dnn

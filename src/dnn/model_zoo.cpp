#include "dnn/model_zoo.hpp"

#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::dnn {

namespace {

/// Appends a conv -> (optional pool) block and returns the new spatial size.
struct SpatialCursor {
    std::int64_t h;
    std::int64_t w;
};

}  // namespace

Model
make_simple_conv()
{
    Model model("simple_conv", {3, 32, 32}, /*element_bytes=*/2);
    model.add_layer(make_conv2d("conv1", 3, 16, 32, 32, 5, /*stride=*/9));
    return model;
}

Model
make_cifar10_cnn()
{
    Model model("cifar10", {3, 32, 32}, /*element_bytes=*/2);
    model.add_layer(make_conv2d("conv1", 3, 16, 32, 32, 3, 1, 1));
    model.add_layer(make_pool("pool1", 16, 32, 32, 2, 2));
    model.add_layer(make_conv2d("conv2", 16, 32, 16, 16, 3, 1, 1));
    model.add_layer(make_conv2d("conv3", 32, 32, 16, 16, 3, 1, 1));
    model.add_layer(make_pool("pool2", 32, 16, 16, 2, 2));
    model.add_layer(make_conv2d("conv4", 32, 64, 8, 8, 3, 1, 1));
    model.add_layer(make_dense("fc", 64 * 8 * 8, 10));
    return model;
}

Model
make_har_cnn()
{
    // 1-D convolutions over a 128-sample window of 9 IMU channels.
    Model model("har", {9, 128, 1}, /*element_bytes=*/2);
    model.add_layer(make_conv2d("conv1", 9, 16, 128, 1, 5));
    model.add_layer(make_pool("pool1", 16, 124, 1, 2, 2));
    model.add_layer(make_conv2d("conv2", 16, 16, 62, 1, 5));
    model.add_layer(make_pool("pool2", 16, 58, 1, 2, 2));
    model.add_layer(make_dense("fc1", 16 * 29, 16));
    model.add_layer(make_dense("fc2", 16, 6));
    return model;
}

Model
make_kws_mlp()
{
    Model model("kws", {250, 1, 1}, /*element_bytes=*/2);
    model.add_layer(make_dense("fc1", 250, 128));
    model.add_layer(make_dense("fc2", 128, 96));
    model.add_layer(make_dense("fc3", 96, 32));
    model.add_layer(make_dense("fc4", 32, 32));
    model.add_layer(make_dense("fc5", 32, 12));
    return model;
}

Model
make_mnist_cnn()
{
    Model model("mnist", {1, 28, 28}, /*element_bytes=*/2);
    model.add_layer(make_conv2d("conv1", 1, 16, 28, 28, 3));
    model.add_layer(make_pool("pool1", 16, 26, 26, 2, 2));
    model.add_layer(make_conv2d("conv2", 16, 32, 13, 13, 3));
    model.add_layer(make_pool("pool2", 32, 11, 11, 2, 2));
    model.add_layer(make_dense("fc", 32 * 5 * 5, 10));
    return model;
}

Model
make_cnn_b()
{
    // HAWAII's larger CNN: same topology class as the MNIST CNN but wider.
    Model model("cnn_b", {1, 28, 28}, /*element_bytes=*/2);
    model.add_layer(make_conv2d("conv1", 1, 32, 28, 28, 3));
    model.add_layer(make_pool("pool1", 32, 26, 26, 2, 2));
    model.add_layer(make_conv2d("conv2", 32, 64, 13, 13, 3));
    model.add_layer(make_pool("pool2", 64, 11, 11, 2, 2));
    model.add_layer(make_dense("fc1", 64 * 5 * 5, 64));
    model.add_layer(make_dense("fc2", 64, 10));
    return model;
}

Model
make_cnn_s()
{
    Model model("cnn_s", {1, 28, 28}, /*element_bytes=*/2);
    model.add_layer(make_conv2d("conv1", 1, 8, 28, 28, 3));
    model.add_layer(make_pool("pool1", 8, 26, 26, 2, 2));
    model.add_layer(make_conv2d("conv2", 8, 8, 13, 13, 3));
    model.add_layer(make_pool("pool2", 8, 11, 11, 2, 2));
    model.add_layer(make_dense("fc", 8 * 5 * 5, 10));
    return model;
}

Model
make_fc_app()
{
    Model model("fc", {1, 28, 28}, /*element_bytes=*/2);
    model.add_layer(make_dense("fc1", 784, 64));
    model.add_layer(make_dense("fc2", 64, 10));
    return model;
}

Model
make_alexnet()
{
    Model model("alexnet", {3, 224, 224}, /*element_bytes=*/1);
    model.add_layer(make_conv2d("conv1", 3, 96, 224, 224, 11, 4, 2));
    model.add_layer(make_pool("pool1", 96, 55, 55, 3, 2));
    model.add_layer(make_conv2d("conv2", 96, 256, 27, 27, 5, 1, 2));
    model.add_layer(make_pool("pool2", 256, 27, 27, 3, 2));
    model.add_layer(make_conv2d("conv3", 256, 384, 13, 13, 3, 1, 1));
    model.add_layer(make_conv2d("conv4", 384, 384, 13, 13, 3, 1, 1));
    model.add_layer(make_conv2d("conv5", 384, 256, 13, 13, 3, 1, 1));
    model.add_layer(make_pool("pool5", 256, 13, 13, 3, 2));
    model.add_layer(make_dense("fc6", 256 * 6 * 6, 4096));
    model.add_layer(make_dense("fc7", 4096, 4096));
    model.add_layer(make_dense("fc8", 4096, 1000));
    return model;
}

Model
make_vgg16()
{
    Model model("vgg16", {3, 224, 224}, /*element_bytes=*/1);
    struct Block { std::int64_t convs; std::int64_t channels; };
    static constexpr Block kBlocks[] = {
        {2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512},
    };
    std::int64_t in_c = 3;
    std::int64_t size = 224;
    int index = 1;
    for (const auto& block : kBlocks) {
        for (std::int64_t i = 0; i < block.convs; ++i) {
            model.add_layer(make_conv2d(
                "conv" + std::to_string(index++), in_c, block.channels,
                size, size, 3, 1, 1));
            in_c = block.channels;
        }
        model.add_layer(make_pool("pool" + std::to_string(index - 1),
                                  in_c, size, size, 2, 2));
        size /= 2;
    }
    model.add_layer(make_dense("fc1", 512 * 7 * 7, 4096));
    model.add_layer(make_dense("fc2", 4096, 4096));
    model.add_layer(make_dense("fc3", 4096, 1000));
    return model;
}

Model
make_resnet18()
{
    Model model("resnet18", {3, 224, 224}, /*element_bytes=*/1);
    model.add_layer(make_conv2d("conv1", 3, 64, 224, 224, 7, 2, 3));
    model.add_layer(make_pool("pool1", 64, 112, 112, 3, 2));

    // Four stages of two basic blocks each; the first block of stages 2-4
    // downsamples with stride 2 and adds a 1x1 projection shortcut.
    struct Stage { std::int64_t channels; std::int64_t stride; };
    static constexpr Stage kStages[] = {
        {64, 1}, {128, 2}, {256, 2}, {512, 2},
    };
    std::int64_t in_c = 64;
    std::int64_t size = 56;  // after 3x3/2 max-pool on 112x112
    int index = 2;
    for (const auto& stage : kStages) {
        for (int block = 0; block < 2; ++block) {
            const std::int64_t stride = block == 0 ? stage.stride : 1;
            const std::int64_t out_size = size / stride;
            model.add_layer(make_conv2d(
                "conv" + std::to_string(index++), in_c, stage.channels,
                size, size, 3, stride, 1));
            model.add_layer(make_conv2d(
                "conv" + std::to_string(index++), stage.channels,
                stage.channels, out_size, out_size, 3, 1, 1));
            if (block == 0 && (stride != 1 || in_c != stage.channels)) {
                model.add_layer(make_conv2d(
                    "proj" + std::to_string(index - 2), in_c,
                    stage.channels, size, size, 1, stride, 0));
            }
            in_c = stage.channels;
            size = out_size;
        }
    }
    model.add_layer(make_dense("fc", 512, 1000));
    return model;
}

Model
make_bert_tiny()
{
    // 5 encoder blocks, d_model=768, d_ff=3072, 12 heads, sequence 18.
    // With the 27.6k-token embedding table this lands at ~56.6M params and
    // ~0.64G MACs (1.28 GFLOPs), matching Table V.
    constexpr std::int64_t kSeq = 18;
    constexpr std::int64_t kModel = 768;
    constexpr std::int64_t kFf = 3072;
    constexpr std::int64_t kHeads = 12;
    constexpr std::int64_t kHeadDim = kModel / kHeads;
    constexpr std::int64_t kVocab = 27600;

    Model model("bert", {kModel, 1, 1}, /*element_bytes=*/1);
    model.add_layer(make_embedding("embed", kVocab, kModel, kSeq));
    for (int block = 1; block <= 5; ++block) {
        const std::string prefix = "enc" + std::to_string(block) + ".";
        model.add_layer(make_dense(prefix + "q", kModel, kModel, kSeq));
        model.add_layer(make_dense(prefix + "k", kModel, kModel, kSeq));
        model.add_layer(make_dense(prefix + "v", kModel, kModel, kSeq));
        model.add_layer(make_matmul(prefix + "qk", kHeads, kSeq, kHeadDim,
                                    kSeq));
        model.add_layer(make_matmul(prefix + "av", kHeads, kSeq, kSeq,
                                    kHeadDim));
        model.add_layer(make_dense(prefix + "proj", kModel, kModel, kSeq));
        model.add_layer(make_dense(prefix + "ff1", kModel, kFf, kSeq));
        model.add_layer(make_dense(prefix + "ff2", kFf, kModel, kSeq));
    }
    return model;
}

Model
make_mobilenet_tiny()
{
    Model model("mobilenet_tiny", {3, 96, 96}, /*element_bytes=*/1);
    model.add_layer(make_conv2d("conv1", 3, 16, 96, 96, 3, 2, 1));
    // Depthwise-separable blocks: dw 3x3 then pointwise 1x1.
    struct Block { std::int64_t in_c, out_c, stride; };
    static constexpr Block kBlocks[] = {
        {16, 32, 1}, {32, 64, 2}, {64, 64, 1}, {64, 128, 2},
        {128, 128, 1},
    };
    std::int64_t size = 48;
    int index = 1;
    for (const auto& block : kBlocks) {
        model.add_layer(make_depthwise(
            "dw" + std::to_string(index), block.in_c, size, size, 3,
            block.stride, 1));
        size = block.stride == 2 ? size / 2 : size;
        model.add_layer(make_conv2d(
            "pw" + std::to_string(index), block.in_c, block.out_c, size,
            size, 1));
        ++index;
    }
    model.add_layer(make_pool("gap", 128, size, size, size, size));
    model.add_layer(make_dense("fc", 128, 10));
    return model;
}

Model
make_model(const std::string& zoo_name)
{
    const std::string key = to_lower(zoo_name);
    if (key == "simple_conv")
        return make_simple_conv();
    if (key == "cifar10")
        return make_cifar10_cnn();
    if (key == "har")
        return make_har_cnn();
    if (key == "kws")
        return make_kws_mlp();
    if (key == "mnist")
        return make_mnist_cnn();
    if (key == "cnn_b")
        return make_cnn_b();
    if (key == "cnn_s")
        return make_cnn_s();
    if (key == "fc")
        return make_fc_app();
    if (key == "alexnet")
        return make_alexnet();
    if (key == "vgg16")
        return make_vgg16();
    if (key == "resnet18")
        return make_resnet18();
    if (key == "bert")
        return make_bert_tiny();
    if (key == "mobilenet_tiny")
        return make_mobilenet_tiny();
    fatal("make_model: unknown workload '", zoo_name, "'");
}

const std::vector<std::string>&
table4_workloads()
{
    static const std::vector<std::string> kNames = {
        "simple_conv", "cifar10", "har", "kws",
    };
    return kNames;
}

const std::vector<std::string>&
table5_workloads()
{
    static const std::vector<std::string> kNames = {
        "bert", "alexnet", "vgg16", "resnet18",
    };
    return kNames;
}

}  // namespace chrysalis::dnn

#include "dnn/layer.hpp"

#include "common/logging.hpp"

namespace chrysalis::dnn {

std::string
to_string(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kConv2d: return "conv2d";
      case LayerKind::kDepthwise: return "dwconv";
      case LayerKind::kDense: return "dense";
      case LayerKind::kMatmul: return "matmul";
      case LayerKind::kPool: return "pool";
      case LayerKind::kEmbedding: return "embedding";
    }
    return "?";
}

std::int64_t
LoopDims::volume() const
{
    return n * k * c * y * x * r * s;
}

std::int64_t
dim_extent(const LoopDims& dims, Dim dim)
{
    switch (dim) {
      case Dim::kN: return dims.n;
      case Dim::kK: return dims.k;
      case Dim::kC: return dims.c;
      case Dim::kY: return dims.y;
      case Dim::kX: return dims.x;
      case Dim::kR: return dims.r;
      case Dim::kS: return dims.s;
    }
    panic("dim_extent: invalid dim");
}

std::string
to_string(Dim dim)
{
    switch (dim) {
      case Dim::kN: return "N";
      case Dim::kK: return "K";
      case Dim::kC: return "C";
      case Dim::kY: return "Y";
      case Dim::kX: return "X";
      case Dim::kR: return "R";
      case Dim::kS: return "S";
    }
    return "?";
}

std::int64_t
Layer::macs() const
{
    if (kind == LayerKind::kEmbedding)
        return 0;
    return dims.volume();
}

std::int64_t
Layer::flops() const
{
    if (kind == LayerKind::kPool)
        return dims.volume();  // one compare/accumulate per window element
    return 2 * macs();
}

std::int64_t
Layer::param_count() const
{
    switch (kind) {
      case LayerKind::kConv2d:
        return dims.k * dims.c * dims.r * dims.s + dims.k;
      case LayerKind::kDepthwise:
        return dims.k * dims.r * dims.s + dims.k;
      case LayerKind::kDense:
        return dims.k * dims.c + dims.k;
      case LayerKind::kEmbedding:
        return dims.k * dims.c;  // rows (c) x width (k), no bias
      case LayerKind::kMatmul:
      case LayerKind::kPool:
        return 0;
    }
    return 0;
}

std::int64_t
Layer::input_elems() const
{
    if (kind == LayerKind::kDense || kind == LayerKind::kMatmul)
        return dims.n * dims.c;
    if (kind == LayerKind::kEmbedding)
        return dims.n;  // token indices
    if (kind == LayerKind::kPool || kind == LayerKind::kDepthwise)
        return dims.k * in_h * in_w * dims.n;  // per-channel input
    return dims.c * in_h * in_w * dims.n;
}

std::int64_t
Layer::output_elems() const
{
    return dims.n * dims.k * dims.y * dims.x;
}

bool
Layer::has_weights() const
{
    return param_count() > 0;
}

namespace {

std::int64_t
conv_out_extent(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                std::int64_t padding)
{
    const std::int64_t out = (in + 2 * padding - kernel) / stride + 1;
    if (out < 1) {
        fatal("conv output extent < 1 (in=", in, " kernel=", kernel,
              " stride=", stride, " padding=", padding, ")");
    }
    return out;
}

void
check_positive(std::int64_t value, const char* what)
{
    if (value < 1)
        fatal("layer factory: ", what, " must be >= 1, got ", value);
}

}  // namespace

Layer
make_conv2d(std::string name, std::int64_t in_c, std::int64_t out_c,
            std::int64_t in_h, std::int64_t in_w, std::int64_t kernel,
            std::int64_t stride, std::int64_t padding)
{
    check_positive(in_c, "in_c");
    check_positive(out_c, "out_c");
    check_positive(kernel, "kernel");
    check_positive(stride, "stride");
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kConv2d;
    layer.dims.k = out_c;
    layer.dims.c = in_c;
    layer.dims.y = conv_out_extent(in_h, kernel, stride, padding);
    // 1-D inputs (in_w == 1) get 1-D kernels: S and X collapse to 1.
    layer.dims.x =
        in_w == 1 ? 1 : conv_out_extent(in_w, kernel, stride, padding);
    layer.dims.r = kernel;
    layer.dims.s = in_w == 1 ? 1 : kernel;
    layer.stride = stride;
    layer.in_h = in_h;
    layer.in_w = in_w;
    return layer;
}

Layer
make_depthwise(std::string name, std::int64_t channels, std::int64_t in_h,
               std::int64_t in_w, std::int64_t kernel, std::int64_t stride,
               std::int64_t padding)
{
    check_positive(channels, "channels");
    Layer layer = make_conv2d(std::move(name), 1, channels, in_h, in_w,
                              kernel, stride, padding);
    layer.kind = LayerKind::kDepthwise;
    return layer;
}

Layer
make_dense(std::string name, std::int64_t in_features,
           std::int64_t out_features, std::int64_t seq)
{
    check_positive(in_features, "in_features");
    check_positive(out_features, "out_features");
    check_positive(seq, "seq");
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kDense;
    layer.dims.n = seq;
    layer.dims.k = out_features;
    layer.dims.c = in_features;
    layer.in_h = 1;
    layer.in_w = 1;
    return layer;
}

Layer
make_matmul(std::string name, std::int64_t batch, std::int64_t m,
            std::int64_t k, std::int64_t n_cols)
{
    check_positive(batch, "batch");
    check_positive(m, "m");
    check_positive(k, "k");
    check_positive(n_cols, "n_cols");
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kMatmul;
    layer.dims.n = batch * m;
    layer.dims.k = n_cols;
    layer.dims.c = k;
    return layer;
}

Layer
make_pool(std::string name, std::int64_t channels, std::int64_t in_h,
          std::int64_t in_w, std::int64_t window, std::int64_t stride)
{
    check_positive(channels, "channels");
    check_positive(window, "window");
    check_positive(stride, "stride");
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kPool;
    // Pooling is per-channel: K carries the channel count and the
    // reduction happens only over the window (R, S), so C stays 1.
    layer.dims.k = channels;
    layer.dims.c = 1;
    layer.dims.y = conv_out_extent(in_h, window, stride, 0);
    layer.dims.x =
        in_w == 1 ? 1 : conv_out_extent(in_w, window, stride, 0);
    layer.dims.r = window;
    layer.dims.s = in_w == 1 ? 1 : window;
    layer.stride = stride;
    layer.in_h = in_h;
    layer.in_w = in_w;
    return layer;
}

Layer
make_embedding(std::string name, std::int64_t rows, std::int64_t width,
               std::int64_t seq)
{
    check_positive(rows, "rows");
    check_positive(width, "width");
    check_positive(seq, "seq");
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kEmbedding;
    layer.dims.n = seq;
    layer.dims.k = width;
    layer.dims.c = rows;
    layer.dims.y = 1;
    layer.dims.x = 1;
    return layer;
}

}  // namespace chrysalis::dnn

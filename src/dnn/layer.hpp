/// \file
/// DNN layer description.
///
/// CHRYSALIS evaluates mappings over a canonical 7-dimensional loop nest
/// (N, K, C, Y, X, R, S) in the style of data-centric mapping directives
/// (MAESTRO [42]): N batch/sequence, K output channels, C input channels,
/// Y/X output spatial dims, R/S kernel spatial dims. Convolutions, dense
/// (fully-connected / projection) layers, poolings and attention matmuls
/// all lower onto this nest, which is what the dataflow cost model and the
/// intermittent mapping search consume.

#ifndef CHRYSALIS_DNN_LAYER_HPP
#define CHRYSALIS_DNN_LAYER_HPP

#include <cstdint>
#include <string>

namespace chrysalis::dnn {

/// Kinds of layers the cost model distinguishes.
enum class LayerKind {
    kConv2d,      ///< standard convolution
    kDepthwise,   ///< depthwise convolution (one filter per channel)
    kDense,       ///< fully-connected / linear projection
    kMatmul,      ///< activation-activation matmul (attention score/value)
    kPool,        ///< max/avg pooling (no weights)
    kEmbedding,   ///< table lookup (parameters but no MACs)
};

/// Returns a short lower-case name ("conv2d", "dense", ...).
std::string to_string(LayerKind kind);

/// The canonical loop-nest extents of a layer. All extents are >= 1.
struct LoopDims {
    std::int64_t n = 1;  ///< batch / sequence repetition
    std::int64_t k = 1;  ///< output channels (or output features)
    std::int64_t c = 1;  ///< input channels (or input features)
    std::int64_t y = 1;  ///< output rows
    std::int64_t x = 1;  ///< output cols
    std::int64_t r = 1;  ///< kernel rows
    std::int64_t s = 1;  ///< kernel cols

    /// Product of all extents = number of MAC-equivalent operations.
    std::int64_t volume() const;
};

/// Identifier for the seven canonical loop dimensions.
enum class Dim { kN, kK, kC, kY, kX, kR, kS };

/// Returns the extent of \p dim within \p dims.
std::int64_t dim_extent(const LoopDims& dims, Dim dim);

/// Returns a one-letter name for a dimension ("N", "K", ...).
std::string to_string(Dim dim);

/// A single layer: kind, loop extents, and geometry needed for data sizing.
struct Layer {
    std::string name;
    LayerKind kind = LayerKind::kConv2d;
    LoopDims dims;
    std::int64_t stride = 1;     ///< spatial stride (conv/pool)
    std::int64_t in_h = 1;       ///< input feature-map height
    std::int64_t in_w = 1;       ///< input feature-map width

    /// Multiply-accumulate operations performed by this layer.
    std::int64_t macs() const;

    /// Floating-point operations (2 per MAC; comparisons for pooling).
    std::int64_t flops() const;

    /// Trainable parameter count (weights + biases; 0 for pool/matmul).
    std::int64_t param_count() const;

    /// Input activation element count (n * c * in_h * in_w).
    std::int64_t input_elems() const;

    /// Output activation element count (n * k * y * x).
    std::int64_t output_elems() const;

    /// True for layers that carry trainable weights.
    bool has_weights() const;
};

/// Factory helpers -----------------------------------------------------

/// Builds a Conv2d layer. Output spatial size is computed from input size,
/// kernel, stride and symmetric padding.
Layer make_conv2d(std::string name, std::int64_t in_c, std::int64_t out_c,
                  std::int64_t in_h, std::int64_t in_w, std::int64_t kernel,
                  std::int64_t stride = 1, std::int64_t padding = 0);

/// Builds a depthwise Conv2d layer (channel multiplier 1).
Layer make_depthwise(std::string name, std::int64_t channels,
                     std::int64_t in_h, std::int64_t in_w,
                     std::int64_t kernel, std::int64_t stride = 1,
                     std::int64_t padding = 0);

/// Builds a dense layer computing \p seq independent (in -> out) products.
Layer make_dense(std::string name, std::int64_t in_features,
                 std::int64_t out_features, std::int64_t seq = 1);

/// Builds an activation-activation matmul of shape [m, k] x [k, n_cols],
/// repeated \p batch times (attention scores / weighted values).
Layer make_matmul(std::string name, std::int64_t batch, std::int64_t m,
                  std::int64_t k, std::int64_t n_cols);

/// Builds a pooling layer over square windows.
Layer make_pool(std::string name, std::int64_t channels, std::int64_t in_h,
                std::int64_t in_w, std::int64_t window, std::int64_t stride);

/// Builds an embedding lookup of \p rows x \p width (params, no MACs).
Layer make_embedding(std::string name, std::int64_t rows, std::int64_t width,
                     std::int64_t seq = 1);

}  // namespace chrysalis::dnn

#endif  // CHRYSALIS_DNN_LAYER_HPP

/// \file
/// Plain-text model description I/O, so downstream users can feed their
/// own DNN tasks to CHRYSALIS without recompiling (Table II "Workload"
/// input).
///
/// Format: one directive per line, `#` comments and blank lines ignored.
///
///   model     <name> <in_c> <in_h> <in_w> <element_bytes>
///   conv      <name> <in_c> <out_c> <in_h> <in_w> <kernel> [stride] [pad]
///   dwconv    <name> <channels> <in_h> <in_w> <kernel> [stride] [pad]
///   dense     <name> <in_features> <out_features> [seq]
///   pool      <name> <channels> <in_h> <in_w> <window> <stride>
///   matmul    <name> <batch> <m> <k> <n>
///   embedding <name> <rows> <width> [seq]
///
/// The `model` directive must come first and appear exactly once.

#ifndef CHRYSALIS_DNN_MODEL_IO_HPP
#define CHRYSALIS_DNN_MODEL_IO_HPP

#include <iosfwd>
#include <string>

#include "dnn/model.hpp"

namespace chrysalis::dnn {

/// Parses a model description; fatal() with a line number on any error.
Model parse_model(std::istream& input);

/// Loads a model description from a file; fatal() if unreadable.
Model load_model(const std::string& path);

/// Serializes \p model in the same format (parse(serialize(m)) == m for
/// all models constructible from the format).
void write_model(std::ostream& output, const Model& model);

/// Convenience: serializes to a string.
std::string model_to_string(const Model& model);

}  // namespace chrysalis::dnn

#endif  // CHRYSALIS_DNN_MODEL_IO_HPP

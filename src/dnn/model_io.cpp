#include "dnn/model_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::dnn {

namespace {

/// Tokenized directive line with parse helpers that report line numbers.
struct Directive {
    std::size_t line_no = 0;
    std::vector<std::string> tokens;

    const std::string&
    keyword() const
    {
        return tokens.front();
    }

    std::size_t
    arg_count() const
    {
        return tokens.size() - 1;
    }

    const std::string&
    str(std::size_t index) const
    {
        if (index + 1 >= tokens.size())
            fatal("model line ", line_no, ": missing argument ",
                  index + 1, " for '", keyword(), "'");
        return tokens[index + 1];
    }

    std::int64_t
    integer(std::size_t index) const
    {
        const std::string& text = str(index);
        try {
            std::size_t used = 0;
            const long long value = std::stoll(text, &used);
            if (used != text.size())
                throw std::invalid_argument(text);
            return value;
        } catch (const std::exception&) {
            fatal("model line ", line_no, ": '", text,
                  "' is not an integer");
        }
    }

    std::int64_t
    integer_or(std::size_t index, std::int64_t fallback) const
    {
        return index + 1 < tokens.size() ? integer(index) : fallback;
    }
};

std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token)
        tokens.push_back(token);
    return tokens;
}

/// Finds the smallest symmetric padding reproducing the layer's output
/// extent (the closed-form inverse is ambiguous because of the floor in
/// the conv arithmetic).
std::int64_t
infer_padding(std::int64_t in, std::int64_t kernel, std::int64_t stride,
              std::int64_t out)
{
    for (std::int64_t pad = 0; pad <= kernel; ++pad) {
        if ((in + 2 * pad - kernel) / stride + 1 == out)
            return pad;
    }
    panic("infer_padding: no padding reproduces out=", out, " from in=",
          in, " kernel=", kernel, " stride=", stride);
}

}  // namespace

Model
parse_model(std::istream& input)
{
    std::optional<Model> model;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(input, line)) {
        ++line_no;
        const std::string text = trim(line);
        if (text.empty() || text.front() == '#')
            continue;
        Directive directive{line_no, tokenize(text)};
        const std::string keyword = to_lower(directive.keyword());

        if (keyword == "model") {
            if (model.has_value())
                fatal("model line ", line_no,
                      ": duplicate 'model' directive");
            if (directive.arg_count() != 5)
                fatal("model line ", line_no,
                      ": 'model' needs <name> <c> <h> <w> "
                      "<element_bytes>");
            model.emplace(directive.str(0),
                          InputShape{directive.integer(1),
                                     directive.integer(2),
                                     directive.integer(3)},
                          static_cast<int>(directive.integer(4)));
            continue;
        }
        if (!model.has_value())
            fatal("model line ", line_no,
                  ": the 'model' directive must come first");

        if (keyword == "conv") {
            model->add_layer(make_conv2d(
                directive.str(0), directive.integer(1),
                directive.integer(2), directive.integer(3),
                directive.integer(4), directive.integer(5),
                directive.integer_or(6, 1), directive.integer_or(7, 0)));
        } else if (keyword == "dwconv") {
            model->add_layer(make_depthwise(
                directive.str(0), directive.integer(1),
                directive.integer(2), directive.integer(3),
                directive.integer(4), directive.integer_or(5, 1),
                directive.integer_or(6, 0)));
        } else if (keyword == "dense") {
            model->add_layer(make_dense(
                directive.str(0), directive.integer(1),
                directive.integer(2), directive.integer_or(3, 1)));
        } else if (keyword == "pool") {
            model->add_layer(make_pool(
                directive.str(0), directive.integer(1),
                directive.integer(2), directive.integer(3),
                directive.integer(4), directive.integer(5)));
        } else if (keyword == "matmul") {
            model->add_layer(make_matmul(
                directive.str(0), directive.integer(1),
                directive.integer(2), directive.integer(3),
                directive.integer(4)));
        } else if (keyword == "embedding") {
            model->add_layer(make_embedding(
                directive.str(0), directive.integer(1),
                directive.integer(2), directive.integer_or(3, 1)));
        } else {
            fatal("model line ", line_no, ": unknown directive '",
                  directive.keyword(), "'");
        }
    }
    if (!model.has_value())
        fatal("model description: no 'model' directive found");
    if (model->layer_count() == 0)
        fatal("model description: no layers defined");
    return std::move(*model);
}

Model
load_model(const std::string& path)
{
    std::ifstream file(path);
    if (!file)
        fatal("load_model: cannot open '", path, "'");
    return parse_model(file);
}

void
write_model(std::ostream& output, const Model& model)
{
    output << "model " << model.name() << ' ' << model.input().c << ' '
           << model.input().h << ' ' << model.input().w << ' '
           << model.element_bytes() << '\n';
    for (const auto& layer : model.layers()) {
        switch (layer.kind) {
          case LayerKind::kConv2d: {
            const std::int64_t pad = infer_padding(
                layer.in_h, layer.dims.r, layer.stride, layer.dims.y);
            output << "conv " << layer.name << ' ' << layer.dims.c << ' '
                   << layer.dims.k << ' ' << layer.in_h << ' '
                   << layer.in_w << ' ' << layer.dims.r << ' '
                   << layer.stride << ' ' << pad << '\n';
            break;
          }
          case LayerKind::kDepthwise: {
            const std::int64_t pad = infer_padding(
                layer.in_h, layer.dims.r, layer.stride, layer.dims.y);
            output << "dwconv " << layer.name << ' ' << layer.dims.k
                   << ' ' << layer.in_h << ' ' << layer.in_w << ' '
                   << layer.dims.r << ' ' << layer.stride << ' ' << pad
                   << '\n';
            break;
          }
          case LayerKind::kDense:
            output << "dense " << layer.name << ' ' << layer.dims.c << ' '
                   << layer.dims.k << ' ' << layer.dims.n << '\n';
            break;
          case LayerKind::kPool:
            output << "pool " << layer.name << ' ' << layer.dims.k << ' '
                   << layer.in_h << ' ' << layer.in_w << ' '
                   << layer.dims.r << ' ' << layer.stride << '\n';
            break;
          case LayerKind::kMatmul:
            // n = batch*m, k = cols, c = reduction; batch folded into m.
            output << "matmul " << layer.name << " 1 " << layer.dims.n
                   << ' ' << layer.dims.c << ' ' << layer.dims.k << '\n';
            break;
          case LayerKind::kEmbedding:
            output << "embedding " << layer.name << ' ' << layer.dims.c
                   << ' ' << layer.dims.k << ' ' << layer.dims.n << '\n';
            break;
        }
    }
}

std::string
model_to_string(const Model& model)
{
    std::ostringstream os;
    write_model(os, model);
    return os.str();
}

}  // namespace chrysalis::dnn

/// \file
/// A DNN model: an ordered list of layers plus datatype information, with
/// aggregate accounting (parameters, MACs, FLOPs, activation footprints)
/// used by Tables IV/V and by the dataflow cost model.

#ifndef CHRYSALIS_DNN_MODEL_HPP
#define CHRYSALIS_DNN_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hpp"

namespace chrysalis::dnn {

/// Shape of the model input as (channels, height, width).
struct InputShape {
    std::int64_t c = 1;
    std::int64_t h = 1;
    std::int64_t w = 1;

    std::int64_t elems() const { return c * h * w; }
};

/// An inference workload (Table II "Workload" input).
class Model
{
  public:
    /// \param name workload name as it appears in the paper's tables.
    /// \param input model input shape.
    /// \param element_bytes bytes per tensor element (2 for the MSP430's
    ///        16-bit fixed-point path, 1 for int8 accelerators).
    Model(std::string name, InputShape input, int element_bytes = 2);

    /// Appends a layer; layers execute in insertion order.
    void add_layer(Layer layer);

    const std::string& name() const { return name_; }
    const InputShape& input() const { return input_; }
    int element_bytes() const { return element_bytes_; }

    const std::vector<Layer>& layers() const { return layers_; }
    std::size_t layer_count() const { return layers_.size(); }
    const Layer& layer(std::size_t index) const;

    /// Number of layers that carry trainable weights (the paper's "Layer"
    /// column counts weight layers).
    std::size_t weight_layer_count() const;

    /// Total trainable parameters across all layers.
    std::int64_t total_params() const;

    /// Total multiply-accumulates for one inference.
    std::int64_t total_macs() const;

    /// Total FLOPs for one inference (2 per MAC).
    std::int64_t total_flops() const;

    /// Total weight bytes (params * element_bytes).
    std::int64_t total_weight_bytes() const;

    /// Largest single-layer activation working set in bytes
    /// (input + output elements of the worst layer).
    std::int64_t peak_activation_bytes() const;

    /// Total bytes moved if every layer reads its inputs+weights and
    /// writes its outputs exactly once (the N_data lower bound of Eq. 5).
    std::int64_t total_data_bytes() const;

  private:
    std::string name_;
    InputShape input_;
    int element_bytes_;
    std::vector<Layer> layers_;
};

}  // namespace chrysalis::dnn

#endif  // CHRYSALIS_DNN_MODEL_HPP

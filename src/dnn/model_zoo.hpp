/// \file
/// The workloads evaluated in the paper.
///
/// Table IV (existing-AuT setup, MSP430 16-bit fixed point): Simple Conv,
/// CIFAR-10 CNN, HAR, KWS. Table V (future-AuT setup, int8 accelerators):
/// BERT, AlexNet, VGG16, ResNet18. Figure 2 additionally uses a MNIST CNN
/// (HAWAII motivation row) and the three HAWAII applications CNN_b / CNN_s
/// / FC. Architectures follow their standard published definitions;
/// parameter/FLOP counts land close to the paper's table values, and
/// `bench_table4`/`bench_table5` print achieved-vs-paper numbers. (The
/// paper mixes FLOPs = MACs and FLOPs = 2*MACs conventions across tables;
/// we always report both.)

#ifndef CHRYSALIS_DNN_MODEL_ZOO_HPP
#define CHRYSALIS_DNN_MODEL_ZOO_HPP

#include "dnn/model.hpp"

namespace chrysalis::dnn {

// --- Table IV workloads (existing AuT, MSP430) ---------------------------

/// Single 5x5 convolution on a (3,32,32) input (~1.2k params).
Model make_simple_conv();

/// 7-layer CIFAR-10 CNN: 4 conv + 2 pool + 1 dense (~77k params).
Model make_cifar10_cnn();

/// Human-activity-recognition 1-D CNN on a 9-channel IMU window
/// (~9k params).
Model make_har_cnn();

/// Keyword-spotting MLP on a 250-sample feature vector (~49k params,
/// 5 dense layers).
Model make_kws_mlp();

// --- Figure 2 workloads ----------------------------------------------------

/// MNIST CNN used by the HAWAII/MSP430 motivation row of Fig. 2(a).
Model make_mnist_cnn();

/// HAWAII's larger CNN application (Fig. 2(b) "CNN_b").
Model make_cnn_b();

/// HAWAII's smaller CNN application (Fig. 2(b) "CNN_s").
Model make_cnn_s();

/// HAWAII's fully-connected application (Fig. 2(b) "FC").
Model make_fc_app();

// --- Table V workloads (future AuT, int8 accelerators) --------------------

/// AlexNet on (3,224,224): 5 conv + 3 dense (~61M params).
Model make_alexnet();

/// VGG16 on (3,224,224): 13 conv + 3 dense (~138M params).
Model make_vgg16();

/// ResNet18 on (3,224,224): 20 weight layers (~11.7M params).
Model make_resnet18();

/// 5-block BERT encoder, d_model=768, ff=3072, seq=18 (~56.6M params
/// including the token-embedding table).
Model make_bert_tiny();

/// Depthwise-separable CNN (MobileNet-style) on a (3,96,96) input —
/// exercises the kDepthwise cost-model path end to end and provides a
/// modern edge-vision workload beyond the paper's table (extension).
Model make_mobilenet_tiny();

/// Returns the model with the given zoo name ("simple_conv", "cifar10",
/// "har", "kws", "mnist", "cnn_b", "cnn_s", "fc", "alexnet", "vgg16",
/// "resnet18", "bert"); fatal() on unknown names.
Model make_model(const std::string& zoo_name);

/// All Table IV workload names in paper order.
const std::vector<std::string>& table4_workloads();

/// All Table V workload names in paper order.
const std::vector<std::string>& table5_workloads();

}  // namespace chrysalis::dnn

#endif  // CHRYSALIS_DNN_MODEL_ZOO_HPP

#include "runtime/thread_pool.hpp"

#include <atomic>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace chrysalis::runtime {

namespace {

/// Publishes one finished batch to the global metrics registry, if any.
/// Batch/task totals are schedule-invariant (the same parallel_for calls
/// happen at every thread count); the inline split is not (threads=1
/// runs everything inline), so it lands in the volatile section.
void
publish_batch(std::size_t tasks, bool ran_inline)
{
    obs::MetricsRegistry* registry = obs::metrics();
    if (registry == nullptr)
        return;
    registry->counter("runtime/pool/batches").add(1);
    registry->counter("runtime/pool/tasks").add(tasks);
    if (ran_inline) {
        registry
            ->counter("runtime/pool/inline_batches",
                      obs::Stability::kVolatile)
            .add(1);
    }
}

}  // namespace

}  // namespace chrysalis::runtime

namespace chrysalis::runtime {

namespace {

/// Set while the current thread is executing inside any pool batch; used
/// to run nested batches inline instead of deadlocking on the queue.
thread_local bool t_on_pool_thread = false;

}  // namespace

int
hardware_threads()
{
    const unsigned reported = std::thread::hardware_concurrency();
    return reported == 0 ? 1 : static_cast<int>(reported);
}

bool
ThreadPool::on_pool_thread()
{
    return t_on_pool_thread;
}

/// Shared state of one parallel_for call. Lives on the caller's stack;
/// parallel_for does not return until every runner has finished with it.
struct ThreadPool::Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> executed{0};
    std::atomic<bool> abort{false};
    Mutex mutex;
    CondVar done_cv;
    std::size_t pending_runners CHRYSALIS_GUARDED_BY(mutex) = 0;
    std::exception_ptr error CHRYSALIS_GUARDED_BY(mutex);
};

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        fatal("ThreadPool: thread count must be >= 0, got ", threads);
    threads_ = threads == 0 ? hardware_threads() : threads;
}

ThreadPool::~ThreadPool()
{
    // Take ownership of the worker handles under the lock, then join
    // outside it: the workers themselves reacquire queue_mutex_ to
    // drain, so joining with it held would deadlock.
    std::vector<std::thread> workers;
    {
        MutexLock lock(queue_mutex_);
        stopping_ = true;
        workers.swap(workers_);
    }
    queue_cv_.notify_all();
    for (auto& worker : workers)
        worker.join();
}

void
ThreadPool::ensure_workers()
{
    MutexLock lock(queue_mutex_);
    if (!workers_.empty())
        return;
    // The calling thread participates in every batch, so threads_ - 1
    // workers give exactly threads_ concurrent executors.
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 0; i < threads_ - 1; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(queue_mutex_);
            while (!stopping_ && queue_.empty())
                queue_cv_.wait(queue_mutex_);
            if (queue_.empty())
                return;  // stopping and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::run_batch(Batch& batch)
{
    const bool was_on_pool_thread = t_on_pool_thread;
    t_on_pool_thread = true;
    while (!batch.abort.load(std::memory_order_relaxed)) {
        const std::size_t index =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (index >= batch.count)
            break;
        try {
            (*batch.body)(index);
            batch.executed.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
            MutexLock lock(batch.mutex);
            if (!batch.error)
                batch.error = std::current_exception();
            batch.abort.store(true, std::memory_order_relaxed);
        }
    }
    t_on_pool_thread = was_on_pool_thread;
    {
        // Notify while holding the lock: the batch lives on the caller's
        // stack and is destroyed as soon as the waiter sees 0 pending
        // runners, so the notify must complete before that check can run.
        MutexLock lock(batch.mutex);
        --batch.pending_runners;
        batch.done_cv.notify_all();
    }
}

void
ThreadPool::parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& body)
{
    if (count == 0)
        return;

    if (threads_ == 1 || count == 1 || t_on_pool_thread) {
        // Serial fallback: index order, exceptions propagate directly.
        // This path is what `threads == 1` reproducibility rests on.
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        {
            MutexLock lock(stats_mutex_);
            ++stats_.batches;
            ++stats_.inline_batches;
            stats_.tasks += count;
        }
        publish_batch(count, /*ran_inline=*/true);
        return;
    }

    ensure_workers();
    Batch batch;
    batch.count = count;
    batch.body = &body;
    const std::size_t runners =
        std::min(static_cast<std::size_t>(threads_), count);
    {
        // No runner exists yet, but pending_runners is guarded and the
        // analysis (rightly) does not model "before publication".
        MutexLock lock(batch.mutex);
        batch.pending_runners = runners;
    }
    {
        MutexLock lock(queue_mutex_);
        for (std::size_t i = 0; i + 1 < runners; ++i)
            queue_.emplace_back([&batch, this] { run_batch(batch); });
        if (obs::MetricsRegistry* registry = obs::metrics()) {
            registry->gauge("runtime/pool/max_queue_depth")
                .set_max(static_cast<double>(queue_.size()));
            registry->gauge("runtime/pool/max_threads")
                .set_max(static_cast<double>(threads_));
        }
    }
    queue_cv_.notify_all();
    run_batch(batch);  // the caller is one of the runners

    std::exception_ptr error;
    {
        MutexLock lock(batch.mutex);
        while (batch.pending_runners != 0)
            batch.done_cv.wait(batch.mutex);
        // Copy out under the lock; batch.error is guarded by it.
        error = batch.error;
    }
    const std::size_t executed =
        batch.executed.load(std::memory_order_relaxed);
    {
        MutexLock lock(stats_mutex_);
        ++stats_.batches;
        stats_.tasks += executed;
    }
    publish_batch(executed, /*ran_inline=*/false);
    if (error)
        std::rethrow_exception(error);
}

PoolStats
ThreadPool::stats() const
{
    MutexLock lock(stats_mutex_);
    return stats_;
}

}  // namespace chrysalis::runtime

/// \file
/// Sharded, thread-safe LRU memoization cache for design evaluations.
///
/// The bi-level explorer's fitness function is pure: a (candidate, model,
/// objective, environment) tuple always evaluates to the same
/// `EvaluatedDesign`. GA variation frequently re-proposes genomes it has
/// already scored (clones that survive crossover and mutation untouched,
/// warm-start duplicates, re-runs at the same seed), so memoizing on a
/// `CacheKey` of the evaluation inputs skips entire inner
/// mapping searches. Keys are sharded across independently locked LRU
/// maps so parallel evaluators rarely contend.
///
/// Concurrency contract: `get_or_compute` may invoke the compute function
/// on two threads racing for the same key; both results are identical (the
/// function must be pure), one is cached, and each caller gets a correct
/// value. This keeps the fast path lock-free of any per-key latch.

#ifndef CHRYSALIS_RUNTIME_EVAL_CACHE_HPP
#define CHRYSALIS_RUNTIME_EVAL_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/stable_hash.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace chrysalis::runtime {

/// Aggregated counters across all shards.
struct EvalCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< lookups that found nothing
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;   ///< entries dropped by the LRU policy
    std::uint64_t entries = 0;     ///< current resident entries
    std::uint64_t capacity = 0;    ///< configured maximum entries

    /// hits / (hits + misses), 0 when no lookups happened.
    double hit_rate() const;

    /// One-line summary, e.g. "hits=120 misses=380 (24.0%) entries=380".
    std::string describe() const;

    /// Adds these (delta) counters onto \p registry under
    /// "runtime/cache/*". Volatile: two threads racing on the same key
    /// may both count a miss (see the concurrency contract above), so
    /// the split is not reproducible across thread counts.
    void publish(obs::MetricsRegistry& registry) const;
};

/// Per-interval counters: `after - before` for every monotonic field.
EvalCacheStats operator-(const EvalCacheStats& after,
                         const EvalCacheStats& before);

/// The memo. Value must be copyable; lookups return copies so cached
/// entries can never be dangled by a concurrent eviction.
template <typename Value>
class EvalCache
{
  public:
    /// \param capacity maximum resident entries (split across shards).
    /// \param shard_count independently locked partitions.
    explicit EvalCache(std::size_t capacity, std::size_t shard_count = 8)
    {
        if (shard_count == 0)
            shard_count = 1;
        if (capacity < shard_count)
            shard_count = capacity > 0 ? capacity : 1;
        shard_capacity_ =
            capacity > 0 ? (capacity + shard_count - 1) / shard_count : 1;
        shards_.reserve(shard_count);
        for (std::size_t i = 0; i < shard_count; ++i)
            shards_.push_back(std::make_unique<Shard>());
    }

    /// Returns a copy of the cached value, or nullopt on miss. Counts a
    /// hit or miss and refreshes LRU recency on hit.
    std::optional<Value>
    lookup(const CacheKey& key)
    {
        Shard& shard = shard_for(key);
        MutexLock lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it == shard.index.end()) {
            ++shard.misses;
            return std::nullopt;
        }
        ++shard.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return it->second->second;
    }

    /// Inserts (or refreshes) a value, evicting the least recently used
    /// entry if the shard is full.
    void
    insert(const CacheKey& key, Value value)
    {
        Shard& shard = shard_for(key);
        MutexLock lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            it->second->second = std::move(value);
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return;
        }
        shard.lru.emplace_front(key, std::move(value));
        shard.index.emplace(key, shard.lru.begin());
        ++shard.insertions;
        if (shard.lru.size() > shard_capacity_) {
            shard.index.erase(shard.lru.back().first);
            shard.lru.pop_back();
            ++shard.evictions;
        }
    }

    /// Memoizing accessor: returns the cached value or computes, caches
    /// and returns it. See the file comment for the duplicate-compute
    /// race contract.
    template <typename Fn>
    Value
    get_or_compute(const CacheKey& key, Fn&& compute)
    {
        if (auto cached = lookup(key))
            return std::move(*cached);
        Value value = compute();
        insert(key, value);
        return value;
    }

    /// Aggregates counters across shards.
    EvalCacheStats
    stats() const
    {
        EvalCacheStats total;
        total.capacity = capacity();
        for (const auto& shard : shards_) {
            MutexLock lock(shard->mutex);
            total.hits += shard->hits;
            total.misses += shard->misses;
            total.insertions += shard->insertions;
            total.evictions += shard->evictions;
            total.entries += shard->lru.size();
        }
        return total;
    }

    /// Drops every entry (counters other than `entries` are preserved).
    void
    clear()
    {
        for (const auto& shard : shards_) {
            MutexLock lock(shard->mutex);
            shard->lru.clear();
            shard->index.clear();
        }
    }

    std::size_t shard_count() const { return shards_.size(); }

    /// Total capacity (shard capacity summed).
    std::size_t
    capacity() const
    {
        return shard_capacity_ * shards_.size();
    }

  private:
    struct Shard {
        mutable Mutex mutex;
        /// front = newest
        std::list<std::pair<CacheKey, Value>> lru
            CHRYSALIS_GUARDED_BY(mutex);
        std::unordered_map<CacheKey,
                           typename std::list<
                               std::pair<CacheKey, Value>>::iterator,
                           CacheKeyHash>
            index CHRYSALIS_GUARDED_BY(mutex);
        std::uint64_t hits CHRYSALIS_GUARDED_BY(mutex) = 0;
        std::uint64_t misses CHRYSALIS_GUARDED_BY(mutex) = 0;
        std::uint64_t insertions CHRYSALIS_GUARDED_BY(mutex) = 0;
        std::uint64_t evictions CHRYSALIS_GUARDED_BY(mutex) = 0;
    };

    Shard&
    shard_for(const CacheKey& key)
    {
        return *shards_[static_cast<std::size_t>(key.hi) % shards_.size()];
    }

    std::size_t shard_capacity_ = 1;
    std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace chrysalis::runtime

#endif  // CHRYSALIS_RUNTIME_EVAL_CACHE_HPP

/// \file
/// Fixed-size work-queue thread pool with batch-parallel helpers.
///
/// The pool backs every parallel hot loop in the framework (GA population
/// fitness, NSGA-II offspring evaluation, campaign case fan-out). Its
/// design contract is *determinism first*:
///
///  - `threads == 1` executes every batch inline on the calling thread,
///    in index order, reproducing the serial code path bit-for-bit;
///  - `parallel_for`/`parallel_map` assign work by index, so callers that
///    reduce results in index order observe identical outcomes at any
///    thread count (provided the body is pure per index);
///  - a `parallel_for` issued from inside a pool task — the same pool or
///    any other — runs inline, so nested parallelism degrades gracefully
///    instead of deadlocking or oversubscribing the machine.
///
/// Workers are spawned lazily on the first non-inline batch, so pools
/// constructed on (or delegating to) worker threads cost nothing.

#ifndef CHRYSALIS_RUNTIME_THREAD_POOL_HPP
#define CHRYSALIS_RUNTIME_THREAD_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace chrysalis::runtime {

/// Number of hardware threads, never less than 1 (the standard allows
/// `hardware_concurrency()` to return 0 when unknown).
int hardware_threads();

/// Counters for one pool's lifetime (all batches since construction).
struct PoolStats {
    std::uint64_t tasks = 0;           ///< individual work items executed
    std::uint64_t batches = 0;         ///< parallel_for/map invocations
    std::uint64_t inline_batches = 0;  ///< batches that ran serially
};

/// Fixed-size pool; see the file comment for the determinism contract.
class ThreadPool
{
  public:
    /// \param threads worker count; 0 means hardware_threads().
    explicit ThreadPool(int threads = 0);

    /// Joins all workers. Outstanding batches are completed first (the
    /// only way to have one is a concurrent parallel_for, which blocks
    /// its caller until done).
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Resolved parallelism (>= 1).
    int thread_count() const { return threads_; }

    /// Runs `body(0) .. body(count-1)`, distributing indices across the
    /// pool dynamically, and returns when all have completed. If any
    /// invocation throws, remaining un-started indices are abandoned and
    /// the first captured exception is rethrown to the caller. Runs
    /// inline (serially, in index order) when `count <= 1`, when the pool
    /// has a single thread, or when called from inside any pool task.
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& body);

    /// Maps `fn` over `[0, count)` into an index-ordered vector. The
    /// element type must be default-constructible.
    template <typename Fn>
    auto
    parallel_map(std::size_t count, Fn&& fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        std::vector<decltype(fn(std::size_t{}))> results(count);
        parallel_for(count,
                     [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

    /// Snapshot of the lifetime counters.
    PoolStats stats() const;

    /// True when the calling thread is currently executing a pool task
    /// (of any ThreadPool instance).
    static bool on_pool_thread();

  private:
    struct Batch;

    void ensure_workers();
    void worker_loop();
    void run_batch(Batch& batch);

    int threads_ = 1;

    Mutex queue_mutex_;
    CondVar queue_cv_;
    std::deque<std::function<void()>> queue_
        CHRYSALIS_GUARDED_BY(queue_mutex_);
    std::vector<std::thread> workers_ CHRYSALIS_GUARDED_BY(queue_mutex_);
    bool stopping_ CHRYSALIS_GUARDED_BY(queue_mutex_) = false;

    mutable Mutex stats_mutex_;
    PoolStats stats_ CHRYSALIS_GUARDED_BY(stats_mutex_);
};

}  // namespace chrysalis::runtime

#endif  // CHRYSALIS_RUNTIME_THREAD_POOL_HPP

#include "runtime/eval_cache.hpp"

#include <sstream>

#include "common/string_utils.hpp"

namespace chrysalis::runtime {

double
EvalCacheStats::hit_rate() const
{
    const std::uint64_t lookups = hits + misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
}

std::string
EvalCacheStats::describe() const
{
    std::ostringstream os;
    os << "hits=" << hits << " misses=" << misses << " ("
       << format_fixed(hit_rate() * 100.0, 1) << "%) entries=" << entries;
    if (evictions > 0)
        os << " evictions=" << evictions;
    return os.str();
}

void
EvalCacheStats::publish(obs::MetricsRegistry& registry) const
{
    using obs::Stability;
    registry.counter("runtime/cache/hits", Stability::kVolatile).add(hits);
    registry.counter("runtime/cache/misses", Stability::kVolatile)
        .add(misses);
    registry.counter("runtime/cache/insertions", Stability::kVolatile)
        .add(insertions);
    registry.counter("runtime/cache/evictions", Stability::kVolatile)
        .add(evictions);
    registry.gauge("runtime/cache/entries")
        .set(static_cast<double>(entries));
}

EvalCacheStats
operator-(const EvalCacheStats& after, const EvalCacheStats& before)
{
    EvalCacheStats delta;
    delta.hits = after.hits - before.hits;
    delta.misses = after.misses - before.misses;
    delta.insertions = after.insertions - before.insertions;
    delta.evictions = after.evictions - before.evictions;
    delta.entries = after.entries;  // entries is a level, not a counter
    delta.capacity = after.capacity;  // so is capacity
    return delta;
}

}  // namespace chrysalis::runtime

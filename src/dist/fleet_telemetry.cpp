#include "dist/fleet_telemetry.hpp"

#include <string>
#include <utility>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace chrysalis::dist {

void
FleetPullOptions::validate() const
{
    client.validate();
    if (max_events == 0)
        fatal("FleetPullOptions: max_events must be >= 1");
    if (max_entries == 0)
        fatal("FleetPullOptions: max_entries must be >= 1");
    if (max_pages == 0)
        fatal("FleetPullOptions: max_pages must be >= 1");
}

namespace {

/// One pull request; returns false on any transport/protocol failure
/// or an "ok":0 reply (pull types are never retried by the client —
/// they report live state).
bool
pull_page(serve::Client& client, const std::string& type,
          const FlatJsonFields& params, serve::Response& response)
{
    return client.request(type, params, response) ==
               serve::CallStatus::kOk &&
           response.ok;
}

bool
drain_metrics(serve::Client& client, const FleetPullOptions& options,
              obs::WorkerTelemetry& out)
{
    std::uint64_t cursor = 0;
    for (std::uint64_t page = 0; page < options.max_pages; ++page) {
        FlatJsonFields params;
        params["cursor"] = std::to_string(cursor);
        params["max_entries"] = std::to_string(options.max_entries);
        serve::Response response;
        if (!pull_page(client, "metrics_snapshot", params, response))
            return false;
        std::uint64_t attached = 1;
        json_get_uint64(response.fields, "attached", attached);
        if (attached == 0)
            return true;  // worker runs without a registry: no samples
        std::uint64_t entries = 0;
        json_get_uint64(response.fields, "entries", entries);
        for (std::uint64_t i = 0; i < entries; ++i) {
            std::string encoded;
            if (!json_get_string(response.fields,
                                 ("m" + std::to_string(i)).c_str(),
                                 encoded))
                return false;
            obs::MetricSample sample;
            if (!obs::decode_metric_sample(encoded, sample))
                return false;
            out.metrics.push_back(std::move(sample));
        }
        std::uint64_t remaining = 0;
        json_get_uint64(response.fields, "remaining", remaining);
        if (remaining == 0)
            return true;
        json_get_uint64(response.fields, "cursor_next", cursor);
    }
    warn("dist: metrics pull truncated after ", options.max_pages,
         " pages");
    return true;
}

bool
drain_trace(serve::Client& client, const FleetPullOptions& options,
            double probe_offset_s, obs::WorkerTelemetry& out)
{
    std::uint64_t cursor = 0;
    for (std::uint64_t page = 0; page < options.max_pages; ++page) {
        FlatJsonFields params;
        params["cursor"] = std::to_string(cursor);
        params["max_events"] = std::to_string(options.max_events);
        serve::Response response;
        if (!pull_page(client, "trace_export", params, response))
            return false;
        if (page == 0) {
            json_get_string(response.fields, "worker_id",
                            out.worker_id);
            // Total shift onto the puller's timeline: exact
            // session-epoch -> worker-monotonic skew, plus the probe's
            // worker-monotonic -> local-monotonic estimate.
            double skew_s = 0.0;
            json_get_double(response.fields, "mono_skew_s", skew_s);
            out.clock_offset_s = skew_s + probe_offset_s;
        }
        std::uint64_t attached = 1;
        json_get_uint64(response.fields, "attached", attached);
        if (attached == 0)
            return true;  // worker runs without a trace session
        json_get_uint64(response.fields, "dropped", out.dropped_events);
        std::uint64_t events = 0;
        json_get_uint64(response.fields, "events", events);
        for (std::uint64_t i = 0; i < events; ++i) {
            std::string encoded;
            if (!json_get_string(response.fields,
                                 ("e" + std::to_string(i)).c_str(),
                                 encoded))
                return false;
            obs::TraceEvent event;
            if (!obs::decode_trace_event(encoded, event))
                return false;
            out.events.push_back(std::move(event));
        }
        std::uint64_t remaining = 0;
        json_get_uint64(response.fields, "remaining", remaining);
        if (remaining == 0)
            return true;
        json_get_uint64(response.fields, "cursor_next", cursor);
    }
    warn("dist: trace pull truncated after ", options.max_pages,
         " pages");
    return true;
}

}  // namespace

bool
pull_worker_telemetry(const WorkerAddress& address,
                      const FleetPullOptions& options,
                      obs::WorkerTelemetry& out)
{
    options.validate();
    out = obs::WorkerTelemetry();
    out.worker_id = address.to_string();  // until the worker says better

    serve::ClientOptions client_options = options.client;
    client_options.max_attempts = 1;
    serve::Client client(client_options);
    if (!client.connect(address.host, address.port))
        return false;

    // Health round trip, bracketed by local clock reads: the worker's
    // mono_now_s was read inside [send, recv], assumed at the RTT
    // midpoint (error <= RTT/2; FleetCollector clamps the residue).
    const double send_s = obs::monotonic_seconds();
    serve::Response health;
    if (!pull_page(client, "health", {}, health))
        return false;
    const double recv_s = obs::monotonic_seconds();
    double probe_offset_s = 0.0;
    double mono_now_s = 0.0;
    if (json_get_double(health.fields, "mono_now_s", mono_now_s)) {
        probe_offset_s =
            obs::clock_offset_from_probe(send_s, recv_s, mono_now_s);
    }

    if (!drain_metrics(client, options, out) ||
        !drain_trace(client, options, probe_offset_s, out)) {
        out = obs::WorkerTelemetry();
        return false;
    }
    return true;
}

std::size_t
collect_fleet_telemetry(const std::vector<WorkerAddress>& workers,
                        const FleetPullOptions& options,
                        obs::FleetCollector& collector)
{
    std::size_t pulled = 0;
    for (const WorkerAddress& address : workers) {
        obs::WorkerTelemetry telemetry;
        if (!pull_worker_telemetry(address, options, telemetry)) {
            warn("dist: fleet telemetry pull from ",
                 address.to_string(), " failed; merging without it");
            continue;
        }
        collector.add_worker(std::move(telemetry));
        ++pulled;
    }
    return pulled;
}

}  // namespace chrysalis::dist

#include "dist/worker_pool.hpp"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/logging.hpp"
#include "obs/fleet.hpp"
#include "obs/trace.hpp"

namespace chrysalis::dist {

std::string
WorkerAddress::to_string() const
{
    return host + ":" + std::to_string(port);
}

std::vector<WorkerAddress>
parse_worker_list(const std::string& list)
{
    std::vector<WorkerAddress> workers;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        std::string entry = list.substr(begin, end - begin);
        // Trim surrounding whitespace so "a:1, b:2" parses.
        while (!entry.empty() && (entry.front() == ' ' ||
                                  entry.front() == '\t'))
            entry.erase(entry.begin());
        while (!entry.empty() &&
               (entry.back() == ' ' || entry.back() == '\t'))
            entry.pop_back();
        if (!entry.empty()) {
            const std::size_t colon = entry.rfind(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 == entry.size()) {
                fatal("worker list: entry '", entry,
                      "' is not host:port");
            }
            const std::string port_text = entry.substr(colon + 1);
            errno = 0;
            char* parse_end = nullptr;
            const long port =
                std::strtol(port_text.c_str(), &parse_end, 10);
            if (parse_end == port_text.c_str() || *parse_end != '\0' ||
                errno != 0 || port < 1 || port > 65535) {
                fatal("worker list: port '", port_text, "' in '", entry,
                      "' outside [1, 65535]");
            }
            workers.push_back({entry.substr(0, colon),
                               static_cast<int>(port)});
        }
        begin = end + 1;
    }
    if (workers.empty())
        fatal("worker list: no workers in '", list,
              "' (expected host:port,host:port,...)");
    return workers;
}

WorkerPool::WorkerPool(std::vector<WorkerAddress> workers,
                       serve::ClientOptions client_options)
    : client_options_(std::move(client_options))
{
    client_options_.max_attempts = 1;  // a probe is one question
    statuses_.reserve(workers.size());
    for (WorkerAddress& address : workers) {
        WorkerStatus status;
        status.address = std::move(address);
        statuses_.push_back(std::move(status));
    }
}

const std::vector<WorkerStatus>&
WorkerPool::probe()
{
    for (WorkerStatus& status : statuses_) {
        status.worker_id.clear();
        status.reachable = false;
        status.ready = false;
        status.draining = false;
        status.pending = 0;
        status.rtt_s = 0.0;
        status.mono_now_s = 0.0;
        status.clock_offset_s = 0.0;
        status.has_clock_offset = false;

        serve::Client client(client_options_);
        if (!client.connect(status.address.host, status.address.port))
            continue;
        serve::Response response;
        // Bracket the request with local clock reads: the reply's
        // mono_now_s was read somewhere inside [send, recv], and the
        // RTT midpoint is the minimum-error estimate of when.
        const double send_s = obs::monotonic_seconds();
        if (client.request("health", {}, response) !=
                serve::CallStatus::kOk ||
            !response.ok) {
            continue;
        }
        const double recv_s = obs::monotonic_seconds();
        status.reachable = true;
        json_get_string(response.fields, "worker_id", status.worker_id);
        std::string state;
        json_get_string(response.fields, "status", state);
        status.draining = state == "draining";
        status.ready = !status.draining;
        json_get_int64(response.fields, "pending", status.pending);
        status.rtt_s = recv_s - send_s;
        if (json_get_double(response.fields, "mono_now_s",
                            status.mono_now_s)) {
            status.clock_offset_s = obs::clock_offset_from_probe(
                send_s, recv_s, status.mono_now_s);
            status.has_clock_offset = true;
        }
    }
    return statuses_;
}

std::size_t
WorkerPool::ready_count() const
{
    std::size_t ready = 0;
    for (const WorkerStatus& status : statuses_) {
        if (status.ready)
            ++ready;
    }
    return ready;
}

}  // namespace chrysalis::dist

/// \file
/// Fleet telemetry pull: drains a worker daemon's live metrics and
/// trace buffers over the `chrysalis-serve-v1` `metrics_snapshot` /
/// `trace_export` request types into an `obs::WorkerTelemetry`, ready
/// for `obs::FleetCollector` to merge.
///
/// The split of responsibilities with obs/fleet.hpp: this layer owns
/// everything protocol-shaped (cursor paging under the 1 MiB frame
/// limit, the health probe that estimates the worker's clock offset),
/// while the collector owns the pure math (alignment, clamping,
/// rollup). Pull at quiescence — after the campaign's lanes have
/// joined — so cursors walk a stable buffer; the handler documents the
/// same contract.

#ifndef CHRYSALIS_DIST_FLEET_TELEMETRY_HPP
#define CHRYSALIS_DIST_FLEET_TELEMETRY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dist/worker_pool.hpp"
#include "obs/fleet.hpp"
#include "serve/client.hpp"

namespace chrysalis::dist {

/// Knobs of one telemetry pull; validate() fatals on nonsense values.
struct FleetPullOptions {
    /// Shapes the pull connections (timeouts, breaker). Pull requests
    /// report live state, so the client never retries them; a failed
    /// page fails the worker's pull.
    serve::ClientOptions client;
    std::uint64_t max_events = 512;   ///< trace_export page size
    std::uint64_t max_entries = 128;  ///< metrics_snapshot page size
    /// Runaway guard: a worker whose buffers need more pages than this
    /// (per request type) is truncated, not looped on forever.
    std::uint64_t max_pages = 4096;

    void validate() const;
};

/// Pulls one worker's telemetry: a `health` round trip for the clock
/// offset (obs::clock_offset_from_probe), then cursor loops draining
/// `metrics_snapshot` and `trace_export`. On success \p out holds the
/// worker's id, its events on their session timeline, its metric
/// samples, and the total clock_offset_s (exact session->monotonic
/// skew plus the probe-estimated monotonic offset) that
/// FleetCollector needs. Returns false — leaving \p out cleared — when
/// the worker is unreachable or a page is malformed.
bool pull_worker_telemetry(const WorkerAddress& address,
                           const FleetPullOptions& options,
                           obs::WorkerTelemetry& out);

/// pull_worker_telemetry for every address, adding each success to
/// \p collector. Unreachable workers are skipped (a fleet merge at
/// campaign end must tolerate workers that died mid-run). Returns the
/// number of workers pulled.
std::size_t collect_fleet_telemetry(
    const std::vector<WorkerAddress>& workers,
    const FleetPullOptions& options, obs::FleetCollector& collector);

}  // namespace chrysalis::dist

#endif  // CHRYSALIS_DIST_FLEET_TELEMETRY_HPP

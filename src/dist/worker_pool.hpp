/// \file
/// Worker fleet bookkeeping for distributed campaigns: parse
/// "host:port,host:port" worker lists and probe each daemon's `health`
/// endpoint to learn its identity and readiness before work is
/// dispatched.
///
/// Probing is *informational*: the coordinator reports which workers
/// answered (and under which `worker_id`), but dispatch never gates on
/// a successful probe — a worker that was busy during the probe can
/// still pull work, and a worker that dies after probing is handled by
/// the coordinator's reassignment path. This keeps the probe free of
/// TOCTOU semantics: readiness is a snapshot, not a contract.
///
/// This layer speaks only `serve::Client`; it contains no sockets of
/// its own (enforced by chrysalis_lint's network-header rule, which
/// does not allowlist src/dist/).

#ifndef CHRYSALIS_DIST_WORKER_POOL_HPP
#define CHRYSALIS_DIST_WORKER_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/client.hpp"

namespace chrysalis::dist {

/// One worker daemon's dial address.
struct WorkerAddress {
    std::string host;
    int port = 0;

    /// "host:port" — the display / metric-attribution form.
    std::string to_string() const;
};

/// Parses a comma-separated "host:port,host:port" list (the
/// `--workers` flag). fatal() on an empty list, a missing port, or a
/// port outside [1, 65535].
std::vector<WorkerAddress> parse_worker_list(const std::string& list);

/// Snapshot of one worker's last `health` probe.
struct WorkerStatus {
    WorkerAddress address;
    std::string worker_id;  ///< daemon-reported identity; "" unreachable
    bool reachable = false; ///< the probe got a well-formed reply
    bool ready = false;     ///< reachable and not draining
    bool draining = false;
    std::int64_t pending = 0;  ///< daemon-reported queued requests
    /// Clock-alignment observations (obs::FleetCollector inputs):
    /// round-trip time of the probe, the worker's monotonic_seconds()
    /// at the reply (`mono_now_s` of the `health` body), and the
    /// RTT-midpoint estimate of the worker-to-coordinator monotonic
    /// offset — `coordinator_time ~= worker_time + clock_offset_s`,
    /// accurate to about half the RTT. Valid only when
    /// has_clock_offset (an old daemon's health reply may lack
    /// mono_now_s).
    double rtt_s = 0.0;
    double mono_now_s = 0.0;
    double clock_offset_s = 0.0;
    bool has_clock_offset = false;
};

/// The fleet: addresses plus their latest probe snapshots.
class WorkerPool
{
  public:
    /// \p client_options shapes the probe connections (timeouts); the
    /// probe itself always makes a single attempt per worker (`health`
    /// is not memoized, so the resilient client would not retry it
    /// anyway).
    WorkerPool(std::vector<WorkerAddress> workers,
               serve::ClientOptions client_options);

    /// Probes every worker once, sequentially, and returns the updated
    /// snapshots. Unreachable workers are recorded, not fatal.
    const std::vector<WorkerStatus>& probe();

    const std::vector<WorkerStatus>& statuses() const { return statuses_; }

    /// Workers whose last probe reported ready.
    std::size_t ready_count() const;

  private:
    std::vector<WorkerStatus> statuses_;
    serve::ClientOptions client_options_;
};

}  // namespace chrysalis::dist

#endif  // CHRYSALIS_DIST_WORKER_POOL_HPP

#include "dist/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "common/stable_hash.hpp"
#include "common/thread_annotations.hpp"
#include "core/campaign_journal.hpp"
#include "dist/fleet_telemetry.hpp"
#include "dnn/model_zoo.hpp"
#include "obs/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace chrysalis::dist {

DistCampaignOptions::DistCampaignOptions()
{
    // A run_case request executes a whole bi-level search; the serve
    // default deadline (sized for single evaluations) would turn every
    // healthy long case into a spurious reassignment.
    client.request_timeout_s = 300.0;
}

void
DistCampaignOptions::validate() const
{
    if (workers.empty())
        fatal("DistCampaignOptions: workers must not be empty");
    client.validate();
    if (streams_per_worker < 1)
        fatal("DistCampaignOptions: streams_per_worker must be >= 1, "
              "got ", streams_per_worker);
    if (max_worker_failures < 1)
        fatal("DistCampaignOptions: max_worker_failures must be >= 1, "
              "got ", max_worker_failures);
    if (!(progress_interval_s >= 0.0) ||
        !std::isfinite(progress_interval_s))
        fatal("DistCampaignOptions: progress_interval_s must be finite "
              "and >= 0, got ", progress_interval_s);
}

namespace {

/// Metric-name-safe spelling of a worker identity ("host:1234" ->
/// "host_1234") so per-worker counters nest under dist/worker/.
std::string
sanitize_worker_id(const std::string& id)
{
    std::string out = id;
    for (char& c : out) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!keep)
            c = '_';
    }
    return out;
}

/// State shared by every lane; all mutation under `mutex`.
struct Shared {
    Mutex mutex;
    CondVar cv;
    /// Unfinished case indices. Pops come from the front (lowest index
    /// first) and reassignments push the front, so dispatch order stays
    /// lowest-index-first even under failures.
    std::deque<std::size_t> queue CHRYSALIS_GUARDED_BY(mutex);
    std::size_t inflight CHRYSALIS_GUARDED_BY(mutex) = 0;
    /// poison reply: stop the fleet
    bool aborted CHRYSALIS_GUARDED_BY(mutex) = false;
    std::string abort_error CHRYSALIS_GUARDED_BY(mutex);
    /// per case index
    std::vector<core::JournalRecord> records CHRYSALIS_GUARDED_BY(mutex);
    std::vector<char> done CHRYSALIS_GUARDED_BY(mutex);
    /// per worker
    std::vector<int> live_lanes CHRYSALIS_GUARDED_BY(mutex);
    std::uint64_t dispatched CHRYSALIS_GUARDED_BY(mutex) = 0;
    std::uint64_t completed CHRYSALIS_GUARDED_BY(mutex) = 0;
    std::uint64_t reassigned CHRYSALIS_GUARDED_BY(mutex) = 0;
    /// Remote stage-time sums parsed from traced replies' timing_*
    /// fields (telemetry only — never in the deterministic outputs).
    StageTotals stage_totals CHRYSALIS_GUARDED_BY(mutex);
    /// Worst consecutive-failure streak currently held by any of the
    /// worker's lanes — the heartbeat's "f" figure.
    std::vector<int> worker_streaks CHRYSALIS_GUARDED_BY(mutex);
    /// Telemetry stashed by a dying worker's last lane (best-effort
    /// pull at death time, before the daemon can vanish); consulted at
    /// campaign end when the live pull fails.
    std::vector<obs::WorkerTelemetry> stash CHRYSALIS_GUARDED_BY(mutex);
    std::vector<char> stashed CHRYSALIS_GUARDED_BY(mutex);
};

/// One line of per-worker lane state for the progress heartbeat:
/// `[id:COMPLETEDc/REASSIGNEDr/STREAKf ...]` — completed cases,
/// reassignments charged, and the worst live consecutive-failure
/// streak, per worker.
std::string
fleet_detail_locked(const std::vector<WorkerReport>& reports,
                    const std::vector<int>& streaks)
{
    std::string detail = "[";
    for (std::size_t w = 0; w < reports.size(); ++w) {
        const WorkerReport& report = reports[w];
        if (w != 0)
            detail += ' ';
        detail += report.worker_id.empty()
                      ? report.address.to_string()
                      : report.worker_id;
        detail += ':';
        detail += std::to_string(report.completed);
        detail += "c/";
        detail += std::to_string(report.failures);
        detail += "r/";
        detail += std::to_string(streaks[w]);
        detail += 'f';
        if (report.dead)
            detail += "(dead)";
    }
    detail += ']';
    return detail;
}

/// How one request outcome drives the scheduler.
enum class Outcome {
    kSuccess,    ///< record stored
    kTransient,  ///< requeue + count against the lane's budget
    kPoison,     ///< deterministic refusal: abort the campaign
};

void
bump_counter(const char* name, obs::Stability stability,
             std::uint64_t delta = 1)
{
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->counter(name, stability).add(delta);
}

void
set_queue_gauge(std::size_t depth)
{
    if (obs::MetricsRegistry* registry = obs::metrics())
        registry->gauge("dist/queue_depth", obs::Stability::kVolatile)
            .set(static_cast<double>(depth));
}

/// One lane: pops case indices, sends run_case requests over its own
/// client, stores records / requeues failures. Exits when the work is
/// finished, the campaign aborted, or its failure budget is spent.
void
lane_loop(const core::CampaignSpec& spec,
          const std::vector<std::string>& labels,
          const std::vector<std::string>& keys,
          const DistCampaignOptions& options, std::size_t worker_index,
          std::uint64_t trace_id, Shared& shared,
          std::vector<WorkerReport>& reports,
          obs::ProgressReporter& progress)
{
    WorkerReport& report = reports[worker_index];
    serve::Client client(options.client);
    // connect() also *remembers* the address — request()'s automatic
    // reconnect needs that even when this first dial fails (a worker
    // that is down right now may come back mid-campaign).
    client.connect(report.address.host, report.address.port);
    const std::string completed_metric =
        "dist/worker/" +
        sanitize_worker_id(report.worker_id.empty()
                               ? report.address.to_string()
                               : report.worker_id) +
        "/completed";
    int consecutive_failures = 0;

    while (true) {
        std::size_t index = 0;
        {
            MutexLock lock(shared.mutex);
            while (!shared.aborted && shared.queue.empty() &&
                   shared.inflight != 0)
                shared.cv.wait(shared.mutex);
            // Exit only when nothing is queued AND nothing is in
            // flight: an in-flight case on another lane may still fail
            // and come back to the queue.
            if (shared.aborted ||
                (shared.queue.empty() && shared.inflight == 0)) {
                --shared.live_lanes[worker_index];
                return;
            }
            index = shared.queue.front();
            shared.queue.pop_front();
            ++shared.inflight;
            ++shared.dispatched;
            set_queue_gauge(shared.queue.size());
        }
        bump_counter("dist/dispatched", obs::Stability::kVolatile);

        // Every request carries the campaign's trace context: the
        // deterministic trace_id, the case index as both the parent
        // span id and the attribution field. Workers thread it through
        // their stage spans and splice timing_* fields into the reply;
        // neither touches the memoized body bytes or the journal.
        obs::TraceContext trace_context;
        trace_context.trace_id = trace_id;
        trace_context.parent_span =
            static_cast<std::uint64_t>(index) + 1;
        trace_context.case_index = static_cast<std::int64_t>(index);
        FlatJsonFields fields = core::case_request_fields(spec, index);
        fields["trace"] = obs::format_trace_field(trace_context);
        fields["case_index"] = std::to_string(index);
        const double start_s = obs::monotonic_seconds();
        serve::Response response;
        serve::CallStatus status;
        {
            // Local span + context: the coordinator's own dist/case
            // span (and the client's synthetic remote child spans)
            // inherit the trace_id/case attribution.
            obs::ScopedTraceContext scoped(trace_context);
            OBS_SPAN("dist/case");
            status = client.request("run_case", fields, response);
        }
        if (obs::MetricsRegistry* registry = obs::metrics()) {
            registry
                ->histogram("dist/request_latency_s",
                            obs::latency_bounds(),
                            obs::Stability::kVolatile)
                .record(obs::monotonic_seconds() - start_s);
        }

        Outcome outcome = Outcome::kTransient;
        std::string error;
        core::JournalRecord record;
        if (status == serve::CallStatus::kOk) {
            if (response.ok) {
                if (!core::campaign_record_from_fields(response.fields,
                                                       record)) {
                    error = "malformed run_case reply";
                } else if (record.label != labels[index]) {
                    error = "reply labelled '" + record.label +
                            "' for case '" + labels[index] + "'";
                } else {
                    outcome = Outcome::kSuccess;
                }
            } else if (response.error == serve::kErrOverloaded ||
                       response.error == serve::kErrShuttingDown) {
                error = response.error + ": " + response.detail;
            } else {
                // bad_request / unknown_type / bad_version: the reply
                // is a pure function of the request, so every worker
                // would refuse identically — do not cycle the fleet.
                outcome = Outcome::kPoison;
                error = response.error + ": " + response.detail;
            }
        } else {
            error = serve::to_string(status);
        }

        bool lane_dead = false;
        bool worker_dead = false;
        std::string heartbeat_detail;
        {
            MutexLock lock(shared.mutex);
            --shared.inflight;
            switch (outcome) {
              case Outcome::kSuccess: {
                record.key = keys[index];
                if (!options.journal_path.empty()) {
                    core::append_campaign_journal(options.journal_path,
                                                  record);
                }
                shared.records[index] = std::move(record);
                shared.done[index] = 1;
                ++shared.completed;
                ++report.completed;
                consecutive_failures = 0;
                shared.worker_streaks[worker_index] = 0;
                // Remote stage breakdown, spliced in by the worker for
                // traced requests; absent on journal-restored or
                // pre-timing workers.
                double stage_s = 0.0;
                if (json_get_double(response.fields, "timing_queue_s",
                                    stage_s)) {
                    shared.stage_totals.queue_wait_s += stage_s;
                    if (json_get_double(response.fields,
                                        "timing_decode_s", stage_s))
                        shared.stage_totals.decode_s += stage_s;
                    if (json_get_double(response.fields,
                                        "timing_eval_s", stage_s))
                        shared.stage_totals.eval_s += stage_s;
                    if (json_get_double(response.fields,
                                        "timing_encode_s", stage_s))
                        shared.stage_totals.encode_s += stage_s;
                    ++shared.stage_totals.samples;
                }
                break;
              }
              case Outcome::kTransient:
                shared.queue.push_front(index);
                ++shared.reassigned;
                ++report.failures;
                report.last_error = error;
                ++consecutive_failures;
                shared.worker_streaks[worker_index] =
                    std::max(shared.worker_streaks[worker_index],
                             consecutive_failures);
                if (consecutive_failures >=
                    options.max_worker_failures) {
                    lane_dead = true;
                    if (--shared.live_lanes[worker_index] == 0) {
                        report.dead = true;
                        worker_dead = true;
                    }
                }
                set_queue_gauge(shared.queue.size());
                break;
              case Outcome::kPoison:
                shared.aborted = true;
                shared.abort_error = "case '" + labels[index] +
                                     "' refused by " +
                                     report.address.to_string() + ": " +
                                     error;
                --shared.live_lanes[worker_index];
                break;
            }
            if (outcome != Outcome::kPoison)
                heartbeat_detail =
                    fleet_detail_locked(reports, shared.worker_streaks);
        }
        shared.cv.notify_all();
        if (!heartbeat_detail.empty())
            progress.set_detail(std::move(heartbeat_detail));

        if (outcome == Outcome::kSuccess) {
            bump_counter("dist/completed", obs::Stability::kStable);
            bump_counter(completed_metric.c_str(),
                         obs::Stability::kVolatile);
            progress.advance();
        } else if (outcome == Outcome::kTransient) {
            bump_counter("dist/reassigned", obs::Stability::kVolatile);
            bump_counter("dist/worker_failures",
                         obs::Stability::kVolatile);
            progress.note_retry();
            warn("dist: case '", labels[index], "' reassigned (worker ",
                 report.address.to_string(), ": ", error, ")");
        } else {
            return;  // poison: abort flag is set, fleet unwinds
        }
        if (lane_dead) {
            bump_counter("dist/workers_dead", obs::Stability::kVolatile);
            warn("dist: worker ", report.address.to_string(),
                 " dropped after ", options.max_worker_failures,
                 " consecutive failures (last: ", error, ")");
            if (worker_dead && (!options.fleet_trace_path.empty() ||
                                !options.fleet_metrics_path.empty())) {
                // Best-effort salvage: a worker declared dead may be
                // merely degraded and about to exit — grab whatever
                // telemetry it still answers with now, so the
                // campaign-end merge is not left empty-handed if it is
                // gone by then.
                FleetPullOptions pull_options;
                pull_options.client = options.client;
                pull_options.client.request_timeout_s = 5.0;
                obs::WorkerTelemetry telemetry;
                if (pull_worker_telemetry(report.address, pull_options,
                                          telemetry)) {
                    MutexLock lock(shared.mutex);
                    shared.stash[worker_index] = std::move(telemetry);
                    shared.stashed[worker_index] = 1;
                }
            }
            return;
        }
        if (status == serve::CallStatus::kCircuitOpen) {
            // The breaker fast-fails without touching the network; pace
            // the lane so it does not burn its whole failure budget
            // inside one cooldown window.
            std::this_thread::sleep_for(std::chrono::duration<double>(
                options.client.circuit_breaker_cooldown_s));
        }
    }
}

}  // namespace

DistCampaignResult
run_distributed_campaign(const core::CampaignSpec& spec,
                         const DistCampaignOptions& options)
{
    spec.validate();
    options.validate();
    if (spec.model.find('.') != std::string::npos ||
        spec.model.find('/') != std::string::npos) {
        fatal("distributed campaigns require a model-zoo name (workers "
              "cannot read a model file from the coordinator's disk); "
              "got '", spec.model, "'");
    }

    obs::SpanTimer timer("dist/run");

    const dnn::Model model = dnn::make_model(spec.model);
    const std::vector<core::CampaignCase> cases =
        core::build_campaign_cases(spec, model);
    std::unique_ptr<fault::FaultInjector> faults;
    const search::ExplorerOptions base =
        core::build_explorer_options(spec, faults);

    const std::size_t count = cases.size();
    std::vector<std::string> labels(count);
    std::vector<std::string> keys(count);
    for (std::size_t i = 0; i < count; ++i) {
        labels[i] = cases[i].label;
        keys[i] = core::campaign_case_key_hex(cases[i], base, i);
    }

    // Lanes do not exist yet, so these locks are uncontended; they are
    // taken anyway because every Shared field is guarded by the mutex.
    Shared shared;
    std::vector<char> restored(count, 0);
    std::size_t restored_count = 0;
    const bool journaled = !options.journal_path.empty();
    bool have_work = false;
    {
        MutexLock lock(shared.mutex);
        shared.records.resize(count);
        shared.done.assign(count, 0);
        shared.live_lanes.assign(
            options.workers.size(),
            options.streams_per_worker);
        shared.worker_streaks.assign(options.workers.size(), 0);
        shared.stash.resize(options.workers.size());
        shared.stashed.assign(options.workers.size(), 0);

        // Resume: restore journaled cases, queue the rest in index
        // order.
        if (journaled) {
            const auto journal =
                core::load_campaign_journal(options.journal_path);
            for (std::size_t i = 0; i < count; ++i) {
                const auto it = journal.find(keys[i]);
                if (it == journal.end())
                    continue;
                shared.records[i] =
                    core::deterministic_record(it->second);
                shared.records[i].key = keys[i];
                shared.done[i] = 1;
                restored[i] = 1;
                ++restored_count;
            }
        }
        for (std::size_t i = 0; i < count; ++i) {
            if (!shared.done[i])
                shared.queue.push_back(i);
        }
        have_work = !shared.queue.empty();
    }

    // Informational readiness probe; dispatch never gates on it.
    WorkerPool pool(options.workers, options.client);
    pool.probe();
    DistCampaignResult result;
    result.cases = count;
    result.restored = restored_count;
    result.workers_ready = pool.ready_count();
    result.workers.reserve(pool.statuses().size());
    for (const WorkerStatus& status : pool.statuses()) {
        WorkerReport report;
        report.address = status.address;
        report.worker_id = status.worker_id;
        report.ready_at_start = status.ready;
        result.workers.push_back(std::move(report));
    }

    bump_counter("dist/cases_total", obs::Stability::kStable, count);
    bump_counter("dist/journal_restored", obs::Stability::kStable,
                 restored_count);
    if (obs::MetricsRegistry* registry = obs::metrics()) {
        registry->gauge("dist/workers_ready", obs::Stability::kVolatile)
            .set(static_cast<double>(result.workers_ready));
    }
    {
        MutexLock lock(shared.mutex);
        set_queue_gauge(shared.queue.size());
    }

    obs::ProgressReporter::Options progress_options;
    progress_options.min_interval_s = options.progress_interval_s;
    obs::ProgressReporter progress("dist", count, progress_options);
    for (std::size_t i = 0; i < restored_count; ++i)
        progress.note_restored();
    progress.advance(restored_count);

    // Deterministic campaign trace id: a pure function of the case
    // keys (which already hash the spec and explorer config), so a
    // rerun attributes spans to the same trace. |1 keeps it nonzero —
    // trace_id 0 means "untraced" on the wire.
    StableHash trace_hash;
    trace_hash.add(spec.model);
    trace_hash.add(static_cast<std::uint64_t>(count));
    for (const std::string& key : keys)
        trace_hash.add(key);
    const std::uint64_t trace_id = trace_hash.key().lo | 1;

    if (have_work) {
        std::vector<std::thread> lanes;
        lanes.reserve(options.workers.size() *
                      static_cast<std::size_t>(
                          options.streams_per_worker));
        for (std::size_t w = 0; w < options.workers.size(); ++w) {
            for (int s = 0; s < options.streams_per_worker; ++s) {
                lanes.emplace_back([&, w] {
                    lane_loop(spec, labels, keys, options, w, trace_id,
                              shared, result.workers, progress);
                });
            }
        }
        for (std::thread& lane : lanes)
            lane.join();
    }

    // Every lane has been joined; the lock is held for the rest of the
    // merge/rewrite tail to satisfy the guarded-by contract.
    MutexLock lock(shared.mutex);
    if (shared.aborted)
        fatal("distributed campaign aborted: ", shared.abort_error);
    std::size_t missing = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (!shared.done[i])
            ++missing;
    }
    if (missing > 0) {
        std::string detail;
        for (const WorkerReport& report : result.workers) {
            if (report.last_error.empty())
                continue;
            if (!detail.empty())
                detail += "; ";
            detail += report.address.to_string() + ": " +
                      report.last_error;
        }
        fatal("distributed campaign failed: ", missing, " of ", count,
              " cases unfinished after every worker died (", detail,
              ")");
    }

    // Merge in case order — this is what makes dynamic assignment
    // invisible in the output.
    result.campaign.entries.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        core::CampaignEntry entry =
            core::from_journal_record(shared.records[i]);
        entry.from_journal = restored[i] != 0;
        result.campaign.entries.push_back(std::move(entry));
    }
    result.campaign.journal_skips = restored_count;

    // Canonical journal rewrite: same bytes as an uninterrupted
    // single-process deterministic-journal run — records in case order,
    // foreign/stale keys dropped. Atomic via rename so a kill leaves
    // either the old append-order journal or the new canonical one.
    if (journaled) {
        const std::string tmp_path = options.journal_path + ".tmp";
        {
            std::ofstream output(tmp_path, std::ios::trunc);
            if (!output)
                fatal("dist: cannot write journal '", tmp_path, "'");
            for (std::size_t i = 0; i < count; ++i)
                output << core::to_json_line(shared.records[i]) << '\n';
            output.flush();
            if (!output)
                fatal("dist: write to '", tmp_path, "' failed");
        }
        if (std::rename(tmp_path.c_str(),
                        options.journal_path.c_str()) != 0) {
            fatal("dist: cannot rename '", tmp_path, "' over '",
                  options.journal_path, "'");
        }
    }

    // Fleet telemetry merge: pull every worker's buffers, fold in the
    // coordinator's own session, align onto one timeline, write the
    // merged artifacts. Strictly after the deterministic outputs —
    // telemetry failures must never affect the campaign result.
    if (!options.fleet_trace_path.empty() ||
        !options.fleet_metrics_path.empty()) {
        obs::FleetCollector collector;
        if (obs::TraceSession* session = obs::trace()) {
            // The coordinator's own spans need no probe: the exact
            // session->monotonic skew is the whole offset (the
            // reference timeline IS this process's monotonic clock).
            obs::WorkerTelemetry self;
            self.worker_id = "coordinator";
            self.clock_offset_s = session->epoch_to_monotonic_skew_s();
            self.events = session->merged();
            self.dropped_events = session->dropped();
            if (obs::MetricsRegistry* registry = obs::metrics())
                self.metrics = registry->samples();
            collector.add_worker(std::move(self));
        }
        FleetPullOptions pull_options;
        pull_options.client = options.client;
        pull_options.client.request_timeout_s = 30.0;
        for (std::size_t w = 0; w < options.workers.size(); ++w) {
            obs::WorkerTelemetry telemetry;
            if (pull_worker_telemetry(options.workers[w], pull_options,
                                      telemetry)) {
                collector.add_worker(std::move(telemetry));
                ++result.fleet_workers_collected;
            } else if (shared.stashed[w] != 0) {
                // The live pull failed (worker died mid-run); merge
                // the telemetry salvaged when its last lane gave up.
                collector.add_worker(std::move(shared.stash[w]));
                ++result.fleet_workers_collected;
                warn("dist: worker ",
                     options.workers[w].to_string(),
                     " unreachable at campaign end; merged telemetry "
                     "stashed at death time");
            } else {
                warn("dist: worker ", options.workers[w].to_string(),
                     " contributed no telemetry to the fleet merge");
            }
        }
        std::uint64_t clamped = 0;
        result.fleet_spans = collector.aligned(&clamped).size();
        result.fleet_clamped_spans = clamped;
        if (!options.fleet_trace_path.empty())
            collector.write_chrome_trace_file(options.fleet_trace_path);
        if (!options.fleet_metrics_path.empty())
            collector.write_metrics_rollup_file(
                options.fleet_metrics_path);
    }

    progress.finish();
    result.dispatched = shared.dispatched;
    result.completed = shared.completed;
    result.reassigned = shared.reassigned;
    result.stage_totals = shared.stage_totals;
    result.campaign.wall_time_s = timer.elapsed_s();
    return result;
}

}  // namespace chrysalis::dist

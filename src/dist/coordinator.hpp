/// \file
/// Distributed campaign coordinator: executes a `core::CampaignSpec`
/// across a fleet of `chrysalis_served` daemons over the existing
/// `chrysalis-serve-v1` protocol, with output byte-identical to a
/// single-process `run_campaign` at any worker count.
///
/// Scheduling is pull-based: every worker lane (one `serve::Client`
/// per lane, `streams_per_worker` lanes per worker) pops the
/// lowest-index unfinished case from a shared queue, sends one
/// `run_case` request and stores the returned deterministic journal
/// record at the case's index. Assignment order is therefore dynamic
/// (whichever lane is free takes the next case) but *results* are not:
/// each reply is a pure function of the request fields (the worker
/// runs the same `run_campaign_case` code path a local campaign uses,
/// with wall-clock fields zeroed), and the coordinator merges by case
/// index — so the CSV and the canonical journal come out byte-identical
/// to a sequential local run no matter how work was distributed.
///
/// Fault tolerance: a transient failure (connect/send/recv error,
/// request deadline, open circuit breaker, or an `overloaded`/
/// `shutting_down` refusal) puts the case back at the *front* of the
/// queue — preserving lowest-index-first dispatch — and counts against
/// the lane's consecutive-failure budget; a lane that exhausts
/// `max_worker_failures` exits and its worker is reported dead. A
/// *poison* reply (`bad_request`, `unknown_type`, `bad_version`) is
/// deterministic — every worker would refuse the same way — so it
/// aborts the campaign instead of cycling through the fleet. The
/// campaign fails only when every lane has died with work remaining.
///
/// Resume: with a `journal_path`, finished cases are appended to the
/// journal as they complete (in completion order — crash-safe), cases
/// already journaled are restored without dispatch, and on success the
/// journal is rewritten atomically in canonical case order so its bytes
/// match an uninterrupted single-process run with
/// `deterministic_journal` enabled.

#ifndef CHRYSALIS_DIST_COORDINATOR_HPP
#define CHRYSALIS_DIST_COORDINATOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/campaign_spec.hpp"
#include "dist/worker_pool.hpp"
#include "serve/client.hpp"

namespace chrysalis::dist {

/// Coordinator knobs; validate() fatals on nonsense values.
struct DistCampaignOptions {
    /// Constructor raises the client's per-request deadline to 300 s:
    /// a `run_case` request runs a whole bi-level search, not a single
    /// evaluation, so the serve default (30 s) would misclassify
    /// healthy long cases as timeouts.
    DistCampaignOptions();

    std::vector<WorkerAddress> workers;
    /// Per-lane client knobs (timeouts, retry budget, circuit breaker).
    /// `run_case` is memoized server-side, so the client's internal
    /// retries are safe; coordinator-level reassignment sits on top.
    serve::ClientOptions client;
    /// Concurrent requests per worker. 1 (the default) matches a
    /// daemon started with --threads 1; raise it for multi-threaded
    /// workers.
    int streams_per_worker = 1;
    /// Consecutive transient failures after which a lane gives up and
    /// its worker is considered dead.
    int max_worker_failures = 3;
    /// When non-empty: resume journal, shared format with
    /// core::CampaignOptions::journal_path (deterministic records).
    std::string journal_path;
    /// Progress-heartbeat pacing, as in core::CampaignOptions.
    double progress_interval_s = 5.0;
    /// When non-empty: after the campaign, pull every worker's trace
    /// buffer (`trace_export`) and write one clock-aligned merged
    /// Chrome trace here (obs::FleetCollector; the coordinator's own
    /// session, when attached, appears as the "coordinator" process).
    std::string fleet_trace_path;
    /// When non-empty: pull every worker's metrics (`metrics_snapshot`)
    /// and write the `fleet/<worker_id>/...` rollup here.
    std::string fleet_metrics_path;

    void validate() const;
};

/// Per-worker accounting across the run (aggregated over its lanes).
struct WorkerReport {
    WorkerAddress address;
    std::string worker_id;       ///< from the pre-run health probe
    bool ready_at_start = false; ///< probe outcome (informational)
    std::uint64_t completed = 0; ///< cases this worker finished
    std::uint64_t failures = 0;  ///< transient failures charged to it
    bool dead = false;           ///< every lane exhausted its budget
    std::string last_error;      ///< final failure classification
};

/// Sums of the per-request stage timings the workers splice into
/// traced replies (`timing_*` fields) — where remote wall time went,
/// split by stage, across every completed request. Telemetry only:
/// never part of the deterministic CSV/journal output.
struct StageTotals {
    double queue_wait_s = 0.0;
    double decode_s = 0.0;
    double eval_s = 0.0;
    double encode_s = 0.0;
    std::uint64_t samples = 0;  ///< replies that carried timings
};

/// Result of a distributed campaign.
struct DistCampaignResult {
    core::CampaignResult campaign;  ///< merged, in case order
    std::size_t cases = 0;
    std::uint64_t dispatched = 0;   ///< requests sent (incl. re-sends)
    std::uint64_t completed = 0;    ///< cases evaluated remotely
    std::size_t restored = 0;       ///< cases restored from the journal
    std::uint64_t reassigned = 0;   ///< cases returned to the queue
    std::size_t workers_ready = 0;  ///< pre-run probe successes
    std::vector<WorkerReport> workers;
    StageTotals stage_totals;       ///< remote stage-time breakdown
    /// Fleet telemetry merge accounting (zero unless a fleet_*_path
    /// was set): workers successfully pulled, spans in the merged
    /// trace, and spans whose aligned duration had to be clamped to 0.
    std::size_t fleet_workers_collected = 0;
    std::uint64_t fleet_spans = 0;
    std::uint64_t fleet_clamped_spans = 0;
};

/// Runs \p spec across the fleet. fatal() when the spec names a model
/// file (workers resolve zoo names only), when a poison reply proves
/// the fleet cannot execute the spec, or when every worker has died
/// with work remaining.
DistCampaignResult
run_distributed_campaign(const core::CampaignSpec& spec,
                         const DistCampaignOptions& options);

}  // namespace chrysalis::dist

#endif  // CHRYSALIS_DIST_COORDINATOR_HPP

#include "energy/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::energy {

TraceSolarEnvironment
parse_irradiance_csv(std::istream& input, std::string label)
{
    std::vector<double> times;
    std::vector<double> values;
    std::string line;
    std::size_t line_no = 0;
    std::size_t skipped = 0;
    // Field recordings are messy: sensors glitch (NaN), loggers restart
    // (time going backwards) and files get truncated. One bad line must
    // not discard an otherwise usable trace, so malformed lines are
    // warned about and skipped; only a trace with *no* valid samples is
    // a fatal error.
    const auto skip = [&](const auto&... why) {
        ++skipped;
        warn("irradiance CSV line ", line_no, ": skipping: ", why...);
    };
    while (std::getline(input, line)) {
        ++line_no;
        const std::string text = trim(line);
        if (text.empty() || text.front() == '#')
            continue;
        if (line_no == 1 && to_lower(text) == "time_s,k_eh")
            continue;  // header
        const auto fields = split(text, ',');
        if (fields.size() != 2) {
            skip("expected 2 fields, got ", fields.size());
            continue;
        }
        double t = 0.0;
        double k = 0.0;
        try {
            t = std::stod(trim(fields[0]));
            k = std::stod(trim(fields[1]));
        } catch (const std::exception&) {
            skip("cannot parse '", text, "'");
            continue;
        }
        if (!std::isfinite(t) || !std::isfinite(k)) {
            skip("non-finite value in '", text, "'");
            continue;
        }
        if (k < 0.0) {
            skip("negative k_eh ", k);
            continue;
        }
        if (!times.empty() && t <= times.back()) {
            skip("non-monotonic time ", t, " after ", times.back());
            continue;
        }
        times.push_back(t);
        values.push_back(k);
    }
    if (times.empty())
        fatal("irradiance CSV: no valid samples found (", skipped,
              " malformed lines skipped)");
    if (skipped > 0) {
        warn("irradiance CSV '", label, "': kept ", times.size(),
             " samples, skipped ", skipped, " malformed lines");
    }
    return TraceSolarEnvironment(std::move(times), std::move(values),
                                 std::move(label));
}

TraceSolarEnvironment
load_irradiance_csv(const std::string& path)
{
    std::ifstream file(path);
    if (!file)
        fatal("load_irradiance_csv: cannot open '", path, "'");
    return parse_irradiance_csv(file, path);
}

void
write_irradiance_csv(std::ostream& output,
                     const SolarEnvironment& environment, double start_s,
                     double end_s, double step_s)
{
    if (end_s <= start_s || step_s <= 0.0)
        fatal("write_irradiance_csv: invalid range/step");
    output << "time_s,k_eh\n";
    for (double t = start_s; t <= end_s; t += step_s)
        output << t << ',' << environment.k_eh(t) << '\n';
}

}  // namespace chrysalis::energy

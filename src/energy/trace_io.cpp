#include "energy/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/string_utils.hpp"

namespace chrysalis::energy {

TraceSolarEnvironment
parse_irradiance_csv(std::istream& input, std::string label)
{
    std::vector<double> times;
    std::vector<double> values;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(input, line)) {
        ++line_no;
        const std::string text = trim(line);
        if (text.empty() || text.front() == '#')
            continue;
        if (line_no == 1 && to_lower(text) == "time_s,k_eh")
            continue;  // header
        const auto fields = split(text, ',');
        if (fields.size() != 2) {
            fatal("irradiance CSV line ", line_no, ": expected 2 fields, "
                  "got ", fields.size());
        }
        try {
            std::size_t used = 0;
            const double t = std::stod(trim(fields[0]), &used);
            const double k = std::stod(trim(fields[1]));
            (void)used;
            times.push_back(t);
            values.push_back(k);
        } catch (const std::exception&) {
            fatal("irradiance CSV line ", line_no,
                  ": cannot parse '", text, "'");
        }
    }
    if (times.empty())
        fatal("irradiance CSV: no samples found");
    return TraceSolarEnvironment(std::move(times), std::move(values),
                                 std::move(label));
}

TraceSolarEnvironment
load_irradiance_csv(const std::string& path)
{
    std::ifstream file(path);
    if (!file)
        fatal("load_irradiance_csv: cannot open '", path, "'");
    return parse_irradiance_csv(file, path);
}

void
write_irradiance_csv(std::ostream& output,
                     const SolarEnvironment& environment, double start_s,
                     double end_s, double step_s)
{
    if (end_s <= start_s || step_s <= 0.0)
        fatal("write_irradiance_csv: invalid range/step");
    output << "time_s,k_eh\n";
    for (double t = start_s; t <= end_s; t += step_s)
        output << t << ',' << environment.k_eh(t) << '\n';
}

}  // namespace chrysalis::energy

/// \file
/// Photovoltaic module electrical model and MPPT.
///
/// The plain SolarPanel abstracts the panel as P = A * k_eh, which assumes
/// the converter always operates the cell at its maximum power point. This
/// module models the step below that abstraction: a single-diode-style
/// I-V curve (per King et al. [39] / Sera et al. [60] datasheet models)
/// and a perturb-and-observe MPPT controller (Femia et al. [19], surveyed
/// by Esram & Chapman [17]). `MpptSolarPanel` packages both behind the
/// EnergyHarvester interface, so the rest of the framework can swap the
/// ideal panel for a tracked one and quantify MPPT tracking losses.

#ifndef CHRYSALIS_ENERGY_PV_MODULE_HPP
#define CHRYSALIS_ENERGY_PV_MODULE_HPP

#include <memory>

#include "energy/harvester.hpp"
#include "energy/solar_environment.hpp"

namespace chrysalis::energy {

/// Electrical model of a PV module under a given irradiance.
///
/// Simplified single-diode form: I(V) = I_sc * (1 - exp((V - V_oc)/V_t)),
/// with the short-circuit current proportional to irradiance and the
/// open-circuit voltage drifting logarithmically with irradiance.
class PvModule
{
  public:
    /// Datasheet-style parameters at the reference irradiance.
    struct Config {
        double area_cm2 = 8.0;       ///< module area
        double isc_ref_a = 30e-3;    ///< short-circuit current @ ref
        double voc_ref_v = 2.2;      ///< open-circuit voltage @ ref
        double thermal_voltage_v = 0.12;  ///< diode curve sharpness
        double k_eh_ref = 2.0e-3;    ///< reference irradiance [W/cm^2]
    };

    explicit PvModule(const Config& config);

    /// Output current at terminal voltage \p v under irradiance \p k_eh
    /// [A]; clamped at >= 0.
    double current(double v, double k_eh) const;

    /// Output power at terminal voltage \p v [W].
    double power(double v, double k_eh) const;

    /// Open-circuit voltage under irradiance \p k_eh.
    double open_circuit_voltage(double k_eh) const;

    /// True maximum power under \p k_eh (golden-section search; used by
    /// tests and to measure tracking efficiency).
    double max_power(double k_eh) const;

    /// Voltage achieving max_power under \p k_eh.
    double max_power_voltage(double k_eh) const;

    const Config& config() const { return config_; }

  private:
    Config config_;
};

/// Perturb-and-observe MPPT controller: walks the operating voltage in
/// fixed steps, reversing direction when the observed power drops.
class PerturbObserveTracker
{
  public:
    /// Controller parameters.
    struct Config {
        double step_v = 0.02;        ///< perturbation step
        double initial_voltage_v = 1.5;
        double min_voltage_v = 0.0;
    };

    explicit PerturbObserveTracker(const Config& config);

    /// One P&O iteration against \p module under \p k_eh; returns the
    /// power at the new operating point.
    double step(const PvModule& module, double k_eh);

    /// Current operating voltage.
    double voltage() const { return voltage_; }

    /// Resets to the initial operating point.
    void reset();

    const Config& config() const { return config_; }

  private:
    Config config_;
    double voltage_;
    double last_power_ = 0.0;
    double direction_ = 1.0;
};

/// An EnergyHarvester that runs P&O tracking over a PvModule. Each call
/// to power() advances the tracker a few iterations (modelling a
/// converter whose control loop is much faster than the simulation
/// step), so the delivered power converges to within a small margin of
/// the true MPP and re-converges after irradiance changes.
class MpptSolarPanel final : public EnergyHarvester
{
  public:
    /// \param module PV electrical model.
    /// \param tracker P&O controller.
    /// \param environment ambient-light model; must not be null.
    /// \param iterations_per_query control-loop steps per power() call.
    MpptSolarPanel(PvModule module, PerturbObserveTracker tracker,
                   std::shared_ptr<const SolarEnvironment> environment,
                   int iterations_per_query = 8);

    double power(double t_s) const override;
    double area_cm2() const override { return module_.config().area_cm2; }
    std::string name() const override;
    std::unique_ptr<EnergyHarvester> clone() const override;

    /// Tracking efficiency observed at time \p t_s: delivered / MPP.
    double tracking_efficiency(double t_s) const;

    const PvModule& module() const { return module_; }

  private:
    PvModule module_;
    mutable PerturbObserveTracker tracker_;
    std::shared_ptr<const SolarEnvironment> environment_;
    int iterations_per_query_;
};

}  // namespace chrysalis::energy

#endif  // CHRYSALIS_ENERGY_PV_MODULE_HPP

#include "energy/harvester.hpp"

#include <numbers>

#include "common/logging.hpp"

namespace chrysalis::energy {

SolarPanel::SolarPanel(double area_cm2,
                       std::shared_ptr<const SolarEnvironment> environment)
    : area_cm2_(area_cm2), environment_(std::move(environment))
{
    if (area_cm2_ <= 0.0)
        fatal("SolarPanel: area must be > 0 cm^2, got ", area_cm2_);
    if (!environment_)
        fatal("SolarPanel: environment must not be null");
}

double
SolarPanel::power(double t_s) const
{
    return area_cm2_ * environment_->k_eh(t_s);  // Eq. 1
}

std::string
SolarPanel::name() const
{
    return "solar-panel(" + environment_->name() + ")";
}

std::unique_ptr<EnergyHarvester>
SolarPanel::clone() const
{
    return std::make_unique<SolarPanel>(*this);
}

void
SolarPanel::set_area_cm2(double area_cm2)
{
    if (area_cm2 <= 0.0)
        fatal("SolarPanel: area must be > 0 cm^2, got ", area_cm2);
    area_cm2_ = area_cm2;
}

RfHarvester::RfHarvester(const Config& config) : config_(config)
{
    if (config_.tx_power_w <= 0.0)
        fatal("RfHarvester: transmitter power must be > 0");
    if (config_.distance_m <= 0.0)
        fatal("RfHarvester: distance must be > 0");
    if (config_.frequency_hz <= 0.0)
        fatal("RfHarvester: frequency must be > 0");
    if (config_.antenna_area_cm2 <= 0.0)
        fatal("RfHarvester: antenna area must be > 0");
    if (config_.rectifier_efficiency <= 0.0 ||
        config_.rectifier_efficiency > 1.0) {
        fatal("RfHarvester: rectifier efficiency must lie in (0, 1]");
    }
    // Friis free-space: P_rx = P_tx * (lambda / (4 pi d))^2 * G_rx, with
    // the receive gain approximated by the aperture ratio
    // G_rx = 4 pi A / lambda^2 (A in m^2).
    constexpr double kC = 299792458.0;
    const double lambda = kC / config_.frequency_hz;
    const double aperture_m2 = config_.antenna_area_cm2 * 1e-4;
    const double path = lambda / (4.0 * std::numbers::pi *
                                  config_.distance_m);
    const double rx_gain =
        4.0 * std::numbers::pi * aperture_m2 / (lambda * lambda);
    const double received =
        config_.tx_power_w * path * path * rx_gain *
        config_.rectifier_efficiency;
    received_power_w_ =
        received >= config_.sensitivity_w ? received : 0.0;
}

double
RfHarvester::power(double) const
{
    return received_power_w_;
}

std::unique_ptr<EnergyHarvester>
RfHarvester::clone() const
{
    return std::make_unique<RfHarvester>(*this);
}

CompositeHarvester::CompositeHarvester(
    std::vector<std::unique_ptr<EnergyHarvester>> children)
    : children_(std::move(children))
{
    if (children_.empty())
        fatal("CompositeHarvester: at least one child required");
    for (const auto& child : children_) {
        if (!child)
            fatal("CompositeHarvester: null child harvester");
    }
}

double
CompositeHarvester::power(double t_s) const
{
    double total = 0.0;
    for (const auto& child : children_)
        total += child->power(t_s);
    return total;
}

double
CompositeHarvester::area_cm2() const
{
    double total = 0.0;
    for (const auto& child : children_)
        total += child->area_cm2();
    return total;
}

std::string
CompositeHarvester::name() const
{
    std::string label = "composite(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0)
            label += "+";
        label += children_[i]->name();
    }
    label += ")";
    return label;
}

std::unique_ptr<EnergyHarvester>
CompositeHarvester::clone() const
{
    std::vector<std::unique_ptr<EnergyHarvester>> copies;
    copies.reserve(children_.size());
    for (const auto& child : children_)
        copies.push_back(child->clone());
    return std::make_unique<CompositeHarvester>(std::move(copies));
}

ThermalHarvester::ThermalHarvester(double area_cm2,
                                   double power_density_w_per_cm2)
    : area_cm2_(area_cm2), power_density_(power_density_w_per_cm2)
{
    if (area_cm2_ <= 0.0)
        fatal("ThermalHarvester: area must be > 0 cm^2, got ", area_cm2_);
    if (power_density_ < 0.0)
        fatal("ThermalHarvester: power density must be >= 0");
}

double
ThermalHarvester::power(double) const
{
    return area_cm2_ * power_density_;
}

std::unique_ptr<EnergyHarvester>
ThermalHarvester::clone() const
{
    return std::make_unique<ThermalHarvester>(*this);
}

}  // namespace chrysalis::energy

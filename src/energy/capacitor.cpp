#include "energy/capacitor.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace chrysalis::energy {

Capacitor::Capacitor(const Config& config)
    : config_(config), voltage_(config.initial_voltage_v)
{
    if (config_.capacitance_f <= 0.0)
        fatal("Capacitor: capacitance must be > 0, got ",
              config_.capacitance_f);
    if (config_.rated_voltage_v <= 0.0)
        fatal("Capacitor: rated voltage must be > 0, got ",
              config_.rated_voltage_v);
    if (config_.k_cap < 0.0)
        fatal("Capacitor: leakage coefficient must be >= 0, got ",
              config_.k_cap);
    if (voltage_ < 0.0 || voltage_ > config_.rated_voltage_v)
        fatal("Capacitor: initial voltage ", voltage_,
              " outside [0, ", config_.rated_voltage_v, "]");
}

double
Capacitor::stored_energy() const
{
    return 0.5 * config_.capacitance_f * voltage_ * voltage_;
}

double
Capacitor::effective_k_cap() const
{
    return config_.k_cap *
           std::exp2((config_.temperature_c - 25.0) /
                     config_.leakage_doubling_c);
}

void
Capacitor::set_temperature(double temperature_c)
{
    if (temperature_c < -273.15)
        fatal("Capacitor::set_temperature: below absolute zero");
    config_.temperature_c = temperature_c;
}

void
Capacitor::derate(double capacitance_scale, double leakage_scale)
{
    if (!(capacitance_scale > 0.0 && capacitance_scale <= 1.0))
        fatal("Capacitor::derate: capacitance scale must be in (0, 1], "
              "got ", capacitance_scale);
    if (!(leakage_scale >= 1.0))
        fatal("Capacitor::derate: leakage scale must be >= 1, got ",
              leakage_scale);
    const double energy = stored_energy();
    config_.capacitance_f *= capacitance_scale;
    config_.k_cap *= leakage_scale;
    voltage_ = std::min(std::sqrt(2.0 * energy / config_.capacitance_f),
                        config_.rated_voltage_v);
}

double
Capacitor::leakage_current() const
{
    return effective_k_cap() * config_.capacitance_f * voltage_;  // Eq. 2
}

double
Capacitor::leakage_power() const
{
    return leakage_current() * voltage_;
}

double
Capacitor::charge(double energy_j)
{
    if (energy_j < 0.0)
        panic("Capacitor::charge: negative energy ", energy_j);
    const double ceiling = energy_between(0.0, config_.rated_voltage_v);
    const double absorbed =
        std::min(energy_j, std::max(0.0, ceiling - stored_energy()));
    const double new_energy = stored_energy() + absorbed;
    voltage_ = std::sqrt(2.0 * new_energy / config_.capacitance_f);
    voltage_ = std::min(voltage_, config_.rated_voltage_v);
    return absorbed;
}

double
Capacitor::discharge(double energy_j)
{
    if (energy_j < 0.0)
        panic("Capacitor::discharge: negative energy ", energy_j);
    const double delivered = std::min(energy_j, stored_energy());
    const double new_energy = stored_energy() - delivered;
    voltage_ = std::sqrt(std::max(0.0, 2.0 * new_energy /
                                           config_.capacitance_f));
    return delivered;
}

double
Capacitor::apply_leakage(double dt_s)
{
    if (dt_s < 0.0)
        panic("Capacitor::apply_leakage: negative dt ", dt_s);
    // Leakage power at the step's starting voltage; the paper simplifies
    // identically ("the leakage energy is simplified as the voltage is
    // unchanged", §III-B1).
    const double lost = std::min(leakage_power() * dt_s, stored_energy());
    return discharge(lost);
}

void
Capacitor::set_voltage(double voltage_v)
{
    if (voltage_v < 0.0 || voltage_v > config_.rated_voltage_v)
        fatal("Capacitor::set_voltage: ", voltage_v, " outside [0, ",
              config_.rated_voltage_v, "]");
    voltage_ = voltage_v;
}

double
Capacitor::energy_between(double v_lo, double v_hi) const
{
    if (v_lo < 0.0 || v_hi < v_lo)
        fatal("Capacitor::energy_between: invalid range [", v_lo, ", ",
              v_hi, "]");
    return 0.5 * config_.capacitance_f * (v_hi * v_hi - v_lo * v_lo);
}

}  // namespace chrysalis::energy

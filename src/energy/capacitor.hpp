/// \file
/// Electrolytic-capacitor energy-storage model (Eq. 2 and the E = 1/2 C V^2
/// terms of Eq. 3).
///
/// The capacitor buffers harvested energy; its leakage current grows with
/// capacitance and voltage, I_R = k_cap * C * U (Eq. 2), which is the
/// mechanism behind the paper's "larger capacitors cause obvious leakage
/// energy / unavailability" observations (Figs. 2b and 9).

#ifndef CHRYSALIS_ENERGY_CAPACITOR_HPP
#define CHRYSALIS_ENERGY_CAPACITOR_HPP

namespace chrysalis::energy {

/// Stateful capacitor model; voltage is the single state variable.
class Capacitor
{
  public:
    /// Physical parameters of the capacitor.
    struct Config {
        double capacitance_f = 100e-6;  ///< C [F]
        double rated_voltage_v = 5.0;   ///< U_rated [V], hard ceiling
        double k_cap = 0.01;            ///< leakage coefficient [1/s], Eq. 2
        double initial_voltage_v = 0.0; ///< starting voltage [V]
        /// Temperature model (§III-D: "considerations such as temperature
        /// ... can be incorporated"): electrolytic leakage roughly
        /// doubles every `leakage_doubling_c` above the 25 C reference.
        double temperature_c = 25.0;
        double leakage_doubling_c = 10.0;
    };

    explicit Capacitor(const Config& config);

    /// Current terminal voltage [V].
    double voltage() const { return voltage_; }

    /// Effective leakage coefficient at the configured temperature:
    /// k_cap * 2^((T - 25 C) / doubling).
    double effective_k_cap() const;

    /// Updates the operating temperature (affects leakage only).
    void set_temperature(double temperature_c);

    /// Applies mission-age degradation: capacitance is multiplied by
    /// \p capacitance_scale (in (0, 1]) and the leakage coefficient by
    /// \p leakage_scale (>= 1). Stored charge is preserved, so the
    /// terminal voltage rises accordingly (clipped at the rated ceiling;
    /// the excess is lost). Used by fault injection.
    void derate(double capacitance_scale, double leakage_scale);

    /// Stored energy 1/2 C V^2 [J].
    double stored_energy() const;

    /// Leakage current at the present voltage, I_R = k_cap * C * U [A].
    double leakage_current() const;

    /// Leakage power at the present voltage, U * I_R [W].
    double leakage_power() const;

    /// Adds \p energy_j joules (clipped at the rated-voltage ceiling).
    /// \returns the energy actually absorbed; the remainder is "wasted"
    /// harvest (tracked by the caller for the system-efficiency metric).
    double charge(double energy_j);

    /// Removes up to \p energy_j joules, never driving voltage below 0.
    /// \returns the energy actually delivered.
    double discharge(double energy_j);

    /// Applies leakage over \p dt_s seconds; \returns the energy lost [J].
    double apply_leakage(double dt_s);

    /// Forces the voltage (used when initializing experiment scenarios).
    /// \pre 0 <= voltage_v <= rated voltage.
    void set_voltage(double voltage_v);

    /// Energy capacity between two voltages: 1/2 C (hi^2 - lo^2) [J].
    double energy_between(double v_lo, double v_hi) const;

    const Config& config() const { return config_; }

  private:
    Config config_;
    double voltage_;
};

}  // namespace chrysalis::energy

#endif  // CHRYSALIS_ENERGY_CAPACITOR_HPP

#include "energy/energy_controller.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace chrysalis::energy {

EnergyController::EnergyController(std::unique_ptr<EnergyHarvester> harvester,
                                   Capacitor capacitor,
                                   PowerManagementIc pmic)
    : harvester_(std::move(harvester)), capacitor_(std::move(capacitor)),
      pmic_(std::move(pmic))
{
    if (!harvester_)
        fatal("EnergyController: harvester must not be null");
    if (pmic_.v_on() > capacitor_.config().rated_voltage_v) {
        fatal("EnergyController: PMIC turn-on threshold ", pmic_.v_on(),
              " V exceeds capacitor rated voltage ",
              capacitor_.config().rated_voltage_v, " V");
    }
    state_ = capacitor_.voltage() >= pmic_.v_on() ? PowerState::kActive
                                                  : PowerState::kCharging;
}

void
EnergyController::attach_fault_model(const PowerFaultModel* model)
{
    if (model == fault_)
        return;
    if (fault_ != nullptr && model != nullptr) {
        fatal("EnergyController::attach_fault_model: a different fault "
              "model is already attached; its static derating cannot be "
              "undone — build a fresh controller instead");
    }
    fault_ = model;
    if (model == nullptr)
        return;
    capacitor_.derate(model->capacitance_scale(), model->leakage_scale());
    pmic_.apply_threshold_drift(model->v_on_offset_v(),
                                model->v_off_offset_v(),
                                capacitor_.config().rated_voltage_v);
    // Threshold drift can move the operating point across U_on.
    state_ = capacitor_.voltage() >= pmic_.v_on() ? PowerState::kActive
                                                  : PowerState::kCharging;
}

double
EnergyController::input_power_w(double t_s) const
{
    const double raw = harvester_->power(t_s);
    return fault_ ? raw * fault_->harvest_factor(t_s) : raw;
}

EnergyStepResult
EnergyController::step(double t_s, double dt_s, double load_power_w)
{
    if (dt_s < 0.0)
        panic("EnergyController::step: negative dt ", dt_s);
    if (load_power_w < 0.0)
        panic("EnergyController::step: negative load power ", load_power_w);

    EnergyStepResult result;

    // 1. Harvest through the charger onto the storage bus. The PMIC can
    //    feed the load directly from harvest within the step; only the
    //    surplus/deficit goes through (comes from) the capacitor.
    const double harvested = input_power_w(t_s) * dt_s;
    ledger_.harvested_j += harvested;
    double bus_energy = harvested * pmic_.charge_efficiency();

    // 2. Capacitor leakage (Eq. 2) and PMIC quiescent draw (preferably
    //    served from the incoming harvest).
    ledger_.leaked_j += capacitor_.apply_leakage(dt_s);
    const double quiescent_need = pmic_.quiescent_power() * dt_s;
    const double quiescent_direct = std::min(quiescent_need, bus_energy);
    bus_energy -= quiescent_direct;
    const double quiescent_stored =
        capacitor_.discharge(quiescent_need - quiescent_direct);
    ledger_.quiescent_j += quiescent_direct + quiescent_stored;

    // 3. Load supply (only in the active state).
    if (state_ == PowerState::kActive && load_power_w > 0.0) {
        const double requested = load_power_w * dt_s;
        const double bus_need = pmic_.capacitor_energy_for_load(requested);
        const double direct = std::min(bus_need, bus_energy);
        bus_energy -= direct;
        // Bridge the deficit from storage, down to U_off.
        const double stored_budget = std::max(
            0.0, capacitor_.stored_energy() -
                     capacitor_.energy_between(0.0, pmic_.v_off()));
        const double from_cap =
            capacitor_.discharge(std::min(bus_need - direct,
                                          stored_budget));
        result.delivered_j =
            pmic_.load_energy_from_capacitor(direct + from_cap);
        ledger_.delivered_j += result.delivered_j;
        if (result.delivered_j + 1e-15 < requested) {
            // Could not satisfy the load within this step: brown-out.
            state_ = PowerState::kCharging;
            result.browned_out = true;
        }
    }

    // 4. Absorb the remaining harvest into the capacitor; overflow beyond
    //    the rated voltage is wasted.
    const double absorbed = capacitor_.charge(bus_energy);
    ledger_.stored_j += absorbed;
    ledger_.wasted_j += (bus_energy - absorbed) / pmic_.charge_efficiency();

    // 5. State transitions.
    if (state_ == PowerState::kCharging &&
        capacitor_.voltage() >= pmic_.v_on()) {
        state_ = PowerState::kActive;
        ++ledger_.cycle_count;
    } else if (state_ == PowerState::kActive &&
               capacitor_.voltage() < pmic_.v_off()) {
        state_ = PowerState::kCharging;
        result.browned_out = true;
    }

    result.state = state_;
    return result;
}

double
EnergyController::available_load_energy() const
{
    const double usable = std::max(
        0.0, capacitor_.stored_energy() -
                 capacitor_.energy_between(0.0, pmic_.v_off()));
    return pmic_.load_energy_from_capacitor(usable);
}

double
EnergyController::available_energy_eq3(double t_s, double exec_time_s) const
{
    const double v_on = pmic_.v_on();
    const double v_off = pmic_.v_off();
    const double c = capacitor_.config().capacitance_f;
    const double k_cap = capacitor_.config().k_cap;
    const double e_store = 0.5 * c * (v_on * v_on - v_off * v_off);
    const double p_eh = input_power_w(t_s);
    const double p_leak = k_cap * c * v_on * v_on;
    return e_store + exec_time_s * (p_eh - p_leak);  // Eq. 3
}

void
EnergyController::drain_to(double voltage_v)
{
    if (voltage_v < 0.0 || voltage_v > capacitor_.config().rated_voltage_v)
        fatal("EnergyController::drain_to: voltage ", voltage_v,
              " out of range");
    if (capacitor_.voltage() > voltage_v) {
        const double excess =
            capacitor_.stored_energy() -
            capacitor_.energy_between(0.0, voltage_v);
        ledger_.leaked_j += capacitor_.discharge(excess);
    }
    state_ = PowerState::kCharging;
}

void
EnergyController::reset()
{
    capacitor_.set_voltage(0.0);
    state_ = PowerState::kCharging;
    ledger_ = EnergyLedger{};
}

}  // namespace chrysalis::energy

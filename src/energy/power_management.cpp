#include "energy/power_management.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace chrysalis::energy {

PowerManagementIc::PowerManagementIc(const Config& config) : config_(config)
{
    if (config_.v_off <= 0.0 || config_.v_on <= config_.v_off)
        fatal("PowerManagementIc: require 0 < v_off < v_on, got v_on=",
              config_.v_on, " v_off=", config_.v_off);
    if (config_.charge_efficiency <= 0.0 || config_.charge_efficiency > 1.0)
        fatal("PowerManagementIc: charge efficiency must lie in (0, 1], got ",
              config_.charge_efficiency);
    if (config_.discharge_efficiency <= 0.0 ||
        config_.discharge_efficiency > 1.0) {
        fatal("PowerManagementIc: discharge efficiency must lie in (0, 1], "
              "got ", config_.discharge_efficiency);
    }
    if (config_.quiescent_power_w < 0.0)
        fatal("PowerManagementIc: quiescent power must be >= 0");
}

double
PowerManagementIc::capacitor_energy_for_load(double load_energy_j) const
{
    if (load_energy_j < 0.0)
        panic("capacitor_energy_for_load: negative energy ", load_energy_j);
    return load_energy_j / config_.discharge_efficiency;
}

double
PowerManagementIc::load_energy_from_capacitor(double capacitor_energy_j) const
{
    if (capacitor_energy_j < 0.0)
        panic("load_energy_from_capacitor: negative energy ",
              capacitor_energy_j);
    return capacitor_energy_j * config_.discharge_efficiency;
}

PowerManagementIc::Config
PowerManagementIc::drifted(Config config, double v_on_offset_v,
                           double v_off_offset_v, double v_on_ceiling_v,
                           double v_off_floor_v, double min_gap_v)
{
    if (v_on_ceiling_v < v_off_floor_v + min_gap_v) {
        fatal("PowerManagementIc::drifted: ceiling ", v_on_ceiling_v,
              " V leaves no room for a threshold window above the ",
              v_off_floor_v, " V floor");
    }
    config.v_off = std::clamp(config.v_off + v_off_offset_v,
                              v_off_floor_v, v_on_ceiling_v - min_gap_v);
    config.v_on = std::clamp(config.v_on + v_on_offset_v,
                             config.v_off + min_gap_v, v_on_ceiling_v);
    return config;
}

void
PowerManagementIc::apply_threshold_drift(double v_on_offset_v,
                                         double v_off_offset_v,
                                         double v_on_ceiling_v)
{
    config_ = drifted(config_, v_on_offset_v, v_off_offset_v,
                      v_on_ceiling_v);
}

}  // namespace chrysalis::energy

#include "energy/power_management.hpp"

#include "common/logging.hpp"

namespace chrysalis::energy {

PowerManagementIc::PowerManagementIc(const Config& config) : config_(config)
{
    if (config_.v_off <= 0.0 || config_.v_on <= config_.v_off)
        fatal("PowerManagementIc: require 0 < v_off < v_on, got v_on=",
              config_.v_on, " v_off=", config_.v_off);
    if (config_.charge_efficiency <= 0.0 || config_.charge_efficiency > 1.0)
        fatal("PowerManagementIc: charge efficiency must lie in (0, 1], got ",
              config_.charge_efficiency);
    if (config_.discharge_efficiency <= 0.0 ||
        config_.discharge_efficiency > 1.0) {
        fatal("PowerManagementIc: discharge efficiency must lie in (0, 1], "
              "got ", config_.discharge_efficiency);
    }
    if (config_.quiescent_power_w < 0.0)
        fatal("PowerManagementIc: quiescent power must be >= 0");
}

double
PowerManagementIc::capacitor_energy_for_load(double load_energy_j) const
{
    if (load_energy_j < 0.0)
        panic("capacitor_energy_for_load: negative energy ", load_energy_j);
    return load_energy_j / config_.discharge_efficiency;
}

double
PowerManagementIc::load_energy_from_capacitor(double capacitor_energy_j) const
{
    if (capacitor_energy_j < 0.0)
        panic("load_energy_from_capacitor: negative energy ",
              capacitor_energy_j);
    return capacitor_energy_j * config_.discharge_efficiency;
}

}  // namespace chrysalis::energy

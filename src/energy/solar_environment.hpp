/// \file
/// Ambient-light environment models.
///
/// The paper consumes its pvlib-based solar model as a single coefficient
/// `k_eh` [W/cm^2] that is stable within one inference but varies across
/// inferences (sunlight changes little within ~5 minutes). A
/// SolarEnvironment produces that coefficient as a function of time; three
/// implementations cover the evaluation's needs: a constant environment
/// (the per-search "brighter"/"darker" presets), a diurnal clear-sky model
/// with cloud attenuation, and a trace-driven environment for replaying
/// recorded irradiance.

#ifndef CHRYSALIS_ENERGY_SOLAR_ENVIRONMENT_HPP
#define CHRYSALIS_ENERGY_SOLAR_ENVIRONMENT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace chrysalis::energy {

/// Interface: ambient harvestable power density over time.
class SolarEnvironment
{
  public:
    virtual ~SolarEnvironment() = default;

    /// Harvestable power density k_eh at time \p t_s [W/cm^2]; >= 0.
    virtual double k_eh(double t_s) const = 0;

    /// Human-readable environment name for reports.
    virtual std::string name() const = 0;

    /// Deep copy (environments are value-like but used polymorphically).
    virtual std::unique_ptr<SolarEnvironment> clone() const = 0;
};

/// Time-invariant environment; used for the paper's two search
/// environments ("brighter" and "darker").
class ConstantSolarEnvironment final : public SolarEnvironment
{
  public:
    /// \param k_eh_w_per_cm2 constant power density [W/cm^2]; must be >= 0.
    /// \param label name used in reports.
    ConstantSolarEnvironment(double k_eh_w_per_cm2, std::string label);

    double k_eh(double t_s) const override;
    std::string name() const override { return label_; }
    std::unique_ptr<SolarEnvironment> clone() const override;

    /// The paper's bright outdoor search environment (~2 mW/cm^2).
    static ConstantSolarEnvironment brighter();
    /// The paper's dim/overcast search environment (~0.5 mW/cm^2).
    static ConstantSolarEnvironment darker();

  private:
    double k_eh_;
    std::string label_;
};

/// Diurnal clear-sky model: irradiance follows the cosine of the solar
/// zenith angle between sunrise and sunset, optionally modulated by a
/// deterministic cloud-attenuation signal. This substitutes for pvlib: the
/// downstream models only see the resulting k_eh(t) scalar.
class DiurnalSolarEnvironment final : public SolarEnvironment
{
  public:
    /// Configuration of the diurnal profile.
    struct Config {
        double peak_k_eh = 2.0e-3;    ///< noon power density [W/cm^2]
        double sunrise_s = 6 * 3600;  ///< sunrise, seconds after midnight
        double sunset_s = 18 * 3600;  ///< sunset, seconds after midnight
        double cloud_depth = 0.0;     ///< 0 = clear sky, 1 = full occlusion
        double cloud_period_s = 900;  ///< characteristic cloud time scale
        std::uint64_t seed = 42;      ///< seed for the cloud signal
    };

    explicit DiurnalSolarEnvironment(const Config& config);

    double k_eh(double t_s) const override;
    std::string name() const override { return "diurnal"; }
    std::unique_ptr<SolarEnvironment> clone() const override;

    const Config& config() const { return config_; }

  private:
    /// Smooth pseudo-random attenuation in [1 - cloud_depth, 1].
    double cloud_factor(double t_s) const;

    Config config_;
};

/// Multi-day weather model: a Markov chain over discrete weather states
/// (sunny / cloudy / overcast) modulating a diurnal clear-sky base.
/// State transitions are sampled deterministically per (seed, day, slot),
/// so the same configuration always yields the same weather history —
/// suitable for reproducible multi-day deployment studies.
class MarkovWeatherEnvironment final : public SolarEnvironment
{
  public:
    /// Weather states in decreasing light order.
    enum class Weather { kSunny = 0, kCloudy = 1, kOvercast = 2 };

    /// Configuration of the weather chain and diurnal base.
    struct Config {
        DiurnalSolarEnvironment::Config diurnal;  ///< clear-sky base
        double slot_s = 3600.0;     ///< weather persistence per slot
        /// Attenuation per state (fraction of clear-sky light).
        double sunny_factor = 1.0;
        double cloudy_factor = 0.45;
        double overcast_factor = 0.12;
        /// Row-stochastic transition matrix P[from][to].
        double transition[3][3] = {
            {0.80, 0.15, 0.05},
            {0.30, 0.50, 0.20},
            {0.10, 0.40, 0.50},
        };
        std::uint64_t seed = 7;
    };

    explicit MarkovWeatherEnvironment(const Config& config);

    double k_eh(double t_s) const override;
    std::string name() const override { return "markov-weather"; }
    std::unique_ptr<SolarEnvironment> clone() const override;

    /// The weather state governing time \p t_s.
    Weather weather_at(double t_s) const;

    const Config& config() const { return config_; }

  private:
    Config config_;
    DiurnalSolarEnvironment base_;
    /// Lazily extended per-slot state sequence (deterministic given the
    /// seed); mutable because k_eh() is logically const. Not
    /// thread-safe, like the rest of the simulation stack.
    mutable std::vector<int> state_cache_;
};

/// Replays a recorded (time, k_eh) trace with linear interpolation; values
/// outside the trace clamp to the endpoints.
class TraceSolarEnvironment final : public SolarEnvironment
{
  public:
    /// \pre times_s strictly increasing; k_eh values >= 0; equal lengths.
    TraceSolarEnvironment(std::vector<double> times_s,
                          std::vector<double> k_eh_w_per_cm2,
                          std::string label = "trace");

    double k_eh(double t_s) const override;
    std::string name() const override { return label_; }
    std::unique_ptr<SolarEnvironment> clone() const override;

  private:
    std::vector<double> times_;
    std::vector<double> values_;
    std::string label_;
};

}  // namespace chrysalis::energy

#endif  // CHRYSALIS_ENERGY_SOLAR_ENVIRONMENT_HPP

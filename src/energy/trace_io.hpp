/// \file
/// Irradiance-trace I/O: load recorded (time, k_eh) traces from CSV so
/// deployments can replay measured light conditions through
/// TraceSolarEnvironment, and write traces back out for inspection.
///
/// CSV format: one `time_s,k_eh_w_per_cm2` pair per line; `#`-prefixed
/// lines and blank lines are ignored; an optional one-line header of the
/// exact form `time_s,k_eh` is skipped. Malformed, non-finite, negative
/// or non-monotonic samples are warned about and skipped — recorded field
/// traces glitch, and one bad line must not discard the rest.

#ifndef CHRYSALIS_ENERGY_TRACE_IO_HPP
#define CHRYSALIS_ENERGY_TRACE_IO_HPP

#include <iosfwd>
#include <string>

#include "energy/solar_environment.hpp"

namespace chrysalis::energy {

/// Parses a trace from an input stream, skipping malformed lines with a
/// warning; fatal() only when no valid sample remains.
/// \param label name given to the resulting environment.
TraceSolarEnvironment parse_irradiance_csv(std::istream& input,
                                           std::string label = "trace");

/// Loads a trace from a file; fatal() if the file cannot be opened.
TraceSolarEnvironment load_irradiance_csv(const std::string& path);

/// Writes an environment sampled at fixed intervals to CSV (with the
/// `time_s,k_eh` header), e.g. to export a diurnal profile for plotting.
/// \pre end_s > start_s, step_s > 0.
void write_irradiance_csv(std::ostream& output,
                          const SolarEnvironment& environment,
                          double start_s, double end_s, double step_s);

}  // namespace chrysalis::energy

#endif  // CHRYSALIS_ENERGY_TRACE_IO_HPP

#include "energy/solar_environment.hpp"

#include <cmath>
#include <numbers>

#include "common/logging.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"

namespace chrysalis::energy {

// --- ConstantSolarEnvironment --------------------------------------------

ConstantSolarEnvironment::ConstantSolarEnvironment(double k_eh_w_per_cm2,
                                                   std::string label)
    : k_eh_(k_eh_w_per_cm2), label_(std::move(label))
{
    if (k_eh_ < 0.0)
        fatal("ConstantSolarEnvironment: k_eh must be >= 0, got ", k_eh_);
}

double
ConstantSolarEnvironment::k_eh(double) const
{
    return k_eh_;
}

std::unique_ptr<SolarEnvironment>
ConstantSolarEnvironment::clone() const
{
    return std::make_unique<ConstantSolarEnvironment>(*this);
}

ConstantSolarEnvironment
ConstantSolarEnvironment::brighter()
{
    return ConstantSolarEnvironment(2.0e-3, "brighter");
}

ConstantSolarEnvironment
ConstantSolarEnvironment::darker()
{
    return ConstantSolarEnvironment(0.5e-3, "darker");
}

// --- DiurnalSolarEnvironment ----------------------------------------------

DiurnalSolarEnvironment::DiurnalSolarEnvironment(const Config& config)
    : config_(config)
{
    if (config_.peak_k_eh < 0.0)
        fatal("DiurnalSolarEnvironment: peak_k_eh must be >= 0");
    if (config_.sunset_s <= config_.sunrise_s)
        fatal("DiurnalSolarEnvironment: sunset must be after sunrise");
    if (config_.cloud_depth < 0.0 || config_.cloud_depth > 1.0)
        fatal("DiurnalSolarEnvironment: cloud_depth must lie in [0, 1]");
    if (config_.cloud_period_s <= 0.0)
        fatal("DiurnalSolarEnvironment: cloud_period_s must be > 0");
}

double
DiurnalSolarEnvironment::k_eh(double t_s) const
{
    constexpr double kDay = 24.0 * 3600.0;
    double tod = std::fmod(t_s, kDay);
    if (tod < 0.0)
        tod += kDay;
    if (tod <= config_.sunrise_s || tod >= config_.sunset_s)
        return 0.0;
    // Solar elevation approximated by a half-sine arc across daylight.
    const double day_len = config_.sunset_s - config_.sunrise_s;
    const double phase = (tod - config_.sunrise_s) / day_len;
    const double elevation = std::sin(std::numbers::pi * phase);
    return config_.peak_k_eh * elevation * cloud_factor(t_s);
}

double
DiurnalSolarEnvironment::cloud_factor(double t_s) const
{
    if (config_.cloud_depth <= 0.0)
        return 1.0;
    // Deterministic value noise: hash integer cloud-cells to [0,1] levels
    // and blend between neighbours with a smoothstep, giving a continuous
    // occlusion signal with the configured characteristic period.
    const double cell = t_s / config_.cloud_period_s;
    const auto cell_lo = static_cast<std::int64_t>(std::floor(cell));
    const auto level_at = [this](std::int64_t index) {
        Rng rng(config_.seed ^ (0x9e3779b97f4a7c15ULL *
                                static_cast<std::uint64_t>(index + 1)));
        return rng.uniform();
    };
    const double t = cell - static_cast<double>(cell_lo);
    const double smooth = t * t * (3.0 - 2.0 * t);
    const double occlusion =
        lerp(level_at(cell_lo), level_at(cell_lo + 1), smooth);
    return 1.0 - config_.cloud_depth * occlusion;
}

std::unique_ptr<SolarEnvironment>
DiurnalSolarEnvironment::clone() const
{
    return std::make_unique<DiurnalSolarEnvironment>(*this);
}

// --- MarkovWeatherEnvironment ----------------------------------------------

MarkovWeatherEnvironment::MarkovWeatherEnvironment(const Config& config)
    : config_(config), base_(config.diurnal)
{
    if (config_.slot_s <= 0.0)
        fatal("MarkovWeatherEnvironment: slot_s must be > 0");
    for (double factor : {config_.sunny_factor, config_.cloudy_factor,
                          config_.overcast_factor}) {
        if (factor < 0.0 || factor > 1.0)
            fatal("MarkovWeatherEnvironment: attenuation factors must "
                  "lie in [0, 1]");
    }
    for (int from = 0; from < 3; ++from) {
        double row_sum = 0.0;
        for (int to = 0; to < 3; ++to) {
            if (config_.transition[from][to] < 0.0)
                fatal("MarkovWeatherEnvironment: negative transition "
                      "probability");
            row_sum += config_.transition[from][to];
        }
        if (std::fabs(row_sum - 1.0) > 1e-9)
            fatal("MarkovWeatherEnvironment: transition row ", from,
                  " sums to ", row_sum, ", expected 1");
    }
}

MarkovWeatherEnvironment::Weather
MarkovWeatherEnvironment::weather_at(double t_s) const
{
    // Slots index absolute time, so the state sequence is globally
    // consistent and deterministic for a given seed. The sequence is
    // memoized (the simulator queries k_eh every step).
    const auto slot = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::floor(t_s / config_.slot_s)));
    if (state_cache_.empty())
        state_cache_.push_back(0);  // slot 0 starts sunny
    while (static_cast<std::int64_t>(state_cache_.size()) <= slot) {
        const auto s =
            static_cast<std::int64_t>(state_cache_.size()) - 1;
        Rng rng(config_.seed ^
                (0x9e3779b97f4a7c15ULL *
                 static_cast<std::uint64_t>(s + 1)));
        const double u = rng.uniform();
        int state = state_cache_.back();
        double cumulative = 0.0;
        for (int to = 0; to < 3; ++to) {
            cumulative += config_.transition[state][to];
            if (u < cumulative) {
                state = to;
                break;
            }
        }
        state_cache_.push_back(state);
    }
    return static_cast<Weather>(
        state_cache_[static_cast<std::size_t>(slot)]);
}

double
MarkovWeatherEnvironment::k_eh(double t_s) const
{
    double factor = config_.sunny_factor;
    switch (weather_at(t_s)) {
      case Weather::kSunny: factor = config_.sunny_factor; break;
      case Weather::kCloudy: factor = config_.cloudy_factor; break;
      case Weather::kOvercast: factor = config_.overcast_factor; break;
    }
    return base_.k_eh(t_s) * factor;
}

std::unique_ptr<SolarEnvironment>
MarkovWeatherEnvironment::clone() const
{
    return std::make_unique<MarkovWeatherEnvironment>(*this);
}

// --- TraceSolarEnvironment -------------------------------------------------

TraceSolarEnvironment::TraceSolarEnvironment(std::vector<double> times_s,
                                             std::vector<double> k_eh_w_per_cm2,
                                             std::string label)
    : times_(std::move(times_s)), values_(std::move(k_eh_w_per_cm2)),
      label_(std::move(label))
{
    if (times_.empty() || times_.size() != values_.size())
        fatal("TraceSolarEnvironment: trace must be non-empty and aligned");
    for (std::size_t i = 1; i < times_.size(); ++i) {
        if (times_[i] <= times_[i - 1])
            fatal("TraceSolarEnvironment: times must be strictly increasing");
    }
    for (double v : values_) {
        if (v < 0.0)
            fatal("TraceSolarEnvironment: k_eh values must be >= 0");
    }
}

double
TraceSolarEnvironment::k_eh(double t_s) const
{
    return interp_trace(times_, values_, t_s);
}

std::unique_ptr<SolarEnvironment>
TraceSolarEnvironment::clone() const
{
    return std::make_unique<TraceSolarEnvironment>(*this);
}

}  // namespace chrysalis::energy

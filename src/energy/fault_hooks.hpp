/// \file
/// Fault-injection hook interface for the energy subsystem.
///
/// `EnergyController` consults an optional `PowerFaultModel` while
/// stepping, so fault models (see `fault::FaultInjector`) can perturb the
/// modeled device without the energy library depending on the fault
/// library: harvester dropout storms scale the input power, capacitor
/// degradation scales capacitance and leakage, and PMIC drift offsets the
/// operating thresholds. Implementations must be deterministic functions
/// of their construction seed (the controller may query them in any step
/// pattern).

#ifndef CHRYSALIS_ENERGY_FAULT_HOOKS_HPP
#define CHRYSALIS_ENERGY_FAULT_HOOKS_HPP

namespace chrysalis::energy {

/// Abstract fault model consulted by `EnergyController`.
class PowerFaultModel
{
  public:
    virtual ~PowerFaultModel() = default;

    /// Multiplier in [0, 1] on the harvester's output power at time
    /// \p t_s (dropout storms return < 1 inside a dropout window).
    virtual double harvest_factor(double t_s) const = 0;

    /// Static multiplier (> 0, usually <= 1) on the capacitor's
    /// capacitance: electrolytic capacitance fade over the mission age.
    virtual double capacitance_scale() const = 0;

    /// Static multiplier (>= 1) on the capacitor's leakage coefficient:
    /// ESR/leakage growth over the mission age.
    virtual double leakage_scale() const = 0;

    /// Additive drift [V] on the PMIC turn-on threshold U_on.
    virtual double v_on_offset_v() const = 0;

    /// Additive drift [V] on the PMIC brown-out threshold U_off.
    virtual double v_off_offset_v() const = 0;
};

}  // namespace chrysalis::energy

#endif  // CHRYSALIS_ENERGY_FAULT_HOOKS_HPP

#include "energy/pv_module.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace chrysalis::energy {

PvModule::PvModule(const Config& config) : config_(config)
{
    if (config_.area_cm2 <= 0.0)
        fatal("PvModule: area must be > 0");
    if (config_.isc_ref_a <= 0.0)
        fatal("PvModule: reference short-circuit current must be > 0");
    if (config_.voc_ref_v <= 0.0)
        fatal("PvModule: reference open-circuit voltage must be > 0");
    if (config_.thermal_voltage_v <= 0.0)
        fatal("PvModule: thermal voltage must be > 0");
    if (config_.k_eh_ref <= 0.0)
        fatal("PvModule: reference irradiance must be > 0");
}

double
PvModule::open_circuit_voltage(double k_eh) const
{
    if (k_eh <= 0.0)
        return 0.0;
    // V_oc drifts logarithmically with irradiance.
    return std::max(0.0, config_.voc_ref_v +
                             config_.thermal_voltage_v *
                                 std::log(k_eh / config_.k_eh_ref));
}

double
PvModule::current(double v, double k_eh) const
{
    if (k_eh <= 0.0 || v < 0.0)
        return 0.0;
    const double isc = config_.isc_ref_a * (k_eh / config_.k_eh_ref);
    const double voc = open_circuit_voltage(k_eh);
    if (voc <= 0.0)
        return 0.0;
    const double current =
        isc * (1.0 -
               std::exp((v - voc) / config_.thermal_voltage_v));
    return std::max(0.0, current);
}

double
PvModule::power(double v, double k_eh) const
{
    return v * current(v, k_eh);
}

double
PvModule::max_power_voltage(double k_eh) const
{
    const double voc = open_circuit_voltage(k_eh);
    if (voc <= 0.0)
        return 0.0;
    // Golden-section search on the unimodal P(V) curve.
    constexpr double kPhi = 0.6180339887498949;
    double lo = 0.0;
    double hi = voc;
    for (int i = 0; i < 80; ++i) {
        const double a = hi - (hi - lo) * kPhi;
        const double b = lo + (hi - lo) * kPhi;
        if (power(a, k_eh) < power(b, k_eh))
            lo = a;
        else
            hi = b;
    }
    return 0.5 * (lo + hi);
}

double
PvModule::max_power(double k_eh) const
{
    return power(max_power_voltage(k_eh), k_eh);
}

PerturbObserveTracker::PerturbObserveTracker(const Config& config)
    : config_(config), voltage_(config.initial_voltage_v)
{
    if (config_.step_v <= 0.0)
        fatal("PerturbObserveTracker: step must be > 0");
    if (config_.initial_voltage_v < config_.min_voltage_v)
        fatal("PerturbObserveTracker: initial voltage below minimum");
}

double
PerturbObserveTracker::step(const PvModule& module, double k_eh)
{
    // Perturb in the current direction, observe, and keep going if power
    // improved; otherwise reverse (classic P&O [19]).
    const double candidate =
        std::max(config_.min_voltage_v,
                 voltage_ + direction_ * config_.step_v);
    const double p_new = module.power(candidate, k_eh);
    if (p_new >= last_power_) {
        voltage_ = candidate;
    } else {
        direction_ = -direction_;
        voltage_ = std::max(config_.min_voltage_v,
                            voltage_ + direction_ * config_.step_v);
    }
    last_power_ = module.power(voltage_, k_eh);
    return last_power_;
}

void
PerturbObserveTracker::reset()
{
    voltage_ = config_.initial_voltage_v;
    last_power_ = 0.0;
    direction_ = 1.0;
}

MpptSolarPanel::MpptSolarPanel(
    PvModule module, PerturbObserveTracker tracker,
    std::shared_ptr<const SolarEnvironment> environment,
    int iterations_per_query)
    : module_(std::move(module)), tracker_(std::move(tracker)),
      environment_(std::move(environment)),
      iterations_per_query_(iterations_per_query)
{
    if (!environment_)
        fatal("MpptSolarPanel: environment must not be null");
    if (iterations_per_query_ < 1)
        fatal("MpptSolarPanel: iterations per query must be >= 1");
}

double
MpptSolarPanel::power(double t_s) const
{
    const double k_eh = environment_->k_eh(t_s);
    double delivered = 0.0;
    for (int i = 0; i < iterations_per_query_; ++i)
        delivered = tracker_.step(module_, k_eh);
    return delivered;
}

std::string
MpptSolarPanel::name() const
{
    return "mppt-solar-panel(" + environment_->name() + ")";
}

std::unique_ptr<EnergyHarvester>
MpptSolarPanel::clone() const
{
    return std::make_unique<MpptSolarPanel>(*this);
}

double
MpptSolarPanel::tracking_efficiency(double t_s) const
{
    const double k_eh = environment_->k_eh(t_s);
    const double ideal = module_.max_power(k_eh);
    if (ideal <= 0.0)
        return 0.0;
    return module_.power(tracker_.voltage(), k_eh) / ideal;
}

}  // namespace chrysalis::energy

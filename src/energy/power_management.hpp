/// \file
/// Power-management IC model (BQ25570-style).
///
/// The PMIC defines the system's operating thresholds (U_on / U_off in
/// Eq. 3), conversion efficiencies on the charge and discharge paths, and a
/// small quiescent draw. Together with the capacitor it determines the
/// usable energy per energy cycle, E_store = 1/2 C (U_on^2 - U_off^2).

#ifndef CHRYSALIS_ENERGY_POWER_MANAGEMENT_HPP
#define CHRYSALIS_ENERGY_POWER_MANAGEMENT_HPP

namespace chrysalis::energy {

/// Threshold/efficiency model of an energy-harvesting PMIC.
class PowerManagementIc
{
  public:
    /// PMIC electrical parameters; defaults follow the TI BQ25570
    /// datasheet operating point used by the paper's real platform.
    struct Config {
        double v_on = 3.5;              ///< U_on: turn-on threshold [V]
        double v_off = 2.2;             ///< U_off: brown-out threshold [V]
        double charge_efficiency = 0.90;    ///< boost-charger efficiency
        double discharge_efficiency = 0.85; ///< buck-regulator efficiency
        double quiescent_power_w = 0.5e-6;  ///< IC self-consumption [W]
    };

    explicit PowerManagementIc(const Config& config);

    /// Turn-on threshold U_on [V].
    double v_on() const { return config_.v_on; }

    /// Brown-out threshold U_off [V].
    double v_off() const { return config_.v_off; }

    /// Fraction of harvested energy that reaches the capacitor.
    double charge_efficiency() const { return config_.charge_efficiency; }

    /// Fraction of capacitor energy that reaches the load.
    double discharge_efficiency() const
    {
        return config_.discharge_efficiency;
    }

    /// Constant self-consumption of the IC [W].
    double quiescent_power() const { return config_.quiescent_power_w; }

    /// Capacitor energy needed to deliver \p load_energy_j to the load [J].
    double capacitor_energy_for_load(double load_energy_j) const;

    /// Load energy deliverable from \p capacitor_energy_j of storage [J].
    double load_energy_from_capacitor(double capacitor_energy_j) const;

    /// Returns \p config with additive drift applied to its thresholds,
    /// keeping them physically ordered: U_off is floored at
    /// \p v_off_floor_v, U_on stays at least \p min_gap_v above U_off and
    /// at most \p v_on_ceiling_v (the capacitor's rated voltage).
    /// fatal() when the ceiling leaves no room for a valid window. Used
    /// by fault injection (PMIC comparator ageing).
    static Config drifted(Config config, double v_on_offset_v,
                          double v_off_offset_v, double v_on_ceiling_v,
                          double v_off_floor_v = 0.1,
                          double min_gap_v = 0.05);

    /// In-place convenience over drifted().
    void apply_threshold_drift(double v_on_offset_v, double v_off_offset_v,
                               double v_on_ceiling_v);

    const Config& config() const { return config_; }

  private:
    Config config_;
};

}  // namespace chrysalis::energy

#endif  // CHRYSALIS_ENERGY_POWER_MANAGEMENT_HPP

/// \file
/// Energy-harvester models (Eq. 1 of the paper).
///
/// The harvester converts an ambient power density into electrical input
/// power: for a solar panel, P_eh = A_eh * k_eh (Eq. 1). The interface is
/// deliberately minimal so other harvesters (thermoelectric, RF) can be
/// swapped in, matching the paper's "component extensions for other energy
/// harvesters".

#ifndef CHRYSALIS_ENERGY_HARVESTER_HPP
#define CHRYSALIS_ENERGY_HARVESTER_HPP

#include <memory>
#include <string>
#include <vector>

#include "energy/solar_environment.hpp"

namespace chrysalis::energy {

/// Interface: converts the ambient environment into input power.
class EnergyHarvester
{
  public:
    virtual ~EnergyHarvester() = default;

    /// Electrical power produced at time \p t_s [W].
    virtual double power(double t_s) const = 0;

    /// Device footprint [cm^2] — the dominant SWaP size term (§III-B3).
    virtual double area_cm2() const = 0;

    /// Human-readable name for reports.
    virtual std::string name() const = 0;

    /// Deep copy.
    virtual std::unique_ptr<EnergyHarvester> clone() const = 0;
};

/// Photovoltaic panel: P_eh = A_eh * k_eh(t) (Eq. 1).
class SolarPanel final : public EnergyHarvester
{
  public:
    /// \param area_cm2 panel area [cm^2]; must be > 0.
    /// \param environment ambient-light model; must not be null.
    SolarPanel(double area_cm2,
               std::shared_ptr<const SolarEnvironment> environment);

    double power(double t_s) const override;
    double area_cm2() const override { return area_cm2_; }
    std::string name() const override;
    std::unique_ptr<EnergyHarvester> clone() const override;

    /// Replaces the panel area (used by the explorer when mutating a
    /// candidate without rebuilding the whole energy subsystem).
    void set_area_cm2(double area_cm2);

    const SolarEnvironment& environment() const { return *environment_; }

  private:
    double area_cm2_;
    std::shared_ptr<const SolarEnvironment> environment_;
};

/// Thermoelectric generator with a constant temperature-gradient power
/// density; exercises the interface-extension path described in §III-D.
class ThermalHarvester final : public EnergyHarvester
{
  public:
    /// \param area_cm2 TEG footprint [cm^2]; must be > 0.
    /// \param power_density_w_per_cm2 harvested density [W/cm^2]; >= 0.
    ThermalHarvester(double area_cm2, double power_density_w_per_cm2);

    double power(double t_s) const override;
    double area_cm2() const override { return area_cm2_; }
    std::string name() const override { return "thermal-teg"; }
    std::unique_ptr<EnergyHarvester> clone() const override;

  private:
    double area_cm2_;
    double power_density_;
};

/// Far-field RF harvester (WISP-class): received power follows the Friis
/// free-space path loss from a fixed transmitter, with a rectifier
/// sensitivity floor below which nothing is harvested.
class RfHarvester final : public EnergyHarvester
{
  public:
    /// RF link parameters.
    struct Config {
        double tx_power_w = 1.0;        ///< transmitter EIRP [W]
        double distance_m = 3.0;        ///< range to the transmitter
        double frequency_hz = 915e6;    ///< carrier (UHF RFID band)
        double antenna_area_cm2 = 10.0; ///< device antenna footprint
        double rectifier_efficiency = 0.5;
        double sensitivity_w = 1e-6;    ///< below this: no harvest
    };

    explicit RfHarvester(const Config& config);

    double power(double t_s) const override;
    double area_cm2() const override { return config_.antenna_area_cm2; }
    std::string name() const override { return "rf-harvester"; }
    std::unique_ptr<EnergyHarvester> clone() const override;

    const Config& config() const { return config_; }

  private:
    double received_power_w_;  ///< precomputed Friis result
    Config config_;
};

/// Sums several harvesters (§III-D: "additional energy harvesting
/// devices ... can be incorporated"). The footprint is the sum of the
/// children's footprints.
class CompositeHarvester final : public EnergyHarvester
{
  public:
    /// \pre !children.empty(), no null entries.
    explicit CompositeHarvester(
        std::vector<std::unique_ptr<EnergyHarvester>> children);

    double power(double t_s) const override;
    double area_cm2() const override;
    std::string name() const override;
    std::unique_ptr<EnergyHarvester> clone() const override;

    std::size_t child_count() const { return children_.size(); }

  private:
    std::vector<std::unique_ptr<EnergyHarvester>> children_;
};

}  // namespace chrysalis::energy

#endif  // CHRYSALIS_ENERGY_HARVESTER_HPP

/// \file
/// Energy-subsystem controller: the step-based state machine that ties
/// harvester, capacitor and PMIC together (Eq. 3 and the "energy cycle"
/// behaviour of §III-B1).
///
/// The controller exposes the interface the inference subsystem uses
/// ("energy controller interface", §III-D): step the subsystem forward,
/// query whether the load may run, and draw energy for computation. It also
/// keeps the cumulative energy ledger needed by the evaluation figures
/// (harvested / leaked / delivered / wasted energy, cycle count).

#ifndef CHRYSALIS_ENERGY_ENERGY_CONTROLLER_HPP
#define CHRYSALIS_ENERGY_ENERGY_CONTROLLER_HPP

#include <memory>

#include "energy/capacitor.hpp"
#include "energy/fault_hooks.hpp"
#include "energy/harvester.hpp"
#include "energy/power_management.hpp"

namespace chrysalis::energy {

/// Operating state of the energy subsystem.
enum class PowerState {
    kCharging,  ///< below U_on (or browned out); load is off
    kActive,    ///< between U_off and U_on after turn-on; load may run
};

/// Cumulative energy ledger, in joules at the points noted.
struct EnergyLedger {
    double harvested_j = 0.0;  ///< produced by the harvester (pre-PMIC)
    double stored_j = 0.0;     ///< accepted into the capacitor
    double wasted_j = 0.0;     ///< harvest lost to a full capacitor or PMIC
    double leaked_j = 0.0;     ///< capacitor leakage (Eq. 2)
    double delivered_j = 0.0;  ///< delivered to the load (post-regulator)
    double quiescent_j = 0.0;  ///< PMIC self-consumption
    std::int64_t cycle_count = 0;  ///< completed charge->active transitions
};

/// Result of advancing the subsystem by one step.
struct EnergyStepResult {
    PowerState state = PowerState::kCharging;
    bool browned_out = false;  ///< voltage crossed U_off during this step
    double delivered_j = 0.0;  ///< load energy actually supplied this step
};

/// Owns the energy-domain components and advances them in lock-step with
/// the inference controller.
class EnergyController
{
  public:
    /// \param harvester ambient-energy source; must not be null.
    /// \param capacitor storage element (taken by value; the controller
    ///        owns its state).
    /// \param pmic threshold/efficiency model.
    EnergyController(std::unique_ptr<EnergyHarvester> harvester,
                     Capacitor capacitor, PowerManagementIc pmic);

    /// Attaches an optional fault model (non-owning; may be null to
    /// detach). Static degradations — capacitance fade, leakage growth,
    /// PMIC threshold drift — are applied to the owned components once,
    /// at attach time; the time-varying harvest factor is consulted on
    /// every step. Re-attaching the same model is a no-op; replacing one
    /// non-null model with a different one is a user error (the earlier
    /// derating cannot be undone) and fatal()s.
    void attach_fault_model(const PowerFaultModel* model);

    /// Harvester output power at \p t_s after the fault model's harvest
    /// factor [W]. All charging math (including the simulator's
    /// time-to-turn-on estimate) must use this, not the raw harvester.
    double input_power_w(double t_s) const;

    /// Advances time by \p dt_s while the load requests \p load_power_w.
    /// Harvest, leakage and quiescent draw are applied; load energy is
    /// supplied only in the kActive state and only while voltage stays
    /// above U_off.
    EnergyStepResult step(double t_s, double dt_s, double load_power_w);

    /// True when the load is allowed to run.
    bool can_run() const { return state_ == PowerState::kActive; }

    /// Current capacitor voltage [V].
    double voltage() const { return capacitor_.voltage(); }

    /// Energy the load could draw before brown-out, through the regulator.
    double available_load_energy() const;

    /// Closed-form available energy per Eq. 3 for an execution lasting
    /// \p exec_time_s under the harvester's current-time power:
    /// E = 1/2 C (U_on^2 - U_off^2) + T (k_eh A_eh - k_cap C U_on^2).
    double available_energy_eq3(double t_s, double exec_time_s) const;

    /// Cumulative ledger since construction.
    const EnergyLedger& ledger() const { return ledger_; }

    /// Resets voltage to zero, state to charging, and clears the ledger.
    void reset();

    /// Drains the capacitor down to \p voltage_v (no-op if already lower)
    /// and returns to the charging state. Models idle self-discharge
    /// between duty-cycled inference requests; the drained energy is
    /// booked as leakage.
    void drain_to(double voltage_v);

    const EnergyHarvester& harvester() const { return *harvester_; }
    const Capacitor& capacitor() const { return capacitor_; }
    const PowerManagementIc& pmic() const { return pmic_; }

  private:
    std::unique_ptr<EnergyHarvester> harvester_;
    Capacitor capacitor_;
    PowerManagementIc pmic_;
    PowerState state_ = PowerState::kCharging;
    EnergyLedger ledger_;
    const PowerFaultModel* fault_ = nullptr;  ///< non-owning
};

}  // namespace chrysalis::energy

#endif  // CHRYSALIS_ENERGY_ENERGY_CONTROLLER_HPP

/// \file
/// Intermittent-tile geometry: the shape and data footprint of one
/// InterTempMap chunk, plus enumeration of candidate chunk counts for the
/// SW-level mapping search (the "Tiling Size: factors of each dimension"
/// row of Table IV).

#ifndef CHRYSALIS_DATAFLOW_TILING_HPP
#define CHRYSALIS_DATAFLOW_TILING_HPP

#include <cstdint>
#include <vector>

#include "dataflow/mapping.hpp"
#include "dnn/layer.hpp"

namespace chrysalis::dataflow {

/// Geometry and data footprint (element counts) of one intermittent tile.
struct TileShape {
    std::int64_t n = 1;  ///< batch/sequence extent of the tile
    std::int64_t k = 1;  ///< output channels in the tile
    std::int64_t y = 1;  ///< output rows in the tile
    std::int64_t x = 1;  ///< output cols (never split intermittently)

    std::int64_t output_elems = 0;  ///< outputs produced by the tile
    std::int64_t input_elems = 0;   ///< inputs read (with halo) by the tile
    std::int64_t weight_elems = 0;  ///< weights needed by the tile
    std::int64_t macs = 0;          ///< MACs performed by the tile
};

/// Computes the (largest) tile shape produced by \p mapping on \p layer.
/// Chunk counts that do not divide evenly are handled with ceiling
/// division; the returned shape is the largest chunk, which bounds both
/// energy-per-tile and VM requirements.
TileShape tile_shape(const dnn::Layer& layer, const LayerMapping& mapping);

/// Enumerates candidate chunk counts for one dimension of extent
/// \p extent: all divisors, optionally capped at \p max_candidates evenly
/// spread through the divisor list (always keeping 1 and extent).
std::vector<std::int64_t> chunk_candidates(std::int64_t extent,
                                           std::size_t max_candidates = 12);

/// Enumerates candidate LayerMappings for a layer: the cross product of
/// chunk candidates along K, Y and N with every taxonomy in
/// \p dataflows. The list is bounded by \p max_candidates_per_dim per
/// dimension.
std::vector<LayerMapping> enumerate_mappings(
    const dnn::Layer& layer, const std::vector<Dataflow>& dataflows,
    std::size_t max_candidates_per_dim = 8);

}  // namespace chrysalis::dataflow

#endif  // CHRYSALIS_DATAFLOW_TILING_HPP

#include "dataflow/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/math_utils.hpp"

namespace chrysalis::dataflow {

namespace {

/// Per-taxonomy reuse description for one tile.
///
/// The abstraction: each MAC nominally needs one input read, one weight
/// read and one partial-sum update against local (VM) storage. A taxonomy
/// keeps one operand *stationary* (near-zero traffic while it fits in the
/// per-PE cache) and amortizes the others through temporal or spatial
/// (multicast) reuse. When the stationary operand's per-PE share exceeds
/// the per-PE cache, the work splits into `passes` and the re-streamed
/// operands pay NVM traffic once per pass.
struct ReusePlan {
    double input_reuse = 1.0;    ///< VM input reads = MACs / input_reuse
    double weight_reuse = 1.0;   ///< VM weight reads = MACs / weight_reuse
    double stationary_bytes_per_pe = 0.0;  ///< must fit in the PE cache
};

/// Builds the reuse plan for a (layer, tile, taxonomy) triple.
ReusePlan
make_plan(Dataflow dataflow, const dnn::Layer& layer, const TileShape& tile,
          const CostParams& params, std::int64_t pes_used)
{
    const auto& d = layer.dims;
    const double elem = params.element_bytes;
    const double spatial = static_cast<double>(std::max<std::int64_t>(
        1, pes_used));
    const double outputs_per_chan =
        static_cast<double>(tile.n * tile.y * tile.x);
    const double stride2 = static_cast<double>(layer.stride * layer.stride);

    ReusePlan plan;
    switch (dataflow) {
      case Dataflow::kWeightStationary:
        // Weights pinned per PE; every weight is reused across all output
        // positions of the tile; inputs are multicast across the K-mapped
        // PE columns; psums accumulate in PE registers across the
        // reduction.
        plan.weight_reuse = std::max(1.0, outputs_per_chan);
        plan.input_reuse = std::min(
            spatial, static_cast<double>(std::max<std::int64_t>(
                         1, tile.k)));
        plan.stationary_bytes_per_pe =
            static_cast<double>(tile.weight_elems) * elem / spatial;
        break;
      case Dataflow::kOutputStationary:
        // Psums pinned per PE (one PE per output); each weight is
        // multicast to every PE computing the same output channel; inputs
        // enjoy halo overlap reuse.
        plan.weight_reuse = std::min(
            spatial, std::max(1.0, outputs_per_chan));
        plan.input_reuse = std::max(1.0,
            static_cast<double>(d.r * d.s) / std::max(1.0, stride2));
        plan.stationary_bytes_per_pe =
            static_cast<double>(tile.output_elems) * elem / spatial;
        break;
      case Dataflow::kInputStationary:
        // Inputs pinned per PE (input channels mapped spatially); each
        // input is reused across the tile's output channels; weights
        // stream with no sharing (each PE owns distinct channels); psums
        // reduce across the array.
        plan.input_reuse = std::max<double>(
            1.0, static_cast<double>(tile.k));
        plan.weight_reuse = 1.0;
        plan.stationary_bytes_per_pe =
            static_cast<double>(tile.input_elems) * elem / spatial;
        break;
      case Dataflow::kRowStationary:
        // Eyeriss-style: 1-D row primitives keep a filter row and an
        // input-row window per PE; all three tensors get moderate reuse.
        plan.weight_reuse = std::max<double>(
            1.0, static_cast<double>(tile.x));
        plan.input_reuse = std::max<double>(
            1.0, static_cast<double>(d.r));
        plan.stationary_bytes_per_pe =
            (static_cast<double>(tile.weight_elems) / spatial +
             static_cast<double>(d.s * layer.in_w)) * elem;
        break;
    }
    return plan;
}

}  // namespace

LayerCost
analyze_layer(const dnn::Layer& layer, const LayerMapping& mapping,
              const CostParams& params)
{
    if (params.n_pe < 1)
        fatal("analyze_layer: n_pe must be >= 1, got ", params.n_pe);
    if (params.vm_bytes_per_pe < 1)
        fatal("analyze_layer: vm_bytes_per_pe must be >= 1");
    if (!mapping.valid_for(layer))
        fatal("analyze_layer: mapping invalid for layer ", layer.name);

    const TileShape tile = tile_shape(layer, mapping);
    const std::int64_t n_tile = mapping.tile_count();
    const double elem = params.element_bytes;

    LayerCost cost;
    cost.macs = layer.macs();
    cost.n_tile = n_tile;

    // Embedding lookups have no MACs: model pure NVM streaming.
    if (layer.kind == dnn::LayerKind::kEmbedding) {
        const double bytes =
            static_cast<double>(layer.param_count()) /
                static_cast<double>(layer.dims.c) *
                static_cast<double>(layer.dims.n) * elem;
        cost.nvm_read_bytes = static_cast<std::int64_t>(bytes);
        cost.nvm_write_bytes = static_cast<std::int64_t>(
            static_cast<double>(layer.output_elems()) * elem);
        cost.e_nvm_j =
            bytes * params.e_nvm_read_byte_j +
            static_cast<double>(cost.nvm_write_bytes) *
                params.e_nvm_write_byte_j;
        cost.nvm_time_s =
            static_cast<double>(cost.nvm_read_bytes + cost.nvm_write_bytes) /
            params.nvm_bytes_per_s;
        cost.time_s = cost.nvm_time_s;
        cost.ckpt_bytes = static_cast<std::int64_t>(params.ckpt_fixed_bytes);
        cost.vm_required_bytes = static_cast<std::int64_t>(
            static_cast<double>(layer.dims.k) * elem);
        cost.feasible =
            cost.vm_required_bytes <= params.vm_total_bytes();
        return cost;
    }

    // --- Spatial mapping ---------------------------------------------------
    // Real mappers fold several loop dimensions onto the PE array; the
    // spatial extent is therefore a dim *product* per taxonomy, and the
    // primary spatial dim only determines multicast opportunities.
    std::int64_t sp_extent = 1;
    switch (mapping.dataflow) {
      case Dataflow::kWeightStationary:
        sp_extent = tile.k * layer.dims.c;  // systolic K x C grid
        break;
      case Dataflow::kOutputStationary:
        sp_extent = tile.n * tile.k * tile.y * tile.x;  // one PE per output
        break;
      case Dataflow::kInputStationary:
        sp_extent = layer.dims.c * tile.y;  // channel x row ownership
        break;
      case Dataflow::kRowStationary:
        sp_extent = tile.y * layer.dims.r * tile.k;  // Eyeriss PE sets
        break;
    }
    const std::int64_t pes_used = std::min<std::int64_t>(params.n_pe,
                                                         sp_extent);
    // Folding: if the spatial extent exceeds the array, it wraps; the last
    // wave may be partially filled.
    const std::int64_t waves = ceil_div(sp_extent, params.n_pe);
    cost.utilization =
        static_cast<double>(sp_extent) /
        static_cast<double>(waves * params.n_pe);

    // --- Reuse plan and pass count -----------------------------------------
    const ReusePlan plan =
        make_plan(mapping.dataflow, layer, tile, params, pes_used);
    // Local (per-PE) residency passes: if a PE's stationary share does not
    // fit its cache, partial sums spill once per extra pass.
    const double passes = std::max(
        1.0, std::ceil(plan.stationary_bytes_per_pe /
                       static_cast<double>(params.vm_bytes_per_pe)));

    // --- Per-tile NVM traffic ------------------------------------------------
    // A tile's operands stream from NVM through the aggregate on-chip VM.
    // If one operand is held resident in chunks, the other is re-swept
    // once per chunk. The mapper picks the cheaper orientation (weights
    // resident vs inputs resident); outputs are written exactly once.
    const double vm_total = static_cast<double>(params.vm_total_bytes());
    const double input_bytes =
        static_cast<double>(tile.input_elems) * elem;
    const double weight_bytes =
        static_cast<double>(tile.weight_elems) * elem;
    const auto chunked_sweeps = [vm_total](double resident_bytes) {
        return std::max(1.0, std::ceil(resident_bytes / vm_total));
    };
    const double reads_weights_resident =
        input_bytes * chunked_sweeps(weight_bytes) + weight_bytes;
    const double reads_inputs_resident =
        weight_bytes * chunked_sweeps(input_bytes) + input_bytes;
    const double tile_read_bytes =
        std::min(reads_weights_resident, reads_inputs_resident);
    const double tile_write_bytes =
        static_cast<double>(tile.output_elems) * elem;

    cost.nvm_read_bytes = static_cast<std::int64_t>(
        tile_read_bytes * static_cast<double>(n_tile));
    cost.nvm_write_bytes = static_cast<std::int64_t>(
        tile_write_bytes * static_cast<double>(n_tile));

    // --- VM traffic (whole layer) -------------------------------------------
    // Partial sums accumulate in PE registers across the reduction and
    // spill to VM once per residency pass; output-stationary pins them by
    // construction and never spills.
    const double macs = static_cast<double>(cost.macs);
    const double reduction = static_cast<double>(
        layer.dims.c * layer.dims.r * layer.dims.s);
    const double psum_spills =
        mapping.dataflow == Dataflow::kOutputStationary ? 1.0 : passes;
    const double vm_accesses =
        macs / plan.input_reuse + macs / plan.weight_reuse +
        2.0 * macs / std::max(1.0, reduction) * psum_spills;
    const double vm_bytes = vm_accesses * elem;

    // --- Checkpoint footprint -------------------------------------------------
    // On an interruption everything live in VM plus control state must be
    // saved (Fig. 4 step 6); live state is the stationary share across the
    // used PEs plus a streaming buffer, clamped to physical VM.
    const double live_bytes = std::min(
        static_cast<double>(params.vm_total_bytes()),
        plan.stationary_bytes_per_pe * static_cast<double>(pes_used) +
            static_cast<double>(layer.dims.c * layer.dims.r) * elem);
    cost.ckpt_bytes =
        static_cast<std::int64_t>(live_bytes + params.ckpt_fixed_bytes);

    // --- Minimum VM to run at all ---------------------------------------------
    // Streaming needs a double-buffered chunk of the reduction plus a few
    // output registers — not the whole reduction resident.
    const double stream_buffer =
        (static_cast<double>(std::min<std::int64_t>(
             layer.dims.c * layer.dims.r * layer.dims.s, 512)) +
         static_cast<double>(std::min<std::int64_t>(tile.k, 64))) * elem;
    cost.vm_required_bytes = static_cast<std::int64_t>(stream_buffer);
    cost.feasible = cost.vm_required_bytes <= params.vm_total_bytes();

    // Pooling windows issue cheaper compare/accumulate ops than MACs.
    const double op_scale =
        layer.kind == dnn::LayerKind::kPool ? params.pool_op_scale : 1.0;

    // --- Time ---------------------------------------------------------------
    cost.compute_time_s =
        macs * op_scale / (params.macs_per_s_per_pe *
                           static_cast<double>(params.n_pe) *
                           cost.utilization);
    cost.nvm_time_s =
        static_cast<double>(cost.nvm_read_bytes + cost.nvm_write_bytes) /
        params.nvm_bytes_per_s;
    const double ckpt_round_trips =
        static_cast<double>(n_tile) * (1.0 + params.exception_rate) * 2.0 *
        static_cast<double>(cost.ckpt_bytes);
    cost.ckpt_time_s = ckpt_round_trips / params.nvm_bytes_per_s;
    const double body = params.overlap_transfers
        ? std::max(cost.compute_time_s, cost.nvm_time_s)
        : cost.compute_time_s + cost.nvm_time_s;
    cost.time_s = body + cost.ckpt_time_s;

    // --- Energy (Eq. 5 decomposition) ----------------------------------------
    cost.e_compute_j = macs * op_scale * params.e_mac_j;
    cost.e_vm_j = vm_bytes * params.e_vm_byte_j;
    cost.e_nvm_j =
        static_cast<double>(cost.nvm_read_bytes) * params.e_nvm_read_byte_j +
        static_cast<double>(cost.nvm_write_bytes) *
            params.e_nvm_write_byte_j;
    cost.e_static_j =
        cost.time_s * (static_cast<double>(params.vm_total_bytes()) *
                           params.p_mem_w_per_byte +
                       static_cast<double>(params.n_pe) *
                           params.p_pe_static_w);
    // E_ckpt = N_tile * (1 + r_exc) * N_ckpt * (e_r + e_w)   (Eq. 5)
    cost.ckpt_pair_energy_j =
        static_cast<double>(cost.ckpt_bytes) *
        (params.e_nvm_read_byte_j + params.e_nvm_write_byte_j);
    cost.e_ckpt_j = static_cast<double>(n_tile) *
                    (1.0 + params.exception_rate) *
                    cost.ckpt_pair_energy_j;

    return cost;
}

ModelCost
analyze_model(const dnn::Model& model,
              const std::vector<LayerMapping>& mappings,
              const CostParams& params)
{
    if (mappings.size() != model.layer_count())
        fatal("analyze_model: ", mappings.size(), " mappings for ",
              model.layer_count(), " layers");

    ModelCost total;
    total.layers.reserve(model.layer_count());
    for (std::size_t i = 0; i < model.layer_count(); ++i) {
        LayerCost cost = analyze_layer(model.layer(i), mappings[i], params);
        total.feasible = total.feasible && cost.feasible;
        total.time_s += cost.time_s;
        total.e_compute_j += cost.e_compute_j;
        total.e_vm_j += cost.e_vm_j;
        total.e_nvm_j += cost.e_nvm_j;
        total.e_static_j += cost.e_static_j;
        total.e_ckpt_j += cost.e_ckpt_j;
        total.n_tile += cost.n_tile;
        total.nvm_read_bytes += cost.nvm_read_bytes;
        total.nvm_write_bytes += cost.nvm_write_bytes;
        total.layers.push_back(std::move(cost));
    }
    return total;
}

ModelCost
analyze_model_untiled(const dnn::Model& model, Dataflow dataflow,
                      const CostParams& params)
{
    std::vector<LayerMapping> mappings(model.layer_count());
    for (auto& mapping : mappings)
        mapping.dataflow = dataflow;
    return analyze_model(model, mappings, params);
}

double
ModelCost::max_tile_energy_j() const
{
    double peak = 0.0;
    for (const auto& layer : layers)
        peak = std::max(peak, layer.tile_energy_j());
    return peak;
}

double
ModelCost::max_tile_time_s() const
{
    double peak = 0.0;
    for (const auto& layer : layers)
        peak = std::max(peak, layer.tile_time_s());
    return peak;
}

}  // namespace chrysalis::dataflow

#include "dataflow/mapping.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"
#include "common/math_utils.hpp"

namespace chrysalis::dataflow {

std::string
to_string(Dataflow dataflow)
{
    switch (dataflow) {
      case Dataflow::kWeightStationary: return "WS";
      case Dataflow::kOutputStationary: return "OS";
      case Dataflow::kInputStationary: return "IS";
      case Dataflow::kRowStationary: return "RS";
    }
    return "?";
}

const std::vector<Dataflow>&
all_dataflows()
{
    static const std::vector<Dataflow> kAll = {
        Dataflow::kWeightStationary,
        Dataflow::kOutputStationary,
        Dataflow::kInputStationary,
        Dataflow::kRowStationary,
    };
    return kAll;
}

std::string
MappingDirective::to_string() const
{
    const char* kind_name = "TemporalMap";
    if (kind == Kind::kSpatial)
        kind_name = "SpatialMap";
    else if (kind == Kind::kInterTemp)
        kind_name = "InterTempMap";
    std::ostringstream os;
    os << kind_name << "(" << dnn::to_string(dim) << ", " << tile << ")";
    return os.str();
}

bool
LayerMapping::valid_for(const dnn::Layer& layer) const
{
    return tiles_k >= 1 && tiles_y >= 1 && tiles_n >= 1 &&
           tiles_k <= layer.dims.k && tiles_y <= layer.dims.y &&
           tiles_n <= layer.dims.n;
}

void
LayerMapping::clamp_to(const dnn::Layer& layer)
{
    tiles_k = std::clamp<std::int64_t>(tiles_k, 1, layer.dims.k);
    tiles_y = std::clamp<std::int64_t>(tiles_y, 1, layer.dims.y);
    tiles_n = std::clamp<std::int64_t>(tiles_n, 1, layer.dims.n);
}

std::vector<MappingDirective>
LayerMapping::to_directives(const dnn::Layer& layer) const
{
    if (!valid_for(layer))
        fatal("LayerMapping: invalid chunk counts for layer ", layer.name);

    std::vector<MappingDirective> nest;
    using Kind = MappingDirective::Kind;

    // Intermittent (checkpoint) tiling outermost: between these chunks a
    // power interruption may occur.
    if (tiles_n > 1)
        nest.push_back({Kind::kInterTemp, dnn::Dim::kN, tiles_n});
    if (tiles_k > 1)
        nest.push_back({Kind::kInterTemp, dnn::Dim::kK, tiles_k});
    if (tiles_y > 1)
        nest.push_back({Kind::kInterTemp, dnn::Dim::kY, tiles_y});

    // The taxonomy's spatial dimension spreads across PEs.
    const dnn::Dim sp = spatial_dim(dataflow);
    const std::int64_t sp_extent = dnn::dim_extent(layer.dims, sp);
    nest.push_back({Kind::kSpatial, sp, sp_extent});

    // Remaining dimensions iterate temporally inside each PE.
    for (dnn::Dim dim : {dnn::Dim::kN, dnn::Dim::kK, dnn::Dim::kC,
                         dnn::Dim::kY, dnn::Dim::kX, dnn::Dim::kR,
                         dnn::Dim::kS}) {
        if (dim == sp)
            continue;
        const std::int64_t extent = dnn::dim_extent(layer.dims, dim);
        if (extent > 1)
            nest.push_back({Kind::kTemporal, dim, extent});
    }
    return nest;
}

std::string
LayerMapping::describe(const dnn::Layer& layer) const
{
    std::ostringstream os;
    os << "// " << layer.name << " [" << dnn::to_string(layer.kind)
       << "], dataflow=" << dataflow::to_string(dataflow) << "\n";
    int depth = 0;
    for (const auto& directive : to_directives(layer)) {
        os << std::string(static_cast<std::size_t>(depth) * 2, ' ')
           << directive.to_string() << "\n";
        ++depth;
    }
    return os.str();
}

dnn::Dim
spatial_dim(Dataflow dataflow)
{
    switch (dataflow) {
      case Dataflow::kWeightStationary:
        return dnn::Dim::kK;  // each PE owns an output-channel slice
      case Dataflow::kOutputStationary:
        return dnn::Dim::kY;  // each PE owns output rows
      case Dataflow::kInputStationary:
        return dnn::Dim::kC;  // each PE owns input channels
      case Dataflow::kRowStationary:
        return dnn::Dim::kY;  // Eyeriss spreads 1-D row convolutions
    }
    panic("spatial_dim: invalid dataflow");
}

}  // namespace chrysalis::dataflow

#include "dataflow/tiling.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/math_utils.hpp"

namespace chrysalis::dataflow {

TileShape
tile_shape(const dnn::Layer& layer, const LayerMapping& mapping)
{
    if (!mapping.valid_for(layer))
        fatal("tile_shape: mapping invalid for layer ", layer.name);

    TileShape tile;
    tile.n = ceil_div(layer.dims.n, mapping.tiles_n);
    tile.k = ceil_div(layer.dims.k, mapping.tiles_k);
    tile.y = ceil_div(layer.dims.y, mapping.tiles_y);
    tile.x = layer.dims.x;

    tile.output_elems = tile.n * tile.k * tile.y * tile.x;

    // Input halo: a tile of y output rows needs y*stride + (r - stride)
    // input rows (clamped to the layer's input height).
    const std::int64_t in_rows = std::min(
        layer.in_h, tile.y * layer.stride + layer.dims.r - layer.stride);
    switch (layer.kind) {
      case dnn::LayerKind::kConv2d:
        tile.input_elems = tile.n * layer.dims.c * in_rows * layer.in_w;
        break;
      case dnn::LayerKind::kPool:
      case dnn::LayerKind::kDepthwise:
        // Per-channel operators: a K-tile only needs its own channels.
        tile.input_elems = tile.n * tile.k * in_rows * layer.in_w;
        break;
      case dnn::LayerKind::kDense:
      case dnn::LayerKind::kMatmul:
        tile.input_elems = tile.n * layer.dims.c;
        break;
      case dnn::LayerKind::kEmbedding:
        tile.input_elems = tile.n;
        break;
    }

    switch (layer.kind) {
      case dnn::LayerKind::kConv2d:
        tile.weight_elems =
            tile.k * layer.dims.c * layer.dims.r * layer.dims.s;
        break;
      case dnn::LayerKind::kDepthwise:
        tile.weight_elems = tile.k * layer.dims.r * layer.dims.s;
        break;
      case dnn::LayerKind::kDense:
        tile.weight_elems = tile.k * layer.dims.c;
        break;
      case dnn::LayerKind::kEmbedding:
        // Only the rows actually indexed are touched: one per token.
        tile.weight_elems = tile.n * layer.dims.k;
        break;
      case dnn::LayerKind::kMatmul:
      case dnn::LayerKind::kPool:
        tile.weight_elems = 0;
        break;
    }

    tile.macs = layer.kind == dnn::LayerKind::kEmbedding
        ? 0
        : tile.n * tile.k * tile.y * tile.x * layer.dims.c * layer.dims.r *
              layer.dims.s;
    return tile;
}

std::vector<std::int64_t>
chunk_candidates(std::int64_t extent, std::size_t max_candidates)
{
    if (extent < 1)
        fatal("chunk_candidates: extent must be >= 1, got ", extent);
    if (max_candidates < 2)
        fatal("chunk_candidates: need at least 2 candidates");
    std::vector<std::int64_t> divs = divisors(extent);
    if (divs.size() <= max_candidates)
        return divs;
    // Keep 1 and extent, spread the rest evenly through the divisor list.
    std::vector<std::int64_t> picked;
    picked.reserve(max_candidates);
    const double step = static_cast<double>(divs.size() - 1) /
                        static_cast<double>(max_candidates - 1);
    for (std::size_t i = 0; i < max_candidates; ++i) {
        const auto index = static_cast<std::size_t>(
            static_cast<double>(i) * step + 0.5);
        picked.push_back(divs[std::min(index, divs.size() - 1)]);
    }
    picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
    return picked;
}

std::vector<LayerMapping>
enumerate_mappings(const dnn::Layer& layer,
                   const std::vector<Dataflow>& dataflows,
                   std::size_t max_candidates_per_dim)
{
    const auto ks = chunk_candidates(layer.dims.k, max_candidates_per_dim);
    const auto ys = chunk_candidates(layer.dims.y, max_candidates_per_dim);
    const auto ns = chunk_candidates(layer.dims.n, max_candidates_per_dim);

    std::vector<LayerMapping> mappings;
    mappings.reserve(dataflows.size() * ks.size() * ys.size() * ns.size());
    for (Dataflow dataflow : dataflows) {
        for (std::int64_t tk : ks) {
            for (std::int64_t ty : ys) {
                for (std::int64_t tn : ns) {
                    LayerMapping mapping;
                    mapping.dataflow = dataflow;
                    mapping.tiles_k = tk;
                    mapping.tiles_y = ty;
                    mapping.tiles_n = tn;
                    mappings.push_back(mapping);
                }
            }
        }
    }
    return mappings;
}

}  // namespace chrysalis::dataflow

/// \file
/// Data-centric mapping description with intermittent extension (Fig. 4).
///
/// A mapping describes how one DNN layer's loop nest executes on the
/// inference hardware using three directive kinds:
///   - TemporalMap(dim, tile): iterate tiles of `dim` one after another on
///     the same hardware;
///   - SpatialMap(dim, tile): spread tiles of `dim` across PEs;
///   - InterTempMap(dim, tiles): the paper's incremental directive — split
///     `dim` into chunks executed in *different energy cycles*, with a
///     checkpoint boundary between chunks (all VM state is lost and data
///     must be re-fetched from NVM).
///
/// The search operates on the compact LayerMapping form (taxonomy + number
/// of intermittent tiles per output dimension); `to_directives()` expands
/// it into the explicit loop-nest shown in the paper's Figure 4.

#ifndef CHRYSALIS_DATAFLOW_MAPPING_HPP
#define CHRYSALIS_DATAFLOW_MAPPING_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hpp"

namespace chrysalis::dataflow {

/// Dataflow taxonomy of the accelerator (§III-A input 4).
enum class Dataflow {
    kWeightStationary,  ///< WS: weights pinned in PEs (TPU-style)
    kOutputStationary,  ///< OS: psums pinned in PEs
    kInputStationary,   ///< IS: inputs pinned in PEs
    kRowStationary,     ///< RS: Eyeriss-style row stationary
};

/// Short name: "WS", "OS", "IS", "RS".
std::string to_string(Dataflow dataflow);

/// All supported taxonomies, for sweeps.
const std::vector<Dataflow>& all_dataflows();

/// One mapping directive in the expanded loop-nest form.
struct MappingDirective {
    enum class Kind { kTemporal, kSpatial, kInterTemp };

    Kind kind = Kind::kTemporal;
    dnn::Dim dim = dnn::Dim::kK;
    std::int64_t tile = 1;  ///< tile extent (Temporal/Spatial) or #chunks

    /// Renders e.g. "InterTempMap(K, 4)".
    std::string to_string() const;
};

/// Compact per-layer mapping: the search's decision variables.
struct LayerMapping {
    Dataflow dataflow = Dataflow::kWeightStationary;
    std::int64_t tiles_k = 1;  ///< InterTempMap chunks along K
    std::int64_t tiles_y = 1;  ///< InterTempMap chunks along Y
    std::int64_t tiles_n = 1;  ///< InterTempMap chunks along N

    /// Total number of intermittent tiles N_tile = tiles_k*tiles_y*tiles_n.
    std::int64_t tile_count() const { return tiles_k * tiles_y * tiles_n; }

    /// True when every chunk count divides cleanly into at least one unit
    /// of the layer's extents (chunk counts must not exceed extents).
    bool valid_for(const dnn::Layer& layer) const;

    /// Clamps chunk counts into the layer's extents.
    void clamp_to(const dnn::Layer& layer);

    /// Expands into the explicit directive loop nest of Fig. 4:
    /// InterTempMap directives outermost, then the taxonomy's spatial
    /// directive, then temporal directives for the remaining dims.
    std::vector<MappingDirective> to_directives(const dnn::Layer& layer)
        const;

    /// Renders the loop nest one directive per line.
    std::string describe(const dnn::Layer& layer) const;
};

/// The spatial dimension a taxonomy spreads across PEs.
dnn::Dim spatial_dim(Dataflow dataflow);

}  // namespace chrysalis::dataflow

#endif  // CHRYSALIS_DATAFLOW_MAPPING_HPP

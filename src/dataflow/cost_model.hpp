/// \file
/// Analytical per-layer cost model for intermittent inference (Eqs. 4-6).
///
/// Abstraction level: pre-RTL, MAESTRO-style. For each intermittent tile
/// the model derives
///   - compute time from MAC count, PE count and spatial utilization
///     (Eq. 6: T = T_df / N_PE, refined with utilization);
///   - volatile-memory (VM) traffic from per-taxonomy reuse factors;
///   - non-volatile-memory (NVM) traffic from the tile's input halo,
///     weight slice and output footprint, with re-streaming multipliers
///     when the taxonomy's *stationary* operand does not fit in the
///     per-PE cache (this is how N_mem enters the design space);
///   - checkpoint overhead per Eq. 5's
///     N_tile * (1 + r_exc) * N_ckpt * (e_r + e_w) term.
///
/// The reuse factors are deliberately simple, documented at the
/// definition site, and validated by monotonicity property tests (more
/// cache never hurts, more PEs never slow a layer down, more intermittent
/// tiles never reduce NVM traffic).

#ifndef CHRYSALIS_DATAFLOW_COST_MODEL_HPP
#define CHRYSALIS_DATAFLOW_COST_MODEL_HPP

#include <cstdint>
#include <vector>

#include "dataflow/mapping.hpp"
#include "dataflow/tiling.hpp"
#include "dnn/model.hpp"

namespace chrysalis::dataflow {

/// Technology/architecture constants consumed by the cost model. Hardware
/// models (src/hw) produce one of these for a given configuration.
struct CostParams {
    // Compute.
    double e_mac_j = 1e-12;          ///< energy per MAC [J]
    double macs_per_s_per_pe = 1e8;  ///< per-PE throughput [MAC/s]
    std::int64_t n_pe = 1;           ///< number of processing elements

    // Volatile memory (per-PE cache / scratchpad).
    std::int64_t vm_bytes_per_pe = 512;  ///< N_mem per PE [bytes]
    double e_vm_byte_j = 0.1e-12;        ///< VM access energy [J/byte]
    double p_mem_w_per_byte = 1e-9;      ///< VM static power p_mem [W/byte]

    // Non-volatile memory.
    double e_nvm_read_byte_j = 5e-12;    ///< e_r [J/byte]
    double e_nvm_write_byte_j = 15e-12;  ///< e_w [J/byte]
    double nvm_bytes_per_s = 8e6;        ///< NVM streaming bandwidth [B/s]

    // Misc.
    double p_pe_static_w = 1e-6;     ///< per-PE static power while on [W]
    int element_bytes = 1;           ///< bytes per tensor element
    bool overlap_transfers = true;   ///< DMA overlaps compute
    double exception_rate = 0.05;    ///< r_exc of Eq. 5
    double ckpt_fixed_bytes = 64.0;  ///< control state per checkpoint
    /// Pooling windows cost compare/accumulate ops, not full MACs; this
    /// scales both their energy and their issue rate relative to a MAC.
    double pool_op_scale = 0.3;

    /// Aggregate VM capacity across PEs [bytes].
    std::int64_t vm_total_bytes() const { return vm_bytes_per_pe * n_pe; }
};

/// Full energy/latency/traffic accounting for one layer under one mapping.
struct LayerCost {
    bool feasible = true;       ///< false if the mapping cannot run at all

    std::int64_t macs = 0;
    std::int64_t n_tile = 1;            ///< N_tile of Eq. 5
    std::int64_t ckpt_bytes = 0;        ///< N_ckpt of Eq. 5 [bytes]
    double ckpt_pair_energy_j = 0.0;    ///< one save+restore pair:
                                        ///< N_ckpt * (e_r + e_w)
    std::int64_t nvm_read_bytes = 0;    ///< total NVM bytes read
    std::int64_t nvm_write_bytes = 0;   ///< total NVM bytes written
    std::int64_t vm_required_bytes = 0; ///< minimum aggregate VM needed
    double utilization = 1.0;           ///< PE array spatial utilization

    double compute_time_s = 0.0;  ///< MAC execution time
    double nvm_time_s = 0.0;      ///< NVM streaming time
    double ckpt_time_s = 0.0;     ///< checkpoint save/restore time
    double time_s = 0.0;          ///< active execution time of the layer

    double e_compute_j = 0.0;  ///< MAC energy (part of E_infer)
    double e_vm_j = 0.0;       ///< local buffer traffic energy
    double e_nvm_j = 0.0;      ///< NVM data movement energy (N_data * e_r..)
    double e_static_j = 0.0;   ///< static energy T * N_mem * p_mem + PEs
    double e_ckpt_j = 0.0;     ///< Eq. 5 checkpoint term

    /// Total energy E_all for this layer (Eq. 5).
    double total_energy_j() const
    {
        return e_compute_j + e_vm_j + e_nvm_j + e_static_j + e_ckpt_j;
    }

    /// Energy of one tile, E_tile = E_all / N_tile (Eq. 4).
    double tile_energy_j() const
    {
        return total_energy_j() / static_cast<double>(n_tile);
    }

    /// Active time of one tile.
    double tile_time_s() const
    {
        return time_s / static_cast<double>(n_tile);
    }
};

/// Whole-model cost: the per-layer breakdown plus totals.
struct ModelCost {
    bool feasible = true;
    std::vector<LayerCost> layers;

    double time_s = 0.0;
    double e_compute_j = 0.0;
    double e_vm_j = 0.0;
    double e_nvm_j = 0.0;
    double e_static_j = 0.0;
    double e_ckpt_j = 0.0;
    std::int64_t n_tile = 0;         ///< total tiles across all layers
    std::int64_t nvm_read_bytes = 0;
    std::int64_t nvm_write_bytes = 0;

    double total_energy_j() const
    {
        return e_compute_j + e_vm_j + e_nvm_j + e_static_j + e_ckpt_j;
    }

    /// Largest single-tile energy across layers — the quantity that must
    /// fit in one energy cycle (Eq. 8: E_tile <= E_available).
    double max_tile_energy_j() const;

    /// Largest single-tile active time across layers.
    double max_tile_time_s() const;
};

/// Analyzes one layer under one mapping.
LayerCost analyze_layer(const dnn::Layer& layer, const LayerMapping& mapping,
                        const CostParams& params);

/// Analyzes a whole model; \p mappings must have one entry per layer.
ModelCost analyze_model(const dnn::Model& model,
                        const std::vector<LayerMapping>& mappings,
                        const CostParams& params);

/// Convenience: analyzes a model with the same untiled mapping (single
/// tile, given taxonomy) on every layer — the non-intermittent baseline.
ModelCost analyze_model_untiled(const dnn::Model& model, Dataflow dataflow,
                                const CostParams& params);

}  // namespace chrysalis::dataflow

#endif  // CHRYSALIS_DATAFLOW_COST_MODEL_HPP

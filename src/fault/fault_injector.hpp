/// \file
/// Seed-deterministic fault injection for EA/IA co-simulation.
///
/// The paper's premise is that AuT devices run under *non-ideal* power;
/// `FaultInjector` makes the non-ideal part explicit and reproducible. It
/// models four fault classes against the energy and inference subsystems:
///
///   1. harvester dropout storms — windows of lost input power (a cloud
///      bank, an occluded panel, a detached TEG), as a multiplicative
///      factor on harvested power;
///   2. capacitor degradation — electrolytic capacitance fade and
///      leakage/ESR growth over the mission age;
///   3. PMIC threshold drift — additive offsets on U_on / U_off;
///   4. NVM checkpoint corruption — a restore that reads back garbage
///      forces re-execution from the previous tile boundary, extending
///      the paper's r_exc energy-exception model.
///
/// Every decision is a pure function of (seed, query): dropout windows are
/// derived by hashing the window index, corruption events by hashing the
/// restore index. The injector therefore returns identical answers in any
/// query order and from any thread — the property that keeps `threads=N`
/// search results bit-identical to `threads=1` with injection enabled.

#ifndef CHRYSALIS_FAULT_FAULT_INJECTOR_HPP
#define CHRYSALIS_FAULT_FAULT_INJECTOR_HPP

#include <atomic>
#include <cstdint>
#include <string>

#include "energy/fault_hooks.hpp"
#include "obs/metrics.hpp"
#include "common/stable_hash.hpp"

namespace chrysalis::fault {

/// Fault-model parameters. All rates/probabilities are in [0, 1]; a
/// default-constructed spec injects nothing.
struct FaultSpec {
    std::uint64_t seed = 1;  ///< fault stream seed (decorrelated from
                             ///< the simulator's r_exc stream)

    // -- harvester dropout storms ------------------------------------
    /// Time is divided into windows of this length; each window
    /// independently suffers at most one dropout.
    double dropout_window_s = 600.0;
    /// Probability that a given window contains a dropout.
    double dropout_probability = 0.0;
    /// Length of one dropout [s]; clipped to the window length.
    double dropout_duration_s = 60.0;
    /// Harvest factor *inside* a dropout: 0 = total loss, 0.3 = brown
    /// sky. Outside dropouts the factor is 1.
    double dropout_depth = 0.0;

    // -- capacitor degradation ---------------------------------------
    double mission_age_years = 0.0;      ///< how long the device has aged
    double cap_fade_per_year = 0.02;     ///< capacitance lost per year
    double leakage_growth_per_year = 0.10;  ///< k_cap growth per year

    // -- PMIC threshold drift ----------------------------------------
    double v_on_drift_sigma_v = 0.0;   ///< stddev of the U_on offset [V]
    double v_off_drift_sigma_v = 0.0;  ///< stddev of the U_off offset [V]
    double max_drift_v = 0.25;         ///< hard clamp on either offset

    // -- NVM checkpoint corruption -----------------------------------
    /// Probability that a checkpoint restore reads corrupted state.
    double ckpt_corruption_rate = 0.0;

    /// fatal() with an actionable message when any field is out of
    /// range (negative durations, probabilities outside [0, 1], ...).
    void validate() const;

    /// True when at least one fault class is active.
    bool any_active() const;
};

/// Deterministic fault model; implements the energy subsystem's
/// `PowerFaultModel` hook and the simulator's checkpoint-corruption
/// query. Logically immutable after construction, safe to share across
/// threads — the only mutable state is a pair of relaxed activation
/// counters, which never feed back into any query answer.
class FaultInjector final : public energy::PowerFaultModel
{
  public:
    /// Validates \p spec (fatal on bad input) and pre-samples the static
    /// PMIC drift from the seed.
    explicit FaultInjector(const FaultSpec& spec);

    // -- PowerFaultModel ----------------------------------------------
    double harvest_factor(double t_s) const override;
    double capacitance_scale() const override;
    double leakage_scale() const override;
    double v_on_offset_v() const override;
    double v_off_offset_v() const override;

    /// True when the \p restore_index-th checkpoint restore of a
    /// simulation reads corrupted state (forcing tile re-execution).
    bool corrupt_restore(std::uint64_t restore_index) const;

    /// Long-run average of harvest_factor(): 1 - p * (d/w) * (1-depth).
    /// The analytic evaluator derates P_eh by this factor so searches see
    /// the same expected energy income as the step simulator.
    double mean_harvest_factor() const;

    /// Folds the full fault configuration into \p hash so evaluation
    /// memo keys distinguish faulted from clean evaluations.
    void add_to_hash(StableHash& hash) const;

    /// One-line summary of the active fault classes for reports.
    std::string describe() const;

    const FaultSpec& spec() const { return spec_; }

    /// Lifetime activation totals across every query answered so far.
    struct ActivationCounts {
        std::uint64_t dropout_activations = 0;  ///< queries in a dropout
        std::uint64_t ckpt_corruptions = 0;     ///< corrupted restores
    };
    ActivationCounts activation_counts() const;

    /// Publishes activation_counts() onto \p registry as "fault/*"
    /// gauges. Gauges (not counters) so repeated publishes stay
    /// idempotent; volatile because how often the hooks fire depends on
    /// caching and step scheduling, not only on the fault stream.
    void publish(obs::MetricsRegistry& registry) const;

  private:
    /// Uniform [0, 1) hash of (seed, stream, index); pure and stateless.
    double hash01(std::uint64_t stream, std::uint64_t index) const;

    FaultSpec spec_;
    double v_on_offset_ = 0.0;   ///< pre-sampled drift [V]
    double v_off_offset_ = 0.0;  ///< pre-sampled drift [V]
    /// Activations are rare events (a dropout window hit, a corrupted
    /// restore), so counting them unconditionally costs nothing on the
    /// hot query paths.
    mutable std::atomic<std::uint64_t> dropout_activations_{0};
    mutable std::atomic<std::uint64_t> ckpt_corruptions_{0};
};

}  // namespace chrysalis::fault

#endif  // CHRYSALIS_FAULT_FAULT_INJECTOR_HPP

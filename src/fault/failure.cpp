#include "fault/failure.hpp"

namespace chrysalis::fault {

std::string_view
to_string(FailureCode code)
{
    switch (code) {
      case FailureCode::kNone: return "none";
      case FailureCode::kTileExceedsCycle: return "tile-exceeds-cycle";
      case FailureCode::kTimeout: return "timeout";
      case FailureCode::kNvmCapacityExceeded: return "nvm-capacity";
      case FailureCode::kMappingInfeasible: return "mapping-infeasible";
      case FailureCode::kUnavailable: return "unavailable";
      case FailureCode::kLeakageDominates: return "leakage-dominates";
      case FailureCode::kMalformedInput: return "malformed-input";
      case FailureCode::kCrashed: return "crashed";
    }
    return "unknown";
}

FailureCode
failure_code_from_string(std::string_view text)
{
    for (int raw = static_cast<int>(FailureCode::kNone);
         raw <= static_cast<int>(FailureCode::kCrashed); ++raw) {
        const auto code = static_cast<FailureCode>(raw);
        if (to_string(code) == text)
            return code;
    }
    return FailureCode::kNone;
}

int
penalty_rank(FailureCode code)
{
    // The enum is already ordered by distance from feasibility; the rank
    // is simply its ordinal. Kept behind a function so codes can be
    // reordered or interleaved later without touching penalty users.
    return static_cast<int>(code);
}

std::string_view
describe(FailureCode code)
{
    switch (code) {
      case FailureCode::kNone:
        return "no failure";
      case FailureCode::kTileExceedsCycle:
        return "tile energy exceeds one energy cycle";
      case FailureCode::kTimeout:
        return "timeout: inference did not complete within max_sim_time";
      case FailureCode::kNvmCapacityExceeded:
        return "model footprint exceeds NVM capacity";
      case FailureCode::kMappingInfeasible:
        return "mapping infeasible for hardware VM";
      case FailureCode::kUnavailable:
        return "unavailable: leakage prevents reaching turn-on threshold";
      case FailureCode::kLeakageDominates:
        return "leakage exceeds harvested power";
      case FailureCode::kMalformedInput:
        return "malformed input rejected";
      case FailureCode::kCrashed:
        return "case crashed during evaluation";
    }
    return "unknown failure";
}

std::string
SimFailure::message() const
{
    std::string text{describe(code)};
    if (!detail.empty()) {
        text += " (";
        text += detail;
        text += ')';
    }
    return text;
}

SimFailure
make_failure(FailureCode code, std::string detail)
{
    return SimFailure{code, std::move(detail)};
}

}  // namespace chrysalis::fault

#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace chrysalis::fault {

namespace {

/// Distinct hash streams so the same index never correlates across
/// fault classes.
constexpr std::uint64_t kStreamDropoutHit = 1;
constexpr std::uint64_t kStreamDropoutPhase = 2;
constexpr std::uint64_t kStreamCorruption = 3;

/// splitmix64 finalizer: a high-quality 64-bit mixer.
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

void
check_probability(double value, const char* name)
{
    if (!(value >= 0.0 && value <= 1.0))
        fatal("FaultSpec: ", name, " must be in [0, 1], got ", value,
              " — probabilities are per-event, not percentages");
}

void
check_non_negative(double value, const char* name)
{
    if (!(value >= 0.0) || !std::isfinite(value))
        fatal("FaultSpec: ", name, " must be finite and >= 0, got ",
              value);
}

}  // namespace

void
FaultSpec::validate() const
{
    if (!(dropout_window_s > 0.0) || !std::isfinite(dropout_window_s))
        fatal("FaultSpec: dropout_window_s must be finite and > 0, got ",
              dropout_window_s, " — the storm model divides time into "
              "windows of this length");
    check_probability(dropout_probability, "dropout_probability");
    check_non_negative(dropout_duration_s, "dropout_duration_s");
    check_probability(dropout_depth, "dropout_depth");
    check_non_negative(mission_age_years, "mission_age_years");
    check_probability(cap_fade_per_year, "cap_fade_per_year");
    check_non_negative(leakage_growth_per_year, "leakage_growth_per_year");
    check_non_negative(v_on_drift_sigma_v, "v_on_drift_sigma_v");
    check_non_negative(v_off_drift_sigma_v, "v_off_drift_sigma_v");
    check_non_negative(max_drift_v, "max_drift_v");
    check_probability(ckpt_corruption_rate, "ckpt_corruption_rate");
}

bool
FaultSpec::any_active() const
{
    return dropout_probability > 0.0 || mission_age_years > 0.0 ||
           v_on_drift_sigma_v > 0.0 || v_off_drift_sigma_v > 0.0 ||
           ckpt_corruption_rate > 0.0;
}

FaultInjector::FaultInjector(const FaultSpec& spec) : spec_(spec)
{
    spec_.validate();
    // PMIC drift is a static property of the aged device: sample it once
    // from the seed so every query agrees.
    Rng rng(mix64(spec_.seed ^ 0xd1f7a11ce5ULL));
    const auto clamp_drift = [&](double sigma) {
        if (sigma <= 0.0)
            return 0.0;
        return std::clamp(rng.gaussian(0.0, sigma), -spec_.max_drift_v,
                          spec_.max_drift_v);
    };
    v_on_offset_ = clamp_drift(spec_.v_on_drift_sigma_v);
    v_off_offset_ = clamp_drift(spec_.v_off_drift_sigma_v);
}

double
FaultInjector::hash01(std::uint64_t stream, std::uint64_t index) const
{
    const std::uint64_t word =
        mix64(spec_.seed + mix64(stream) + mix64(index * 0x9e3779b97f4a7c15ULL));
    return static_cast<double>(word >> 11) * 0x1.0p-53;
}

double
FaultInjector::harvest_factor(double t_s) const
{
    if (spec_.dropout_probability <= 0.0 || t_s < 0.0)
        return 1.0;
    const double window = spec_.dropout_window_s;
    const auto index =
        static_cast<std::uint64_t>(std::floor(t_s / window));
    if (hash01(kStreamDropoutHit, index) >= spec_.dropout_probability)
        return 1.0;
    // This window has a dropout; place it at a hashed phase offset.
    const double duration = std::min(spec_.dropout_duration_s, window);
    const double offset =
        hash01(kStreamDropoutPhase, index) * (window - duration);
    const double local = t_s - static_cast<double>(index) * window;
    const bool inside = local >= offset && local < offset + duration;
    if (inside)
        dropout_activations_.fetch_add(1, std::memory_order_relaxed);
    return inside ? spec_.dropout_depth : 1.0;
}

double
FaultInjector::capacitance_scale() const
{
    return std::pow(1.0 - spec_.cap_fade_per_year,
                    spec_.mission_age_years);
}

double
FaultInjector::leakage_scale() const
{
    return std::pow(1.0 + spec_.leakage_growth_per_year,
                    spec_.mission_age_years);
}

double
FaultInjector::v_on_offset_v() const
{
    return v_on_offset_;
}

double
FaultInjector::v_off_offset_v() const
{
    return v_off_offset_;
}

bool
FaultInjector::corrupt_restore(std::uint64_t restore_index) const
{
    if (spec_.ckpt_corruption_rate <= 0.0)
        return false;
    const bool corrupted = hash01(kStreamCorruption, restore_index) <
                           spec_.ckpt_corruption_rate;
    if (corrupted)
        ckpt_corruptions_.fetch_add(1, std::memory_order_relaxed);
    return corrupted;
}

FaultInjector::ActivationCounts
FaultInjector::activation_counts() const
{
    ActivationCounts counts;
    counts.dropout_activations =
        dropout_activations_.load(std::memory_order_relaxed);
    counts.ckpt_corruptions =
        ckpt_corruptions_.load(std::memory_order_relaxed);
    return counts;
}

void
FaultInjector::publish(obs::MetricsRegistry& registry) const
{
    const ActivationCounts counts = activation_counts();
    registry.gauge("fault/dropout_activations")
        .set(static_cast<double>(counts.dropout_activations));
    registry.gauge("fault/ckpt_corruptions")
        .set(static_cast<double>(counts.ckpt_corruptions));
}

double
FaultInjector::mean_harvest_factor() const
{
    if (spec_.dropout_probability <= 0.0)
        return 1.0;
    const double duty = spec_.dropout_probability *
                        std::min(spec_.dropout_duration_s,
                                 spec_.dropout_window_s) /
                        spec_.dropout_window_s;
    return 1.0 - duty * (1.0 - spec_.dropout_depth);
}

void
FaultInjector::add_to_hash(StableHash& hash) const
{
    hash.add(std::string_view("fault-injector"))
        .add(spec_.seed)
        .add(spec_.dropout_window_s)
        .add(spec_.dropout_probability)
        .add(spec_.dropout_duration_s)
        .add(spec_.dropout_depth)
        .add(spec_.mission_age_years)
        .add(spec_.cap_fade_per_year)
        .add(spec_.leakage_growth_per_year)
        .add(spec_.v_on_drift_sigma_v)
        .add(spec_.v_off_drift_sigma_v)
        .add(spec_.max_drift_v)
        .add(spec_.ckpt_corruption_rate);
}

std::string
FaultInjector::describe() const
{
    std::ostringstream os;
    os << "faults[seed=" << spec_.seed;
    if (spec_.dropout_probability > 0.0) {
        os << " dropout=" << spec_.dropout_probability << '@'
           << spec_.dropout_duration_s << "s/" << spec_.dropout_window_s
           << 's';
    }
    if (spec_.mission_age_years > 0.0) {
        os << " age=" << spec_.mission_age_years << "y(C x"
           << capacitance_scale() << ", k_cap x" << leakage_scale()
           << ')';
    }
    if (v_on_offset_ != 0.0 || v_off_offset_ != 0.0) {
        os << " drift(v_on" << (v_on_offset_ >= 0 ? "+" : "")
           << v_on_offset_ << ", v_off" << (v_off_offset_ >= 0 ? "+" : "")
           << v_off_offset_ << ')';
    }
    if (spec_.ckpt_corruption_rate > 0.0)
        os << " ckpt-corrupt=" << spec_.ckpt_corruption_rate;
    if (!spec_.any_active())
        os << " none";
    os << ']';
    return os.str();
}

}  // namespace chrysalis::fault

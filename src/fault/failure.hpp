/// \file
/// Structured failure taxonomy for evaluations and campaigns.
///
/// Every way an evaluation can fail — in the modeled device (leakage
/// unavailability, Eq. 8 violations, timeouts under fault storms) or in
/// the host process (a crashed campaign case) — is identified by a
/// `FailureCode` instead of a free-form string, so search penalties,
/// campaign journals and reports can rank, count and round-trip failures
/// without string matching. `SimFailure` pairs the code with an optional
/// human-readable detail.

#ifndef CHRYSALIS_FAULT_FAILURE_HPP
#define CHRYSALIS_FAULT_FAILURE_HPP

#include <string>
#include <string_view>

namespace chrysalis::fault {

/// Why an evaluation (or campaign case) failed. Codes are ordered
/// roughly by "distance from feasibility": low codes describe designs
/// that nearly work, high codes describe designs (or runs) that are
/// structurally broken. `search::Objective::penalty_score` uses this
/// ordering to grade GA penalties.
enum class FailureCode {
    kNone = 0,             ///< no failure
    kTileExceedsCycle,     ///< Eq. 8: worst tile exceeds one energy cycle
    kTimeout,              ///< step simulation hit max_sim_time
    kNvmCapacityExceeded,  ///< model footprint does not fit NVM
    kMappingInfeasible,    ///< no mapping fits the hardware VM
    kUnavailable,          ///< leakage prevents ever reaching turn-on
    kLeakageDominates,     ///< effective charging power <= 0
    kMalformedInput,       ///< rejected configuration or trace input
    kCrashed,              ///< host-side: campaign case threw/was killed
};

/// Stable short identifier, e.g. "tile-exceeds-cycle", "crashed".
std::string_view to_string(FailureCode code);

/// Inverse of to_string(); kNone for unknown identifiers.
FailureCode failure_code_from_string(std::string_view text);

/// Severity grade used by penalty objectives: 0 for kNone, then
/// monotonically increasing with the enum's distance-from-feasibility
/// ordering. Search penalties multiply by the rank so a design that
/// merely violates Eq. 8 always outranks one whose mapping never fit.
int penalty_rank(FailureCode code);

/// One-line human explanation of the code (no detail).
std::string_view describe(FailureCode code);

/// A failure code plus optional free-form detail.
struct SimFailure {
    FailureCode code = FailureCode::kNone;
    std::string detail;  ///< optional context, e.g. offending values

    /// True when a failure is recorded.
    explicit operator bool() const { return code != FailureCode::kNone; }

    /// Formatted message: `describe(code)` plus the detail when present.
    std::string message() const;
};

/// Convenience constructor.
SimFailure make_failure(FailureCode code, std::string detail = {});

}  // namespace chrysalis::fault

#endif  // CHRYSALIS_FAULT_FAILURE_HPP

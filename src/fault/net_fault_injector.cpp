#include "fault/net_fault_injector.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hpp"

namespace chrysalis::fault {

namespace {

/// Distinct hash streams so the same indices never correlate across
/// fault classes.
constexpr std::uint64_t kStreamRefuse = 11;
constexpr std::uint64_t kStreamAcceptStall = 12;
constexpr std::uint64_t kStreamTornWrite = 13;
constexpr std::uint64_t kStreamReset = 14;
constexpr std::uint64_t kStreamReadDelay = 15;

/// splitmix64 finalizer: a high-quality 64-bit mixer.
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

void
check_probability(double value, const char* name)
{
    if (!(value >= 0.0 && value <= 1.0))
        fatal("NetFaultSpec: ", name, " must be in [0, 1], got ", value,
              " — probabilities are per-event, not percentages");
}

void
check_duration(double value, const char* name)
{
    if (!(value >= 0.0) || !std::isfinite(value))
        fatal("NetFaultSpec: ", name, " must be finite and >= 0, got ",
              value);
}

}  // namespace

void
NetFaultSpec::validate() const
{
    check_probability(connect_refusal_probability,
                      "connect_refusal_probability");
    check_probability(accept_stall_probability,
                      "accept_stall_probability");
    check_duration(accept_stall_s, "accept_stall_s");
    check_probability(torn_write_probability, "torn_write_probability");
    if (torn_write_chunk_bytes < 1)
        fatal("NetFaultSpec: torn_write_chunk_bytes must be >= 1 — a "
              "zero-byte chunk would stall the write forever");
    check_duration(torn_write_stall_s, "torn_write_stall_s");
    check_probability(reset_probability, "reset_probability");
    check_probability(read_delay_probability, "read_delay_probability");
    check_duration(read_delay_s, "read_delay_s");
}

bool
NetFaultSpec::any_active() const
{
    return connect_refusal_probability > 0.0 ||
           accept_stall_probability > 0.0 ||
           torn_write_probability > 0.0 || reset_probability > 0.0 ||
           read_delay_probability > 0.0;
}

NetFaultInjector::NetFaultInjector(const NetFaultSpec& spec) : spec_(spec)
{
    spec_.validate();
}

double
NetFaultInjector::hash01(std::uint64_t stream, std::uint64_t a,
                         std::uint64_t b) const
{
    const std::uint64_t word =
        mix64(spec_.seed + mix64(stream) +
              mix64(a * 0x9e3779b97f4a7c15ULL) +
              mix64(b + 0x6a09e667f3bcc909ULL));
    return static_cast<double>(word >> 11) * 0x1.0p-53;
}

bool
NetFaultInjector::refuse_connect(std::uint64_t accept_index) const
{
    if (spec_.connect_refusal_probability <= 0.0)
        return false;
    const bool refused = hash01(kStreamRefuse, accept_index, 0) <
                         spec_.connect_refusal_probability;
    if (refused)
        connect_refusals_.fetch_add(1, std::memory_order_relaxed);
    return refused;
}

double
NetFaultInjector::accept_stall(std::uint64_t accept_index) const
{
    if (spec_.accept_stall_probability <= 0.0)
        return 0.0;
    if (hash01(kStreamAcceptStall, accept_index, 0) >=
        spec_.accept_stall_probability)
        return 0.0;
    accept_stalls_.fetch_add(1, std::memory_order_relaxed);
    return spec_.accept_stall_s;
}

std::size_t
NetFaultInjector::write_cap_bytes(std::uint64_t connection_id,
                                  std::uint64_t write_index) const
{
    if (spec_.torn_write_probability <= 0.0)
        return std::numeric_limits<std::size_t>::max();
    if (hash01(kStreamTornWrite, connection_id, write_index) >=
        spec_.torn_write_probability)
        return std::numeric_limits<std::size_t>::max();
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    return spec_.torn_write_chunk_bytes;
}

double
NetFaultInjector::write_stall(std::uint64_t connection_id,
                              std::uint64_t write_index) const
{
    // The stall rides on the torn-write decision — same stream, no
    // extra activation count (the tear already counted).
    if (spec_.torn_write_probability <= 0.0)
        return 0.0;
    if (hash01(kStreamTornWrite, connection_id, write_index) >=
        spec_.torn_write_probability)
        return 0.0;
    return spec_.torn_write_stall_s;
}

bool
NetFaultInjector::reset_after_write(std::uint64_t connection_id,
                                    std::uint64_t write_index) const
{
    if (spec_.reset_probability <= 0.0)
        return false;
    const bool reset = hash01(kStreamReset, connection_id, write_index) <
                       spec_.reset_probability;
    if (reset)
        resets_.fetch_add(1, std::memory_order_relaxed);
    return reset;
}

double
NetFaultInjector::read_delay(std::uint64_t connection_id,
                             std::uint64_t read_index) const
{
    if (spec_.read_delay_probability <= 0.0)
        return 0.0;
    if (hash01(kStreamReadDelay, connection_id, read_index) >=
        spec_.read_delay_probability)
        return 0.0;
    read_delays_.fetch_add(1, std::memory_order_relaxed);
    return spec_.read_delay_s;
}

NetFaultInjector::ActivationCounts
NetFaultInjector::activation_counts() const
{
    ActivationCounts counts;
    counts.connect_refusals =
        connect_refusals_.load(std::memory_order_relaxed);
    counts.accept_stalls =
        accept_stalls_.load(std::memory_order_relaxed);
    counts.torn_writes = torn_writes_.load(std::memory_order_relaxed);
    counts.resets = resets_.load(std::memory_order_relaxed);
    counts.read_delays = read_delays_.load(std::memory_order_relaxed);
    return counts;
}

void
NetFaultInjector::publish(obs::MetricsRegistry& registry) const
{
    const ActivationCounts counts = activation_counts();
    registry.gauge("fault/net/connect_refusals")
        .set(static_cast<double>(counts.connect_refusals));
    registry.gauge("fault/net/accept_stalls")
        .set(static_cast<double>(counts.accept_stalls));
    registry.gauge("fault/net/torn_writes")
        .set(static_cast<double>(counts.torn_writes));
    registry.gauge("fault/net/resets")
        .set(static_cast<double>(counts.resets));
    registry.gauge("fault/net/read_delays")
        .set(static_cast<double>(counts.read_delays));
}

void
NetFaultInjector::add_to_hash(StableHash& hash) const
{
    hash.add(std::string_view("net-fault-injector"))
        .add(spec_.seed)
        .add(spec_.connect_refusal_probability)
        .add(spec_.accept_stall_probability)
        .add(spec_.accept_stall_s)
        .add(spec_.torn_write_probability)
        .add(static_cast<std::uint64_t>(spec_.torn_write_chunk_bytes))
        .add(spec_.torn_write_stall_s)
        .add(spec_.reset_probability)
        .add(spec_.read_delay_probability)
        .add(spec_.read_delay_s);
}

std::string
NetFaultInjector::describe() const
{
    std::ostringstream os;
    os << "net-faults[seed=" << spec_.seed;
    if (spec_.connect_refusal_probability > 0.0)
        os << " refuse=" << spec_.connect_refusal_probability;
    if (spec_.accept_stall_probability > 0.0) {
        os << " accept-stall=" << spec_.accept_stall_probability << '@'
           << spec_.accept_stall_s << 's';
    }
    if (spec_.torn_write_probability > 0.0) {
        os << " torn=" << spec_.torn_write_probability << '@'
           << spec_.torn_write_chunk_bytes << 'B';
    }
    if (spec_.reset_probability > 0.0)
        os << " reset=" << spec_.reset_probability;
    if (spec_.read_delay_probability > 0.0) {
        os << " read-delay=" << spec_.read_delay_probability << '@'
           << spec_.read_delay_s << 's';
    }
    if (!spec_.any_active())
        os << " none";
    os << ']';
    return os.str();
}

}  // namespace chrysalis::fault

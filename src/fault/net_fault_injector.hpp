/// \file
/// Seed-deterministic fault injection for the serving path's network
/// layer — the transport-level sibling of `FaultInjector`.
///
/// The paper's devices survive intermittent *power*; a shared
/// evaluation daemon must survive intermittent *transport*. This
/// injector makes the flaky-network part explicit and reproducible. It
/// models five fault classes against a byte-stream connection:
///
///   1. connect refusals — an accepted connection is immediately reset,
///      as a listener under SYN-flood protection or a crashing peer
///      would behave;
///   2. accept stalls — the listener stops accepting for a while
///      (backlogged acceptor, thundering-herd recovery);
///   3. torn / partial writes — a write is split into small chunks that
///      reach the peer as separate segments, exercising incremental
///      frame reassembly on the other side;
///   4. mid-frame resets — the connection is torn down (RST) after a
///      prefix of a frame has been delivered;
///   5. delayed reads — the receiver sits on readable data for a while
///      (scheduling hiccup, congested peer), exercising wall-clock
///      deadlines rather than per-recv timeouts.
///
/// Every decision is a pure function of (seed, stream, connection,
/// operation index) via the same splitmix64-finalizer hashing as
/// `FaultInjector`: the schedule replays exactly for a fixed seed, in
/// any query order and from any thread. The only mutable state is a set
/// of relaxed activation counters that never feed back into decisions.
///
/// The injector itself is pure arithmetic — no sockets, no syscalls —
/// so it lives in src/fault/ untouched by the network-header lint
/// fence; the code that *acts* on its decisions (serve::Server's chaos
/// hook, serve::ChaosProxy) lives in src/serve/.

#ifndef CHRYSALIS_FAULT_NET_FAULT_INJECTOR_HPP
#define CHRYSALIS_FAULT_NET_FAULT_INJECTOR_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "common/stable_hash.hpp"

namespace chrysalis::fault {

/// Network fault-model parameters. All probabilities are per-event in
/// [0, 1]; a default-constructed spec injects nothing.
struct NetFaultSpec {
    std::uint64_t seed = 1;  ///< schedule seed (independent streams per
                             ///< fault class)

    // -- connect refusals --------------------------------------------
    /// Probability that a freshly accepted connection is reset before
    /// any byte is served.
    double connect_refusal_probability = 0.0;

    // -- accept stalls -----------------------------------------------
    /// Probability that the listener pauses before a given accept.
    double accept_stall_probability = 0.0;
    double accept_stall_s = 0.02;  ///< length of one accept pause

    // -- torn / partial writes ---------------------------------------
    /// Probability that a given write operation is torn into chunks.
    double torn_write_probability = 0.0;
    /// Chunk cap for a torn write [bytes]; must be >= 1.
    std::size_t torn_write_chunk_bytes = 7;
    /// Pause between the torn chunks of one write; keeps the chunks in
    /// separate segments so the peer really reassembles.
    double torn_write_stall_s = 0.002;

    // -- mid-frame resets --------------------------------------------
    /// Probability that a given write operation is followed by a hard
    /// reset (RST) after its first chunk — the peer sees a torn frame
    /// and then a dead connection.
    double reset_probability = 0.0;

    // -- delayed reads -----------------------------------------------
    /// Probability that a given read operation is deferred.
    double read_delay_probability = 0.0;
    double read_delay_s = 0.01;  ///< length of one read deferral

    /// fatal() with an actionable message when any field is out of
    /// range (probabilities outside [0, 1], non-positive chunk size...).
    void validate() const;

    /// True when at least one fault class is active.
    bool any_active() const;
};

/// Deterministic network fault schedule. Logically immutable after
/// construction and safe to share across threads; the activation
/// counters are relaxed atomics that never influence any decision.
class NetFaultInjector
{
  public:
    /// Validates \p spec; fatal() on bad input.
    explicit NetFaultInjector(const NetFaultSpec& spec);

    /// True when the \p accept_index-th accepted connection must be
    /// reset immediately instead of served.
    bool refuse_connect(std::uint64_t accept_index) const;

    /// Pause before performing the \p accept_index-th accept [s];
    /// 0 = accept immediately.
    double accept_stall(std::uint64_t accept_index) const;

    /// Chunk cap for the \p write_index-th write on \p connection_id
    /// [bytes]; SIZE_MAX = write everything available.
    std::size_t write_cap_bytes(std::uint64_t connection_id,
                                std::uint64_t write_index) const;

    /// Pause after a capped (torn) write chunk [s].
    double write_stall(std::uint64_t connection_id,
                       std::uint64_t write_index) const;

    /// True when the connection must be hard-reset (RST) after the
    /// first chunk of the \p write_index-th write on \p connection_id.
    bool reset_after_write(std::uint64_t connection_id,
                           std::uint64_t write_index) const;

    /// Deferral before servicing the \p read_index-th read on
    /// \p connection_id [s]; 0 = read immediately.
    double read_delay(std::uint64_t connection_id,
                      std::uint64_t read_index) const;

    /// Folds the full chaos configuration into \p hash, so artifacts
    /// produced under different schedules never alias.
    void add_to_hash(StableHash& hash) const;

    /// One-line summary of the active fault classes for reports.
    std::string describe() const;

    const NetFaultSpec& spec() const { return spec_; }

    /// Lifetime activation totals across every query answered so far.
    struct ActivationCounts {
        std::uint64_t connect_refusals = 0;
        std::uint64_t accept_stalls = 0;
        std::uint64_t torn_writes = 0;
        std::uint64_t resets = 0;
        std::uint64_t read_delays = 0;

        std::uint64_t
        total() const
        {
            return connect_refusals + accept_stalls + torn_writes +
                   resets + read_delays;
        }
    };
    ActivationCounts activation_counts() const;

    /// Publishes activation_counts() onto \p registry as "fault/net/*"
    /// gauges (idempotent republish, like FaultInjector::publish).
    void publish(obs::MetricsRegistry& registry) const;

  private:
    /// Uniform [0, 1) hash of (seed, stream, a, b); pure and stateless.
    double hash01(std::uint64_t stream, std::uint64_t a,
                  std::uint64_t b) const;

    NetFaultSpec spec_;
    mutable std::atomic<std::uint64_t> connect_refusals_{0};
    mutable std::atomic<std::uint64_t> accept_stalls_{0};
    mutable std::atomic<std::uint64_t> torn_writes_{0};
    mutable std::atomic<std::uint64_t> resets_{0};
    mutable std::atomic<std::uint64_t> read_delays_{0};
};

}  // namespace chrysalis::fault

#endif  // CHRYSALIS_FAULT_NET_FAULT_INJECTOR_HPP

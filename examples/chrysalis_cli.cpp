/// \file
/// Command-line front end for CHRYSALIS: run the full usage model of
/// Fig. 3 from the shell, on zoo workloads or user model files.
///
/// Usage:
///   chrysalis_cli serve [serve options]   run the evaluation daemon
///   chrysalis_cli call [call options]     send one serve-v1 request
///   chrysalis_cli campaign [options]      run a campaign locally or —
///                                         with --workers host:port,...
///                                         — across a daemon fleet
///                                         (byte-identical output;
///                                         --fleet-trace-out /
///                                         --fleet-metrics-out merge
///                                         the fleet's telemetry)
///   chrysalis_cli [options]
///     --model <zoo-name|path.model>   workload (default: kws). A path is
///                                     parsed with dnn::load_model.
///     --space <existing|future>       design space (default: existing)
///     --objective <lat|sp|latsp>      objective pi (default: latsp)
///     --sp-limit <cm2>                panel budget for --objective lat
///     --lat-limit <s>                 deadline for --objective sp
///     --population <n> --generations <n>   GA budget
///     --seed <n>                      search seed
///     --bright <W/cm2> --dark <W/cm2> environment coefficients
///     --pareto                        run NSGA-II and print the front
///     --validate                      step-simulate the chosen design
///     --csv                           machine-readable summary line
///     --campaign <n>                  run an n-case campaign (objectives
///                                     cycle lat/sp/latsp) and print the
///                                     campaign CSV
///     --threads <n>                   campaign case fan-out (0 = all)
///     --metrics-out <file>            write a metrics JSON report
///     --trace-out <file>              write a Chrome trace-event JSON
///     --fault-dropout <p>             harvester dropout probability
///     --fault-age <years>             capacitor mission age
///     --fault-ckpt <p>                checkpoint corruption rate
///
/// Options also accept the --key=value form.
///
/// Examples:
///   chrysalis_cli --model har --objective sp --lat-limit 30
///   chrysalis_cli --model my_net.model --space future --pareto
///   chrysalis_cli --campaign 6 --fault-dropout 0.3
///       --metrics-out metrics.json --trace-out trace.json

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/string_utils.hpp"
#include "core/campaign.hpp"
#include "core/campaign_spec.hpp"
#include "core/chrysalis.hpp"
#include "dist/coordinator.hpp"
#include "dnn/model_io.hpp"
#include "dnn/model_zoo.hpp"
#include "fault/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/daemon.hpp"

namespace {

using namespace chrysalis;

struct CliOptions {
    std::string model = "kws";
    std::string space = "existing";
    std::string objective = "latsp";
    double sp_limit = 20.0;
    double lat_limit = 10.0;
    int population = 24;
    int generations = 16;
    std::uint64_t seed = 1;
    double bright = 2.0e-3;
    double dark = 0.5e-3;
    bool pareto = false;
    bool validate = false;
    bool csv = false;
    int campaign = 0;  ///< 0 = single-solution mode
    int threads = 1;
    std::string metrics_out;
    std::string trace_out;
    double fault_dropout = 0.0;
    double fault_age = 0.0;
    double fault_ckpt = 0.0;
};

void
usage(const char* argv0)
{
    std::printf(
        "usage: %s [--model <zoo|file.model>] [--space existing|future]\n"
        "          [--objective lat|sp|latsp] [--sp-limit cm2]\n"
        "          [--lat-limit s] [--population n] [--generations n]\n"
        "          [--seed n] [--bright W/cm2] [--dark W/cm2]\n"
        "          [--pareto] [--validate] [--csv]\n"
        "          [--campaign n] [--threads n]\n"
        "          [--metrics-out file] [--trace-out file]\n"
        "          [--fault-dropout p] [--fault-age years]\n"
        "          [--fault-ckpt p]\n",
        argv0);
}

bool
parse_args(int argc, char** argv, CliOptions& options)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Split the --key=value form so every option accepts both
        // spellings.
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
                has_inline = true;
            }
        }
        const auto next = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--model") {
            options.model = next();
        } else if (arg == "--space") {
            options.space = next();
        } else if (arg == "--objective") {
            options.objective = next();
        } else if (arg == "--sp-limit") {
            options.sp_limit = std::stod(next());
        } else if (arg == "--lat-limit") {
            options.lat_limit = std::stod(next());
        } else if (arg == "--population") {
            options.population = std::stoi(next());
        } else if (arg == "--generations") {
            options.generations = std::stoi(next());
        } else if (arg == "--seed") {
            options.seed = std::stoull(next());
        } else if (arg == "--bright") {
            options.bright = std::stod(next());
        } else if (arg == "--dark") {
            options.dark = std::stod(next());
        } else if (arg == "--pareto") {
            options.pareto = true;
        } else if (arg == "--validate") {
            options.validate = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--campaign") {
            options.campaign = std::stoi(next());
        } else if (arg == "--threads") {
            options.threads = std::stoi(next());
        } else if (arg == "--metrics-out") {
            options.metrics_out = next();
        } else if (arg == "--trace-out") {
            options.trace_out = next();
        } else if (arg == "--fault-dropout") {
            options.fault_dropout = std::stod(next());
        } else if (arg == "--fault-age") {
            options.fault_age = std::stod(next());
        } else if (arg == "--fault-ckpt") {
            options.fault_ckpt = std::stod(next());
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    return true;
}

dnn::Model
resolve_model(const std::string& spec)
{
    if (spec.find('.') != std::string::npos ||
        spec.find('/') != std::string::npos) {
        return dnn::load_model(spec);
    }
    return dnn::make_model(spec);
}

search::Objective
resolve_objective(const CliOptions& options, const std::string& kind)
{
    const std::string key = to_lower(kind);
    if (key == "lat") {
        return {search::ObjectiveKind::kLatency, options.sp_limit, 0.0};
    }
    if (key == "sp") {
        return {search::ObjectiveKind::kSolarPanel, 0.0,
                options.lat_limit};
    }
    if (key == "latsp" || key == "lat*sp")
        return {search::ObjectiveKind::kLatSp, 0.0, 0.0};
    fatal("unknown objective '", kind, "'");
}

/// Fault injector from the --fault-* flags, or nullptr when none is set.
std::unique_ptr<fault::FaultInjector>
resolve_faults(const CliOptions& options)
{
    if (options.fault_dropout <= 0.0 && options.fault_age <= 0.0 &&
        options.fault_ckpt <= 0.0) {
        return nullptr;
    }
    fault::FaultSpec spec;
    spec.seed = options.seed;
    spec.dropout_probability = options.fault_dropout;
    spec.mission_age_years = options.fault_age;
    spec.ckpt_corruption_rate = options.fault_ckpt;
    return std::make_unique<fault::FaultInjector>(spec);
}

/// Runs an n-case campaign over the selected workload, the objectives
/// cycling lat/sp/latsp, and prints the campaign CSV. With --validate
/// the first feasible solution is also replayed on the step simulator.
int
run_campaign_mode(const CliOptions& options,
                  const core::ChrysalisInputs& base)
{
    static const char* const kKinds[] = {"latsp", "lat", "sp"};
    std::vector<core::CampaignCase> cases;
    cases.reserve(static_cast<std::size_t>(options.campaign));
    for (int i = 0; i < options.campaign; ++i) {
        const char* kind = kKinds[static_cast<std::size_t>(i) % 3];
        cases.push_back({base.model.name() + "-" + kind + "-" +
                             std::to_string(i),
                         base.model, base.space,
                         resolve_objective(options, kind)});
    }

    core::CampaignOptions campaign_options;
    campaign_options.threads = options.threads;
    const core::CampaignResult result =
        core::run_campaign(cases, base.options, campaign_options);
    result.write_csv(std::cout);

    if (options.validate) {
        for (std::size_t i = 0; i < result.entries.size(); ++i) {
            const auto& entry = result.entries[i];
            if (!entry.solution.feasible)
                continue;
            core::ChrysalisInputs case_inputs{cases[i].model,
                                              cases[i].space,
                                              cases[i].objective,
                                              base.options};
            const core::Chrysalis case_tool(std::move(case_inputs));
            const auto validation =
                case_tool.validate(entry.solution, options.bright);
            std::printf("# validated %s: sim %s vs analytic %s "
                        "(error %s)\n",
                        entry.label.c_str(),
                        format_si(validation.mean_sim_latency_s, "s")
                            .c_str(),
                        format_si(validation.analytic_latency_s, "s")
                            .c_str(),
                        format_percent(validation.relative_error)
                            .c_str());
            break;  // one replay covers the simulator counters
        }
    }

    for (const auto& entry : result.entries) {
        if (entry.solution.feasible)
            return 0;
    }
    return 1;
}

int
run_cli(const CliOptions& options)
{
    const std::unique_ptr<fault::FaultInjector> faults =
        resolve_faults(options);

    core::ChrysalisInputs inputs{
        resolve_model(options.model),
        to_lower(options.space) == "future"
            ? search::DesignSpace::future_aut()
            : search::DesignSpace::existing_aut(),
        resolve_objective(options, options.objective),
        search::ExplorerOptions{},
    };
    inputs.options.outer.population = options.population;
    inputs.options.outer.generations = options.generations;
    inputs.options.outer.seed = options.seed;
    inputs.options.k_eh_envs = {options.bright, options.dark};
    inputs.options.faults = faults.get();

    if (options.campaign > 0)
        return run_campaign_mode(options, inputs);

    const core::Chrysalis tool(std::move(inputs));

    if (options.pareto) {
        const search::BiLevelExplorer explorer(
            tool.inputs().model, tool.inputs().space,
            tool.inputs().objective, tool.inputs().options);
        const auto front = explorer.explore_pareto();
        std::printf("sp_cm2,latency_s,capacitance_f,n_pe,cache_bytes\n");
        for (const auto& design : front) {
            std::printf("%.3f,%.6f,%.3e,%lld,%lld\n",
                        design.candidate.solar_cm2,
                        design.mean_latency_s,
                        design.candidate.capacitance_f,
                        static_cast<long long>(design.candidate.n_pe),
                        static_cast<long long>(
                            design.candidate.cache_bytes));
        }
        return front.empty() ? 1 : 0;
    }

    const core::AuTSolution solution = tool.generate();
    if (!solution.feasible) {
        std::fprintf(stderr, "no feasible design found\n");
        return 1;
    }

    if (options.csv) {
        std::printf("model,objective,sp_cm2,capacitance_f,n_pe,"
                    "cache_bytes,latency_s,lat_sp,score,evaluations\n");
        std::printf("%s,%s,%.3f,%.3e,%lld,%lld,%.6f,%.4f,%.6f,%d\n",
                    tool.inputs().model.name().c_str(),
                    to_string(tool.inputs().objective.kind).c_str(),
                    solution.hardware.solar_cm2,
                    solution.hardware.capacitance_f,
                    static_cast<long long>(solution.hardware.n_pe),
                    static_cast<long long>(solution.hardware.cache_bytes),
                    solution.mean_latency_s, solution.lat_sp,
                    solution.score, solution.evaluations);
    } else {
        std::printf("%s\n",
                    solution.describe(tool.inputs().model).c_str());
    }

    if (options.validate) {
        const auto validation =
            tool.validate(solution, options.bright);
        if (!validation.sim.completed) {
            std::fprintf(stderr, "validation failed: %s\n",
                         validation.sim.failure.message().c_str());
            return 1;
        }
        std::printf("validated: sim %s vs analytic %s (error %s)\n",
                    format_si(validation.mean_sim_latency_s, "s").c_str(),
                    format_si(validation.analytic_latency_s, "s").c_str(),
                    format_percent(validation.relative_error).c_str());
    }
    return 0;
}

// ---- `campaign` subcommand -----------------------------------------------

void
campaign_usage(const char* argv0)
{
    std::printf(
        "usage: %s campaign [--model zoo-name] [--space existing|future]\n"
        "          [--cases n] [--sp-limit cm2] [--lat-limit s]\n"
        "          [--population n] [--generations n] [--seed n]\n"
        "          [--bright W/cm2] [--dark W/cm2]\n"
        "          [--fault-dropout p] [--fault-age years]\n"
        "          [--fault-ckpt p] [--max-attempts n]\n"
        "          [--workers host:port,host:port,...]\n"
        "          [--streams n] [--request-timeout s] [--journal file]\n"
        "          [--threads n] [--deterministic]\n"
        "          [--metrics-out file] [--trace-out file]\n"
        "          [--fleet-trace-out file] [--fleet-metrics-out file]\n"
        "Runs a campaign (objectives cycling latsp/lat/sp) and prints\n"
        "the campaign CSV. Without --workers the cases run in this\n"
        "process (--threads fans out); with --workers they are\n"
        "dispatched to chrysalis_served daemons, and the CSV (and\n"
        "--journal) is byte-identical to a local --deterministic run —\n"
        "at any worker count, including after reassignments.\n"
        "--deterministic drops the wall_time_s CSV column and zeroes\n"
        "journal wall times (always on with --workers). Distributed\n"
        "campaigns accept model-zoo names only.\n"
        "--fleet-trace-out/--fleet-metrics-out (with --workers only)\n"
        "pull every worker's telemetry after the campaign and write\n"
        "one clock-aligned merged Chrome trace / fleet metrics rollup.\n",
        argv0);
}

int
run_campaign_cli(int argc, char** argv, int first)
{
    core::CampaignSpec spec;
    std::string workers;
    std::string journal;
    std::string metrics_out;
    std::string trace_out;
    std::string fleet_trace_out;
    std::string fleet_metrics_out;
    int streams = 1;
    double request_timeout_s = -1.0;  ///< <0 keeps the dist default
    int threads = 1;
    bool deterministic = false;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
                has_inline = true;
            }
        }
        const auto next = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            campaign_usage(argv[0]);
            return 0;
        } else if (arg == "--model") {
            spec.model = next();
        } else if (arg == "--space") {
            spec.space = next();
        } else if (arg == "--cases") {
            spec.cases = std::stoi(next());
        } else if (arg == "--sp-limit") {
            spec.sp_limit_cm2 = std::stod(next());
        } else if (arg == "--lat-limit") {
            spec.lat_limit_s = std::stod(next());
        } else if (arg == "--population") {
            spec.population = std::stoi(next());
        } else if (arg == "--generations") {
            spec.generations = std::stoi(next());
        } else if (arg == "--seed") {
            spec.seed = std::stoull(next());
        } else if (arg == "--bright") {
            spec.bright_w_cm2 = std::stod(next());
        } else if (arg == "--dark") {
            spec.dark_w_cm2 = std::stod(next());
        } else if (arg == "--fault-dropout") {
            spec.fault_dropout = std::stod(next());
        } else if (arg == "--fault-age") {
            spec.fault_age_years = std::stod(next());
        } else if (arg == "--fault-ckpt") {
            spec.fault_ckpt = std::stod(next());
        } else if (arg == "--max-attempts") {
            spec.max_attempts = std::stoi(next());
        } else if (arg == "--workers") {
            workers = next();
        } else if (arg == "--streams") {
            streams = std::stoi(next());
        } else if (arg == "--request-timeout") {
            request_timeout_s = std::stod(next());
        } else if (arg == "--journal") {
            journal = next();
        } else if (arg == "--threads") {
            threads = std::stoi(next());
        } else if (arg == "--deterministic") {
            deterministic = true;
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--fleet-trace-out") {
            fleet_trace_out = next();
        } else if (arg == "--fleet-metrics-out") {
            fleet_metrics_out = next();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            campaign_usage(argv[0]);
            return 2;
        }
    }
    spec.validate();
    if (workers.empty() &&
        (!fleet_trace_out.empty() || !fleet_metrics_out.empty()))
        fatal("--fleet-trace-out/--fleet-metrics-out require --workers "
              "(there is no fleet to pull from in a local run)");

    obs::MetricsRegistry registry;
    obs::TraceSession trace_session;
    if (!metrics_out.empty())
        obs::attach_metrics(&registry);
    // The coordinator's own spans (dist/case, the synthetic remote
    // children) join the merged fleet trace, so fleet tracing implies
    // a local session even without --trace-out.
    if (!trace_out.empty() || !fleet_trace_out.empty())
        obs::attach_trace(&trace_session);

    core::CampaignResult result;
    if (workers.empty()) {
        const dnn::Model model = dnn::make_model(spec.model);
        const std::vector<core::CampaignCase> cases =
            core::build_campaign_cases(spec, model);
        std::unique_ptr<fault::FaultInjector> faults;
        const search::ExplorerOptions base =
            core::build_explorer_options(spec, faults);
        core::CampaignOptions campaign_options;
        campaign_options.threads = threads;
        campaign_options.max_attempts = spec.max_attempts;
        campaign_options.journal_path = journal;
        campaign_options.deterministic_journal = deterministic;
        result = core::run_campaign(cases, base, campaign_options);
        result.write_csv(std::cout, deterministic
                                        ? core::CsvColumns::kDeterministic
                                        : core::CsvColumns::kAll);
    } else {
        dist::DistCampaignOptions dist_options;
        dist_options.workers = dist::parse_worker_list(workers);
        dist_options.streams_per_worker = streams;
        dist_options.journal_path = journal;
        dist_options.fleet_trace_path = fleet_trace_out;
        dist_options.fleet_metrics_path = fleet_metrics_out;
        if (request_timeout_s >= 0.0)
            dist_options.client.request_timeout_s = request_timeout_s;
        const dist::DistCampaignResult dist_result =
            dist::run_distributed_campaign(spec, dist_options);
        result = dist_result.campaign;
        // Distributed records carry no wall times, so the CSV is
        // always the deterministic column set.
        result.write_csv(std::cout, core::CsvColumns::kDeterministic);
        std::fprintf(stderr,
                     "# dist: %zu cases, %llu dispatched, "
                     "%llu reassigned, %zu restored, %zu/%zu workers "
                     "ready\n",
                     dist_result.cases,
                     static_cast<unsigned long long>(
                         dist_result.dispatched),
                     static_cast<unsigned long long>(
                         dist_result.reassigned),
                     dist_result.restored, dist_result.workers_ready,
                     dist_result.workers.size());
        if (!fleet_trace_out.empty() || !fleet_metrics_out.empty()) {
            std::fprintf(
                stderr,
                "# fleet: %zu/%zu workers pulled, %llu spans merged "
                "(%llu clamped)\n",
                dist_result.fleet_workers_collected,
                dist_result.workers.size(),
                static_cast<unsigned long long>(dist_result.fleet_spans),
                static_cast<unsigned long long>(
                    dist_result.fleet_clamped_spans));
        }
    }

    obs::attach_metrics(nullptr);
    obs::attach_trace(nullptr);
    if (!metrics_out.empty())
        registry.write_json_file(metrics_out);
    if (!trace_out.empty())
        trace_session.write_chrome_trace_file(trace_out);

    for (const auto& entry : result.entries) {
        if (entry.solution.feasible)
            return 0;
    }
    return 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    // Subcommands: `serve` runs the evaluation daemon, `call` sends one
    // chrysalis-serve-v1 request. Everything else is the classic
    // flag-driven search front end.
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return serve::run_serve_cli(argc, argv, 2);
    if (argc > 1 && std::strcmp(argv[1], "call") == 0)
        return serve::run_call_cli(argc, argv, 2);
    if (argc > 1 && std::strcmp(argv[1], "campaign") == 0)
        return run_campaign_cli(argc, argv, 2);

    CliOptions options;
    if (!parse_args(argc, argv, options))
        return 2;

    // Observability sinks live in main so they outlive all the work;
    // attach before any search runs, detach (quiescent) before writing.
    obs::MetricsRegistry registry;
    obs::TraceSession trace_session;
    if (!options.metrics_out.empty())
        obs::attach_metrics(&registry);
    if (!options.trace_out.empty())
        obs::attach_trace(&trace_session);

    const int exit_code = run_cli(options);

    obs::attach_metrics(nullptr);
    obs::attach_trace(nullptr);
    if (!options.metrics_out.empty())
        registry.write_json_file(options.metrics_out);
    if (!options.trace_out.empty())
        trace_session.write_chrome_trace_file(options.trace_out);
    return exit_code;
}

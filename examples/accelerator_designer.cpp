/// \file
/// Scenario example: pre-RTL design of a future AuT vision node (the
/// paper's §V-B use case). Explores the full joint space — architecture
/// (TPU vs Eyeriss), PE count, per-PE cache, panel and capacitor — for
/// AlexNet under the lat*sp efficiency objective, then prints a design
/// brief: the chosen configuration, its per-layer dataflow, and how the
/// same search lands when the architecture is pinned to each preset.
///
/// Run: ./build/examples/accelerator_designer

#include <cstdio>

#include "common/string_utils.hpp"
#include "core/chrysalis.hpp"
#include "core/scenarios.hpp"
#include "hw/accelerator.hpp"

int
main()
{
    using namespace chrysalis;

    core::Scenario scenario = core::make_vision_node_scenario();
    std::printf("Scenario: %s\n  %s\n\n", scenario.name.c_str(),
                scenario.description.c_str());

    core::Chrysalis tool(scenario.inputs);
    core::AuTSolution best = tool.generate();
    if (!best.feasible) {
        std::printf("no feasible design found\n");
        return 1;
    }

    std::printf("=== Pre-RTL design brief ===\n");
    std::printf("architecture : %s\n",
                hw::to_string(best.hardware.arch).c_str());
    std::printf("PE array     : %lld PEs, %lld B cache each\n",
                static_cast<long long>(best.hardware.n_pe),
                static_cast<long long>(best.hardware.cache_bytes));
    std::printf("energy subsys: %.1f cm^2 panel, %s capacitor\n",
                best.hardware.solar_cm2,
                format_si(best.hardware.capacitance_f, "F", 0).c_str());
    std::printf("mean latency : %s   lat*sp: %.2f cm^2*s\n",
                format_si(best.mean_latency_s, "s").c_str(), best.lat_sp);
    std::printf("E_all        : %s across %lld tiles\n\n",
                format_si(best.cost.total_energy_j(), "J").c_str(),
                static_cast<long long>(best.cost.n_tile));

    // Show the dataflow decisions for the heaviest three layers.
    std::printf("Dataflow for the three heaviest layers:\n");
    const dnn::Model& model = tool.inputs().model;
    std::vector<std::size_t> indices(model.layer_count());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    std::sort(indices.begin(), indices.end(),
              [&](std::size_t a, std::size_t b) {
                  return model.layer(a).macs() > model.layer(b).macs();
              });
    for (std::size_t rank = 0; rank < 3 && rank < indices.size();
         ++rank) {
        const std::size_t i = indices[rank];
        std::printf("%s",
                    best.mappings[i].describe(model.layer(i)).c_str());
    }

    // Architecture bake-off: pin each preset and re-search.
    std::printf("\nArchitecture bake-off (same budget, arch pinned):\n");
    for (auto arch : {hw::AcceleratorArch::kTpu,
                      hw::AcceleratorArch::kEyeriss}) {
        core::ChrysalisInputs pinned = scenario.inputs;
        pinned.space.search_arch = false;
        pinned.space.defaults.arch = arch;
        const core::Chrysalis pinned_tool(std::move(pinned));
        const core::AuTSolution solution = pinned_tool.generate();
        if (solution.feasible) {
            std::printf("  %-8s lat*sp %.2f cm^2*s (pe=%lld cache=%lldB "
                        "sp=%.1fcm^2)\n",
                        hw::to_string(arch).c_str(), solution.lat_sp,
                        static_cast<long long>(solution.hardware.n_pe),
                        static_cast<long long>(
                            solution.hardware.cache_bytes),
                        solution.hardware.solar_cm2);
        } else {
            std::printf("  %-8s infeasible\n",
                        hw::to_string(arch).c_str());
        }
    }
    return 0;
}

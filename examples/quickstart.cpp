/// \file
/// Quickstart: generate an AuT architecture for a single convolution
/// layer on the MSP430 platform, print the solution, and validate it with
/// the step-based intermittent simulator.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "common/string_utils.hpp"
#include "core/chrysalis.hpp"
#include "core/scenarios.hpp"

int
main()
{
    using namespace chrysalis;

    // 1. Pick a ready-made scenario (workload + design space + objective).
    core::Scenario scenario = core::make_quickstart_scenario();
    std::printf("Scenario: %s\n  %s\n\n", scenario.name.c_str(),
                scenario.description.c_str());

    // 2. Run the bi-level exploration.
    core::Chrysalis tool(scenario.inputs);
    core::AuTSolution solution = tool.generate();
    std::printf("%s\n",
                solution.describe(tool.inputs().model).c_str());
    std::printf("Explored %d design points; %zu on the Pareto front.\n\n",
                solution.evaluations, solution.pareto.size());

    // 3. Validate with the step-based simulator in the brighter
    //    environment.
    const double k_eh = tool.inputs().options.k_eh_envs.front();
    core::ValidationResult validation = tool.validate(solution, k_eh);
    if (!validation.sim.completed) {
        std::printf("validation failed: %s\n",
                    validation.sim.failure.message().c_str());
        return 1;
    }
    std::printf("Step-simulator validation (k_eh = %s/cm^2):\n",
                format_si(k_eh, "W").c_str());
    std::printf("  simulated latency  %s mean over 5 runs (%lld energy "
                "cycles, %lld exceptions in last run)\n",
                format_si(validation.mean_sim_latency_s, "s").c_str(),
                static_cast<long long>(validation.sim.energy_cycles),
                static_cast<long long>(validation.sim.exceptions));
    std::printf("  analytic latency   %s (relative error %s)\n",
                format_si(validation.analytic_latency_s, "s").c_str(),
                format_percent(validation.relative_error).c_str());
    std::printf("  system efficiency  %s\n",
                format_percent(validation.sim.system_efficiency()).c_str());
    return 0;
}

/// \file
/// Standalone `chrysalis-serve-v1` daemon: evaluation-as-a-service for
/// the analytic evaluator, mapping search and step simulator.
///
/// Usage:
///   chrysalis_served [--host addr] [--port n] [--threads n]
///                    [--cache-capacity n] [--max-connections n]
///                    [--max-inflight n] [--queue-depth n]
///                    [--batch-max n] [--drain-timeout s]
///                    [--metrics-out file] [--trace-out file]
///
/// Prints "chrysalis_served listening on HOST:PORT" once accepting
/// (with --port 0 the kernel picks the port, so parse this line), then
/// serves until SIGINT/SIGTERM, drains in-flight work and exits 0.
/// Equivalent to `chrysalis_cli serve`; see docs/serving.md for the
/// protocol.

#include "serve/daemon.hpp"

int
main(int argc, char** argv)
{
    return chrysalis::serve::run_serve_cli(argc, argv, 1);
}

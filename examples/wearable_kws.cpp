/// \file
/// Scenario example: a battery-free wearable keyword spotter under a
/// strict size budget (6 cm^2 of flexible PV under indoor light). Shows
/// the `lat` objective (minimize latency with a panel constraint), the
/// Pareto tradeoff the search explored, and a comparison against naive
/// component choices a designer might make by hand.
///
/// Run: ./build/examples/wearable_kws

#include <cstdio>

#include "common/string_utils.hpp"
#include "core/chrysalis.hpp"
#include "core/scenarios.hpp"

int
main()
{
    using namespace chrysalis;

    core::Scenario scenario = core::make_wearable_kws_scenario();
    std::printf("Scenario: %s\n  %s\n\n", scenario.name.c_str(),
                scenario.description.c_str());

    core::Chrysalis tool(scenario.inputs);
    core::AuTSolution solution = tool.generate();
    if (!solution.feasible) {
        std::printf("no feasible design found\n");
        return 1;
    }
    std::printf("%s\n", solution.describe(tool.inputs().model).c_str());

    std::printf("Pareto front explored (panel vs latency):\n");
    for (const auto& point : solution.pareto) {
        std::printf("  %5.1f cm^2  ->  %s\n", point.x,
                    format_si(point.y, "s").c_str());
    }

    // Hand-picked designs a practitioner might try without the tool.
    struct Manual {
        const char* label;
        double solar_cm2;
        double cap_f;
    };
    static constexpr Manual kManual[] = {
        {"max panel + big cap", 6.0, 10e-3},
        {"max panel + mid cap", 6.0, 470e-6},
        {"small panel + small cap", 2.0, 47e-6},
    };
    std::printf("\nManual designs vs CHRYSALIS (latency under the same "
                "6 cm^2 budget):\n");
    for (const auto& manual : kManual) {
        search::HwCandidate candidate;
        candidate.family = search::HardwareFamily::kMsp430;
        candidate.solar_cm2 = manual.solar_cm2;
        candidate.capacitance_f = manual.cap_f;
        const core::AuTSolution reference =
            tool.evaluate_candidate(candidate);
        if (!reference.feasible) {
            std::printf("  %-26s infeasible under indoor light\n",
                        manual.label);
            continue;
        }
        std::printf("  %-26s %s\n", manual.label,
                    format_si(reference.mean_latency_s, "s").c_str());
    }
    std::printf("  %-26s %s  <- generated\n", "CHRYSALIS design",
                format_si(solution.mean_latency_s, "s").c_str());

    // Validate the chosen design in the dimmer indoor environment.
    const double k_dim = tool.inputs().options.k_eh_envs.back();
    const core::ValidationResult validation =
        tool.validate(solution, k_dim, sim::SimConfig{}, 6);
    if (validation.sim.completed) {
        std::printf("\nStep-simulated mean latency in dim light (%s/cm^2):"
                    " %s (analytic %s)\n",
                    format_si(k_dim, "W").c_str(),
                    format_si(validation.mean_sim_latency_s, "s").c_str(),
                    format_si(validation.analytic_latency_s, "s").c_str());
    }
    return 0;
}

/// \file
/// Scenario example: an autonomous volcanic/field monitoring station
/// (the paper's §I motivates continuous volcano hazard monitoring as an
/// AuT use case). The station runs a HAR-class 1-D CNN over seismometer
/// windows and must meet a 30 s inference deadline with the smallest
/// possible solar panel; after design generation, the chosen architecture
/// is stress-tested across a full simulated day with a cloudy diurnal
/// light profile.
///
/// Run: ./build/examples/volcano_monitor

#include <cstdio>

#include "common/string_utils.hpp"
#include "core/chrysalis.hpp"
#include "core/scenarios.hpp"
#include "energy/energy_controller.hpp"
#include "energy/solar_environment.hpp"

int
main()
{
    using namespace chrysalis;

    // 1. Generate the architecture with the environment-monitor scenario
    //    (minimize solar panel subject to a 30 s latency deadline).
    core::Scenario scenario = core::make_environment_monitor_scenario();
    std::printf("Scenario: %s\n  %s\n\n", scenario.name.c_str(),
                scenario.description.c_str());
    core::Chrysalis tool(scenario.inputs);
    core::AuTSolution solution = tool.generate();
    if (!solution.feasible) {
        std::printf("no feasible design found\n");
        return 1;
    }
    std::printf("%s\n", solution.describe(tool.inputs().model).c_str());

    // 2. Stress-test across a simulated day: cloudy diurnal light, one
    //    inference attempt per hour between 7am and 5pm.
    energy::DiurnalSolarEnvironment::Config env_config;
    env_config.peak_k_eh = 1.6e-3;   // hazy mountain sun
    env_config.cloud_depth = 0.5;
    env_config.cloud_period_s = 1200;
    env_config.seed = 99;

    energy::Capacitor::Config cap_config;
    cap_config.capacitance_f = solution.hardware.capacitance_f;
    cap_config.initial_voltage_v = 0.0;  // deployed with empty storage
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            solution.hardware.solar_cm2,
            std::make_shared<energy::DiurnalSolarEnvironment>(env_config)),
        energy::Capacitor(cap_config),
        energy::PowerManagementIc{energy::PowerManagementIc::Config{}});

    std::printf("Simulated deployment day (cloudy diurnal profile):\n");
    std::printf("  %-6s %-12s %-10s %-8s %s\n", "hour", "latency",
                "cycles", "excep.", "deadline");
    int met = 0, attempted = 0;
    for (int hour = 7; hour <= 17; ++hour) {
        sim::SimConfig config;
        config.start_time_s = hour * 3600.0;
        config.step_s = 0.05;
        config.max_sim_time_s = 3600.0;  // give up after an hour
        config.seed = static_cast<std::uint64_t>(hour);
        const sim::SimResult result =
            sim::simulate_inference(solution.cost, controller, config);
        ++attempted;
        if (!result.completed) {
            std::printf("  %02d:00  %-12s %-10s %-8s %s\n", hour,
                        "-", "-", "-", result.failure.message().c_str());
            continue;
        }
        const bool ok = result.latency_s <=
                        tool.inputs().objective.lat_limit_s;
        met += ok ? 1 : 0;
        std::printf("  %02d:00  %-12s %-10lld %-8lld %s\n", hour,
                    format_si(result.latency_s, "s").c_str(),
                    static_cast<long long>(result.energy_cycles),
                    static_cast<long long>(result.exceptions),
                    ok ? "met" : "MISSED");
    }
    std::printf("\nDeadline met in %d/%d attempts across the day.\n", met,
                attempted);
    return met > 0 ? 0 : 1;
}
